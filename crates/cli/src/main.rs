//! `ssdrec` — the workspace CLI.
//!
//! ```text
//! ssdrec stats     [--profile NAME | --file PATH --format movielens|csv] [--scale F]
//! ssdrec train     [--profile NAME | --file PATH --format F] [--backbone B] [--dim D]
//!                  [--epochs E] [--batch-size B] [--max-len L] [--seed S]
//!                  [--baseline | --contrastive | --mgsd] [--out CKPT] [--verbose]
//!                  [--cl-weight W] [--cl-tau T] [--aug-rate R]
//!                  [--state PATH [--resume] [--checkpoint-every N]]
//! ssdrec recommend --model CKPT --user U [--k K] (same data/arch flags as train)
//! ssdrec denoise   (same data/arch flags as train) [--user U]
//! ssdrec serve     --model CKPT [--addr HOST:PORT] [--workers N] [--max-batch B]
//!                  [--linger-ms MS] [--cache N] [--max-queue N]
//!                  [--read-timeout-ms MS] [--write-timeout-ms MS]
//!                  (same data/arch flags as train)
//! ssdrec serve     --ckpt-dir DIR --log PATH [--watch-current [--reload-poll-ms MS]]
//!                  (versioned serving with POST /reload hot-swap)
//! ssdrec ingest    --log PATH [--events "u:i,u:i,..."] [--data FILE.ssdc]
//!                  [--profile NAME --scale F --seed S | --users N --items M]
//! ssdrec retrain   --log PATH --ckpt-dir DIR [--epochs N] (same arch flags as train)
//! ssdrec gen-data  --out FILE.ssdc [--profile NAME --scale F --seed S |
//!                  --file PATH --format movielens|csv]
//! ```
//!
//! `gen-data` materializes a dataset as a binary columnar `.ssdc` file;
//! `train --data FILE.ssdc` trains straight off it. `--data-mode windowed`
//! (the default) streams sequences through a bounded window so peak RAM
//! stays independent of corpus size; `--data-mode ram` decodes the file
//! fully first. Both modes are bit-identical: same batches, same metrics,
//! same checkpoints.
//!
//! `--baseline` trains the bare backbone instead of wrapping it in SSDRec.
//! `--state PATH` checkpoints full training state (params, optimizer
//! moments, RNG) every `--checkpoint-every` epochs; `--resume` continues a
//! killed run from it **bit-identically**. The `SSDREC_FAULTS` env var arms
//! deterministic fault injection (`site:kind:nth`, see `ssdrec_faults`).
//!
//! The online loop: `ingest` appends interactions to an append-only log,
//! `retrain` warm-starts from the latest published version and trains on
//! the merged history into `--ckpt-dir/v000N/`, and a `serve --ckpt-dir`
//! server hot-swaps new versions in via `POST /reload` (or automatically
//! with `--watch-current`) without dropping a request.

mod args;

use std::process::ExitCode;

use args::Args;
use ssdrec_core::{SsdRec, SsdRecConfig};
use ssdrec_data::{
    decode_dataset, load_interactions, load_to_columnar, plan_leave_one_out, prepare,
    ColumnarReader, Dataset, LoadOptions, SequenceStore, Split, StoreExamples, SyntheticConfig,
    TruncatedStore,
};
use ssdrec_denoise::{Denoiser, Mgsd};
use ssdrec_graph::{build_graph, build_graph_from_store, GraphConfig, MultiRelationGraph};
use ssdrec_models::{
    train, train_from_source, train_with_checkpoints, BackboneKind, CheckpointConfig,
    ContrastiveSeqRec, RecModel, SeqRec, SourceSplit, TrainConfig,
};
use ssdrec_serve::{
    Engine, EngineConfig, EngineSlot, InferenceModel, LoadedModel, ModelLoader, RetrievalConfig,
    RetrievalMode, ServeConfig, ServerStats,
};
use ssdrec_stream::{ArchSpec, LogHeader, RetrainOutcome, RetrainSpec};
use ssdrec_tensor::{load_params, save_params};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> &'static str {
    "usage: ssdrec <stats|train|recommend|denoise|serve|ingest|retrain|gen-data> [options]\n\
     run `ssdrec <command> --help`-style flags per the module docs; common options:\n\
     --profile beauty|sports|yelp|ml-100k|ml-1m   synthetic profile (default beauty)\n\
     --file PATH --format movielens|csv           load real interaction data instead\n\
     --out FILE.ssdc  destination columnar file (gen-data)\n\
     --data FILE.ssdc train/ingest from a columnar file (train, ingest)\n\
     --data-mode windowed|ram   how train reads --data (default windowed;\n\
                     both modes are bit-identical, windowed bounds peak RAM)\n\
     --backbone SASRec|GRU4Rec|NARM|STAMP|Caser|BERT4Rec (default SASRec)\n\
     --dim D --epochs E --batch-size B --max-len L --seed S\n\
     --baseline      train the bare backbone (no SSDRec wrapper)\n\
     --contrastive   train the CL4SRec-style contrastive scenario on the\n\
                     backbone (crop/reorder/mask views + InfoNCE)\n\
     --cl-weight W --cl-tau T --aug-rate R   contrastive knobs\n\
                     (defaults 0.1 / 0.5 / 0.4; only with --contrastive)\n\
     --mgsd          train the MGSD-WSS multi-granularity denoiser\n\
                     (weakly supervised by noise labels when present)\n\
     --out CKPT      write a checkpoint after training\n\
     --model CKPT    checkpoint to load (recommend, serve)\n\
     --user U --k K  serving target (recommend)\n\
     --threads N     compute threads for every subcommand (default: the\n\
                     SSDREC_THREADS env var, else all available cores)\n\
     --backend reference|blocked   kernel backend for every subcommand\n\
                     (default: the SSDREC_BACKEND env var, else blocked;\n\
                     both produce bit-identical results)\n\
     --state PATH    training-state file for periodic checkpointing (train)\n\
     --resume        continue bit-identically from --state if it exists\n\
     --checkpoint-every N   epochs between state saves (default 1)\n\
     --addr HOST:PORT --workers N --max-batch B --linger-ms MS --cache N (serve)\n\
     --max-queue N --read-timeout-ms MS --write-timeout-ms MS (serve)\n\
     --retrieval exact|ann   serving retrieval stage (default exact;\n\
                     ann = deterministic HNSW candidates + exact re-rank)\n\
     --ef-search N   ann candidate beam width, 1..=1000000 (default 128)\n\
     --ann-m M       HNSW max degree, 2..=1024 (default 16)\n\
     --log PATH      append-only interaction log (ingest, retrain, serve --ckpt-dir)\n\
     --events L      comma-separated user:item pairs to append (ingest)\n\
     --users N --items M   explicit catalog when creating a log (ingest)\n\
     --ckpt-dir DIR  versioned checkpoint directory (retrain, serve)\n\
     --watch-current poll the ckpt-dir CURRENT pointer and hot-swap (serve)\n\
     --reload-poll-ms MS   poll interval for --watch-current (default 500)\n\
     env SSDREC_FAULTS=site:kind:nth[,...]   arm deterministic fault injection"
}

/// Apply `--threads N` (uniform across subcommands) to the runtime pool and
/// return the effective thread count. Without the flag the pool keeps its
/// default, which honours the `SSDREC_THREADS` env var. Results are
/// bit-identical at every thread count; this only trades wall-clock time.
fn configure_threads(a: &Args) -> Result<usize, String> {
    match a.get_parse::<usize>("threads", 0)? {
        0 if a.get("threads").is_some() => {
            Err("--threads must be ≥ 1 (results are identical at any count)".into())
        }
        0 => Ok(ssdrec_runtime::threads()),
        n => {
            ssdrec_runtime::set_threads(n);
            Ok(n)
        }
    }
}

/// Apply `--backend reference|blocked` to the process-global kernel backend
/// and return the effective backend name. Without the flag the backend
/// honours the `SSDREC_BACKEND` env var (default `blocked`). The v1 kernel
/// bits-contract makes both backends bit-identical, so — like `--threads` —
/// this flag only trades wall-clock time, never a bit of output.
fn configure_backend(a: &Args) -> Result<&'static str, String> {
    match a.get("backend") {
        None => Ok(ssdrec_tensor::backend_kind().name()),
        Some(v) => {
            let kind = ssdrec_tensor::BackendKind::parse(v).ok_or_else(|| {
                format!("unknown --backend {v:?} (expected \"reference\" or \"blocked\")")
            })?;
            ssdrec_tensor::set_backend(kind);
            Ok(kind.name())
        }
    }
}

/// Parse `--retrieval exact|ann`, `--ef-search N`, `--ann-m M` into the
/// engine's retrieval config, rejecting unknown modes and zero/absurd
/// parameter values up front (a typo'd beam width should fail fast, not
/// build a useless index).
fn configure_retrieval(a: &Args) -> Result<RetrievalConfig, String> {
    let mode: RetrievalMode = a.get_or("retrieval", "exact").parse()?;
    let ef_search: usize = a.get_parse("ef-search", 128)?;
    if !(1..=1_000_000).contains(&ef_search) {
        return Err(format!(
            "--ef-search {ef_search} out of range 1..=1000000 (candidate beam width)"
        ));
    }
    let ann_m: usize = a.get_parse("ann-m", 16)?;
    if !(2..=1024).contains(&ann_m) {
        return Err(format!(
            "--ann-m {ann_m} out of range 2..=1024 (HNSW degree)"
        ));
    }
    Ok(RetrievalConfig {
        mode,
        ann_m,
        ef_search,
    })
}

fn load_dataset(a: &Args) -> Result<Dataset, String> {
    if let Some(path) = a.get("file") {
        let opts = match a.get_or("format", "csv") {
            "movielens" => LoadOptions::movielens(),
            "csv" => LoadOptions::csv_triples(),
            other => return Err(format!("unknown --format {other}")),
        };
        return load_interactions(path, &opts).map_err(|e| e.to_string());
    }
    let name = a.get_or("profile", "beauty");
    let cfg = match name {
        "beauty" => SyntheticConfig::beauty(),
        "sports" => SyntheticConfig::sports(),
        "yelp" => SyntheticConfig::yelp(),
        "ml-100k" => SyntheticConfig::ml100k(),
        "ml-1m" => SyntheticConfig::ml1m(),
        other => return Err(format!("unknown --profile {other}")),
    };
    let scale: f64 = a.get_parse("scale", 0.5)?;
    let seed: u64 = a.get_parse("seed", 7)?;
    Ok(cfg.scaled(scale).with_seed(seed).generate())
}

fn backbone(a: &Args) -> Result<BackboneKind, String> {
    let name = a.get_or("backbone", "SASRec");
    BackboneKind::all()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown --backbone {name}"))
}

struct Prepared {
    dataset: Dataset,
    split: Split,
    graph: MultiRelationGraph,
    max_len: usize,
}

fn prepare_data(a: &Args) -> Result<Prepared, String> {
    let raw = load_dataset(a)?;
    let max_len: usize = a.get_parse("max-len", 50)?;
    let (dataset, split) = prepare(&raw, max_len, 3);
    if split.test.is_empty() {
        return Err("no usable sequences after 5-core filtering".into());
    }
    let graph = build_graph(&dataset, &GraphConfig::default());
    Ok(Prepared {
        dataset,
        split,
        graph,
        max_len,
    })
}

fn build_ssdrec(a: &Args, prep: &Prepared) -> Result<SsdRec, String> {
    let cfg = SsdRecConfig {
        dim: a.get_parse("dim", 16)?,
        max_len: prep.max_len,
        backbone: backbone(a)?,
        seed: a.get_parse("seed", 7)?,
        ..SsdRecConfig::default()
    };
    Ok(SsdRec::new(&prep.graph, cfg))
}

fn train_config(a: &Args) -> Result<TrainConfig, String> {
    Ok(TrainConfig {
        epochs: a.get_parse("epochs", 15)?,
        batch_size: a.get_parse("batch-size", 64)?,
        patience: a.get_parse("patience", 5)?,
        seed: a.get_parse("seed", 7)?,
        verbose: a.has_flag("verbose"),
        ..TrainConfig::default()
    })
}

fn cmd_stats(a: &Args) -> Result<(), String> {
    let ds = load_dataset(a)?;
    println!("dataset     : {}", ds.name);
    println!("users       : {}", ds.num_users);
    println!("items       : {}", ds.num_items);
    println!("actions     : {}", ds.num_actions());
    println!("avg length  : {:.2}", ds.avg_len());
    println!("sparsity    : {:.2}%", ds.sparsity());
    let graph = build_graph(&ds, &GraphConfig::default());
    println!("graph edges : {} (5 relation types)", graph.total_edges());
    println!(
        "
{}",
        ssdrec_graph::GraphReport::new(&graph).to_table()
    );
    Ok(())
}

/// `--state PATH [--resume] [--checkpoint-every N]` → the trainer's
/// checkpoint configuration (None when no state file was requested).
fn checkpoint_config(a: &Args) -> Result<Option<CheckpointConfig>, String> {
    let Some(path) = a.get("state") else {
        if a.has_flag("resume") {
            return Err("--resume requires --state PATH".into());
        }
        return Ok(None);
    };
    Ok(Some(CheckpointConfig {
        path: path.into(),
        every: a.get_parse("checkpoint-every", 1)?,
        resume: a.has_flag("resume"),
    }))
}

/// Which training scenario `train` runs: the SSDRec wrapper (default), the
/// bare backbone (`--baseline`), the contrastive head (`--contrastive`), or
/// the multi-granularity denoiser (`--mgsd`).
#[derive(Copy, Clone, PartialEq, Eq)]
enum TrainScenario {
    SsdRec,
    Baseline,
    Contrastive,
    Mgsd,
}

fn train_scenario(a: &Args) -> Result<TrainScenario, String> {
    let picked = [
        (a.has_flag("baseline"), TrainScenario::Baseline),
        (a.has_flag("contrastive"), TrainScenario::Contrastive),
        (a.has_flag("mgsd"), TrainScenario::Mgsd),
    ];
    let mut chosen = TrainScenario::SsdRec;
    let mut count = 0;
    for (on, s) in picked {
        if on {
            chosen = s;
            count += 1;
        }
    }
    if count > 1 {
        return Err("--baseline, --contrastive and --mgsd are mutually exclusive".into());
    }
    Ok(chosen)
}

/// Build the contrastive scenario from `--cl-weight` / `--cl-tau` /
/// `--aug-rate` (all optional; workspace defaults otherwise).
fn build_contrastive(
    a: &Args,
    num_items: usize,
    max_len: usize,
) -> Result<ContrastiveSeqRec, String> {
    let mut m = ContrastiveSeqRec::new(
        backbone(a)?,
        num_items,
        a.get_parse("dim", 16)?,
        max_len,
        a.get_parse("seed", 7)?,
    );
    m.cl_weight = a.get_parse("cl-weight", ssdrec_models::DEFAULT_CL_WEIGHT)?;
    m.cl_tau = a.get_parse("cl-tau", ssdrec_models::DEFAULT_CL_TAU)?;
    m.aug_rate = a.get_parse("aug-rate", ssdrec_models::DEFAULT_AUG_RATE)?;
    if m.cl_weight < 0.0 {
        return Err("--cl-weight must be ≥ 0".into());
    }
    if m.cl_tau <= 0.0 {
        return Err("--cl-tau must be > 0".into());
    }
    if !(0.0..=1.0).contains(&m.aug_rate) {
        return Err("--aug-rate must be in [0, 1]".into());
    }
    Ok(m)
}

fn cmd_train(a: &Args) -> Result<(), String> {
    if let Some(data) = a.get("data") {
        if a.get("file").is_some() || a.get("profile").is_some() {
            return Err("--data is exclusive with --file/--profile".into());
        }
        return cmd_train_data(a, data);
    }
    let prep = prepare_data(a)?;
    println!(
        "data: {} items, {} train / {} valid / {} test examples",
        prep.dataset.num_items,
        prep.split.train.len(),
        prep.split.valid.len(),
        prep.split.test.len()
    );
    let tc = train_config(a)?;
    let ckpt = checkpoint_config(a)?;
    if let Some(c) = &ckpt {
        let mode = if c.resume && c.path.exists() {
            "resuming from"
        } else {
            "checkpointing to"
        };
        println!(
            "state : {mode} {} every {} epoch(s)",
            c.path.display(),
            c.every.max(1)
        );
    }
    let (name, test, store_snapshot) = match train_scenario(a)? {
        TrainScenario::Baseline => {
            let mut model = SeqRec::new(
                backbone(a)?,
                prep.dataset.num_items,
                a.get_parse("dim", 16)?,
                prep.max_len,
                a.get_parse("seed", 7)?,
            );
            let report = train_with_checkpoints(&mut model, &prep.split, &tc, ckpt.as_ref())?;
            (model.model_name(), report, model.store)
        }
        TrainScenario::Contrastive => {
            let mut model = build_contrastive(a, prep.dataset.num_items, prep.max_len)?;
            let report = train_with_checkpoints(&mut model, &prep.split, &tc, ckpt.as_ref())?;
            (model.model_name(), report, model.base.store)
        }
        TrainScenario::Mgsd => {
            let mut model = Mgsd::new(
                prep.dataset.num_users,
                prep.dataset.num_items,
                a.get_parse("dim", 16)?,
                prep.max_len,
                a.get_parse("seed", 7)?,
            );
            let report = train_with_checkpoints(&mut model, &prep.split, &tc, ckpt.as_ref())?;
            (model.model_name(), report, model.store)
        }
        TrainScenario::SsdRec => {
            let mut model = build_ssdrec(a, &prep)?;
            let report = train_with_checkpoints(&mut model, &prep.split, &tc, ckpt.as_ref())?;
            (model.model_name(), report, model.store)
        }
    };
    println!("model : {name}");
    println!("epochs: {}", test.epochs_run);
    println!("valid : {}", test.valid);
    println!("test  : {}", test.test);
    if let Some(out) = a.get("out") {
        save_params(&store_snapshot, out).map_err(|e| e.to_string())?;
        println!("checkpoint written to {out}");
    }
    Ok(())
}

/// `train --data FILE.ssdc [--data-mode windowed|ram]`: the out-of-core
/// training path. Sequences are truncated lazily to `--max-len`, split with
/// leave-one-out (min length 3, up to 3 training prefixes per user), the
/// graph is built in counting passes over the store, and the trainer pulls
/// batches through [`StoreExamples`] — in `windowed` mode nothing ever
/// materializes the whole corpus. Both modes print identical metric lines,
/// which CI diffs to pin the bit-identity contract.
fn cmd_train_data(a: &Args, data: &str) -> Result<(), String> {
    let mode = a.get_or("data-mode", "windowed");
    let max_len: usize = a.get_parse("max-len", 50)?;
    // Whichever backing store we open must outlive the training run.
    let reader;
    let dataset;
    let base: &dyn SequenceStore = match mode {
        "windowed" => {
            reader = ColumnarReader::open(data).map_err(|e| e.to_string())?;
            &reader
        }
        "ram" => {
            dataset = decode_dataset(data).map_err(|e| e.to_string())?;
            &dataset
        }
        other => {
            return Err(format!(
                "unknown --data-mode {other} (expected \"windowed\" or \"ram\")"
            ))
        }
    };
    let store = TruncatedStore::new(base, max_len);
    let plan = plan_leave_one_out(&store, 3, 3);
    if plan.test.is_empty() {
        return Err("no usable sequences in the columnar file (need length ≥ 3)".into());
    }
    println!(
        "data: {} items, {} train / {} valid / {} test examples",
        store.num_items(),
        plan.train.len(),
        plan.valid.len(),
        plan.test.len()
    );
    println!("mode : {mode} ({data})");
    let graph = build_graph_from_store(&store, &GraphConfig::default());
    let tc = train_config(a)?;
    let ckpt = checkpoint_config(a)?;
    let tr = StoreExamples {
        store: &store,
        refs: &plan.train,
    };
    let va = StoreExamples {
        store: &store,
        refs: &plan.valid,
    };
    let te = StoreExamples {
        store: &store,
        refs: &plan.test,
    };
    let sources = SourceSplit {
        train: &tr,
        valid: &va,
        test: &te,
    };
    let (name, report, store_snapshot) = match train_scenario(a)? {
        TrainScenario::Baseline => {
            let mut model = SeqRec::new(
                backbone(a)?,
                store.num_items(),
                a.get_parse("dim", 16)?,
                max_len,
                a.get_parse("seed", 7)?,
            );
            let report = train_from_source(&mut model, &sources, &tc, None, ckpt.as_ref())?;
            (model.model_name(), report, model.store)
        }
        TrainScenario::Contrastive => {
            let mut model = build_contrastive(a, store.num_items(), max_len)?;
            let report = train_from_source(&mut model, &sources, &tc, None, ckpt.as_ref())?;
            (model.model_name(), report, model.base.store)
        }
        TrainScenario::Mgsd => {
            let mut model = Mgsd::new(
                store.num_users(),
                store.num_items(),
                a.get_parse("dim", 16)?,
                max_len,
                a.get_parse("seed", 7)?,
            );
            let report = train_from_source(&mut model, &sources, &tc, None, ckpt.as_ref())?;
            (model.model_name(), report, model.store)
        }
        TrainScenario::SsdRec => {
            let cfg = SsdRecConfig {
                dim: a.get_parse("dim", 16)?,
                max_len,
                backbone: backbone(a)?,
                seed: a.get_parse("seed", 7)?,
                ..SsdRecConfig::default()
            };
            let mut model = SsdRec::new(&graph, cfg);
            let report = train_from_source(&mut model, &sources, &tc, None, ckpt.as_ref())?;
            (model.model_name(), report, model.store)
        }
    };
    println!("model : {name}");
    println!("epochs: {}", report.epochs_run);
    println!("valid : {}", report.valid);
    println!("test  : {}", report.test);
    if let Some(out) = a.get("out") {
        save_params(&store_snapshot, out).map_err(|e| e.to_string())?;
        println!("checkpoint written to {out}");
    }
    Ok(())
}

/// `gen-data --out FILE.ssdc`: materialize a dataset as a binary columnar
/// file — streaming straight from the synthetic generator (profiles) or
/// converted from a text interaction file (`--file/--format`). The write is
/// atomic (temp + rename), so a crash never leaves a torn file behind.
fn cmd_gen_data(a: &Args) -> Result<(), String> {
    let out = a
        .get("out")
        .ok_or("gen-data requires --out FILE.ssdc (the destination columnar file)")?;
    let summary = if let Some(path) = a.get("file") {
        let opts = match a.get_or("format", "csv") {
            "movielens" => LoadOptions::movielens(),
            "csv" => LoadOptions::csv_triples(),
            other => return Err(format!("unknown --format {other}")),
        };
        load_to_columnar(path, &opts, out).map_err(|e| e.to_string())?
    } else {
        let name = a.get_or("profile", "beauty");
        let cfg = match name {
            "beauty" => SyntheticConfig::beauty(),
            "sports" => SyntheticConfig::sports(),
            "yelp" => SyntheticConfig::yelp(),
            "ml-100k" => SyntheticConfig::ml100k(),
            "ml-1m" => SyntheticConfig::ml1m(),
            other => return Err(format!("unknown --profile {other}")),
        };
        let scale: f64 = a.get_parse("scale", 0.5)?;
        let seed: u64 = a.get_parse("seed", 7)?;
        cfg.scaled(scale)
            .with_seed(seed)
            .generate_to(out)
            .map_err(|e| e.to_string())?
    };
    println!(
        "wrote {out}: {} users, {} interactions, {} bytes",
        summary.num_users, summary.num_interactions, summary.bytes
    );
    Ok(())
}

fn cmd_recommend(a: &Args) -> Result<(), String> {
    let prep = prepare_data(a)?;
    let mut model = build_ssdrec(a, &prep)?;
    if let Some(ckpt) = a.get("model") {
        load_params(&mut model.store, ckpt).map_err(|e| e.to_string())?;
        println!("loaded checkpoint {ckpt}");
    } else {
        return Err(
            "recommend requires --model CKPT (train one with `ssdrec train --out ...`)".into(),
        );
    }
    let user: usize = a.get_parse("user", 0)?;
    let k: usize = a.get_parse("k", 10)?;
    let ex = prep
        .split
        .test
        .iter()
        .find(|e| e.user == user)
        .ok_or_else(|| format!("user {user} has no test sequence"))?;
    println!("user {user} history: {:?}", ex.seq);
    println!("top-{k} recommendations:");
    for (rank, (item, score)) in model.recommend(user, &ex.seq, k).iter().enumerate() {
        let mark = if *item == ex.target {
            "  ← held-out next item"
        } else {
            ""
        };
        println!(
            "  {:>2}. item {:>5}  score {:+.4}{}",
            rank + 1,
            item,
            score,
            mark
        );
    }
    Ok(())
}

fn cmd_denoise(a: &Args) -> Result<(), String> {
    let prep = prepare_data(a)?;
    let mut model = build_ssdrec(a, &prep)?;
    let tc = train_config(a)?;
    println!("training SSDRec for denoising …");
    train(&mut model, &prep.split, &tc);
    let user: usize = a.get_parse("user", usize::MAX)?;
    let mut shown = 0;
    for ex in &prep.split.test {
        if user != usize::MAX && ex.user != user {
            continue;
        }
        let kept = model.keep_decisions(&ex.seq, ex.user);
        let denoised: Vec<usize> = ex
            .seq
            .iter()
            .zip(&kept)
            .filter(|(_, &k)| k)
            .map(|(&i, _)| i)
            .collect();
        if denoised.len() < ex.seq.len() {
            println!("user {:>4}: {:?} → {:?}", ex.user, ex.seq, denoised);
            shown += 1;
        }
        if shown >= 10 && user == usize::MAX {
            break;
        }
    }
    if shown == 0 {
        println!("no sequences were modified (the denoiser kept everything)");
    }
    Ok(())
}

/// Parse an `--events "u:i,u:i,..."` list into `(user, item)` pairs,
/// rejecting malformed pairs with the offending fragment in the message.
fn parse_events(spec: &str) -> Result<Vec<(usize, usize)>, String> {
    spec.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|pair| {
            let (u, i) = pair
                .split_once(':')
                .ok_or_else(|| format!("--events: {pair:?} is not user:item"))?;
            let user = u
                .trim()
                .parse()
                .map_err(|_| format!("--events: bad user in {pair:?}"))?;
            let item = i
                .trim()
                .parse()
                .map_err(|_| format!("--events: bad item in {pair:?}"))?;
            Ok((user, item))
        })
        .collect()
}

/// `--users N --items M` → an explicit log catalog; both or neither.
fn explicit_catalog(a: &Args) -> Result<Option<LogHeader>, String> {
    match (a.get("users"), a.get("items")) {
        (None, None) => Ok(None),
        (Some(_), Some(_)) => {
            let num_users: usize = a.get_parse("users", 0)?;
            let num_items: usize = a.get_parse("items", 0)?;
            if num_users == 0 || num_items == 0 {
                return Err("--users and --items must both be ≥ 1".into());
            }
            Ok(Some(LogHeader {
                num_users,
                num_items,
            }))
        }
        _ => Err("--users and --items must be given together".into()),
    }
}

/// Architecture + training knobs for `retrain` (same defaults as `train`;
/// the arch half must match the checkpoint directory on every round).
fn retrain_spec(a: &Args) -> Result<RetrainSpec, String> {
    let epochs: usize = a.get_parse("epochs", 1)?;
    if epochs == 0 {
        return Err("--epochs must be ≥ 1 (incremental rounds run exactly N epochs)".into());
    }
    let defaults = TrainConfig::default();
    Ok(RetrainSpec {
        arch: ArchSpec {
            backbone: backbone(a)?,
            dim: a.get_parse("dim", 16)?,
            max_len: a.get_parse("max-len", 50)?,
            seed: a.get_parse("seed", 7)?,
        },
        epochs,
        batch_size: a.get_parse("batch-size", 64)?,
        lr: defaults.lr,
        weight_decay: defaults.weight_decay,
        checkpoint_every: a.get_parse("checkpoint-every", 1)?,
    })
}

/// `--watch-current [--reload-poll-ms MS]` → the server's poll interval.
/// `--reload-poll-ms` without `--watch-current` is a contradiction and is
/// rejected, as is a zero interval.
fn reload_poll(a: &Args) -> Result<Option<Duration>, String> {
    let watch = a.has_flag("watch-current");
    if !watch {
        if a.get("reload-poll-ms").is_some() {
            return Err("--reload-poll-ms requires --watch-current".into());
        }
        return Ok(None);
    }
    let ms: u64 = a.get_parse("reload-poll-ms", 500)?;
    if ms == 0 {
        return Err("--reload-poll-ms must be ≥ 1".into());
    }
    Ok(Some(Duration::from_millis(ms)))
}

fn cmd_ingest(a: &Args) -> Result<(), String> {
    let log_path = a.get("log").ok_or("ingest requires --log PATH")?;
    let explicit = explicit_catalog(a)?;
    if a.get("data").is_some() && a.get("events").is_some() {
        return Err("--data and --events are mutually exclusive".into());
    }
    // Event source: a columnar file (bulk-loaded without materializing it),
    // an explicit --events list, else a bulk load of the synthetic profile
    // (user-major, time-ordered within each user).
    if let Some(data) = a.get("data") {
        let reader = ColumnarReader::open(data).map_err(|e| e.to_string())?;
        let catalog = explicit.or(Some(LogHeader {
            num_users: ColumnarReader::num_users(&reader),
            num_items: ColumnarReader::num_items(&reader),
        }));
        let (mut log, created) = ssdrec_stream::open_or_create_log(Path::new(log_path), catalog)?;
        let before = log.records();
        log.bulk_load(&reader).map_err(|e| e.to_string())?;
        log.sync().map_err(|e| e.to_string())?;
        let h = log.header();
        println!(
            "{} {} ({} users, {} items): +{} records, {} total, end offset {}",
            if created { "created" } else { "appended to" },
            log_path,
            h.num_users,
            h.num_items,
            log.records() - before,
            log.records(),
            log.end()
        );
        return Ok(());
    }
    let (catalog, events): (Option<LogHeader>, Vec<(usize, usize)>) = match a.get("events") {
        Some(spec) => (explicit, parse_events(spec)?),
        None => {
            let ds = load_dataset(a)?;
            let catalog = explicit.or(Some(LogHeader {
                num_users: ds.num_users,
                num_items: ds.num_items,
            }));
            let events = ds
                .sequences
                .iter()
                .enumerate()
                .flat_map(|(u, seq)| seq.iter().map(move |&i| (u, i)))
                .collect();
            (catalog, events)
        }
    };
    let (mut log, created) = ssdrec_stream::open_or_create_log(Path::new(log_path), catalog)?;
    let before = log.records();
    log.append_all(events).map_err(|e| e.to_string())?;
    log.sync().map_err(|e| e.to_string())?;
    let h = log.header();
    println!(
        "{} {} ({} users, {} items): +{} records, {} total, end offset {}",
        if created { "created" } else { "appended to" },
        log_path,
        h.num_users,
        h.num_items,
        log.records() - before,
        log.records(),
        log.end()
    );
    Ok(())
}

fn cmd_retrain(a: &Args) -> Result<(), String> {
    let log = a.get("log").ok_or("retrain requires --log PATH")?;
    let root = a
        .get("ckpt-dir")
        .ok_or("retrain requires --ckpt-dir DIR (the versioned checkpoint directory)")?;
    let spec = retrain_spec(a)?;
    match ssdrec_stream::retrain(
        Path::new(log),
        Path::new(root),
        &spec,
        a.has_flag("verbose"),
    )? {
        RetrainOutcome::UpToDate { version } => {
            println!("up to date: v{version:04} already covers the whole log");
        }
        RetrainOutcome::Trained(t) => {
            println!(
                "published v{:04}: consumed {} new record(s) up to offset {}",
                t.version, t.delta_records, t.consumed
            );
            println!("epochs: {}", t.report.epochs_run);
            println!("valid : {}", t.report.valid);
            println!("test  : {}", t.report.test);
        }
    }
    Ok(())
}

/// `serve --ckpt-dir DIR --log PATH`: serve the `CURRENT` version with
/// hot-swap via `POST /reload` and (optionally) a `CURRENT`-file watcher.
fn cmd_serve_stream(a: &Args) -> Result<(), String> {
    if a.get("model").is_some() {
        return Err("--model and --ckpt-dir are mutually exclusive".into());
    }
    let root = PathBuf::from(a.get("ckpt-dir").expect("caller checked --ckpt-dir"));
    let log = PathBuf::from(a.get("log").ok_or(
        "serve --ckpt-dir requires --log PATH (the interaction log the versions were \
         trained from)",
    )?);
    let poll = reload_poll(a)?;
    let lv = ssdrec_stream::load_current(&log, &root)?
        .ok_or("no CURRENT version in --ckpt-dir (run `ssdrec retrain` first)")?;
    println!("loaded {} from {}", lv.meta, root.display());
    let cfg = EngineConfig {
        workers: a.get_parse("workers", 2)?,
        max_batch: a.get_parse("max-batch", 32)?,
        linger: Duration::from_millis(a.get_parse("linger-ms", 2)?),
        cache_capacity: a.get_parse("cache", 1024)?,
        max_len: lv.meta.spec.arch.max_len,
        max_queue: a.get_parse("max-queue", 1024)?,
        retrieval: configure_retrieval(a)?,
    };
    if cfg.retrieval.mode == RetrievalMode::Ann {
        println!(
            "building ann index (m={}, ef_search={})...",
            cfg.retrieval.ann_m, cfg.retrieval.ef_search
        );
    }
    let engine = Engine::try_new(lv.model.into(), cfg, Arc::new(ServerStats::new()))?;
    let loader: Box<ModelLoader> = Box::new(move |current| {
        Ok(
            ssdrec_stream::load_newer(&log, &root, current)?.map(|newer| LoadedModel {
                model: newer.model.into(),
                version: newer.version,
            }),
        )
    });
    let slot = EngineSlot::reloadable(engine, lv.version, loader);
    let addr = a.get_or("addr", "127.0.0.1:7878");
    let serve_cfg = ServeConfig {
        read_timeout: Duration::from_millis(a.get_parse("read-timeout-ms", 30_000)?),
        write_timeout: Duration::from_millis(a.get_parse("write-timeout-ms", 30_000)?),
        reload_poll: poll,
    };
    let handle = ssdrec_serve::serve_slot(slot, addr, serve_cfg).map_err(|e| e.to_string())?;
    println!("serving on http://{}", handle.addr());
    println!("  GET  /health");
    println!("  GET  /recommend?user=U&seq=1,2,3&k=10   (or POST a JSON body)");
    println!("  GET  /metrics");
    println!("  POST /reload");
    println!("  POST /shutdown");
    handle.join();
    println!("server stopped");
    Ok(())
}

fn cmd_serve(a: &Args) -> Result<(), String> {
    if a.get("ckpt-dir").is_some() {
        return cmd_serve_stream(a);
    }
    if a.has_flag("watch-current") || a.get("reload-poll-ms").is_some() {
        return Err("--watch-current/--reload-poll-ms require serving from --ckpt-dir".into());
    }
    let prep = prepare_data(a)?;
    let ckpt = a
        .get("model")
        .ok_or("serve requires --model CKPT (train one with `ssdrec train --out ...`)")?;
    let model: InferenceModel = if a.has_flag("baseline") {
        let mut m = SeqRec::new(
            backbone(a)?,
            prep.dataset.num_items,
            a.get_parse("dim", 16)?,
            prep.max_len,
            a.get_parse("seed", 7)?,
        );
        load_params(&mut m.store, ckpt).map_err(|e| e.to_string())?;
        m.into()
    } else {
        let mut m = build_ssdrec(a, &prep)?;
        load_params(&mut m.store, ckpt).map_err(|e| e.to_string())?;
        m.into()
    };
    println!("loaded checkpoint {ckpt} ({})", model.model_name());

    let cfg = EngineConfig {
        workers: a.get_parse("workers", 2)?,
        max_batch: a.get_parse("max-batch", 32)?,
        linger: std::time::Duration::from_millis(a.get_parse("linger-ms", 2)?),
        cache_capacity: a.get_parse("cache", 1024)?,
        max_len: prep.max_len,
        max_queue: a.get_parse("max-queue", 1024)?,
        retrieval: configure_retrieval(a)?,
    };
    if cfg.retrieval.mode == RetrievalMode::Ann {
        println!(
            "building ann index (m={}, ef_search={})...",
            cfg.retrieval.ann_m, cfg.retrieval.ef_search
        );
    }
    let engine = Engine::try_new(model, cfg, Arc::new(ServerStats::new()))?;
    let addr = a.get_or("addr", "127.0.0.1:7878");
    let serve_cfg = ServeConfig {
        read_timeout: std::time::Duration::from_millis(a.get_parse("read-timeout-ms", 30_000)?),
        write_timeout: std::time::Duration::from_millis(a.get_parse("write-timeout-ms", 30_000)?),
        reload_poll: None,
    };
    let handle = ssdrec_serve::serve_with(engine, addr, serve_cfg).map_err(|e| e.to_string())?;
    println!("serving on http://{}", handle.addr());
    println!("  GET  /health");
    println!("  GET  /recommend?user=U&seq=1,2,3&k=10   (or POST a JSON body)");
    println!("  GET  /metrics");
    println!("  POST /shutdown");
    handle.join();
    println!("server stopped");
    Ok(())
}

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = configure_threads(&args) {
        eprintln!("error: {e}\n{}", usage());
        return ExitCode::FAILURE;
    }
    if let Err(e) = configure_backend(&args) {
        eprintln!("error: {e}\n{}", usage());
        return ExitCode::FAILURE;
    }
    // Chaos testing: SSDREC_FAULTS=site:kind:nth[,...] arms deterministic
    // fault injection across every subsystem. Unset means zero overhead.
    match ssdrec_faults::arm_from_env() {
        Ok(0) => {}
        Ok(n) => eprintln!("fault injection armed: {n} spec(s) from SSDREC_FAULTS"),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let result = match args.command.as_deref() {
        Some("stats") => cmd_stats(&args),
        Some("train") => cmd_train(&args),
        Some("recommend") => cmd_recommend(&args),
        Some("denoise") => cmd_denoise(&args),
        Some("serve") => cmd_serve(&args),
        Some("ingest") => cmd_ingest(&args),
        Some("retrain") => cmd_retrain(&args),
        Some("gen-data") => cmd_gen_data(&args),
        _ => {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod cli_tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string)).unwrap()
    }

    #[test]
    fn threads_flag_configures_pool_and_rejects_zero() {
        // Negative path: an explicit zero is refused with a clear message.
        let err = configure_threads(&parse("train --threads 0")).unwrap_err();
        assert!(err.contains("--threads"), "got: {err}");
        // Unparseable values are refused too.
        assert!(configure_threads(&parse("train --threads lots")).is_err());
        // Positive path: the pool is resized to the requested count.
        assert_eq!(configure_threads(&parse("train --threads 3")), Ok(3));
        assert_eq!(ssdrec_runtime::threads(), 3);
        // No flag: keeps whatever the pool already runs.
        assert_eq!(configure_threads(&parse("train")), Ok(3));
        ssdrec_runtime::set_threads(1);
    }

    #[test]
    fn backend_flag_selects_kernel_backend_and_rejects_unknown() {
        // The backend is process-global; serialize against any concurrently
        // running switched region and restore on exit.
        ssdrec_tensor::with_backend(ssdrec_tensor::backend_kind(), || {
            let err = configure_backend(&parse("train --backend turbo")).unwrap_err();
            assert!(err.contains("--backend"), "got: {err}");
            assert_eq!(
                configure_backend(&parse("train --backend reference")),
                Ok("reference")
            );
            assert_eq!(
                ssdrec_tensor::backend_kind(),
                ssdrec_tensor::BackendKind::Reference
            );
            assert_eq!(
                configure_backend(&parse("train --backend blocked")),
                Ok("blocked")
            );
            // No flag: keeps whatever is already selected.
            assert_eq!(configure_backend(&parse("train")), Ok("blocked"));
        });
    }

    #[test]
    fn retrieval_flag_parses_modes_and_rejects_unknown() {
        // Default: exact, with the knob defaults passed through.
        let cfg = configure_retrieval(&parse("serve")).unwrap();
        assert_eq!(cfg.mode, RetrievalMode::Exact);
        assert_eq!((cfg.ann_m, cfg.ef_search), (16, 128));
        // Both modes parse.
        let cfg = configure_retrieval(&parse("serve --retrieval ann")).unwrap();
        assert_eq!(cfg.mode, RetrievalMode::Ann);
        let cfg = configure_retrieval(&parse("serve --retrieval exact")).unwrap();
        assert_eq!(cfg.mode, RetrievalMode::Exact);
        // Unknown modes are refused with a clear message.
        let err = configure_retrieval(&parse("serve --retrieval fuzzy")).unwrap_err();
        assert!(err.contains("fuzzy"), "got: {err}");
    }

    #[test]
    fn retrieval_knobs_reject_zero_and_absurd_values() {
        // ef-search: zero, absurd, and unparseable all fail fast.
        let err = configure_retrieval(&parse("serve --ef-search 0")).unwrap_err();
        assert!(err.contains("--ef-search"), "got: {err}");
        let err = configure_retrieval(&parse("serve --ef-search 99999999")).unwrap_err();
        assert!(err.contains("--ef-search"), "got: {err}");
        assert!(configure_retrieval(&parse("serve --ef-search many")).is_err());
        // ann-m: a degree of 0 or 1 cannot form a navigable graph; huge
        // degrees are a typo, not a config.
        let err = configure_retrieval(&parse("serve --ann-m 1")).unwrap_err();
        assert!(err.contains("--ann-m"), "got: {err}");
        assert!(configure_retrieval(&parse("serve --ann-m 0")).is_err());
        assert!(configure_retrieval(&parse("serve --ann-m 4096")).is_err());
        // In-range values pass through.
        let cfg =
            configure_retrieval(&parse("serve --retrieval ann --ef-search 64 --ann-m 8")).unwrap();
        assert_eq!((cfg.ann_m, cfg.ef_search), (8, 64));
    }

    #[test]
    fn events_list_parses_and_rejects_malformed_pairs() {
        assert_eq!(
            parse_events("0:1,2:3, 4 : 5 ,").unwrap(),
            vec![(0, 1), (2, 3), (4, 5)]
        );
        assert_eq!(parse_events("").unwrap(), vec![]);
        // No colon, bad user, bad item — each names the offending pair.
        for bad in ["7", "x:1", "1:y", "1:2:3"] {
            let err = parse_events(bad).unwrap_err();
            assert!(err.contains("--events"), "for {bad:?} got: {err}");
        }
    }

    #[test]
    fn ingest_catalog_flags_must_come_together_and_be_positive() {
        assert_eq!(explicit_catalog(&parse("ingest")).unwrap(), None);
        let h = explicit_catalog(&parse("ingest --users 10 --items 20"))
            .unwrap()
            .unwrap();
        assert_eq!((h.num_users, h.num_items), (10, 20));
        let err = explicit_catalog(&parse("ingest --users 10")).unwrap_err();
        assert!(err.contains("together"), "got: {err}");
        let err = explicit_catalog(&parse("ingest --users 0 --items 5")).unwrap_err();
        assert!(err.contains("≥ 1"), "got: {err}");
        assert!(explicit_catalog(&parse("ingest --users x --items 5")).is_err());
    }

    #[test]
    fn retrain_spec_rejects_zero_epochs_and_defaults_match_train() {
        let err = retrain_spec(&parse("retrain --epochs 0")).unwrap_err();
        assert!(err.contains("--epochs"), "got: {err}");
        assert!(retrain_spec(&parse("retrain --epochs some")).is_err());
        let spec = retrain_spec(&parse("retrain")).unwrap();
        assert_eq!(spec.epochs, 1);
        assert_eq!(spec.arch.dim, 16);
        assert_eq!(spec.arch.max_len, 50);
        assert_eq!(spec.batch_size, 64);
        // Float knobs inherit the trainer defaults bit-for-bit.
        assert_eq!(spec.lr.to_bits(), TrainConfig::default().lr.to_bits());
        let spec = retrain_spec(&parse("retrain --epochs 3 --dim 8 --backbone narm")).unwrap();
        assert_eq!((spec.epochs, spec.arch.dim), (3, 8));
        assert_eq!(spec.arch.backbone, BackboneKind::Narm);
    }

    #[test]
    fn reload_flags_reject_contradictions() {
        // No watch: no polling, and a poll interval alone is refused.
        assert_eq!(reload_poll(&parse("serve")).unwrap(), None);
        let err = reload_poll(&parse("serve --reload-poll-ms 100")).unwrap_err();
        assert!(err.contains("--watch-current"), "got: {err}");
        // Watching polls at the default, or the explicit interval.
        assert_eq!(
            reload_poll(&parse("serve --watch-current")).unwrap(),
            Some(Duration::from_millis(500))
        );
        assert_eq!(
            reload_poll(&parse("serve --watch-current --reload-poll-ms 50")).unwrap(),
            Some(Duration::from_millis(50))
        );
        // A zero interval is a busy-loop request, not a config.
        let err = reload_poll(&parse("serve --watch-current --reload-poll-ms 0")).unwrap_err();
        assert!(err.contains("≥ 1"), "got: {err}");
        assert!(reload_poll(&parse("serve --watch-current --reload-poll-ms fast")).is_err());
    }
}
