//! Minimal flag parsing for the CLI (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` options.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: Option<String>,
    opts: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from an iterator of argument strings (excluding argv[0]).
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = argv.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err("bare \"--\" is not a valid option".into());
                }
                if let Some((k, v)) = key.split_once('=') {
                    // Explicit `--key=value`: the only way to pass a value
                    // that itself starts with `--`.
                    if k.is_empty() {
                        return Err(format!("missing option name in {a:?}"));
                    }
                    out.opts.insert(k.to_string(), v.to_string());
                    continue;
                }
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        out.opts.insert(key.to_string(), v);
                    }
                    // The next token is another option (or nothing): treat
                    // this one as a boolean flag. A value starting with
                    // `--` must be spelled `--key=value`.
                    _ => out.flags.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                return Err(format!("unexpected positional argument {a:?}"));
            }
        }
        Ok(out)
    }

    /// Value of `--key`, if provided.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// Value of `--key` or a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Parsed numeric value of `--key` or a default.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Whether a boolean `--flag` was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string)).unwrap()
    }

    #[test]
    fn parses_command_opts_and_flags() {
        let a = parse("train --profile beauty --epochs 12 --verbose");
        assert_eq!(a.command.as_deref(), Some("train"));
        assert_eq!(a.get("profile"), Some("beauty"));
        assert_eq!(a.get_parse("epochs", 0usize).unwrap(), 12);
        assert!(a.has_flag("verbose"));
        assert!(!a.has_flag("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("stats");
        assert_eq!(a.get_or("profile", "beauty"), "beauty");
        assert_eq!(a.get_parse("dim", 16usize).unwrap(), 16);
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = parse("train --epochs abc");
        assert!(a.get_parse("epochs", 0usize).is_err());
    }

    #[test]
    fn rejects_extra_positionals() {
        assert!(Args::parse(["a".to_string(), "b".to_string()]).is_err());
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse("train --quick --full");
        assert!(a.has_flag("quick") && a.has_flag("full"));
    }

    #[test]
    fn equals_syntax_carries_values() {
        let a = parse("train --scale=0.25 --out=ckpt.ssdt");
        assert_eq!(a.get("scale"), Some("0.25"));
        assert_eq!(a.get("out"), Some("ckpt.ssdt"));
    }

    #[test]
    fn equals_syntax_allows_dashdash_values() {
        // Space-separated, a value starting with `--` would be mistaken
        // for the next option; `=` passes it through unambiguously.
        let a = parse("train --out=--strange-name --verbose");
        assert_eq!(a.get("out"), Some("--strange-name"));
        assert!(a.has_flag("verbose"));
        let b = parse("train --out --strange-name");
        assert_eq!(b.get("out"), None, "space form cannot carry -- values");
        assert!(b.has_flag("out") && b.has_flag("strange-name"));
    }

    #[test]
    fn empty_value_via_equals() {
        let a = parse("train --note=");
        assert_eq!(a.get("note"), Some(""));
    }

    #[test]
    fn bare_double_dash_is_rejected() {
        assert!(Args::parse(["train".to_string(), "--".to_string()]).is_err());
        assert!(Args::parse(["train".to_string(), "--=x".to_string()]).is_err());
    }
}
