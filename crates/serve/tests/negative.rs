//! Negative-path coverage for the HTTP front-end and the typed client:
//! malformed bodies, oversized requests, truncated headers, stalled
//! connections, and partial responses. The server must answer (or drop)
//! every one of these cleanly and keep serving afterwards.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use ssdrec_models::{BackboneKind, SeqRec};
use ssdrec_serve::{
    client, serve_with, ClientError, Engine, EngineConfig, ServeConfig, ServerStats,
};

const NUM_ITEMS: usize = 20;

fn start_server(read_timeout: Duration) -> ssdrec_serve::ServerHandle {
    let model = SeqRec::new(BackboneKind::SasRec, NUM_ITEMS, 8, 10, 7);
    let engine = Engine::new(
        model.into(),
        EngineConfig {
            workers: 1,
            max_len: 10,
            ..EngineConfig::default()
        },
        Arc::new(ServerStats::new()),
    );
    serve_with(
        engine,
        "127.0.0.1:0",
        ServeConfig {
            read_timeout,
            write_timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

/// Write raw bytes on a fresh connection and return whatever the server
/// sends back (empty if it just closes).
fn raw_roundtrip(addr: SocketAddr, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(payload).expect("write");
    // Half-close the write side so the server sees EOF mid-request.
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn malformed_json_body_is_400_and_server_survives() {
    let handle = start_server(Duration::from_secs(5));
    let addr = handle.addr();
    for bad in [
        "{not json",
        "[]",
        "{\"user\":\"x\",\"seq\":[1]}",
        "{\"seq\":[1]}",
    ] {
        let (status, body) = client::post(addr, "/recommend", bad).expect("response");
        assert_eq!(status, 400, "body {bad:?} gave {status}: {body}");
        assert!(body.contains("error"), "{body}");
    }
    // Server still answers a good request afterwards.
    let (status, _) =
        client::post(addr, "/recommend", "{\"user\":0,\"seq\":[1,2],\"k\":3}").expect("response");
    assert_eq!(status, 200);
}

#[test]
fn oversized_declared_body_is_rejected() {
    let handle = start_server(Duration::from_secs(5));
    let addr = handle.addr();
    // Declares 2 MiB (over the 1 MiB bound) but never sends it; the server
    // must reject from the header alone rather than try to allocate/read.
    let payload = format!(
        "POST /recommend HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        2 * 1024 * 1024
    );
    let response = raw_roundtrip(addr, payload.as_bytes());
    assert!(
        response.starts_with("HTTP/1.1 400"),
        "expected 400, got {response:?}"
    );
    assert!(response.contains("body too large"), "{response:?}");
}

#[test]
fn truncated_headers_get_a_clean_400() {
    let handle = start_server(Duration::from_secs(5));
    let addr = handle.addr();
    let response = raw_roundtrip(addr, b"GET /health HTTP/1.1\r\nHost: tru");
    assert!(
        response.starts_with("HTTP/1.1 400"),
        "expected 400, got {response:?}"
    );
    assert!(response.contains("mid-headers"), "{response:?}");
    // And the listener is still alive.
    let (status, _) = client::get(addr, "/health").expect("health");
    assert_eq!(status, 200);
}

#[test]
fn stalled_connection_times_out_without_pinning_the_server() {
    let handle = start_server(Duration::from_millis(200));
    let addr = handle.addr();
    // Connect and send nothing: the per-connection read timeout must fire.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    let response = String::from_utf8_lossy(&out);
    assert!(
        response.is_empty() || response.starts_with("HTTP/1.1 500"),
        "unexpected response {response:?}"
    );
    assert!(
        handle.engine().stats().io_faults.load(Ordering::Relaxed) >= 1,
        "timeout not counted as an io fault"
    );
    // The server thread is free again.
    let (status, _) = client::get(addr, "/health").expect("health");
    assert_eq!(status, 200);
}

#[test]
fn client_types_partial_responses_from_a_dying_server() {
    // A fake "server" that sends half a response and slams the connection.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        for partial in [
            &b"HTTP/1.1 200 OK\r\nContent-"[..],
            &b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n{\"trunc"[..],
        ] {
            let (mut conn, _) = listener.accept().expect("accept");
            // Swallow the whole request before hanging up: closing while the
            // client is still mid-write would RST the socket and surface as
            // an Io error instead of the truncation we're testing.
            let mut req = Vec::new();
            let mut buf = [0u8; 1024];
            while !req.windows(4).any(|w| w == b"\r\n\r\n") {
                match conn.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => req.extend_from_slice(&buf[..n]),
                }
            }
            conn.write_all(partial).expect("partial write");
            drop(conn);
        }
    });

    match client::get(addr, "/health") {
        Err(ClientError::Truncated { what, .. }) => assert_eq!(what, "header terminator"),
        other => panic!("expected truncated headers, got {other:?}"),
    }
    match client::get(addr, "/health") {
        Err(ClientError::Truncated { what, .. }) => assert_eq!(what, "response body"),
        other => panic!("expected truncated body, got {other:?}"),
    }
    fake.join().unwrap();
}
