//! Hot-swap behaviour of the [`EngineSlot`]: version bookkeeping, session
//! cache purging (a stale cached recommendation can never outlive a swap),
//! failure isolation, and zero dropped requests under concurrent load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use ssdrec_models::{BackboneKind, SeqRec};
use ssdrec_serve::{
    Engine, EngineConfig, EngineSlot, InferenceModel, LoadedModel, Recommendation, ReloadOutcome,
    ServerStats,
};

const NUM_ITEMS: usize = 30;

fn model(seed: u64) -> InferenceModel {
    SeqRec::new(BackboneKind::SasRec, NUM_ITEMS, 8, 10, seed).into()
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        workers: 2,
        max_batch: 8,
        linger: Duration::from_millis(0),
        cache_capacity: 64,
        max_len: 10,
        ..EngineConfig::default()
    }
}

fn engine(seed: u64, stats: Arc<ServerStats>) -> Engine {
    Engine::new(model(seed), engine_cfg(), stats)
}

fn bits(rec: &Recommendation) -> Vec<(usize, u32)> {
    rec.items.iter().map(|&(i, s)| (i, s.to_bits())).collect()
}

/// What a standalone engine built from `seed` answers — the oracle a
/// post-swap response must match bit-for-bit.
fn reference_bits(seed: u64, user: usize, seq: &[usize], k: usize) -> Vec<(usize, u32)> {
    let e = engine(seed, Arc::new(ServerStats::new()));
    let rec = e.recommend(user, seq, k).expect("reference recommend");
    bits(&rec)
}

/// A loader that serves `seed_for(version)` models up to `max_version`.
fn step_loader(max_version: u64) -> Box<ssdrec_serve::ModelLoader> {
    Box::new(move |current| {
        if current >= max_version {
            return Ok(None);
        }
        Ok(Some(LoadedModel {
            model: model(current + 1),
            version: current + 1,
        }))
    })
}

#[test]
fn reload_swaps_model_and_purges_session_cache() {
    let stats = Arc::new(ServerStats::new());
    let slot = EngineSlot::reloadable(engine(1, Arc::clone(&stats)), 1, step_loader(2));
    let seq = vec![1, 2, 3];

    // Prime the session cache on v1 and prove the second answer is a hit.
    let first = slot.engine().recommend(0, &seq, 5).expect("v1 recommend");
    let hit = slot.engine().recommend(0, &seq, 5).expect("v1 cache hit");
    assert!(
        Arc::ptr_eq(&first, &hit),
        "second request must be a cache hit"
    );
    assert_eq!(stats.cache_hits.load(Ordering::Relaxed), 1);
    assert_eq!(bits(&first), reference_bits(1, 0, &seq, 5));

    // Swap to v2.
    assert_eq!(
        slot.reload().expect("reload"),
        ReloadOutcome::Swapped { version: 2 }
    );
    assert_eq!(stats.model_version(), 2);
    assert_eq!(stats.swap_total.load(Ordering::Relaxed), 1);
    assert_eq!(stats.sessions_invalidated_total.load(Ordering::Relaxed), 1);

    // Regression (the stale-cache hazard): the same request must now be
    // recomputed under the new model — never served from the old cache.
    let hits_before = stats.cache_hits.load(Ordering::Relaxed);
    let after = slot.engine().recommend(0, &seq, 5).expect("v2 recommend");
    assert_eq!(
        stats.cache_hits.load(Ordering::Relaxed),
        hits_before,
        "must not hit stale cache"
    );
    assert_eq!(
        bits(&after),
        reference_bits(2, 0, &seq, 5),
        "answer must be the new model's"
    );
    assert_ne!(
        bits(&after),
        bits(&first),
        "models with different params must differ"
    );

    // Idempotence / ABA: nothing newer → unchanged, version flips once.
    assert_eq!(
        slot.reload().expect("reload again"),
        ReloadOutcome::Unchanged { version: 2 }
    );
    assert_eq!(stats.swap_total.load(Ordering::Relaxed), 1);
}

#[test]
fn fixed_slot_refuses_reload() {
    let slot = EngineSlot::fixed(engine(1, Arc::new(ServerStats::new())));
    assert!(!slot.is_reloadable());
    let err = slot.reload().expect_err("fixed slot cannot reload");
    assert!(err.contains("no reload source"), "got: {err}");
}

#[test]
fn failed_swap_keeps_old_model_serving() {
    let stats = Arc::new(ServerStats::new());
    let fail_loads = Arc::new(AtomicU64::new(1));
    let loader_fails = Arc::clone(&fail_loads);
    let loader: Box<ssdrec_serve::ModelLoader> = Box::new(move |current| {
        if loader_fails.swap(0, Ordering::SeqCst) == 1 {
            Err("disk on fire".to_string())
        } else if current >= 2 {
            Ok(None)
        } else {
            Ok(Some(LoadedModel {
                model: model(2),
                version: 2,
            }))
        }
    });
    let slot = EngineSlot::reloadable(engine(1, Arc::clone(&stats)), 1, loader);
    let seq = vec![4, 5];

    let err = slot.reload().expect_err("first reload fails");
    assert!(err.contains("disk on fire"), "got: {err}");
    assert_eq!(stats.swap_failed_total.load(Ordering::Relaxed), 1);
    assert_eq!(
        stats.model_version(),
        1,
        "failed swap must not bump the version"
    );
    let rec = slot.engine().recommend(0, &seq, 5).expect("still serving");
    assert_eq!(
        bits(&rec),
        reference_bits(1, 0, &seq, 5),
        "old model still answers"
    );

    // The retry succeeds and lands on v2.
    assert_eq!(
        slot.reload().expect("retry"),
        ReloadOutcome::Swapped { version: 2 }
    );
    let rec = slot.engine().recommend(0, &seq, 5).expect("v2 serving");
    assert_eq!(bits(&rec), reference_bits(2, 0, &seq, 5));
}

#[test]
fn concurrent_load_sees_zero_drops_and_single_version_flip() {
    let stats = Arc::new(ServerStats::new());
    let slot = Arc::new(EngineSlot::reloadable(
        engine(1, Arc::clone(&stats)),
        1,
        step_loader(2),
    ));

    const CLIENTS: usize = 6;
    const ROUNDS: usize = 60;
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let slot = Arc::clone(&slot);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut answers = Vec::with_capacity(ROUNDS);
                for r in 0..ROUNDS {
                    // Distinct seqs so nothing is answered from the cache.
                    let seq = vec![
                        c % NUM_ITEMS + 1,
                        (c + r) % NUM_ITEMS + 1,
                        (c + 2 * r + 7) % NUM_ITEMS + 1,
                    ];
                    let rec = slot
                        .engine()
                        .recommend(c, &seq, 5)
                        .expect("no request may fail across the swap");
                    answers.push((seq, bits(&rec)));
                }
                answers
            })
        })
        .collect();

    barrier.wait();
    // Let the clients get going, then swap mid-stream. Extra reloads while
    // loaded must not flip the version again.
    std::thread::sleep(Duration::from_millis(5));
    assert_eq!(
        slot.reload().expect("swap"),
        ReloadOutcome::Swapped { version: 2 }
    );
    assert_eq!(
        slot.reload().expect("noop"),
        ReloadOutcome::Unchanged { version: 2 }
    );

    // Long-lived oracles for both versions (scores depend only on the
    // sequence, so one engine per seed answers for every client).
    let v1 = engine(1, Arc::new(ServerStats::new()));
    let v2 = engine(2, Arc::new(ServerStats::new()));
    let mut old_answers = 0usize;
    let mut new_answers = 0usize;
    for t in clients {
        for (seq, got) in t.join().expect("client thread") {
            // Every answer is entirely v1's or entirely v2's — a torn blend
            // would match neither oracle.
            let want_v1 = bits(&v1.recommend(0, &seq, 5).expect("v1 oracle"));
            let want_v2 = bits(&v2.recommend(0, &seq, 5).expect("v2 oracle"));
            if got == want_v2 {
                new_answers += 1;
            } else if got == want_v1 {
                old_answers += 1;
            } else {
                panic!("answer for {seq:?} matches neither the old nor the new model");
            }
        }
    }
    assert_eq!(old_answers + new_answers, CLIENTS * ROUNDS);
    assert!(new_answers > 0, "the swap must have landed during the run");
    assert_eq!(stats.model_version(), 2);
    assert_eq!(
        stats.swap_total.load(Ordering::Relaxed),
        1,
        "version flips exactly once"
    );
    assert_eq!(stats.swap_failed_total.load(Ordering::Relaxed), 0);
    assert_eq!(
        stats.shed_total.load(Ordering::Relaxed),
        0,
        "no deliberate shedding configured"
    );
}
