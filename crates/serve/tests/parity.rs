//! End-to-end serving parity: train a tiny SSDRec model, checkpoint it,
//! reload the checkpoint into the serving subsystem, and verify that the
//! top-K list served over HTTP is **bit-identical** to offline scoring
//! with the in-memory model.

use std::sync::Arc;

use ssdrec_core::{SsdRec, SsdRecConfig};
use ssdrec_data::{prepare, SyntheticConfig};
use ssdrec_graph::{build_graph, GraphConfig, MultiRelationGraph};
use ssdrec_models::{train, BackboneKind, RecModel, TrainConfig};
use ssdrec_serve::{client, serve, Engine, EngineConfig, ServerStats};
use ssdrec_tensor::{load_params, save_params};

const MAX_LEN: usize = 12;

fn tiny_config() -> SsdRecConfig {
    SsdRecConfig {
        dim: 8,
        max_len: MAX_LEN,
        backbone: BackboneKind::SasRec,
        seed: 11,
        ..SsdRecConfig::default()
    }
}

fn tiny_world() -> (ssdrec_data::Split, MultiRelationGraph) {
    let raw = SyntheticConfig::beauty()
        .scaled(0.03)
        .with_seed(5)
        .generate();
    let (dataset, split) = prepare(&raw, MAX_LEN, 3);
    assert!(!split.test.is_empty(), "tiny dataset must yield sequences");
    let graph = build_graph(&dataset, &GraphConfig::default());
    (split, graph)
}

/// Pull the raw `"scores"` array out of the response body and parse each
/// token directly as `f32`, so the comparison exercises exactly the
/// shortest-round-trip guarantee the encoder relies on (no `f64` detour).
fn scores_from_body(body: &str) -> Vec<f32> {
    let arr = body
        .split("\"scores\":[")
        .nth(1)
        .and_then(|rest| rest.split(']').next())
        .unwrap_or_else(|| panic!("no scores array in {body}"));
    arr.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| t.parse().unwrap_or_else(|_| panic!("bad score {t:?}")))
        .collect()
}

fn items_from_body(body: &str) -> Vec<usize> {
    let arr = body
        .split("\"items\":[")
        .nth(1)
        .and_then(|rest| rest.split(']').next())
        .unwrap_or_else(|| panic!("no items array in {body}"));
    arr.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| t.parse().unwrap_or_else(|_| panic!("bad item {t:?}")))
        .collect()
}

#[test]
fn served_topk_is_bit_identical_to_offline_scoring() {
    let (split, graph) = tiny_world();

    // Train briefly and checkpoint.
    let mut trained = SsdRec::new(&graph, tiny_config());
    train(
        &mut trained,
        &split,
        &TrainConfig {
            epochs: 1,
            batch_size: 32,
            seed: 11,
            ..TrainConfig::default()
        },
    );
    let ckpt = std::env::temp_dir().join(format!("ssdrec-parity-{}.ssdt", std::process::id()));
    save_params(&trained.store, &ckpt).expect("write checkpoint");

    // Reload into a *fresh* model, exactly as the CLI serve path does.
    let mut served_model = SsdRec::new(&graph, tiny_config());
    load_params(&mut served_model.store, &ckpt).expect("read checkpoint");
    std::fs::remove_file(&ckpt).ok();

    let engine = Engine::new(
        served_model.into(),
        EngineConfig {
            workers: 2,
            max_len: MAX_LEN,
            ..EngineConfig::default()
        },
        Arc::new(ServerStats::new()),
    );
    let mut handle = serve(engine, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = handle.addr();

    let k = 10;
    let mut checked = 0;
    for ex in split.test.iter().take(5) {
        let offline = trained.recommend(ex.user, &ex.seq, k);
        let body = format!(
            "{{\"user\":{},\"seq\":[{}],\"k\":{k}}}",
            ex.user,
            ex.seq
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let (status, resp) = client::post(addr, "/recommend", &body).expect("http");
        assert_eq!(status, 200, "response: {resp}");

        let items = items_from_body(&resp);
        let scores = scores_from_body(&resp);
        assert_eq!(items.len(), offline.len(), "user {}", ex.user);
        for (rank, ((&item, &score), &(off_item, off_score))) in
            items.iter().zip(&scores).zip(&offline).enumerate()
        {
            assert_eq!(item, off_item, "user {} rank {rank} item", ex.user);
            assert_eq!(
                score.to_bits(),
                off_score.to_bits(),
                "user {} rank {rank}: served {score} vs offline {off_score}",
                ex.user
            );
        }
        checked += 1;
    }
    assert!(checked >= 1);

    // The cache returns the same bits on a repeat request.
    let ex = &split.test[0];
    let body = format!(
        "{{\"user\":{},\"seq\":[{}]}}",
        ex.user,
        ex.seq
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let (_, first) = client::post(addr, "/recommend", &body).expect("http");
    let (_, second) = client::post(addr, "/recommend", &body).expect("http");
    assert_eq!(scores_from_body(&first), scores_from_body(&second));

    handle.shutdown();
}
