//! Concurrent-client behaviour: several simultaneous HTTP connections must
//! all be answered correctly, the micro-batching queue must coalesce them
//! into shared forward passes, and `/metrics` must report non-zero latency
//! percentiles afterwards.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use ssdrec_models::{BackboneKind, SeqRec};
use ssdrec_serve::{client, json, serve, Engine, EngineConfig, ServerStats};

const NUM_ITEMS: usize = 30;
const CLIENTS: usize = 6;

fn start_server(linger_ms: u64, workers: usize) -> ssdrec_serve::ServerHandle {
    let model = SeqRec::new(BackboneKind::SasRec, NUM_ITEMS, 8, 10, 99);
    let engine = Engine::new(
        model.into(),
        EngineConfig {
            workers,
            max_batch: 16,
            linger: Duration::from_millis(linger_ms),
            cache_capacity: 64,
            max_len: 10,
            ..EngineConfig::default()
        },
        Arc::new(ServerStats::new()),
    );
    serve(engine, "127.0.0.1:0").expect("bind ephemeral port")
}

#[test]
fn concurrent_clients_coalesce_and_report_metrics() {
    // One worker and a generous linger so the simultaneous requests land in
    // the same micro-batch.
    let mut handle = start_server(500, 1);
    let addr = handle.addr();

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Same length (3) for every client so they batch together;
                // distinct users + histories so the cache never hits.
                let body = format!(
                    "{{\"user\":{c},\"seq\":[{},{},{}],\"k\":5}}",
                    c % NUM_ITEMS + 1,
                    (c + 7) % NUM_ITEMS + 1,
                    (c + 13) % NUM_ITEMS + 1
                );
                client::post(addr, "/recommend", &body).expect("request")
            })
        })
        .collect();

    let mut batch_sizes = Vec::new();
    for t in threads {
        let (status, body) = t.join().expect("client thread");
        assert_eq!(status, 200, "body: {body}");
        let v = json::parse(&body).expect("valid JSON");
        let items = v.get("items").unwrap().as_arr().unwrap();
        assert_eq!(items.len(), 5);
        // Valid catalogue items, no pad.
        for it in items {
            let id = it.as_usize().unwrap();
            assert!((1..=NUM_ITEMS).contains(&id), "item {id}");
        }
        batch_sizes.push(v.get("batch_size").unwrap().as_usize().unwrap());
    }

    // Coalescing: with one worker and a 500 ms linger, the six
    // barrier-released requests cannot all have run alone.
    assert!(
        batch_sizes.iter().any(|&b| b >= 2),
        "no coalescing observed: {batch_sizes:?}"
    );

    // /metrics: every request counted, latency percentiles non-zero.
    let (status, body) = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    let m = json::parse(&body).expect("metrics JSON");
    assert_eq!(
        m.get("requests_total").unwrap().as_usize(),
        Some(CLIENTS),
        "{body}"
    );
    let lat = m.get("latency_ms").unwrap();
    for q in ["p50", "p95", "p99"] {
        let v = lat.get(q).unwrap().as_f64().unwrap();
        assert!(v > 0.0, "{q} = {v} in {body}");
    }
    let batching = m.get("batching").unwrap();
    assert!(batching.get("max_batch").unwrap().as_usize().unwrap() >= 2);
    assert_eq!(
        batching.get("batched_requests_total").unwrap().as_usize(),
        Some(CLIENTS)
    );

    handle.shutdown();
}

#[test]
fn error_paths_over_http() {
    let mut handle = start_server(1, 2);
    let addr = handle.addr();

    // Unknown endpoint.
    let (status, _) = client::get(addr, "/nope").expect("request");
    assert_eq!(status, 404);
    // Wrong method.
    let (status, _) = client::post(addr, "/metrics", "{}").expect("request");
    assert_eq!(status, 405);
    // Malformed JSON.
    let (status, body) = client::post(addr, "/recommend", "{not json").expect("request");
    assert_eq!(status, 400, "{body}");
    // Out-of-range item.
    let req = format!("{{\"user\":0,\"seq\":[{}],\"k\":3}}", NUM_ITEMS + 1);
    let (status, body) = client::post(addr, "/recommend", &req).expect("request");
    assert_eq!(status, 400);
    assert!(body.contains("out of range"), "{body}");
    // Health check still fine afterwards.
    let (status, body) = client::get(addr, "/health").expect("request");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""));

    handle.shutdown();
}

#[test]
fn query_string_requests_work() {
    let mut handle = start_server(1, 1);
    let addr = handle.addr();
    let (status, body) = client::get(addr, "/recommend?user=2&seq=1,2,3&k=4").expect("request");
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).expect("JSON");
    assert_eq!(v.get("items").unwrap().as_arr().unwrap().len(), 4);
    handle.shutdown();
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let handle = start_server(1, 1);
    let addr = handle.addr();
    let (status, body) = client::post(addr, "/shutdown", "").expect("request");
    assert_eq!(status, 200);
    assert!(body.contains("shutting down"));
    // join() returns because the accept loop has exited.
    handle.join();
    // The port no longer accepts connections.
    assert!(client::get(addr, "/health").is_err());
}
