//! Serving telemetry: lock-free QPS counters and a log-scale latency
//! histogram with percentile estimation — everything the `/metrics`
//! endpoint exposes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Geometric bucket-boundary ratio ≈ ×1.3 per bucket, from 1 µs up to
/// about a minute — resolution well under one histogram bucket of error at
/// every latency scale this server can plausibly produce.
fn boundaries() -> Vec<u64> {
    let mut edges = vec![1u64];
    while *edges.last().expect("non-empty") < 60_000_000 {
        let last = *edges.last().expect("non-empty");
        edges.push((last + (last * 3).div_ceil(10)).max(last + 1));
    }
    edges
}

/// A concurrent latency histogram over microsecond buckets.
pub struct LatencyHistogram {
    edges: Vec<u64>,
    counts: Vec<AtomicU64>,
    total_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let edges = boundaries();
        let counts = (0..edges.len() + 1).map(|_| AtomicU64::new(0)).collect();
        LatencyHistogram {
            edges,
            counts,
            total_us: AtomicU64::new(0),
        }
    }

    /// Record one observation in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = self.edges.partition_point(|&e| e < us.max(1));
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.total_us.load(Ordering::Relaxed) as f64 / n as f64 / 1000.0
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in milliseconds, estimated as the
    /// upper edge of the bucket holding the quantile observation. Returns
    /// 0 when the histogram is empty; any recorded observation yields a
    /// strictly positive estimate (the smallest bucket edge is 1 µs).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile_raw(q) as f64 / 1000.0
    }

    /// The `q`-quantile in the raw recorded unit (bucket upper edge). The
    /// histogram is unit-agnostic — the retrieval section records candidate
    /// *counts* through the same geometric buckets.
    pub fn quantile_raw(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return *self
                    .edges
                    .get(i)
                    .unwrap_or(self.edges.last().expect("non-empty"));
            }
        }
        unreachable!("quantile target within total count")
    }
}

/// Active retrieval configuration, published once by the engine at startup
/// and rendered as the `/metrics` `retrieval` section.
#[derive(Clone, Debug)]
pub struct RetrievalInfo {
    /// `"exact"` or `"ann"`.
    pub mode: String,
    /// HNSW max degree `M` (0 in exact mode).
    pub m: u64,
    /// Candidate beam width (0 in exact mode).
    pub ef_search: u64,
    /// Index build wall-clock in µs (0 in exact mode).
    pub build_us: u64,
}

impl Default for RetrievalInfo {
    fn default() -> Self {
        RetrievalInfo {
            mode: "exact".into(),
            m: 0,
            ef_search: 0,
            build_us: 0,
        }
    }
}

/// All counters the serving subsystem maintains.
pub struct ServerStats {
    started: Instant,
    /// End-to-end `/recommend` latency (includes queueing + batching).
    pub latency: LatencyHistogram,
    /// Total recommendation requests answered (hits + misses).
    pub requests_total: AtomicU64,
    /// Requests answered from the per-user session cache.
    pub cache_hits: AtomicU64,
    /// Requests that went through the inference engine.
    pub cache_misses: AtomicU64,
    /// Batched forward passes executed.
    pub batches_total: AtomicU64,
    /// Requests served through those batches (≥ batches_total when
    /// micro-batching coalesces concurrent requests).
    pub batched_requests_total: AtomicU64,
    /// Largest single forward-pass batch observed.
    pub max_batch: AtomicU64,
    /// Malformed or rejected requests.
    pub errors_total: AtomicU64,
    /// Worker threads that panicked and were respawned (the queue and the
    /// other requests survive; see the engine's respawn loop).
    pub worker_panics: AtomicU64,
    /// Requests shed with `503` because the worker queue was over
    /// `max_queue`.
    pub shed_total: AtomicU64,
    /// Connection-level I/O failures (read/write faults or timeouts) the
    /// server absorbed without dying.
    pub io_faults: AtomicU64,
    /// Candidate-set size per ANN-mode request (the histogram buckets are
    /// unit-agnostic; this one records item counts, not µs).
    pub candidates: LatencyHistogram,
    /// Version of the model currently serving (0 until a versioned
    /// checkpoint is loaded; bumped by every successful hot swap).
    pub model_version: AtomicU64,
    /// Successful hot swaps since start.
    pub swap_total: AtomicU64,
    /// Hot swaps that failed (load/build error or panic); the previous
    /// model kept serving.
    pub swap_failed_total: AtomicU64,
    /// Wall-clock µs of the most recent successful swap (load + build +
    /// commit).
    pub last_swap_us: AtomicU64,
    /// Session-cache entries invalidated by swaps (the whole cache is
    /// discarded with the old engine on every swap).
    pub sessions_invalidated_total: AtomicU64,
    /// Active retrieval mode + index parameters, set by the engine.
    retrieval: Mutex<RetrievalInfo>,
    /// Per-worker busy time in µs, one counter per registered worker
    /// thread. Registered once by the engine at startup.
    worker_busy_us: Mutex<Vec<Arc<AtomicU64>>>,
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStats {
    /// Fresh stats with the uptime clock starting now.
    pub fn new() -> Self {
        ServerStats {
            started: Instant::now(),
            latency: LatencyHistogram::new(),
            requests_total: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            batches_total: AtomicU64::new(0),
            batched_requests_total: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            io_faults: AtomicU64::new(0),
            candidates: LatencyHistogram::new(),
            model_version: AtomicU64::new(0),
            swap_total: AtomicU64::new(0),
            swap_failed_total: AtomicU64::new(0),
            last_swap_us: AtomicU64::new(0),
            sessions_invalidated_total: AtomicU64::new(0),
            retrieval: Mutex::new(RetrievalInfo::default()),
            worker_busy_us: Mutex::new(Vec::new()),
        }
    }

    /// Publish the active retrieval configuration (engine startup).
    pub fn set_retrieval(&self, info: RetrievalInfo) {
        *self.retrieval.lock().unwrap_or_else(|p| p.into_inner()) = info;
    }

    /// A copy of the active retrieval configuration.
    pub fn retrieval(&self) -> RetrievalInfo {
        self.retrieval
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Record the candidate-set size of one ANN-mode request row.
    pub fn record_candidates(&self, n: u64) {
        self.candidates.record_us(n);
    }

    /// Register one engine worker thread; the returned counter accumulates
    /// that worker's busy time in µs and feeds the `/metrics` `workers`
    /// section.
    pub fn register_worker(&self) -> Arc<AtomicU64> {
        let counter = Arc::new(AtomicU64::new(0));
        self.worker_busy_us
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Arc::clone(&counter));
        counter
    }

    /// Currently served model version.
    pub fn model_version(&self) -> u64 {
        self.model_version.load(Ordering::SeqCst)
    }

    /// Pin the initial model version (engine startup, before any swap).
    pub fn set_model_version(&self, v: u64) {
        self.model_version.store(v, Ordering::SeqCst);
    }

    /// Record one successful hot swap to `version`.
    pub fn note_swap(&self, version: u64, elapsed_us: u64, sessions_invalidated: u64) {
        self.model_version.store(version, Ordering::SeqCst);
        self.swap_total.fetch_add(1, Ordering::SeqCst);
        self.last_swap_us.store(elapsed_us, Ordering::Relaxed);
        self.sessions_invalidated_total
            .fetch_add(sessions_invalidated, Ordering::Relaxed);
    }

    /// Drop every registered worker counter. Called by a hot swap just
    /// before the replacement engine registers its own workers, so the
    /// `workers` section always describes the engine about to serve. (If
    /// the swap then fails, the old engine keeps serving with its busy
    /// counters no longer exported — a cosmetic gap, repaired by the next
    /// successful swap.)
    pub fn clear_workers(&self) {
        self.worker_busy_us
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }

    /// Record one completed request's end-to-end latency.
    pub fn record_request(&self, elapsed_us: u64) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        self.latency.record_us(elapsed_us);
    }

    /// Record one executed forward pass of `batch` coalesced requests.
    pub fn record_batch(&self, batch: u64) {
        self.batches_total.fetch_add(1, Ordering::Relaxed);
        self.batched_requests_total
            .fetch_add(batch, Ordering::Relaxed);
        self.max_batch.fetch_max(batch, Ordering::Relaxed);
    }

    /// Uptime in seconds.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Requests per second since start.
    pub fn qps(&self) -> f64 {
        let up = self.uptime_secs();
        if up <= 0.0 {
            return 0.0;
        }
        self.requests_total.load(Ordering::Relaxed) as f64 / up
    }

    /// The `/metrics` JSON document.
    pub fn to_json(&self) -> String {
        use crate::json::f64_to_json;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        // Per-worker busy fraction of server uptime, in registration order.
        let uptime_us = (self.uptime_secs() * 1e6).max(1.0);
        let busy: Vec<String> = self
            .worker_busy_us
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|c| {
                let frac = (c.load(Ordering::Relaxed) as f64 / uptime_us).clamp(0.0, 1.0);
                f64_to_json(frac)
            })
            .collect();
        let workers = format!(
            "{{\"count\":{},\"busy_fraction\":[{}]}}",
            busy.len(),
            busy.join(",")
        );
        // Tensor-pool telemetry aggregated over every thread that touched
        // the pool (workers included): recycled-buffer hit/miss counts and
        // bytes served from recycled storage.
        let pool = ssdrec_tensor::pool::global_stats();
        let ri = self.retrieval();
        let retrieval = format!(
            concat!(
                "{{\"mode\":\"{}\",\"m\":{},\"ef_search\":{},\"index_build_ms\":{},",
                "\"candidates\":{{\"count\":{},\"p50\":{},\"p99\":{}}}}}"
            ),
            ri.mode,
            ri.m,
            ri.ef_search,
            f64_to_json(ri.build_us as f64 / 1000.0),
            self.candidates.count(),
            self.candidates.quantile_raw(0.50),
            self.candidates.quantile_raw(0.99),
        );
        let model = format!(
            concat!(
                "{{\"model_version\":{},\"swap_total\":{},\"swap_failed_total\":{},",
                "\"last_swap_ms\":{},\"sessions_invalidated\":{}}}"
            ),
            get(&self.model_version),
            get(&self.swap_total),
            get(&self.swap_failed_total),
            f64_to_json(get(&self.last_swap_us) as f64 / 1000.0),
            get(&self.sessions_invalidated_total),
        );
        format!(
            concat!(
                "{{\"uptime_secs\":{},\"requests_total\":{},\"qps\":{},",
                "\"backend\":\"{}\",",
                "\"model\":{},",
                "\"retrieval\":{},",
                "\"latency_ms\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}},",
                "\"cache\":{{\"hits\":{},\"misses\":{}}},",
                "\"batching\":{{\"batches_total\":{},\"batched_requests_total\":{},\"max_batch\":{}}},",
                "\"workers\":{},",
                "\"pool\":{{\"pool_hits\":{},\"pool_misses\":{},\"bytes_recycled\":{}}},",
                "\"faults\":{{\"worker_panics\":{},\"shed_total\":{},\"io_faults\":{},",
                "\"injected_total\":{}}},",
                "\"errors_total\":{}}}"
            ),
            f64_to_json(self.uptime_secs()),
            get(&self.requests_total),
            f64_to_json(self.qps()),
            ssdrec_tensor::backend_kind().name(),
            model,
            retrieval,
            self.latency.count(),
            f64_to_json(self.latency.mean_ms()),
            f64_to_json(self.latency.quantile_ms(0.50)),
            f64_to_json(self.latency.quantile_ms(0.95)),
            f64_to_json(self.latency.quantile_ms(0.99)),
            get(&self.cache_hits),
            get(&self.cache_misses),
            get(&self.batches_total),
            get(&self.batched_requests_total),
            get(&self.max_batch),
            workers,
            pool.hits,
            pool.misses,
            pool.bytes_recycled,
            get(&self.worker_panics),
            get(&self.shed_total),
            get(&self.io_faults),
            ssdrec_faults::total_fired(),
            get(&self.errors_total),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ms(0.5), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn quantiles_are_ordered_and_positive() {
        let h = LatencyHistogram::new();
        for us in [5u64, 50, 500, 5_000, 50_000, 50, 60, 70] {
            h.record_us(us);
        }
        let (p50, p95, p99) = (h.quantile_ms(0.5), h.quantile_ms(0.95), h.quantile_ms(0.99));
        assert!(p50 > 0.0, "p50 {p50}");
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // p99 lands in the bucket containing 50ms (×1.3 resolution).
        assert!(p99 >= 50.0 && p99 <= 66.0, "p99 {p99}");
    }

    #[test]
    fn zero_latency_still_counts_as_nonzero_bucket() {
        let h = LatencyHistogram::new();
        h.record_us(0);
        assert!(h.quantile_ms(0.5) > 0.0);
    }

    #[test]
    fn retrieval_section_reports_mode_and_candidates() {
        let s = ServerStats::new();
        s.set_retrieval(RetrievalInfo {
            mode: "ann".into(),
            m: 16,
            ef_search: 128,
            build_us: 2_500,
        });
        s.record_candidates(100);
        s.record_candidates(120);
        let j = crate::json::parse(&s.to_json()).expect("valid JSON");
        let r = j.get("retrieval").expect("retrieval section");
        assert_eq!(r.get("mode").unwrap().as_str(), Some("ann"));
        assert_eq!(r.get("m").unwrap().as_usize(), Some(16));
        assert_eq!(r.get("ef_search").unwrap().as_usize(), Some(128));
        assert!(r.get("index_build_ms").unwrap().as_f64().unwrap() > 0.0);
        let c = r.get("candidates").unwrap();
        assert_eq!(c.get("count").unwrap().as_usize(), Some(2));
        let p50 = c.get("p50").unwrap().as_usize().unwrap();
        let p99 = c.get("p99").unwrap().as_usize().unwrap();
        assert!(p50 >= 100 && p50 <= p99, "p50 {p50} p99 {p99}");
    }

    #[test]
    fn default_retrieval_section_is_exact() {
        let s = ServerStats::new();
        let j = crate::json::parse(&s.to_json()).expect("valid JSON");
        let r = j.get("retrieval").expect("retrieval section");
        assert_eq!(r.get("mode").unwrap().as_str(), Some("exact"));
        assert_eq!(
            r.get("candidates")
                .unwrap()
                .get("count")
                .unwrap()
                .as_usize(),
            Some(0)
        );
    }

    #[test]
    fn stats_json_is_parseable() {
        let s = ServerStats::new();
        s.record_request(1_000);
        s.record_batch(3);
        s.cache_hits.fetch_add(1, Ordering::Relaxed);
        let j = crate::json::parse(&s.to_json()).expect("valid JSON");
        assert_eq!(j.get("requests_total").unwrap().as_usize(), Some(1));
        assert!(
            j.get("latency_ms")
                .unwrap()
                .get("p50")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        assert_eq!(
            j.get("batching")
                .unwrap()
                .get("max_batch")
                .unwrap()
                .as_usize(),
            Some(3)
        );
        let pool = j.get("pool").expect("pool section");
        for field in ["pool_hits", "pool_misses", "bytes_recycled"] {
            assert!(
                pool.get(field).and_then(|v| v.as_usize()).is_some(),
                "missing pool field {field}"
            );
        }
        // The active kernel backend is surfaced so operators can see which
        // kernels a live server is running.
        let backend = j.get("backend").and_then(|v| v.as_str()).expect("backend");
        assert!(
            backend == "reference" || backend == "blocked",
            "unexpected backend {backend:?}"
        );
    }

    #[test]
    fn workers_section_reports_count_and_busy_fraction() {
        let s = ServerStats::new();
        let w0 = s.register_worker();
        let _w1 = s.register_worker();
        w0.fetch_add(10, Ordering::Relaxed);
        let j = crate::json::parse(&s.to_json()).expect("valid JSON");
        let workers = j.get("workers").expect("workers section");
        assert_eq!(workers.get("count").unwrap().as_usize(), Some(2));
        let fracs = workers.get("busy_fraction").unwrap().as_arr().unwrap();
        assert_eq!(fracs.len(), 2);
        let f0 = fracs[0].as_f64().unwrap();
        let f1 = fracs[1].as_f64().unwrap();
        assert!((0.0..=1.0).contains(&f0));
        assert_eq!(f1, 0.0);
    }

    #[test]
    fn faults_section_reports_recovery_counters() {
        let s = ServerStats::new();
        s.worker_panics.fetch_add(2, Ordering::Relaxed);
        s.shed_total.fetch_add(5, Ordering::Relaxed);
        s.io_faults.fetch_add(1, Ordering::Relaxed);
        let j = crate::json::parse(&s.to_json()).expect("valid JSON");
        let faults = j.get("faults").expect("faults section");
        assert_eq!(faults.get("worker_panics").unwrap().as_usize(), Some(2));
        assert_eq!(faults.get("shed_total").unwrap().as_usize(), Some(5));
        assert_eq!(faults.get("io_faults").unwrap().as_usize(), Some(1));
        assert!(faults.get("injected_total").unwrap().as_usize().is_some());
    }

    #[test]
    fn model_section_tracks_swaps() {
        let s = ServerStats::new();
        s.set_model_version(1);
        s.note_swap(2, 1_500, 7);
        let j = crate::json::parse(&s.to_json()).expect("valid JSON");
        let m = j.get("model").expect("model section");
        assert_eq!(m.get("model_version").unwrap().as_usize(), Some(2));
        assert_eq!(m.get("swap_total").unwrap().as_usize(), Some(1));
        assert_eq!(m.get("swap_failed_total").unwrap().as_usize(), Some(0));
        assert_eq!(m.get("sessions_invalidated").unwrap().as_usize(), Some(7));
        assert!((m.get("last_swap_ms").unwrap().as_f64().unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn clear_workers_resets_worker_section() {
        let s = ServerStats::new();
        let _w = s.register_worker();
        s.clear_workers();
        let _w2 = s.register_worker();
        let j = crate::json::parse(&s.to_json()).expect("valid JSON");
        assert_eq!(
            j.get("workers").unwrap().get("count").unwrap().as_usize(),
            Some(1)
        );
    }

    #[test]
    fn max_batch_tracks_maximum() {
        let s = ServerStats::new();
        s.record_batch(2);
        s.record_batch(7);
        s.record_batch(4);
        assert_eq!(s.max_batch.load(Ordering::Relaxed), 7);
    }
}
