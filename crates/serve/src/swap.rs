//! Zero-downtime model hot-swap.
//!
//! [`EngineSlot`] owns the `Arc`'d [`Engine`] that connection threads serve
//! from. A reload builds a complete replacement engine — frozen tables,
//! retrieval index, fresh worker pool, empty session cache — entirely off
//! to the side, then swaps the `Arc` in one `RwLock` write. Requests that
//! already cloned the old `Arc` finish against the old engine; every
//! request that starts after the swap sees the new one. Nothing in between
//! can observe a torn mix of old and new tables, because a request only
//! ever holds one engine.
//!
//! Protocol invariants:
//!
//! * **ABA / double-flip:** `swap_lock` serializes reloads, and the loader
//!   is offered the version currently being served — a loader that has
//!   nothing newer returns `None`, so concurrent `/reload` storms flip
//!   `model_version` at most once per published version.
//! * **Failure isolation:** load, build, and the `serve.swap` fault site
//!   all run under `catch_unwind` *before* the commit point. Any error or
//!   panic leaves the old engine serving untouched and bumps
//!   `swap_failed_total`.
//! * **Drain:** after the commit the old engine is held only by in-flight
//!   requests. The swap waits (bounded) for those to retire, then drops its
//!   own handle; if a straggler still holds the `Arc`, the engine shuts
//!   down when that last request completes. The old engine's `shutdown` is
//!   never invoked while a request might still submit to it.
//! * **Cache invalidation:** the session cache lives inside the engine, so
//!   a swap discards it wholesale — a stale recommendation can never be
//!   served across a version change.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::engine::{Engine, EngineConfig, InferenceModel};
use crate::stats::ServerStats;

/// A model freshly loaded from storage, tagged with its version.
pub struct LoadedModel {
    /// The model to build the replacement engine around.
    pub model: InferenceModel,
    /// Its version (becomes `model_version` in `/metrics`).
    pub version: u64,
}

/// Pluggable model source for reloads.
///
/// Called with the version currently serving; returns `Ok(None)` when
/// nothing newer is available (the cheap common case for pollers), or the
/// new model to swap in.
pub type ModelLoader = dyn Fn(u64) -> Result<Option<LoadedModel>, String> + Send + Sync;

/// What a reload did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReloadOutcome {
    /// A new model version is now serving.
    Swapped {
        /// The version now serving.
        version: u64,
    },
    /// The loader had nothing newer; the serving engine is unchanged.
    Unchanged {
        /// The version still serving.
        version: u64,
    },
}

/// The swappable slot the server routes every request through.
pub struct EngineSlot {
    slot: RwLock<Arc<Engine>>,
    /// Serializes reloads (the ABA guard); never held while serving.
    swap_lock: Mutex<()>,
    cfg: EngineConfig,
    stats: Arc<ServerStats>,
    loader: Option<Box<ModelLoader>>,
    drain_timeout: Duration,
}

fn read_slot(slot: &RwLock<Arc<Engine>>) -> Arc<Engine> {
    Arc::clone(&slot.read().unwrap_or_else(|p| p.into_inner()))
}

impl EngineSlot {
    /// A slot with no reload source: `/reload` reports an error, the
    /// engine serves for the lifetime of the server. Used by `serve
    /// --model` (a single frozen checkpoint).
    pub fn fixed(engine: Engine) -> EngineSlot {
        let stats = engine.stats_arc();
        let cfg = engine.config().clone();
        EngineSlot {
            slot: RwLock::new(Arc::new(engine)),
            swap_lock: Mutex::new(()),
            cfg,
            stats,
            loader: None,
            drain_timeout: Duration::from_secs(5),
        }
    }

    /// A reloadable slot: `initial_version` pins `model_version` in
    /// `/metrics`, and `loader` is consulted by every [`EngineSlot::reload`].
    pub fn reloadable(
        engine: Engine,
        initial_version: u64,
        loader: Box<ModelLoader>,
    ) -> EngineSlot {
        let slot = EngineSlot::fixed(engine);
        slot.stats.set_model_version(initial_version);
        EngineSlot {
            loader: Some(loader),
            ..slot
        }
    }

    /// True if the slot has a reload source.
    pub fn is_reloadable(&self) -> bool {
        self.loader.is_some()
    }

    /// The engine currently serving. Requests clone the `Arc` once, up
    /// front, and use only that clone — the snapshot is immutable even if a
    /// swap lands mid-request.
    pub fn engine(&self) -> Arc<Engine> {
        read_slot(&self.slot)
    }

    /// The stats shared across every engine this slot will ever hold.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Consult the loader and, if it produces a newer model, swap it in.
    ///
    /// Runs on the calling thread (the `/reload` connection thread or the
    /// poller) — never on the serving path. On any failure the old engine
    /// keeps serving and `swap_failed_total` is bumped.
    pub fn reload(&self) -> Result<ReloadOutcome, String> {
        let loader = self.loader.as_ref().ok_or_else(|| {
            "this server has no reload source (serve from --ckpt-dir)".to_string()
        })?;
        let _serialized = self.swap_lock.lock().unwrap_or_else(|p| p.into_inner());
        let current = self.stats.model_version();
        let t0 = Instant::now();
        let staged = catch_unwind(AssertUnwindSafe(
            || -> Result<Option<(Engine, u64)>, String> {
                let Some(LoadedModel { model, version }) = loader(current)? else {
                    return Ok(None);
                };
                self.stats.clear_workers();
                let engine = Engine::try_new(model, self.cfg.clone(), Arc::clone(&self.stats))?;
                // Deliberate kill point: after the replacement engine is fully
                // built, before the commit. A fault here must leave the old
                // engine serving.
                ssdrec_faults::point("serve.swap").map_err(|e| e.to_string())?;
                Ok(Some((engine, version)))
            },
        ));
        let staged = match staged {
            Ok(Ok(staged)) => staged,
            Ok(Err(e)) => {
                self.stats
                    .swap_failed_total
                    .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                return Err(format!("model swap failed: {e}"));
            }
            Err(panic) => {
                self.stats
                    .swap_failed_total
                    .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic".to_string());
                return Err(format!("model swap panicked: {msg}"));
            }
        };
        let Some((engine, version)) = staged else {
            return Ok(ReloadOutcome::Unchanged { version: current });
        };
        // Commit: one write-lock assignment. Readers block only for the
        // duration of the pointer swap.
        let old = {
            let mut guard = self.slot.write().unwrap_or_else(|p| p.into_inner());
            std::mem::replace(&mut *guard, Arc::new(engine))
        };
        let invalidated = old.cache_len() as u64;
        self.stats
            .note_swap(version, t0.elapsed().as_micros() as u64, invalidated);
        drain(old, self.drain_timeout);
        Ok(ReloadOutcome::Swapped { version })
    }

    /// Shut down the engine currently in the slot (server teardown).
    pub fn shutdown(&self) {
        read_slot(&self.slot).shutdown();
    }
}

/// Retire a just-replaced engine.
///
/// In-flight requests still hold clones of `old`; wait (bounded) for them
/// to finish, then drop our handle. Dropping the final `Arc` runs
/// `Engine::drop → shutdown`, which closes the job channel and joins the
/// workers — so if a straggler outlives the timeout, the engine is torn
/// down by whichever request releases it last, never under its feet.
fn drain(old: Arc<Engine>, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while Arc::strong_count(&old) > 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_micros(200));
    }
    drop(old);
}
