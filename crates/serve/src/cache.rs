//! Per-user session cache: the last recommendation computed for each user,
//! evicted least-recently-used. A hit requires the *exact* same history and
//! `k` — sequential recommenders are history-sensitive, so any change to the
//! session invalidates the entry.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::engine::Recommendation;

struct Entry {
    seq: Vec<usize>,
    k: usize,
    rec: Arc<Recommendation>,
    tick: u64,
}

/// An LRU map from user ID to their most recent recommendation.
///
/// Not internally synchronised — the engine wraps it in a `Mutex`. Eviction
/// uses a lazy recency queue: each touch pushes a `(tick, user)` marker and
/// stale markers are skipped during eviction, keeping both `get` and `put`
/// O(1) amortised.
pub struct SessionCache {
    cap: usize,
    map: HashMap<usize, Entry>,
    queue: VecDeque<(u64, usize)>,
    tick: u64,
}

impl SessionCache {
    /// A cache holding at most `cap` users (`cap == 0` disables caching).
    pub fn new(cap: usize) -> Self {
        SessionCache {
            cap,
            map: HashMap::new(),
            queue: VecDeque::new(),
            tick: 0,
        }
    }

    fn touch(&mut self, user: usize) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.map.get_mut(&user) {
            e.tick = tick;
        }
        self.queue.push_back((tick, user));
        // Bound the marker queue so repeated touches of few users cannot
        // grow it without bound.
        if self.queue.len() > self.cap.saturating_mul(4).max(16) {
            self.compact();
        }
    }

    fn compact(&mut self) {
        let map = &self.map;
        self.queue
            .retain(|&(tick, user)| map.get(&user).is_some_and(|e| e.tick == tick));
    }

    /// The cached recommendation for `user`, if their history and `k` are
    /// unchanged since it was computed.
    pub fn get(&mut self, user: usize, seq: &[usize], k: usize) -> Option<Arc<Recommendation>> {
        if self.cap == 0 {
            return None;
        }
        let hit = match self.map.get(&user) {
            Some(e) if e.seq == seq && e.k == k => Some(Arc::clone(&e.rec)),
            _ => None,
        };
        if hit.is_some() {
            self.touch(user);
        }
        hit
    }

    /// Insert (or replace) `user`'s entry, evicting the least-recently-used
    /// user when over capacity.
    pub fn put(&mut self, user: usize, seq: Vec<usize>, k: usize, rec: Arc<Recommendation>) {
        if self.cap == 0 {
            return;
        }
        self.map.insert(
            user,
            Entry {
                seq,
                k,
                rec,
                tick: 0,
            },
        );
        self.touch(user);
        while self.map.len() > self.cap {
            match self.queue.pop_front() {
                Some((tick, old)) => {
                    if self.map.get(&old).is_some_and(|e| e.tick == tick) {
                        self.map.remove(&old);
                    }
                }
                None => {
                    // Queue exhausted before shrinking below cap — cannot
                    // happen (every resident entry has a live marker), but
                    // degrade safely rather than loop forever.
                    self.map.clear();
                    break;
                }
            }
        }
    }

    /// Number of users currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(user: usize) -> Arc<Recommendation> {
        Arc::new(Recommendation {
            user,
            k: 2,
            items: vec![(1, 0.5), (2, 0.25)],
            batch_size: 1,
        })
    }

    #[test]
    fn hit_requires_exact_seq_and_k() {
        let mut c = SessionCache::new(4);
        c.put(7, vec![1, 2, 3], 2, rec(7));
        assert!(c.get(7, &[1, 2, 3], 2).is_some());
        assert!(c.get(7, &[1, 2], 2).is_none(), "shorter history");
        assert!(c.get(7, &[1, 2, 3, 4], 2).is_none(), "longer history");
        assert!(c.get(7, &[1, 2, 3], 5).is_none(), "different k");
        assert!(c.get(8, &[1, 2, 3], 2).is_none(), "different user");
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = SessionCache::new(2);
        c.put(1, vec![1], 1, rec(1));
        c.put(2, vec![2], 1, rec(2));
        assert!(c.get(1, &[1], 1).is_some()); // 1 now more recent than 2
        c.put(3, vec![3], 1, rec(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(2, &[2], 1).is_none(), "LRU user 2 evicted");
        assert!(c.get(1, &[1], 1).is_some());
        assert!(c.get(3, &[3], 1).is_some());
    }

    #[test]
    fn replacing_a_user_does_not_grow() {
        let mut c = SessionCache::new(2);
        for i in 0..10 {
            c.put(1, vec![i], 1, rec(1));
        }
        assert_eq!(c.len(), 1);
        assert!(c.get(1, &[9], 1).is_some());
        assert!(c.get(1, &[8], 1).is_none(), "stale history replaced");
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = SessionCache::new(0);
        c.put(1, vec![1], 1, rec(1));
        assert!(c.is_empty());
        assert!(c.get(1, &[1], 1).is_none());
    }

    #[test]
    fn marker_queue_stays_bounded() {
        let mut c = SessionCache::new(2);
        c.put(1, vec![1], 1, rec(1));
        for _ in 0..10_000 {
            assert!(c.get(1, &[1], 1).is_some());
        }
        assert!(c.queue.len() <= 16, "queue {} entries", c.queue.len());
    }
}
