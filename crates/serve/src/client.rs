//! A minimal blocking HTTP client over `std::net`, used by the load
//! generator, the CI smoke test, and the integration tests — the workspace
//! has no `curl` dependency.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Issue one `Connection: close` request and return `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response"))?;
    let (head, response_body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, response_body.to_string()))
}

/// `GET path` on a running server.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<(u16, String)> {
    request(addr, "POST", path, Some(body))
}
