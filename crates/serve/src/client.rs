//! A minimal blocking HTTP client over `std::net`, used by the load
//! generator, the CI smoke test, and the integration tests — the workspace
//! has no `curl` dependency.
//!
//! Failures are **typed** ([`ClientError`]): connect vs. transport I/O vs.
//! a truncated response vs. a malformed one, so callers (and the retry
//! layer) can tell a retryable fault from a broken request.
//! [`request_with_retry`] adds deterministic exponential backoff with
//! jitter drawn from the testkit RNG: the same [`RetryPolicy`] seed always
//! produces the same delay sequence.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use ssdrec_testkit::Rng;

/// Why an HTTP request failed, separated by phase so callers can decide
/// what is retryable (everything here is transport-level; HTTP error
/// statuses are returned as `Ok((status, body))`).
#[derive(Debug)]
pub enum ClientError {
    /// TCP connect failed (server not up yet, port closed).
    Connect(std::io::Error),
    /// The socket failed mid-request or mid-response (reset, timeout).
    Io(std::io::Error),
    /// The connection closed before a complete response arrived: either no
    /// `\r\n\r\n` header terminator, or fewer body bytes than the response's
    /// `Content-Length` declared.
    Truncated {
        /// Bytes received before the peer closed the connection.
        bytes_read: usize,
        /// What was missing when the stream ended.
        what: &'static str,
    },
    /// A complete response arrived but could not be parsed.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Truncated { bytes_read, what } => {
                write!(f, "truncated response: connection closed after {bytes_read} byte(s), missing {what}")
            }
            ClientError::BadResponse(m) => write!(f, "malformed response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Connect(e) | ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Issue one `Connection: close` request and return `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), ClientError> {
    let mut stream =
        TcpStream::connect_timeout(&addr, Duration::from_secs(10)).map_err(ClientError::Connect)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(ClientError::Io)?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(ClientError::Io)?;
    stream.flush().map_err(ClientError::Io)?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(ClientError::Io)?;
    parse_response(&raw)
}

/// Parse a complete `Connection: close` response buffer. Split out of
/// [`request`] so the truncation paths are unit-testable without sockets.
fn parse_response(raw: &[u8]) -> Result<(u16, String), ClientError> {
    let text = std::str::from_utf8(raw)
        .map_err(|_| ClientError::BadResponse("non-UTF-8 response".into()))?;
    let Some((head, response_body)) = text.split_once("\r\n\r\n") else {
        // EOF before the header block finished: the server died or a write
        // fault cut the response short. Distinct from BadResponse — this
        // one is retryable.
        return Err(ClientError::Truncated {
            bytes_read: raw.len(),
            what: "header terminator",
        });
    };
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::BadResponse(format!("bad status line {status_line:?}")))?;
    // `Connection: close` responses end at EOF, but the declared
    // Content-Length still lets us detect a partial body.
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let want: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::BadResponse("bad Content-Length".into()))?;
                if response_body.len() < want {
                    return Err(ClientError::Truncated {
                        bytes_read: raw.len(),
                        what: "response body",
                    });
                }
            }
        }
    }
    Ok((status, response_body.to_string()))
}

/// `GET path` on a running server.
pub fn get(addr: SocketAddr, path: &str) -> Result<(u16, String), ClientError> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Result<(u16, String), ClientError> {
    request(addr, "POST", path, Some(body))
}

/// Deterministic exponential backoff with jitter for [`request_with_retry`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts including the first (≥ 1).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Multiplier per retry (2.0 = classic exponential backoff).
    pub factor: f64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a factor drawn
    /// uniformly from `[1 - jitter, 1]`, decorrelating clients that fail
    /// at the same instant.
    pub jitter: f64,
    /// Seed for the testkit RNG the jitter is drawn from — the same seed
    /// yields the same delay sequence, so chaos tests are reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            factor: 2.0,
            jitter: 0.5,
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The exact backoff delays this policy will sleep between attempts
    /// (`max_attempts - 1` entries). Pure function of the policy fields.
    pub fn backoff_delays(&self) -> Vec<Duration> {
        let mut rng = Rng::seed(self.seed);
        (0..self.max_attempts.saturating_sub(1))
            .map(|i| {
                let exp = self.base_delay.as_secs_f64() * self.factor.powi(i as i32);
                let scale = 1.0 - self.jitter * rng.next_f64();
                Duration::from_secs_f64(exp * scale)
            })
            .collect()
    }
}

/// [`request`], retried under `policy`. Retries every transport-level
/// [`ClientError`] and HTTP `503 Service Unavailable` (load shedding);
/// any other status — including 4xx/5xx — is a definitive answer and is
/// returned as-is. Returns the last error when every attempt fails.
pub fn request_with_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
) -> Result<(u16, String), ClientError> {
    assert!(policy.max_attempts >= 1, "need at least one attempt");
    let delays = policy.backoff_delays();
    let mut last_err = None;
    for (attempt, delay) in delays
        .iter()
        .map(Some)
        .chain(std::iter::once(None))
        .enumerate()
    {
        match request(addr, method, path, body) {
            Ok((503, body)) => {
                last_err = Some(ClientError::BadResponse(format!(
                    "503 after retries: {body}"
                )));
                if attempt as u32 + 1 >= policy.max_attempts {
                    return Ok((503, body));
                }
            }
            Ok(ok) => return Ok(ok),
            Err(e) => {
                last_err = Some(e);
            }
        }
        match delay {
            Some(d) => std::thread::sleep(*d),
            None => break,
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_headers_are_typed() {
        let e = parse_response(b"HTTP/1.1 200 OK\r\nContent-Le").unwrap_err();
        match e {
            ClientError::Truncated { bytes_read, what } => {
                assert_eq!(bytes_read, b"HTTP/1.1 200 OK\r\nContent-Le".len());
                assert_eq!(what, "header terminator");
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_typed() {
        let e = parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort").unwrap_err();
        assert!(matches!(
            e,
            ClientError::Truncated {
                what: "response body",
                ..
            }
        ));
    }

    #[test]
    fn complete_response_parses() {
        let (status, body) =
            parse_response(b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 2\r\n\r\nhi")
                .unwrap();
        assert_eq!(status, 503);
        assert_eq!(body, "hi");
    }

    #[test]
    fn bad_status_line_is_not_truncation() {
        let e = parse_response(b"garbage\r\n\r\nbody").unwrap_err();
        assert!(matches!(e, ClientError::BadResponse(_)));
    }

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let policy = RetryPolicy::default();
        let a = policy.backoff_delays();
        let b = policy.backoff_delays();
        assert_eq!(a, b, "same seed must give the same delays");
        assert_eq!(a.len(), 3);
        // Jitter only shrinks: delay i is within (1-jitter)·base·2^i ..= base·2^i.
        for (i, d) in a.iter().enumerate() {
            let nominal = 0.010 * 2f64.powi(i as i32);
            assert!(d.as_secs_f64() <= nominal + 1e-9, "delay {i} above nominal");
            assert!(
                d.as_secs_f64() >= nominal * 0.5 - 1e-9,
                "delay {i} below jitter floor"
            );
        }
        let other = RetryPolicy {
            seed: 999,
            ..RetryPolicy::default()
        };
        assert_ne!(
            a,
            other.backoff_delays(),
            "different seed, different jitter"
        );
    }

    #[test]
    fn connect_refused_is_typed() {
        // Port 1 on localhost is essentially never listening.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        match request(addr, "GET", "/health", None) {
            Err(ClientError::Connect(_)) => {}
            other => panic!("expected Connect error, got {other:?}"),
        }
    }
}
