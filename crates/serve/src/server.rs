//! The HTTP front-end: a `TcpListener` accept loop dispatching
//! one-connection-per-thread onto the shared [`Engine`].
//!
//! Endpoints:
//!
//! | route              | method     | behaviour                                   |
//! |--------------------|------------|---------------------------------------------|
//! | `/health`          | GET        | `{"status":"ok","model":...}`               |
//! | `/recommend`       | GET / POST | top-K for `user`/`seq`/`k` (query or JSON)  |
//! | `/metrics`         | GET        | QPS, latency p50/p95/p99, cache, batching   |
//! | `/reload`          | POST       | hot-swap to a newer model version           |
//! | `/shutdown`        | POST       | graceful stop                               |
//!
//! Every request snapshots the engine out of the [`EngineSlot`] once, up
//! front, so a hot swap landing mid-request can never hand it a torn mix of
//! old and new tables.

use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::{Engine, Recommendation};
use crate::http::{read_request, write_json, Request};
use crate::json::{self, Json};
use crate::swap::{EngineSlot, ReloadOutcome};

/// Connection-handling knobs for the HTTP front-end.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Per-connection socket read timeout: a client that stalls mid-request
    /// (slowloris, dead peer) is dropped instead of pinning its thread.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// When set (and the slot is reloadable), a background thread polls the
    /// checkpoint directory's `CURRENT` pointer at this interval and swaps
    /// in newer versions automatically — `/reload` without the request.
    pub reload_poll: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            reload_poll: None,
        }
    }
}

struct Shared {
    slot: EngineSlot,
    cfg: ServeConfig,
    stop: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    /// Flag the accept loop to stop and poke it with a throwaway
    /// connection so `accept()` returns.
    fn trigger_stop(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        }
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    poller: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A snapshot of the engine currently serving (for in-process
    /// inspection; a hot swap may replace it at any time).
    pub fn engine(&self) -> Arc<Engine> {
        self.shared.slot.engine()
    }

    /// The swappable engine slot behind the server.
    pub fn slot(&self) -> &EngineSlot {
        &self.shared.slot
    }

    /// Block until the server stops (via `POST /shutdown` or another
    /// thread calling [`ServerHandle::shutdown`] on a clone-free handle).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.stop_poller();
        self.shared.slot.shutdown();
    }

    /// Stop the accept loop and the engine workers. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.trigger_stop();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.stop_poller();
        self.shared.slot.shutdown();
    }

    fn stop_poller(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.poller.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve the
/// engine until shut down, with default connection timeouts. Returns as
/// soon as the listener is accepting.
pub fn serve(engine: Engine, addr: &str) -> io::Result<ServerHandle> {
    serve_with(engine, addr, ServeConfig::default())
}

/// [`serve`] with explicit connection-handling configuration. The engine is
/// pinned for the server's lifetime (no reload source).
pub fn serve_with(engine: Engine, addr: &str, cfg: ServeConfig) -> io::Result<ServerHandle> {
    serve_slot(EngineSlot::fixed(engine), addr, cfg)
}

/// Serve a swappable [`EngineSlot`]: `POST /reload` (and the optional
/// `reload_poll` watcher) hot-swap newer model versions in with zero
/// downtime.
pub fn serve_slot(slot: EngineSlot, addr: &str, cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let poll = cfg.reload_poll.filter(|_| slot.is_reloadable());
    let shared = Arc::new(Shared {
        slot,
        cfg,
        stop: AtomicBool::new(false),
        addr,
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("ssdrec-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                let _ = std::thread::Builder::new()
                    .name("ssdrec-conn".into())
                    .spawn(move || handle_connection(stream, &conn_shared));
            }
        })?;
    let poller = match poll {
        Some(interval) => {
            let poll_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("ssdrec-reload-poll".into())
                    .spawn(move || {
                        // Sleep in short slices so shutdown is prompt even
                        // with a long poll interval.
                        let slice = Duration::from_millis(20).min(interval);
                        let mut elapsed = Duration::ZERO;
                        while !poll_shared.stop.load(Ordering::SeqCst) {
                            std::thread::sleep(slice);
                            elapsed += slice;
                            if elapsed >= interval {
                                elapsed = Duration::ZERO;
                                // Errors keep the old model serving; they are
                                // already counted in swap_failed_total.
                                let _ = poll_shared.slot.reload();
                            }
                        }
                    })?,
            )
        }
        None => None,
    };
    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        poller,
    })
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    // Chaos hook `serve.read`: an injected fault here behaves exactly like
    // a socket-level read failure — the request is never parsed, the
    // connection is answered with a 500 and closed, and the server keeps
    // accepting (the retrying client turns this into one extra attempt).
    let read = ssdrec_faults::point("serve.read")
        .map_err(io::Error::from)
        .and_then(|()| read_request(&mut stream));
    let req = match read {
        Ok(Some(req)) => req,
        Ok(None) => return,
        Err(e) => {
            let status = if e.kind() == io::ErrorKind::InvalidData {
                400
            } else {
                shared
                    .slot
                    .stats()
                    .io_faults
                    .fetch_add(1, Ordering::Relaxed);
                500
            };
            let _ = write_json(
                &mut stream,
                status,
                &format!("{{\"error\":{}}}", json::quote(&e.to_string())),
            );
            return;
        }
    };
    let (status, body) = route(&req, shared);
    // Chaos hook `serve.write`: drop the response on the floor, as a broken
    // pipe would — the client sees a truncated response (typed
    // `ClientError`) and retries.
    if ssdrec_faults::point("serve.write").is_err() {
        shared
            .slot
            .stats()
            .io_faults
            .fetch_add(1, Ordering::Relaxed);
    } else {
        let _ = write_json(&mut stream, status, &body);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn route(req: &Request, shared: &Shared) -> (u16, String) {
    // One engine snapshot per request: everything below serves from this
    // immutable Arc, even if a hot swap commits while we run.
    let engine = shared.slot.engine();
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (
            200,
            format!(
                "{{\"status\":\"ok\",\"model\":{},\"num_items\":{},\"model_version\":{}}}",
                json::quote(&engine.model().model_name()),
                engine.model().num_items(),
                shared.slot.stats().model_version(),
            ),
        ),
        ("GET", "/metrics") => (200, shared.slot.stats().to_json()),
        ("GET" | "POST", "/recommend") => match parse_recommend(req) {
            Ok((user, seq, k)) => match engine.recommend(user, &seq, k) {
                Ok(rec) => (200, recommendation_json(&rec)),
                Err(e) => (
                    e.http_status(),
                    format!("{{\"error\":{}}}", json::quote(&e.to_string())),
                ),
            },
            Err(e) => {
                // Malformed before reaching the engine: count it here.
                shared
                    .slot
                    .stats()
                    .errors_total
                    .fetch_add(1, Ordering::Relaxed);
                (400, format!("{{\"error\":{}}}", json::quote(&e)))
            }
        },
        ("POST", "/reload") => match shared.slot.reload() {
            Ok(ReloadOutcome::Swapped { version }) => (
                200,
                format!("{{\"status\":\"swapped\",\"model_version\":{version}}}"),
            ),
            Ok(ReloadOutcome::Unchanged { version }) => (
                200,
                format!("{{\"status\":\"unchanged\",\"model_version\":{version}}}"),
            ),
            Err(e) => (500, format!("{{\"error\":{}}}", json::quote(&e))),
        },
        ("POST", "/shutdown") => {
            shared.trigger_stop();
            (200, "{\"status\":\"shutting down\"}".into())
        }
        (_, "/health" | "/metrics" | "/recommend" | "/reload" | "/shutdown") => {
            (405, "{\"error\":\"method not allowed\"}".into())
        }
        _ => (404, "{\"error\":\"no such endpoint\"}".into()),
    }
}

/// Accept `user`/`seq`/`k` from a JSON body (`{"user":3,"seq":[1,2],"k":10}`)
/// or, for curl-friendliness, from query parameters
/// (`/recommend?user=3&seq=1,2&k=10`). `k` defaults to 10.
fn parse_recommend(req: &Request) -> Result<(usize, Vec<usize>, usize), String> {
    if !req.body.is_empty() {
        let text = std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8")?;
        let v = json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
        let user = v
            .get("user")
            .and_then(Json::as_usize)
            .ok_or("missing integer field \"user\"")?;
        let seq = v
            .get("seq")
            .and_then(Json::as_arr)
            .ok_or("missing array field \"seq\"")?
            .iter()
            .map(|j| {
                j.as_usize()
                    .ok_or("\"seq\" must contain non-negative integers")
            })
            .collect::<Result<Vec<_>, _>>()?;
        let k = match v.get("k") {
            Some(j) => j.as_usize().ok_or("\"k\" must be a non-negative integer")?,
            None => 10,
        };
        return Ok((user, seq, k));
    }
    let user = req
        .query
        .get("user")
        .ok_or("missing query parameter \"user\"")?
        .parse()
        .map_err(|_| "\"user\" must be an integer")?;
    let seq = req
        .query
        .get("seq")
        .ok_or("missing query parameter \"seq\" (comma-separated item IDs)")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse().map_err(|_| format!("bad item ID {s:?}")))
        .collect::<Result<Vec<usize>, _>>()?;
    let k = match req.query.get("k") {
        Some(s) => s.parse().map_err(|_| "\"k\" must be an integer")?,
        None => 10,
    };
    Ok((user, seq, k))
}

fn recommendation_json(rec: &Recommendation) -> String {
    let mut items = String::from("[");
    let mut scores = String::from("[");
    for (i, &(item, score)) in rec.items.iter().enumerate() {
        if i > 0 {
            items.push(',');
            scores.push(',');
        }
        let _ = write!(items, "{item}");
        scores.push_str(&json::f32_to_json(score));
    }
    items.push(']');
    scores.push(']');
    format!(
        "{{\"user\":{},\"k\":{},\"items\":{},\"scores\":{},\"batch_size\":{}}}",
        rec.user, rec.k, items, scores, rec.batch_size
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommend_parses_json_body() {
        let req = Request {
            method: "POST".into(),
            path: "/recommend".into(),
            query: Default::default(),
            body: br#"{"user":3,"seq":[1,2,5],"k":7}"#.to_vec(),
        };
        assert_eq!(parse_recommend(&req).unwrap(), (3, vec![1, 2, 5], 7));
    }

    #[test]
    fn recommend_parses_query_params_with_default_k() {
        let req = Request {
            method: "GET".into(),
            path: "/recommend".into(),
            query: [
                ("user".to_string(), "4".to_string()),
                ("seq".to_string(), "9,8, 7".to_string()),
            ]
            .into_iter()
            .collect(),
            body: Vec::new(),
        };
        assert_eq!(parse_recommend(&req).unwrap(), (4, vec![9, 8, 7], 10));
    }

    #[test]
    fn recommend_rejects_missing_fields() {
        let req = Request {
            method: "POST".into(),
            path: "/recommend".into(),
            query: Default::default(),
            body: br#"{"seq":[1]}"#.to_vec(),
        };
        assert!(parse_recommend(&req).unwrap_err().contains("user"));
    }

    #[test]
    fn recommendation_json_round_trips() {
        let rec = Recommendation {
            user: 2,
            k: 2,
            items: vec![(5, 0.125), (9, -0.5)],
            batch_size: 3,
        };
        let v = json::parse(&recommendation_json(&rec)).unwrap();
        assert_eq!(v.get("user").unwrap().as_usize(), Some(2));
        assert_eq!(v.get("batch_size").unwrap().as_usize(), Some(3));
        let items: Vec<usize> = v
            .get("items")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|j| j.as_usize().unwrap())
            .collect();
        assert_eq!(items, vec![5, 9]);
        let s0 = v.get("scores").unwrap().as_arr().unwrap()[0]
            .as_f64()
            .unwrap() as f32;
        assert_eq!(s0.to_bits(), 0.125f32.to_bits());
    }
}
