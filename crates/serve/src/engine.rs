//! The inference engine: a frozen model behind an mpsc micro-batching queue.
//!
//! Each worker thread owns an inference-mode [`Graph`] (no tape, no gradient
//! state) with the parameters bound **once** at startup and the
//! request-independent graph nodes — stage-1 relation-encoded tables, the
//! transposed tied-weight scorer, the pad mask — precomputed below a
//! [`Graph::mark`]. Per request the worker appends only the activation nodes
//! and truncates back to the mark afterwards, so steady-state serving
//! allocates no parameter copies and no autograd bookkeeping.
//!
//! Scores are **bit-identical** to the offline
//! [`RecModel::recommend`] path: the frozen forward runs the same kernels in
//! the same order, batching is over equal-length rows only (the workspace's
//! `Batch` invariant), and every kernel is row-independent.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ssdrec_ann::{AnnParams, HnswIndex};
use ssdrec_core::{FrozenTables, SsdRec};
use ssdrec_data::Batch;
use ssdrec_models::{FrozenScorer, RecModel, SeqRec};
use ssdrec_tensor::{Binding, Graph, ParamStore, Var};

use crate::cache::SessionCache;
use crate::stats::{RetrievalInfo, ServerStats};

/// Why a recommendation request failed, mapped to an HTTP status by the
/// front-end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecError {
    /// The request itself is invalid (empty history, out-of-range IDs…).
    BadRequest(String),
    /// The engine shed the request because its queue is over the bound —
    /// retryable, served as `503 Service Unavailable`.
    Overloaded,
    /// The engine failed while processing an otherwise valid request
    /// (worker died mid-batch, engine shut down).
    Internal(String),
}

impl RecError {
    /// The HTTP status this error maps to.
    pub fn http_status(&self) -> u16 {
        match self {
            RecError::BadRequest(_) => 400,
            RecError::Overloaded => 503,
            RecError::Internal(_) => 500,
        }
    }
}

impl std::fmt::Display for RecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecError::BadRequest(m) => write!(f, "{m}"),
            RecError::Overloaded => write!(f, "overloaded: request queue is full, retry later"),
            RecError::Internal(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RecError {}

/// A servable model: SSDRec or a bare-backbone baseline.
pub enum InferenceModel {
    /// The full three-stage SSDRec model.
    Ssd(SsdRec),
    /// A vanilla backbone recommender (`--baseline` checkpoints).
    Seq(SeqRec),
}

/// The per-worker precomputed request-independent graph nodes.
enum Frozen {
    Ssd(FrozenTables),
    Seq(FrozenScorer),
}

impl From<SsdRec> for InferenceModel {
    fn from(m: SsdRec) -> Self {
        InferenceModel::Ssd(m)
    }
}

impl From<SeqRec> for InferenceModel {
    fn from(m: SeqRec) -> Self {
        InferenceModel::Seq(m)
    }
}

impl InferenceModel {
    /// Catalogue size (valid item IDs are `1..=num_items`).
    pub fn num_items(&self) -> usize {
        match self {
            InferenceModel::Ssd(m) => m.num_items(),
            InferenceModel::Seq(m) => m.num_items(),
        }
    }

    /// Embedding width `d` (the ANN index and re-rank query width).
    pub fn dim(&self) -> usize {
        match self {
            InferenceModel::Ssd(m) => m.cfg.dim,
            InferenceModel::Seq(m) => m.dim,
        }
    }

    /// Number of valid user IDs, when the model embeds users (`None` means
    /// any user ID is acceptable — bare backbones ignore the user).
    pub fn num_users(&self) -> Option<usize> {
        match self {
            InferenceModel::Ssd(m) => Some(m.num_users()),
            InferenceModel::Seq(_) => None,
        }
    }

    /// Display name of the underlying model.
    pub fn model_name(&self) -> String {
        match self {
            InferenceModel::Ssd(m) => m.model_name(),
            InferenceModel::Seq(m) => m.model_name(),
        }
    }

    /// The parameter store (for checkpoint loading before serving starts).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        match self {
            InferenceModel::Ssd(m) => m.store_mut(),
            InferenceModel::Seq(m) => m.store_mut(),
        }
    }

    fn store(&self) -> &ParamStore {
        match self {
            InferenceModel::Ssd(m) => m.store(),
            InferenceModel::Seq(m) => m.store(),
        }
    }

    fn precompute(&self, g: &mut Graph, bind: &Binding) -> Frozen {
        match self {
            InferenceModel::Ssd(m) => Frozen::Ssd(m.precompute_frozen(g, bind)),
            InferenceModel::Seq(m) => Frozen::Seq(m.precompute_frozen(g, bind)),
        }
    }

    fn score(&self, g: &mut Graph, bind: &Binding, batch: &Batch, frozen: &Frozen) -> Var {
        match (self, frozen) {
            (InferenceModel::Ssd(m), Frozen::Ssd(f)) => m.eval_scores_frozen(g, bind, batch, f),
            (InferenceModel::Seq(m), Frozen::Seq(f)) => m.eval_scores_frozen(g, bind, batch, f),
            _ => unreachable!("frozen state built from this model"),
        }
    }

    /// The frozen forward stopped at the sequence representation `h_S`
    /// (`B×d`) — the ANN query vectors. Same nodes, same order as the
    /// front of [`InferenceModel::score`], so the exact re-rank over the
    /// candidate set is bit-identical to the corresponding entries of the
    /// full score row.
    fn repr(&self, g: &mut Graph, bind: &Binding, batch: &Batch, frozen: &Frozen) -> Var {
        match (self, frozen) {
            (InferenceModel::Ssd(m), Frozen::Ssd(f)) => m.eval_repr_frozen(g, bind, batch, f),
            (InferenceModel::Seq(m), Frozen::Seq(_)) => m.eval_repr_frozen(g, bind, batch),
            _ => unreachable!("frozen state built from this model"),
        }
    }
}

impl Frozen {
    /// The `(V+1)×d` item matrix the tied-weight scorer reads — the source
    /// of truth for both the ANN index and the exact re-rank.
    fn items(&self) -> Var {
        match self {
            Frozen::Ssd(f) => f.items,
            Frozen::Seq(f) => f.table,
        }
    }
}

/// Which retrieval stage answers a request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RetrievalMode {
    /// Full-rank scoring of every catalogue item (the default; the
    /// bit-identity parity tests guard this path).
    #[default]
    Exact,
    /// Deterministic HNSW candidate search + exact re-rank of the
    /// `ef_search` candidate set.
    Ann,
}

impl std::str::FromStr for RetrievalMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "exact" => Ok(RetrievalMode::Exact),
            "ann" => Ok(RetrievalMode::Ann),
            other => Err(format!(
                "unknown retrieval mode '{other}' (want exact or ann)"
            )),
        }
    }
}

impl std::fmt::Display for RetrievalMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RetrievalMode::Exact => "exact",
            RetrievalMode::Ann => "ann",
        })
    }
}

/// Retrieval-stage knobs (`--retrieval`, `--ann-m`, `--ef-search`).
#[derive(Clone, Debug)]
pub struct RetrievalConfig {
    /// Exact full-rank scoring or ANN candidates + exact re-rank.
    pub mode: RetrievalMode,
    /// HNSW max degree on layers ≥ 1 (layer 0 keeps `2·m`).
    pub ann_m: usize,
    /// Candidate beam width per request. `ef ≥ catalogue` degenerates to
    /// exhaustive retrieval (bit-identical to exact mode).
    pub ef_search: usize,
}

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig {
            mode: RetrievalMode::Exact,
            ann_m: 16,
            ef_search: 128,
        }
    }
}

/// Construction beam width derived from the degree bound: wide enough that
/// recall is set by `ef_search`, not by build quality.
fn ann_ef_construction(m: usize) -> usize {
    (m * 6).max(64)
}

/// The immutable retrieval state shared by every worker: built once before
/// the first worker spawns (all-or-nothing — a faulted `ann.build` fails
/// [`Engine::try_new`] cleanly with no torn index).
struct RetrievalState {
    ef_search: usize,
    index: Option<HnswIndex>,
}

impl RetrievalState {
    fn build(
        model: &InferenceModel,
        cfg: &RetrievalConfig,
        stats: &ServerStats,
    ) -> Result<RetrievalState, String> {
        match cfg.mode {
            RetrievalMode::Exact => {
                stats.set_retrieval(RetrievalInfo::default());
                Ok(RetrievalState {
                    ef_search: cfg.ef_search,
                    index: None,
                })
            }
            RetrievalMode::Ann => {
                let t0 = Instant::now();
                // A scratch frozen graph just to materialise the scorer's
                // item matrix; the index owns a copy, the graph is dropped.
                let mut g = Graph::inference_with_capacity(Graph::DEFAULT_CAPACITY);
                let bind = model.store().bind_all(&mut g);
                let frozen = model.precompute(&mut g, &bind);
                let params = AnnParams {
                    m: cfg.ann_m,
                    ef_construction: ann_ef_construction(cfg.ann_m),
                    ..AnnParams::default()
                };
                let index = HnswIndex::build(
                    g.value(frozen.items()).data(),
                    model.dim(),
                    model.num_items(),
                    params,
                )
                .map_err(|e| e.to_string())?;
                stats.set_retrieval(RetrievalInfo {
                    mode: "ann".into(),
                    m: cfg.ann_m as u64,
                    ef_search: cfg.ef_search as u64,
                    build_us: t0.elapsed().as_micros() as u64,
                });
                Ok(RetrievalState {
                    ef_search: cfg.ef_search,
                    index: Some(index),
                })
            }
        }
    }
}

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads, each with its own frozen graph (≥ 1).
    pub workers: usize,
    /// Most requests coalesced into one forward pass.
    pub max_batch: usize,
    /// How long a worker waits for more requests to coalesce after the
    /// first one arrives.
    pub linger: Duration,
    /// Session-cache capacity in users (0 disables caching).
    pub cache_capacity: usize,
    /// Histories longer than this are truncated to their most recent
    /// `max_len` items (must match the trained model's `max_len`).
    pub max_len: usize,
    /// Load-shedding bound: requests arriving while this many are already
    /// queued for the workers are rejected with [`RecError::Overloaded`]
    /// (HTTP 503) instead of growing the queue without limit.
    pub max_queue: usize,
    /// Retrieval stage: exact full-rank (default) or ANN + exact re-rank.
    pub retrieval: RetrievalConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            max_batch: 32,
            linger: Duration::from_millis(2),
            cache_capacity: 1024,
            max_len: 50,
            max_queue: 1024,
            retrieval: RetrievalConfig::default(),
        }
    }
}

/// One answered recommendation request.
#[derive(Clone, Debug)]
pub struct Recommendation {
    /// The requesting user.
    pub user: usize,
    /// Requested list length.
    pub k: usize,
    /// `(item, score)` pairs, best first, pad item excluded, ties broken
    /// to the lower item ID (the paper's pessimistic full-ranking rule).
    pub items: Vec<(usize, f32)>,
    /// Size of the forward-pass batch this request was coalesced into
    /// (1 when it rode alone; cache hits report the batch size of the
    /// request that originally computed the entry).
    pub batch_size: usize,
}

struct Job {
    user: usize,
    seq: Vec<usize>,
    k: usize,
    resp: Sender<Arc<Recommendation>>,
}

/// The serving engine: validation + session cache in front of the worker
/// pool. Shared across connection threads behind an `Arc`.
pub struct Engine {
    model: Arc<InferenceModel>,
    cfg: EngineConfig,
    tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    cache: Mutex<SessionCache>,
    stats: Arc<ServerStats>,
    /// Jobs enqueued but not yet picked up by a worker (load-shedding
    /// signal; incremented on send, decremented on dequeue).
    queue_depth: Arc<AtomicUsize>,
}

impl Engine {
    /// Spin up the worker pool around a frozen model. Panics if the
    /// retrieval index build fails — use [`Engine::try_new`] to surface
    /// that as an error instead.
    pub fn new(model: InferenceModel, cfg: EngineConfig, stats: Arc<ServerStats>) -> Engine {
        Engine::try_new(model, cfg, stats).expect("engine init")
    }

    /// Fallible [`Engine::new`]: an ANN index build failure (including an
    /// injected `ann.build` fault) returns `Err` before any worker spawns,
    /// so no engine — and no torn index — escapes.
    pub fn try_new(
        model: InferenceModel,
        cfg: EngineConfig,
        stats: Arc<ServerStats>,
    ) -> Result<Engine, String> {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(cfg.max_batch >= 1, "max_batch must be ≥ 1");
        assert!(cfg.max_len >= 1, "max_len must be ≥ 1");
        assert!(cfg.max_queue >= 1, "max_queue must be ≥ 1");
        let model = Arc::new(model);
        let retrieval = Arc::new(RetrievalState::build(&model, &cfg.retrieval, &stats)?);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let queue_depth = Arc::new(AtomicUsize::new(0));
        // Shared graph high-water mark: every worker publishes the largest
        // tape it has seen, and later workers (or restarts) pre-size their
        // node Vec from it instead of the hard-coded default.
        let hwm = Arc::new(AtomicUsize::new(Graph::DEFAULT_CAPACITY));
        let workers = (0..cfg.workers)
            .map(|i| {
                let model = Arc::clone(&model);
                let rx = Arc::clone(&rx);
                let stats = Arc::clone(&stats);
                let busy = stats.register_worker();
                let hwm = Arc::clone(&hwm);
                let depth = Arc::clone(&queue_depth);
                let retrieval = Arc::clone(&retrieval);
                let (max_batch, linger) = (cfg.max_batch, cfg.linger);
                std::thread::Builder::new()
                    .name(format!("ssdrec-worker-{i}"))
                    .spawn(move || {
                        // Panic containment: a panicking forward pass (or an
                        // injected `engine.batch` panic fault) kills only the
                        // current worker_loop invocation. The outer loop
                        // respawns it — rebuilding the frozen graph at the
                        // top of worker_loop — without dropping the shared
                        // queue, so already-enqueued jobs still get served.
                        loop {
                            let ran =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    worker_loop(
                                        &model, &retrieval, &rx, &stats, &busy, &hwm, &depth,
                                        max_batch, linger,
                                    )
                                }));
                            match ran {
                                Ok(()) => return, // channel closed: shutdown
                                Err(_) => {
                                    stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(Engine {
            model,
            cache: Mutex::new(SessionCache::new(cfg.cache_capacity)),
            cfg,
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            stats,
            queue_depth,
        })
    }

    /// The shared stats the engine records into.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The shared stats, cloned out — a hot swap hands the same instance
    /// to the replacement engine so counters survive the swap.
    pub fn stats_arc(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Live entry count of the session cache (a hot swap reports this as
    /// the number of sessions invalidated).
    pub fn cache_len(&self) -> usize {
        lock(&self.cache).len()
    }

    /// The model being served.
    pub fn model(&self) -> &InferenceModel {
        &self.model
    }

    fn validate(&self, user: usize, seq: &[usize], k: usize) -> Result<(), String> {
        if seq.is_empty() {
            return Err("seq must be non-empty".into());
        }
        if k == 0 {
            return Err("k must be ≥ 1".into());
        }
        let v = self.model.num_items();
        if let Some(&bad) = seq.iter().find(|&&i| i == 0 || i > v) {
            return Err(format!("item {bad} out of range 1..={v}"));
        }
        if let Some(u) = self.model.num_users() {
            if user >= u {
                return Err(format!("user {user} out of range 0..{u}"));
            }
        }
        Ok(())
    }

    /// Jobs currently enqueued for the workers (load-shedding signal).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Answer one request: validate, consult the session cache, otherwise
    /// enqueue for a batched forward pass and wait for the result. Sheds
    /// with [`RecError::Overloaded`] when the queue is over
    /// [`EngineConfig::max_queue`].
    pub fn recommend(
        &self,
        user: usize,
        seq: &[usize],
        k: usize,
    ) -> Result<Arc<Recommendation>, RecError> {
        let start = Instant::now();
        if let Err(e) = self.validate(user, seq, k) {
            self.stats.errors_total.fetch_add(1, Ordering::Relaxed);
            return Err(RecError::BadRequest(e));
        }
        // Serve from the most recent max_len items, the same window the
        // model was trained on.
        let seq = &seq[seq.len().saturating_sub(self.cfg.max_len)..];

        if let Some(hit) = lock(&self.cache).get(user, seq, k) {
            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.stats
                .record_request(start.elapsed().as_micros() as u64);
            return Ok(hit);
        }

        // Shed before enqueueing: claim a queue slot, back out if over
        // the bound. A 503 is retryable; an unbounded queue is a latency
        // collapse and eventually an OOM.
        if self.queue_depth.fetch_add(1, Ordering::SeqCst) >= self.cfg.max_queue {
            self.queue_depth.fetch_sub(1, Ordering::SeqCst);
            self.stats.shed_total.fetch_add(1, Ordering::Relaxed);
            return Err(RecError::Overloaded);
        }

        let undo_depth = || {
            self.queue_depth.fetch_sub(1, Ordering::SeqCst);
        };
        let tx = match lock(&self.tx).as_ref().cloned() {
            Some(tx) => tx,
            None => {
                undo_depth();
                return Err(RecError::Internal("engine is shut down".into()));
            }
        };
        let (resp_tx, resp_rx) = mpsc::channel();
        if tx
            .send(Job {
                user,
                seq: seq.to_vec(),
                k,
                resp: resp_tx,
            })
            .is_err()
        {
            undo_depth();
            return Err(RecError::Internal("engine is shut down".into()));
        }
        let rec = resp_rx
            .recv()
            .map_err(|_| RecError::Internal("worker failed while scoring the request".into()))?;

        lock(&self.cache).put(user, seq.to_vec(), k, Arc::clone(&rec));
        self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.stats
            .record_request(start.elapsed().as_micros() as u64);
        Ok(rec)
    }

    /// Stop accepting work and join every worker. Idempotent.
    pub fn shutdown(&self) {
        lock(&self.tx).take();
        let handles: Vec<_> = lock(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Lock a mutex, recovering the data from a poisoned lock (a panicked
/// worker must not take the whole server down).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Block for the first job, then linger briefly to coalesce whatever else
/// is queued, up to `max_batch`. Empty result means the channel closed.
/// Each dequeued job releases one queue-depth slot.
fn drain_jobs(
    rx: &Mutex<Receiver<Job>>,
    depth: &AtomicUsize,
    max_batch: usize,
    linger: Duration,
) -> Vec<Job> {
    let rx = lock(rx);
    let first = match rx.recv() {
        Ok(j) => j,
        Err(_) => return Vec::new(),
    };
    depth.fetch_sub(1, Ordering::SeqCst);
    let mut jobs = vec![first];
    let deadline = Instant::now() + linger;
    while jobs.len() < max_batch {
        let left = deadline.saturating_duration_since(Instant::now());
        let next = if left.is_zero() {
            rx.try_recv().ok()
        } else {
            match rx.recv_timeout(left) {
                Ok(j) => Some(j),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
            }
        };
        match next {
            Some(j) => {
                depth.fetch_sub(1, Ordering::SeqCst);
                jobs.push(j);
            }
            None => break,
        }
    }
    jobs
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    model: &InferenceModel,
    retrieval: &RetrievalState,
    rx: &Mutex<Receiver<Job>>,
    stats: &ServerStats,
    busy_us: &std::sync::atomic::AtomicU64,
    hwm: &AtomicUsize,
    depth: &AtomicUsize,
    max_batch: usize,
    linger: Duration,
) {
    let mut g = Graph::inference_with_capacity(hwm.load(Ordering::Relaxed));
    let bind = model.store().bind_all(&mut g);
    let frozen = model.precompute(&mut g, &bind);
    let mark = g.mark();

    loop {
        let jobs = drain_jobs(rx, depth, max_batch, linger);
        if jobs.is_empty() {
            return; // engine shut down
        }
        // Chaos hook: `engine.batch:error:N` drops this round's jobs (their
        // responders close, callers see an internal error);
        // `engine.batch:panic:N` unwinds through the respawn loop above.
        if ssdrec_faults::point("engine.batch").is_err() {
            continue;
        }
        // Busy time starts once there is work; idle blocking in
        // drain_jobs is excluded from the /metrics busy fraction.
        let busy_start = Instant::now();
        // The workspace batches equal-length sequences only (Batch is a
        // dense B×T block with no padding), so group the coalesced jobs by
        // history length and run one forward per group.
        let mut groups: BTreeMap<usize, Vec<Job>> = BTreeMap::new();
        for job in jobs {
            groups.entry(job.seq.len()).or_default().push(job);
        }
        for (seq_len, group) in groups {
            let batch = Batch {
                users: group.iter().map(|j| j.user).collect(),
                items: group.iter().flat_map(|j| j.seq.iter().copied()).collect(),
                seq_len,
                // Same placeholder target the offline recommend path uses;
                // targets never enter the eval forward.
                targets: group.iter().map(|j| j.seq[seq_len - 1]).collect(),
                noise: None,
            };
            match &retrieval.index {
                None => {
                    // Exact path: full-rank score row + bounded-heap top-K.
                    let scores = model.score(&mut g, &bind, &batch, &frozen);
                    let width = model.num_items() + 1;
                    let values = g.value(scores);
                    for (row, job) in group.iter().enumerate() {
                        let row_scores = &values.data()[row * width..(row + 1) * width];
                        let items = ssdrec_metrics::par_top_k(row_scores, job.k);
                        let _ = job.resp.send(Arc::new(Recommendation {
                            user: job.user,
                            k: job.k,
                            items,
                            batch_size: group.len(),
                        }));
                    }
                }
                Some(index) => {
                    // ANN path: stop the forward at h_S, search the HNSW
                    // index for ef_search candidates, then re-rank only
                    // those through the exact scorer arithmetic
                    // (`rerank_score` is bit-identical to the full row's
                    // entries) and the shared pessimistic-tie top-K.
                    let h_s = model.repr(&mut g, &bind, &batch, &frozen);
                    let d = model.dim();
                    let table_var = frozen.items();
                    let hv = g.value(h_s);
                    let table = g.value(table_var);
                    for (row, job) in group.iter().enumerate() {
                        let q = &hv.data()[row * d..(row + 1) * d];
                        let cands = index.candidates(q, retrieval.ef_search);
                        stats.record_candidates(cands.len() as u64);
                        let items = ssdrec_metrics::top_k_sparse(
                            cands.iter().map(|&c| {
                                let ci = c as usize;
                                let e = &table.data()[ci * d..(ci + 1) * d];
                                (ci, ssdrec_ann::rerank_score(q, e))
                            }),
                            job.k,
                        );
                        let _ = job.resp.send(Arc::new(Recommendation {
                            user: job.user,
                            k: job.k,
                            items,
                            batch_size: group.len(),
                        }));
                    }
                }
            }
            stats.record_batch(group.len() as u64);
            // Drop this request's activation nodes; parameters and the
            // frozen tables below the mark stay bound.
            g.truncate(mark);
        }
        hwm.fetch_max(g.high_water(), Ordering::Relaxed);
        busy_us.fetch_add(busy_start.elapsed().as_micros() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdrec_models::BackboneKind;

    fn tiny_engine(cfg: EngineConfig) -> (Engine, SeqRec) {
        // Two identically-seeded models: one served, one for offline
        // reference scoring.
        let model = SeqRec::new(BackboneKind::SasRec, 20, 8, 10, 42);
        let reference = SeqRec::new(BackboneKind::SasRec, 20, 8, 10, 42);
        let stats = Arc::new(ServerStats::new());
        (Engine::new(model.into(), cfg, stats), reference)
    }

    #[test]
    fn served_scores_match_offline_bitwise() {
        let (engine, reference) = tiny_engine(EngineConfig {
            max_len: 10,
            ..EngineConfig::default()
        });
        for seq in [vec![1, 2, 3], vec![5], vec![7, 7, 7, 7]] {
            let served = engine.recommend(0, &seq, 5).expect("serve");
            let offline = reference.recommend(0, &seq, 5);
            assert_eq!(served.items.len(), offline.len());
            for (s, o) in served.items.iter().zip(&offline) {
                assert_eq!(s.0, o.0, "item mismatch for {seq:?}");
                assert_eq!(s.1.to_bits(), o.1.to_bits(), "score bits for {seq:?}");
            }
        }
        engine.shutdown();
    }

    #[test]
    fn long_histories_truncate_to_max_len() {
        let (engine, reference) = tiny_engine(EngineConfig {
            max_len: 4,
            ..EngineConfig::default()
        });
        let long: Vec<usize> = (1..=12).map(|i| (i % 20) + 1).collect();
        let served = engine.recommend(0, &long, 3).expect("serve");
        let offline = reference.recommend(0, &long[long.len() - 4..], 3);
        assert_eq!(
            served.items.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            offline.iter().map(|&(i, _)| i).collect::<Vec<_>>()
        );
        engine.shutdown();
    }

    #[test]
    fn cache_hits_return_the_same_result() {
        let (engine, _) = tiny_engine(EngineConfig::default());
        let a = engine.recommend(3, &[1, 2], 4).expect("first");
        let b = engine.recommend(3, &[1, 2], 4).expect("second");
        assert!(Arc::ptr_eq(&a, &b), "second call must be the cached Arc");
        assert_eq!(engine.stats().cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(engine.stats().cache_misses.load(Ordering::Relaxed), 1);
        // A changed history misses.
        let c = engine.recommend(3, &[1, 2, 3], 4).expect("third");
        assert!(!Arc::ptr_eq(&a, &c));
        engine.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_and_counted() {
        let (engine, _) = tiny_engine(EngineConfig::default());
        assert!(engine.recommend(0, &[], 5).is_err(), "empty seq");
        assert!(engine.recommend(0, &[1], 0).is_err(), "k = 0");
        assert!(engine.recommend(0, &[0], 5).is_err(), "pad item");
        assert!(engine.recommend(0, &[21], 5).is_err(), "item too large");
        assert_eq!(engine.stats().errors_total.load(Ordering::Relaxed), 4);
        assert_eq!(engine.stats().requests_total.load(Ordering::Relaxed), 0);
        engine.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_new_work() {
        let (engine, _) = tiny_engine(EngineConfig::default());
        engine.shutdown();
        engine.shutdown();
        assert!(engine.recommend(0, &[1], 3).is_err());
    }

    fn ann_cfg(ef_search: usize) -> EngineConfig {
        EngineConfig {
            max_len: 10,
            retrieval: RetrievalConfig {
                mode: RetrievalMode::Ann,
                ef_search,
                ..RetrievalConfig::default()
            },
            ..EngineConfig::default()
        }
    }

    #[test]
    fn ann_with_exhaustive_ef_matches_exact_bitwise() {
        // ef_search ≥ catalogue: the candidate set is every item, so the
        // re-rank must reproduce the exact path bit-for-bit.
        let (exact, _) = tiny_engine(EngineConfig {
            max_len: 10,
            ..EngineConfig::default()
        });
        let model = SeqRec::new(BackboneKind::SasRec, 20, 8, 10, 42);
        let ann = Engine::new(model.into(), ann_cfg(64), Arc::new(ServerStats::new()));
        for seq in [vec![1, 2, 3], vec![5], vec![7, 7, 7, 7], vec![19, 2]] {
            let e = exact.recommend(0, &seq, 7).expect("exact");
            let a = ann.recommend(0, &seq, 7).expect("ann");
            assert_eq!(e.items.len(), a.items.len());
            for (x, y) in e.items.iter().zip(&a.items) {
                assert_eq!(x.0, y.0, "item mismatch for {seq:?}");
                assert_eq!(x.1.to_bits(), y.1.to_bits(), "score bits for {seq:?}");
            }
        }
        exact.shutdown();
        ann.shutdown();
    }

    #[test]
    fn ann_rerank_scores_are_exact_scores() {
        // Even with a narrow beam, every returned score must equal the
        // exact path's score of that item (the re-rank is exact; only the
        // candidate *set* is approximate).
        let (_, reference) = tiny_engine(EngineConfig::default());
        let model = SeqRec::new(BackboneKind::SasRec, 20, 8, 10, 42);
        let ann = Engine::new(model.into(), ann_cfg(8), Arc::new(ServerStats::new()));
        let seq = vec![3, 9, 14];
        let served = ann.recommend(0, &seq, 5).expect("ann");
        let full = reference.recommend(0, &seq, 20); // whole catalogue
        let truth: std::collections::HashMap<usize, u32> =
            full.iter().map(|&(i, s)| (i, s.to_bits())).collect();
        assert_eq!(served.items.len(), 5);
        for &(item, score) in &served.items {
            assert_eq!(
                Some(&score.to_bits()),
                truth.get(&item),
                "re-rank bits for item {item}"
            );
        }
        // scores descending, ids unique
        for w in served.items.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        ann.shutdown();
    }

    #[test]
    fn ann_mode_publishes_retrieval_stats() {
        let model = SeqRec::new(BackboneKind::SasRec, 20, 8, 10, 42);
        let ann = Engine::new(model.into(), ann_cfg(8), Arc::new(ServerStats::new()));
        ann.recommend(0, &[1, 2], 3).expect("serve");
        let info = ann.stats().retrieval();
        assert_eq!(info.mode, "ann");
        assert_eq!(info.m, 16);
        assert_eq!(info.ef_search, 8);
        assert!(info.build_us > 0);
        assert_eq!(ann.stats().candidates.count(), 1);
        ann.shutdown();
    }

    #[test]
    fn requests_record_latency() {
        let (engine, _) = tiny_engine(EngineConfig::default());
        engine.recommend(1, &[4, 5, 6], 2).expect("serve");
        assert_eq!(engine.stats().latency.count(), 1);
        assert!(engine.stats().latency.quantile_ms(0.5) > 0.0);
        engine.shutdown();
    }
}
