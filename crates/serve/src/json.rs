//! Hand-rolled JSON encoding and decoding — the minimal subset the serving
//! protocol needs (objects, arrays, numbers, strings, booleans, null), with
//! no external dependencies.
//!
//! Numbers round-trip losslessly: values are emitted with Rust's shortest
//! round-trip float formatting, so a score serialised here and parsed back
//! with `str::parse::<f32>` reproduces the exact bit pattern — the property
//! the serving parity test relies on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as f64; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. BTreeMap keeps encoding deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer (rejects fractions).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u32::MAX as f64 {
            Some(n as usize)
        } else {
            None
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            map.insert(key, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }
}

/// Escape and quote a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f32 with shortest round-trip representation (Rust's `Display`),
/// mapping non-finite values to `null` (JSON has no NaN/inf).
pub fn f32_to_json(x: f32) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Format an f64 the same way.
pub fn f64_to_json(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shape() {
        let v = parse(r#"{"user": 7, "seq": [3, 1, 4], "k": 10}"#).unwrap();
        assert_eq!(v.get("user").unwrap().as_usize(), Some(7));
        let seq: Vec<usize> = v
            .get("seq")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|j| j.as_usize().unwrap())
            .collect();
        assert_eq!(seq, vec![3, 1, 4]);
        assert_eq!(v.get("k").unwrap().as_usize(), Some(10));
    }

    #[test]
    fn parses_nested_and_strings() {
        let v = parse(r#"{"a":[{"b":"x\ny"},true,null,-1.5e2]}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(arr[1], Json::Bool(true));
        assert_eq!(arr[2], Json::Null);
        assert_eq!(arr[3].as_f64(), Some(-150.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1} x"#).is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [0.1f32, -3.25e-7, 1.0 / 3.0, f32::MIN_POSITIVE, 12345.678] {
            let enc = f32_to_json(x);
            let back: f32 = enc.parse().unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{enc}");
        }
    }

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("a\"b\\c\n"), r#""a\"b\\c\n""#);
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(parse("1.5").unwrap().as_usize(), None);
        assert_eq!(parse("-2").unwrap().as_usize(), None);
        assert_eq!(parse("42").unwrap().as_usize(), Some(42));
    }
}
