//! A deliberately minimal HTTP/1.1 implementation over `std::net` — just
//! enough protocol for the serving endpoints: request-line + headers + body
//! parsing (honouring `Content-Length`), query-string decoding, and
//! `Connection: close` responses.

use std::collections::HashMap;
use std::io::{self, Read, Write};

/// Cap on header block + body, to bound memory per connection.
const MAX_HEAD: usize = 16 * 1024;
const MAX_BODY: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string, e.g. `/recommend`.
    pub path: String,
    /// Decoded query parameters.
    pub query: HashMap<String, String>,
    /// Raw request body.
    pub body: Vec<u8>,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Minimal percent-decoding (`%XX` and `+` → space) for query values.
fn percent_decode(s: &str) -> String {
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = b
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok());
                match hex {
                    Some(v) => {
                        out.push(v);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(q: &str) -> HashMap<String, String> {
    q.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Read one request from the stream. Returns `Ok(None)` on a cleanly closed
/// connection with no bytes sent.
pub fn read_request(stream: &mut impl Read) -> io::Result<Option<Request>> {
    // Read until the blank line terminating the header block.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte)? {
            0 => {
                if head.is_empty() {
                    return Ok(None);
                }
                return Err(bad("connection closed mid-headers"));
            }
            _ => head.push(byte[0]),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEAD {
            return Err(bad("header block too large"));
        }
    }
    let text = std::str::from_utf8(&head).map_err(|_| bad("non-UTF-8 headers"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_string();
    let target = parts.next().ok_or_else(|| bad("missing path"))?;
    if !target.starts_with('/') {
        return Err(bad("path must be absolute"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), HashMap::new()),
    };

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        query,
        body,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete `Connection: close` response with a JSON body.
pub fn write_json(stream: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        status,
        reason(status),
        body.len(),
        body
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /recommend HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"user\": 1}";
        let req = read_request(&mut Cursor::new(&raw[..]))
            .unwrap()
            .expect("request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/recommend");
        assert_eq!(req.body, b"{\"user\": 1}");
    }

    #[test]
    fn parses_query_string() {
        let raw = b"GET /recommend?user=3&seq=1%2C2,3&k=5 HTTP/1.1\r\n\r\n";
        let req = read_request(&mut Cursor::new(&raw[..]))
            .unwrap()
            .expect("request");
        assert_eq!(req.path, "/recommend");
        assert_eq!(req.query.get("user").map(String::as_str), Some("3"));
        assert_eq!(req.query.get("seq").map(String::as_str), Some("1,2,3"));
        assert_eq!(req.query.get("k").map(String::as_str), Some("5"));
    }

    #[test]
    fn empty_connection_is_none() {
        let req = read_request(&mut Cursor::new(&b""[..])).unwrap();
        assert!(req.is_none());
    }

    #[test]
    fn rejects_truncated_body() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        assert!(read_request(&mut Cursor::new(&raw[..])).is_err());
    }

    #[test]
    fn rejects_oversized_declared_body() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(read_request(&mut Cursor::new(raw.as_bytes())).is_err());
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_json(&mut out, 200, "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
