//! # ssdrec-serve
//!
//! The online inference subsystem: serve a trained checkpoint over HTTP
//! with scores **bit-identical** to the offline evaluation path, using
//! nothing outside `std`.
//!
//! Pipeline per request:
//!
//! ```text
//! TcpListener ──► connection thread ──► validate ──► session cache ──┐
//!                                                                    │ miss
//!                      mpsc queue ◄─────────────────────────────────┘
//!                          │  (coalesce up to max_batch, linger a moment)
//!                          ▼
//!             worker thread: frozen Graph (params bound once, stage-1
//!             tables + scorer transpose precomputed below a mark)
//!                          │  eval_scores_frozen → top_k per row
//!                          ▼
//!                  responses + /metrics histograms
//! ```
//!
//! See `DESIGN.md` §"Serving architecture" for the full rationale.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod http;
pub mod json;
pub mod server;
pub mod stats;
pub mod swap;

pub use client::{request_with_retry, ClientError, RetryPolicy};
pub use engine::{
    Engine, EngineConfig, InferenceModel, RecError, Recommendation, RetrievalConfig, RetrievalMode,
};
pub use server::{serve, serve_slot, serve_with, ServeConfig, ServerHandle};
pub use stats::{LatencyHistogram, RetrievalInfo, ServerStats};
pub use swap::{EngineSlot, LoadedModel, ModelLoader, ReloadOutcome};
