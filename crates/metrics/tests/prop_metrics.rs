//! Property-based tests of the evaluation metrics, running on the
//! in-workspace `ssdrec-testkit` property framework.

use ssdrec_testkit::{gens, property};

use ssdrec_metrics::{
    full_rank, t_two_sided_p, top_k, welch_t_test, OupAccumulator, RankingAccumulator,
};

property! {
    cases = 64;

    /// `top_k` equals the k-prefix of a full sort under the documented tie
    /// rule (score descending, then item ID ascending), and each returned
    /// position agrees with `full_rank`. Scores are drawn from a coarse
    /// grid so ties actually occur.
    fn top_k_matches_full_sort(
        raw in gens::vecs(gens::usizes(0, 6), 2, 64),
        k in gens::usizes(0, 20),
    ) {
        let scores: Vec<f32> = raw.iter().map(|&u| u as f32 * 0.5 - 1.0).collect();
        let got = top_k(&scores, k);

        let mut want: Vec<(usize, f32)> = scores
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &s)| (i, s))
            .collect();
        want.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap()
                .then_with(|| a.0.cmp(&b.0))
        });
        want.truncate(k);
        assert_eq!(got, want);

        for (p, &(item, _)) in got.iter().enumerate() {
            assert_eq!(full_rank(&scores, item), p + 1);
        }
    }

    /// The rank of any target lies in [1, catalogue size].
    fn rank_bounds(
        scores in gens::vecs(gens::f32s(-5.0, 5.0), 5, 39),
        tpick in gens::usizes(1, 4),
    ) {
        let target = tpick.min(scores.len() - 1).max(1);
        let r = full_rank(&scores, target);
        assert!(r >= 1 && r < scores.len());
    }

    /// Raising the target's score never worsens its rank.
    fn rank_monotone_in_score(
        scores in gens::vecs(gens::f32s(-5.0, 5.0), 6, 19),
        boost in gens::f32s(0.1, 5.0),
    ) {
        let mut scores = scores;
        let target = 2usize;
        let before = full_rank(&scores, target);
        scores[target] += boost;
        let after = full_rank(&scores, target);
        assert!(after <= before);
    }

    /// HR is monotone in K; HR ≥ NDCG ≥ MRR at equal K; all in [0,1].
    fn metric_ordering(ranks in gens::vecs(gens::usizes(1, 200), 1, 49)) {
        let mut acc = RankingAccumulator::new();
        for r in ranks {
            acc.push_rank(r);
        }
        for k in [5usize, 10, 20] {
            assert!((0.0..=1.0).contains(&acc.hr(k)));
            assert!(acc.ndcg(k) <= acc.hr(k) + 1e-12);
            assert!(acc.mrr(k) <= acc.ndcg(k) + 1e-12);
        }
        assert!(acc.hr(5) <= acc.hr(10) && acc.hr(10) <= acc.hr(20));
    }

    /// OUP ratios are proper fractions and complements behave: a denoiser
    /// keeping everything has under=1/over=0; dropping everything inverts.
    fn oup_extremes(labels in gens::vecs(gens::bools(), 1, 39)) {
        let keep_all = vec![true; labels.len()];
        let drop_all = vec![false; labels.len()];
        let has_noise = labels.iter().any(|&l| l);
        let has_clean = labels.iter().any(|&l| !l);

        let mut a = OupAccumulator::new();
        a.push(&labels, &keep_all);
        if has_noise {
            assert_eq!(a.under_denoising_ratio(), 1.0);
        }
        assert_eq!(a.over_denoising_ratio(), 0.0);

        let mut b = OupAccumulator::new();
        b.push(&labels, &drop_all);
        assert_eq!(b.under_denoising_ratio(), 0.0);
        if has_clean {
            assert_eq!(b.over_denoising_ratio(), 1.0);
        }
    }

    /// p-values are valid probabilities and t=0 is never significant.
    fn p_value_bounds(t in gens::f64s(-20.0, 20.0), df in gens::f64s(2.0, 500.0)) {
        let p = t_two_sided_p(t, df);
        assert!((0.0..=1.0).contains(&p));
        assert!(t_two_sided_p(0.0, df) > 0.999);
    }

    /// A mean shift strictly larger than the spread is detected.
    fn welch_detects_large_shift(base in gens::vecs(gens::f64s(0.0, 1.0), 10, 29)) {
        let shifted: Vec<f64> = base.iter().map(|x| x + 10.0).collect();
        let tt = welch_t_test(&shifted, &base);
        assert!(tt.p < 0.01, "p = {}", tt.p);
        assert!(tt.t > 0.0);
    }
}
