//! Property-based tests of the evaluation metrics.

use proptest::prelude::*;

use ssdrec_metrics::{full_rank, t_two_sided_p, welch_t_test, OupAccumulator, RankingAccumulator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The rank of any target lies in [1, catalogue size].
    #[test]
    fn rank_bounds(
        scores in prop::collection::vec(-5.0f32..5.0, 5..40),
        tpick in 1usize..4,
    ) {
        let target = tpick.min(scores.len() - 1).max(1);
        let r = full_rank(&scores, target);
        prop_assert!(r >= 1 && r < scores.len());
    }

    /// Raising the target's score never worsens its rank.
    #[test]
    fn rank_monotone_in_score(
        mut scores in prop::collection::vec(-5.0f32..5.0, 6..20),
        boost in 0.1f32..5.0,
    ) {
        let target = 2usize;
        let before = full_rank(&scores, target);
        scores[target] += boost;
        let after = full_rank(&scores, target);
        prop_assert!(after <= before);
    }

    /// HR is monotone in K; HR ≥ NDCG ≥ MRR at equal K; all in [0,1].
    #[test]
    fn metric_ordering(ranks in prop::collection::vec(1usize..200, 1..50)) {
        let mut acc = RankingAccumulator::new();
        for r in ranks {
            acc.push_rank(r);
        }
        for k in [5usize, 10, 20] {
            prop_assert!((0.0..=1.0).contains(&acc.hr(k)));
            prop_assert!(acc.ndcg(k) <= acc.hr(k) + 1e-12);
            prop_assert!(acc.mrr(k) <= acc.ndcg(k) + 1e-12);
        }
        prop_assert!(acc.hr(5) <= acc.hr(10) && acc.hr(10) <= acc.hr(20));
    }

    /// OUP ratios are proper fractions and complements behave: a denoiser
    /// keeping everything has under=1/over=0; dropping everything inverts.
    #[test]
    fn oup_extremes(labels in prop::collection::vec(any::<bool>(), 1..40)) {
        let keep_all = vec![true; labels.len()];
        let drop_all = vec![false; labels.len()];
        let has_noise = labels.iter().any(|&l| l);
        let has_clean = labels.iter().any(|&l| !l);

        let mut a = OupAccumulator::new();
        a.push(&labels, &keep_all);
        if has_noise {
            prop_assert_eq!(a.under_denoising_ratio(), 1.0);
        }
        prop_assert_eq!(a.over_denoising_ratio(), 0.0);

        let mut b = OupAccumulator::new();
        b.push(&labels, &drop_all);
        prop_assert_eq!(b.under_denoising_ratio(), 0.0);
        if has_clean {
            prop_assert_eq!(b.over_denoising_ratio(), 1.0);
        }
    }

    /// p-values are valid probabilities and t=0 is never significant.
    #[test]
    fn p_value_bounds(t in -20.0f64..20.0, df in 2.0f64..500.0) {
        let p = t_two_sided_p(t, df);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(t_two_sided_p(0.0, df) > 0.999);
    }

    /// A mean shift strictly larger than the spread is detected.
    #[test]
    fn welch_detects_large_shift(base in prop::collection::vec(0.0f64..1.0, 10..30)) {
        let shifted: Vec<f64> = base.iter().map(|x| x + 10.0).collect();
        let tt = welch_t_test(&shifted, &base);
        prop_assert!(tt.p < 0.01, "p = {}", tt.p);
        prop_assert!(tt.t > 0.0);
    }
}
