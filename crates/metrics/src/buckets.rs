//! Metrics bucketed by sequence length.
//!
//! The paper's central motivation is that denoising is least reliable — and
//! augmentation most valuable — on *short* sequences (§I: "especially for
//! short sequences"). This module makes that claim measurable: every example
//! is recorded with its history length, and any metric can be read per
//! length bucket.

use crate::ranking::{MetricReport, RankingAccumulator};

/// Length-bucket boundaries: a rank landing in bucket `i` has history length
/// in `[edges[i], edges[i+1])`; the last bucket is open-ended.
#[derive(Clone, Debug)]
pub struct LengthBuckets {
    edges: Vec<usize>,
    accs: Vec<RankingAccumulator>,
}

impl LengthBuckets {
    /// Buckets from boundary edges, e.g. `[0, 5, 10, 20]` gives
    /// `[0,5) [5,10) [10,20) [20,∞)`.
    ///
    /// # Panics
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: &[usize]) -> Self {
        assert!(!edges.is_empty(), "need at least one edge");
        assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must increase");
        LengthBuckets {
            edges: edges.to_vec(),
            accs: vec![RankingAccumulator::new(); edges.len()],
        }
    }

    /// The paper-motivated default: short `[0,10)`, medium `[10,25)`,
    /// long `[25,∞)`.
    pub fn short_medium_long() -> Self {
        Self::new(&[0, 10, 25])
    }

    fn bucket_of(&self, len: usize) -> usize {
        self.edges
            .iter()
            .rposition(|&e| len >= e)
            .unwrap_or_default()
    }

    /// Record one example's rank with its history length.
    pub fn push(&mut self, seq_len: usize, rank: usize) {
        let b = self.bucket_of(seq_len);
        self.accs[b].push_rank(rank);
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.edges.len()
    }

    /// Human-readable label for bucket `i` (e.g. `"[5,10)"`, `"[25,+)"`).
    pub fn label(&self, i: usize) -> String {
        match self.edges.get(i + 1) {
            Some(hi) => format!("[{},{})", self.edges[i], hi),
            None => format!("[{},+)", self.edges[i]),
        }
    }

    /// Example count in bucket `i`.
    pub fn count(&self, i: usize) -> usize {
        self.accs[i].len()
    }

    /// Metric report for bucket `i`.
    pub fn report(&self, i: usize) -> MetricReport {
        self.accs[i].report()
    }

    /// Per-bucket `(label, count, report)` rows.
    pub fn rows(&self) -> Vec<(String, usize, MetricReport)> {
        (0..self.num_buckets())
            .map(|i| (self.label(i), self.count(i), self.report(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment() {
        let b = LengthBuckets::new(&[0, 5, 10]);
        assert_eq!(b.bucket_of(0), 0);
        assert_eq!(b.bucket_of(4), 0);
        assert_eq!(b.bucket_of(5), 1);
        assert_eq!(b.bucket_of(9), 1);
        assert_eq!(b.bucket_of(10), 2);
        assert_eq!(b.bucket_of(1000), 2);
    }

    #[test]
    fn labels() {
        let b = LengthBuckets::new(&[0, 5, 10]);
        assert_eq!(b.label(0), "[0,5)");
        assert_eq!(b.label(1), "[5,10)");
        assert_eq!(b.label(2), "[10,+)");
    }

    #[test]
    fn metrics_separate_per_bucket() {
        let mut b = LengthBuckets::new(&[0, 10]);
        b.push(3, 1); // short: perfect
        b.push(4, 1);
        b.push(15, 100); // long: miss
        assert_eq!(b.count(0), 2);
        assert_eq!(b.count(1), 1);
        assert_eq!(b.report(0).hr20, 1.0);
        assert_eq!(b.report(1).hr20, 0.0);
    }

    #[test]
    fn rows_cover_all_buckets() {
        let mut b = LengthBuckets::short_medium_long();
        b.push(2, 5);
        b.push(12, 5);
        b.push(30, 5);
        let rows = b.rows();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|(_, c, _)| *c == 1));
    }

    #[test]
    #[should_panic]
    fn rejects_unsorted_edges() {
        LengthBuckets::new(&[5, 0]);
    }
}
