//! Significance testing: Welch's two-sided t-test.
//!
//! The paper reports all improvements as significant under a two-sided
//! t-test with p < 0.05 over per-user metric indicators.

/// Result of a two-sample Welch t-test.
#[derive(Clone, Copy, Debug)]
pub struct TTest {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p: f64,
}

fn mean_var(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

/// Regularised incomplete beta function via continued fractions
/// (Lentz's algorithm), used for the t-distribution CDF.
fn betai(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta).exp();
    // Continued fraction.
    let cf = |a: f64, b: f64, x: f64| -> f64 {
        let mut c = 1.0f64;
        let mut d = 1.0 - (a + b) * x / (a + 1.0);
        if d.abs() < 1e-30 {
            d = 1e-30;
        }
        d = 1.0 / d;
        let mut h = d;
        for m in 1..200 {
            let m = m as f64;
            let num1 = m * (b - m) * x / ((a + 2.0 * m - 1.0) * (a + 2.0 * m));
            d = 1.0 + num1 * d;
            if d.abs() < 1e-30 {
                d = 1e-30;
            }
            c = 1.0 + num1 / c;
            if c.abs() < 1e-30 {
                c = 1e-30;
            }
            d = 1.0 / d;
            h *= d * c;
            let num2 = -(a + m) * (a + b + m) * x / ((a + 2.0 * m) * (a + 2.0 * m + 1.0));
            d = 1.0 + num2 * d;
            if d.abs() < 1e-30 {
                d = 1e-30;
            }
            c = 1.0 + num2 / c;
            if c.abs() < 1e-30 {
                c = 1e-30;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-12 {
                break;
            }
        }
        h
    };
    if x < (a + 1.0) / (a + b + 2.0) {
        front * cf(a, b, x) / a
    } else {
        // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a), which keeps the continued
        // fraction in its fast-converging region.
        1.0 - betai(b, a, 1.0 - x)
    }
}

/// Lanczos approximation of `ln Γ(x)`.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 7] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_5e-2,
        -0.539_523_938_495_4e-5,
        0.0,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for gj in G.iter().take(6) {
        y += 1.0;
        ser += gj / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Two-sided p-value of a t statistic under `df` degrees of freedom.
pub fn t_two_sided_p(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    betai(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Welch's two-sample t-test over per-example metric values.
///
/// # Panics
/// Panics if either sample has fewer than two observations.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> TTest {
    assert!(
        a.len() >= 2 && b.len() >= 2,
        "need ≥ 2 observations per sample"
    );
    let (ma, va) = mean_var(a);
    let (mb, vb) = mean_var(b);
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        // Identical constant samples: no evidence of difference.
        let p = if (ma - mb).abs() < 1e-15 { 1.0 } else { 0.0 };
        return TTest {
            t: if p == 1.0 { 0.0 } else { f64::INFINITY },
            df: na + nb - 2.0,
            p,
        };
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    TTest {
        t,
        df,
        p: t_two_sided_p(t, df),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_not_significant() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let tt = welch_t_test(&a, &a);
        assert!(tt.p > 0.9, "p = {}", tt.p);
    }

    #[test]
    fn clearly_different_samples_significant() {
        let a: Vec<f64> = (0..50).map(|i| 10.0 + (i % 3) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..50).map(|i| 0.0 + (i % 3) as f64 * 0.1).collect();
        let tt = welch_t_test(&a, &b);
        assert!(tt.p < 1e-6, "p = {}", tt.p);
        assert!(tt.t > 0.0);
    }

    #[test]
    fn p_value_symmetry() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| i as f64 + 5.0).collect();
        let ab = welch_t_test(&a, &b);
        let ba = welch_t_test(&b, &a);
        assert!((ab.p - ba.p).abs() < 1e-12);
        assert!((ab.t + ba.t).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_sanity() {
        // For df → large, t = 1.96 gives p ≈ 0.05.
        let p = t_two_sided_p(1.96, 1000.0);
        assert!((p - 0.05).abs() < 0.005, "p = {p}");
        // t = 0 is never significant.
        assert!((t_two_sided_p(0.0, 10.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_equal_samples() {
        let a = vec![0.5; 10];
        let tt = welch_t_test(&a, &a);
        assert_eq!(tt.p, 1.0);
    }
}
