//! Over/under-denoising (OUP) measurement — the paper's Fig. 1.
//!
//! Given ground-truth noise flags and a denoiser's keep/drop decisions:
//!
//! * **under-denoising ratio** = kept noise / total noise
//!   ("how many inserted items will be kept"),
//! * **over-denoising ratio** = dropped clean items / total clean items
//!   ("how many raw items will be dropped").

/// Accumulates OUP ratios over many sequences.
#[derive(Clone, Debug, Default)]
pub struct OupAccumulator {
    noise_total: usize,
    noise_kept: usize,
    clean_total: usize,
    clean_dropped: usize,
}

impl OupAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sequence's outcome. `is_noise[i]` is the ground truth for
    /// position `i`; `kept[i]` is whether the denoiser kept that position.
    ///
    /// # Panics
    /// Panics if the two slices differ in length.
    pub fn push(&mut self, is_noise: &[bool], kept: &[bool]) {
        assert_eq!(is_noise.len(), kept.len(), "OUP label/decision mismatch");
        for (&n, &k) in is_noise.iter().zip(kept) {
            if n {
                self.noise_total += 1;
                if k {
                    self.noise_kept += 1;
                }
            } else {
                self.clean_total += 1;
                if !k {
                    self.clean_dropped += 1;
                }
            }
        }
    }

    /// Kept-noise fraction (0 when no noise was present).
    pub fn under_denoising_ratio(&self) -> f64 {
        if self.noise_total == 0 {
            0.0
        } else {
            self.noise_kept as f64 / self.noise_total as f64
        }
    }

    /// Dropped-clean fraction (0 when no clean items were present).
    pub fn over_denoising_ratio(&self) -> f64 {
        if self.clean_total == 0 {
            0.0
        } else {
            self.clean_dropped as f64 / self.clean_total as f64
        }
    }

    /// Total positions recorded.
    pub fn total(&self) -> usize {
        self.noise_total + self.clean_total
    }

    /// Overall fraction of positions dropped (the paper reports per-dataset
    /// drop ratios in §IV-E).
    pub fn drop_ratio(&self) -> f64 {
        let dropped = self.clean_dropped + (self.noise_total - self.noise_kept);
        if self.total() == 0 {
            0.0
        } else {
            dropped as f64 / self.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_denoiser_has_zero_oup() {
        let mut acc = OupAccumulator::new();
        acc.push(&[false, true, false], &[true, false, true]);
        assert_eq!(acc.under_denoising_ratio(), 0.0);
        assert_eq!(acc.over_denoising_ratio(), 0.0);
    }

    #[test]
    fn keep_everything_maximises_under_denoising() {
        let mut acc = OupAccumulator::new();
        acc.push(&[true, true, false], &[true, true, true]);
        assert_eq!(acc.under_denoising_ratio(), 1.0);
        assert_eq!(acc.over_denoising_ratio(), 0.0);
    }

    #[test]
    fn drop_everything_maximises_over_denoising() {
        let mut acc = OupAccumulator::new();
        acc.push(&[true, false, false], &[false, false, false]);
        assert_eq!(acc.under_denoising_ratio(), 0.0);
        assert_eq!(acc.over_denoising_ratio(), 1.0);
        assert_eq!(acc.drop_ratio(), 1.0);
    }

    #[test]
    fn ratios_accumulate_across_sequences() {
        let mut acc = OupAccumulator::new();
        acc.push(&[true, false], &[true, true]); // keeps 1 noise
        acc.push(&[true, false], &[false, false]); // drops 1 clean
        assert_eq!(acc.under_denoising_ratio(), 0.5);
        assert_eq!(acc.over_denoising_ratio(), 0.5);
        assert_eq!(acc.total(), 4);
    }

    #[test]
    fn empty_is_zero() {
        let acc = OupAccumulator::new();
        assert_eq!(acc.under_denoising_ratio(), 0.0);
        assert_eq!(acc.over_denoising_ratio(), 0.0);
        assert_eq!(acc.drop_ratio(), 0.0);
    }
}
