//! Full-ranking top-K metrics: HR@K, NDCG@K, MRR@K (paper §IV-A1).
//!
//! Following the paper, metrics are computed over the *entire item universe*
//! (full ranking), never over sampled negatives, to avoid sampling bias
//! [Krichene & Rendle, KDD'20].

/// The rank (1-based) of `target` among `scores`, where `scores[i]` is the
/// model score of item ID `i` (index 0 = padding, ignored).
///
/// Ties are resolved pessimistically: items with a strictly higher score and
/// lower-ID items with an equal score rank ahead of the target.
pub fn full_rank(scores: &[f32], target: usize) -> usize {
    let ts = scores[target];
    let mut rank = 1usize;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if i == target {
            continue;
        }
        if s > ts || (s == ts && i < target) {
            rank += 1;
        }
    }
    rank
}

/// One retrieved item: `(item ID, score)`.
type Scored = (usize, f32);

/// Entry ordering shared by [`top_k`] and [`full_rank`]: higher score wins,
/// equal scores break pessimistically toward the lower item ID (so the item
/// at position `p` of [`top_k`] has `full_rank == p + 1`). NaN scores are
/// treated as equal to everything and resolved by ID; model scores are
/// expected to be finite.
fn better(a: Scored, b: Scored) -> bool {
    match a.1.partial_cmp(&b.1) {
        Some(std::cmp::Ordering::Greater) => true,
        Some(std::cmp::Ordering::Less) => false,
        _ => a.0 < b.0,
    }
}

/// A min-heap entry wrapper: the heap root is the *worst* retained item.
struct HeapEntry(Scored);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        !better(self.0, other.0) && !better(other.0, self.0)
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: a *better* item is "smaller" so BinaryHeap (a max-heap)
        // keeps the worst retained item at the root for cheap eviction.
        if better(self.0, other.0) {
            std::cmp::Ordering::Less
        } else if better(other.0, self.0) {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Equal
        }
    }
}

/// Partial top-`k` selection over full-catalogue `scores` (index = item ID,
/// index 0 = padding, never returned), using a bounded min-heap: `O(V log
/// k)` instead of a full `O(V log V)` sort. Returns at most `k` items in
/// descending score order with the same pessimistic tie rule as
/// [`full_rank`] — ties go to the lower item ID, so the result is exactly
/// the prefix of the full ranking.
///
/// Shared by offline evaluation (`RecModel::recommend` in `ssdrec-models`)
/// and the online retrieval engine in `ssdrec-serve`.
pub fn top_k(scores: &[f32], k: usize) -> Vec<Scored> {
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    if k == 0 {
        return Vec::new();
    }
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if heap.len() < k {
            heap.push(HeapEntry((i, s)));
        } else if better((i, s), heap.peek().expect("non-empty").0) {
            heap.pop();
            heap.push(HeapEntry((i, s)));
        }
    }
    let mut out: Vec<Scored> = heap.into_iter().map(|e| e.0).collect();
    out.sort_by(|&a, &b| {
        if better(a, b) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });
    out
}

/// [`top_k`] restricted to item IDs in `[lo, hi)` (index 0 still skipped).
fn top_k_range(scores: &[f32], k: usize, lo: usize, hi: usize) -> Vec<Scored> {
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for i in lo.max(1)..hi {
        let cand = (i, scores[i]);
        if heap.len() < k {
            heap.push(HeapEntry(cand));
        } else if better(cand, heap.peek().expect("non-empty").0) {
            heap.pop();
            heap.push(HeapEntry(cand));
        }
    }
    let mut out: Vec<Scored> = heap.into_iter().map(|e| e.0).collect();
    out.sort_by(|&a, &b| {
        if better(a, b) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });
    out
}

/// [`top_k`] over a sparse candidate set `(item ID, score)` instead of a
/// dense score row — the selection stage of two-stage (ANN + exact re-rank)
/// retrieval in `ssdrec-serve`. Same bounded min-heap, same [`better`]
/// total order: fed the full catalogue it returns exactly what [`top_k`]
/// returns on the dense row, and on any subset the result is the best-`k`
/// prefix of that subset under the pessimistic tie rule (equal scores break
/// to the lower item ID). The pad item 0 is skipped, duplicate IDs are the
/// caller's bug (the duplicate entries would compete independently).
pub fn top_k_sparse(cands: impl IntoIterator<Item = Scored>, k: usize) -> Vec<Scored> {
    use std::collections::BinaryHeap;
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for (i, s) in cands {
        if i == 0 {
            continue;
        }
        if heap.len() < k {
            heap.push(HeapEntry((i, s)));
        } else if better((i, s), heap.peek().expect("non-empty").0) {
            heap.pop();
            heap.push(HeapEntry((i, s)));
        }
    }
    let mut out: Vec<Scored> = heap.into_iter().map(|e| e.0).collect();
    out.sort_by(|&a, &b| {
        if better(a, b) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });
    out
}

/// Catalogue size below which [`par_top_k`] falls through to [`top_k`].
const PAR_TOPK_MIN: usize = 4096;

/// Parallel [`top_k`]: the catalogue is split into item-ID ranges, each
/// range selects its local top `k`, and sorted candidate lists are merged
/// pairwise. Selection under the strict total order of [`better`] is
/// *exact* — no float arithmetic is reassociated — so the result equals
/// [`top_k`] element-for-element and bit-for-bit at every thread count.
pub fn par_top_k(scores: &[f32], k: usize) -> Vec<Scored> {
    if k == 0 || scores.len() < PAR_TOPK_MIN || ssdrec_runtime::threads() == 1 {
        return top_k(scores, k);
    }
    let grain = scores.len().div_ceil(16).max(1);
    ssdrec_runtime::parallel_reduce(
        scores.len(),
        grain,
        |s, e| top_k_range(scores, k, s, e),
        |a, b| {
            // Exact sorted merge of two candidate lists, keeping the best k.
            let mut out = Vec::with_capacity(k.min(a.len() + b.len()));
            let (mut ia, mut ib) = (0, 0);
            while out.len() < k && (ia < a.len() || ib < b.len()) {
                let take_a = match (a.get(ia), b.get(ib)) {
                    (Some(&x), Some(&y)) => better(x, y),
                    (Some(_), None) => true,
                    _ => false,
                };
                if take_a {
                    out.push(a[ia]);
                    ia += 1;
                } else {
                    out.push(b[ib]);
                    ib += 1;
                }
            }
            out
        },
    )
    .unwrap_or_default()
}

/// Rank many evaluation rows at once: `flat` is a row-major `B×width` score
/// matrix and `targets[r]` the held-out item of row `r`. Rows are ranked on
/// the [`ssdrec_runtime`] pool — each output slot is written by exactly one
/// chunk, so the result is identical to mapping [`full_rank`] sequentially.
pub fn rank_rows(flat: &[f32], width: usize, targets: &[usize]) -> Vec<usize> {
    let rows = targets.len();
    assert_eq!(flat.len(), rows * width, "rank_rows shape mismatch");
    let mut ranks = vec![0usize; rows];
    let grain = rows.div_ceil(32).max(1);
    ssdrec_runtime::parallel_chunks_mut(&mut ranks, grain, |ci, block| {
        let r0 = ci * grain;
        for (j, slot) in block.iter_mut().enumerate() {
            let r = r0 + j;
            *slot = full_rank(&flat[r * width..(r + 1) * width], targets[r]);
        }
    });
    ranks
}

/// Accumulates ranking metrics over many evaluation examples.
#[derive(Clone, Debug, Default)]
pub struct RankingAccumulator {
    ranks: Vec<usize>,
}

impl RankingAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one example given full-catalogue `scores` and the true item.
    pub fn push_scores(&mut self, scores: &[f32], target: usize) {
        self.ranks.push(full_rank(scores, target));
    }

    /// Record one example given a precomputed rank (1-based).
    pub fn push_rank(&mut self, rank: usize) {
        assert!(rank >= 1, "ranks are 1-based");
        self.ranks.push(rank);
    }

    /// Number of examples recorded.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Hit Ratio @ K: fraction of examples ranked within the top K.
    pub fn hr(&self, k: usize) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let hits = self.ranks.iter().filter(|&&r| r <= k).count();
        hits as f64 / self.ranks.len() as f64
    }

    /// NDCG @ K: `1 / log2(rank + 1)` for hits, 0 otherwise (single target,
    /// so IDCG = 1).
    pub fn ndcg(&self, k: usize) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .ranks
            .iter()
            .map(|&r| {
                if r <= k {
                    1.0 / ((r as f64) + 1.0).log2()
                } else {
                    0.0
                }
            })
            .sum();
        sum / self.ranks.len() as f64
    }

    /// MRR @ K: reciprocal rank for hits, 0 otherwise.
    pub fn mrr(&self, k: usize) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .ranks
            .iter()
            .map(|&r| if r <= k { 1.0 / r as f64 } else { 0.0 })
            .sum();
        sum / self.ranks.len() as f64
    }

    /// The raw recorded ranks (1-based), in insertion order.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Per-example binary hit indicators @ K (for significance testing).
    pub fn hit_indicators(&self, k: usize) -> Vec<f64> {
        self.ranks
            .iter()
            .map(|&r| if r <= k { 1.0 } else { 0.0 })
            .collect()
    }

    /// The paper's standard report: HR@{5,10,20}, NDCG@{5,10,20}, MRR@20.
    pub fn report(&self) -> MetricReport {
        MetricReport {
            hr5: self.hr(5),
            hr10: self.hr(10),
            hr20: self.hr(20),
            ndcg5: self.ndcg(5),
            ndcg10: self.ndcg(10),
            ndcg20: self.ndcg(20),
            mrr20: self.mrr(20),
        }
    }
}

/// The seven-metric row used throughout the paper's tables.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricReport {
    /// Hit ratio at 5.
    pub hr5: f64,
    /// Hit ratio at 10.
    pub hr10: f64,
    /// Hit ratio at 20.
    pub hr20: f64,
    /// NDCG at 5.
    pub ndcg5: f64,
    /// NDCG at 10.
    pub ndcg10: f64,
    /// NDCG at 20.
    pub ndcg20: f64,
    /// MRR at 20.
    pub mrr20: f64,
}

impl MetricReport {
    /// Mean relative improvement of `self` over `base` across all seven
    /// metrics, as a percentage (the paper's "Improvement" rows).
    pub fn improvement_over(&self, base: &MetricReport) -> f64 {
        let pairs = [
            (self.hr5, base.hr5),
            (self.hr10, base.hr10),
            (self.hr20, base.hr20),
            (self.ndcg5, base.ndcg5),
            (self.ndcg10, base.ndcg10),
            (self.ndcg20, base.ndcg20),
            (self.mrr20, base.mrr20),
        ];
        let mut total = 0.0;
        let mut n = 0usize;
        for (a, b) in pairs {
            if b > 0.0 {
                total += (a - b) / b * 100.0;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

impl std::fmt::Display for MetricReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HR@5 {:.4}  HR@10 {:.4}  HR@20 {:.4}  N@5 {:.4}  N@10 {:.4}  N@20 {:.4}  MRR {:.4}",
            self.hr5, self.hr10, self.hr20, self.ndcg5, self.ndcg10, self.ndcg20, self.mrr20
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_rank_basics() {
        // scores for items 1..=4 (index 0 = pad)
        let scores = [0.0, 0.9, 0.5, 0.7, 0.1];
        assert_eq!(full_rank(&scores, 1), 1);
        assert_eq!(full_rank(&scores, 3), 2);
        assert_eq!(full_rank(&scores, 2), 3);
        assert_eq!(full_rank(&scores, 4), 4);
    }

    #[test]
    fn full_rank_tie_is_pessimistic() {
        let scores = [0.0, 0.5, 0.5, 0.5];
        assert_eq!(full_rank(&scores, 3), 3);
        assert_eq!(full_rank(&scores, 1), 1);
    }

    #[test]
    fn top_k_orders_and_skips_pad() {
        let scores = [9.0, 0.9, 0.5, 0.7, 0.1];
        assert_eq!(top_k(&scores, 3), vec![(1, 0.9), (3, 0.7), (2, 0.5)]);
        assert_eq!(top_k(&scores, 0), vec![]);
        assert_eq!(top_k(&scores, 100).len(), 4, "k clamps to catalogue");
    }

    #[test]
    fn top_k_ties_break_to_lower_id() {
        let scores = [0.0, 0.5, 0.7, 0.5, 0.5];
        assert_eq!(top_k(&scores, 3), vec![(2, 0.7), (1, 0.5), (3, 0.5)]);
    }

    #[test]
    fn top_k_positions_agree_with_full_rank() {
        let scores = [0.0, 0.3, 0.3, 0.9, -0.2, 0.3, 0.9];
        for (p, (item, _)) in top_k(&scores, 6).into_iter().enumerate() {
            assert_eq!(full_rank(&scores, item), p + 1, "item {item}");
        }
    }

    #[test]
    fn top_k_sparse_on_full_catalogue_matches_top_k() {
        let scores = [9.0, 0.3, 0.3, 0.9, -0.2, 0.3, 0.9];
        let pairs: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
        for k in [0, 1, 3, 6, 10] {
            assert_eq!(top_k_sparse(pairs.clone(), k), top_k(&scores, k));
        }
    }

    #[test]
    fn top_k_sparse_subset_ties_break_to_lower_id() {
        // duplicate scores across a sparse subset: pessimistic rule holds
        let cands = vec![(7usize, 0.5f32), (2, 0.5), (9, 0.8), (4, 0.5)];
        assert_eq!(top_k_sparse(cands, 3), vec![(9, 0.8), (2, 0.5), (4, 0.5)]);
    }

    #[test]
    fn top_k_sparse_skips_pad_id() {
        let cands = vec![(0usize, 99.0f32), (1, 0.1)];
        assert_eq!(top_k_sparse(cands, 2), vec![(1, 0.1)]);
    }

    #[test]
    fn hr_counts_hits() {
        let mut acc = RankingAccumulator::new();
        acc.push_rank(1);
        acc.push_rank(5);
        acc.push_rank(11);
        acc.push_rank(30);
        assert!((acc.hr(5) - 0.5).abs() < 1e-12);
        assert!((acc.hr(10) - 0.5).abs() < 1e-12);
        assert!((acc.hr(20) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ndcg_discounts_by_rank() {
        let mut acc = RankingAccumulator::new();
        acc.push_rank(1);
        assert!((acc.ndcg(10) - 1.0).abs() < 1e-12);
        let mut acc2 = RankingAccumulator::new();
        acc2.push_rank(2);
        assert!((acc2.ndcg(10) - 1.0 / 3f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn mrr_is_reciprocal() {
        let mut acc = RankingAccumulator::new();
        acc.push_rank(4);
        assert!((acc.mrr(20) - 0.25).abs() < 1e-12);
        assert_eq!(acc.mrr(3), 0.0);
    }

    #[test]
    fn metric_ordering_invariants() {
        // HR and NDCG are monotone in K; HR ≥ NDCG ≥ MRR at equal K.
        let mut acc = RankingAccumulator::new();
        for r in [1, 2, 3, 7, 9, 15, 40, 2, 6] {
            acc.push_rank(r);
        }
        assert!(acc.hr(5) <= acc.hr(10));
        assert!(acc.hr(10) <= acc.hr(20));
        assert!(acc.ndcg(20) <= acc.hr(20) + 1e-12);
        assert!(acc.mrr(20) <= acc.ndcg(20) + 1e-12);
    }

    #[test]
    fn improvement_is_percentage() {
        let base = MetricReport {
            hr5: 0.1,
            hr10: 0.2,
            hr20: 0.4,
            ndcg5: 0.05,
            ndcg10: 0.1,
            ndcg20: 0.2,
            mrr20: 0.1,
        };
        let better = MetricReport {
            hr5: 0.2,
            hr10: 0.4,
            hr20: 0.8,
            ndcg5: 0.1,
            ndcg10: 0.2,
            ndcg20: 0.4,
            mrr20: 0.2,
        };
        assert!((better.improvement_over(&base) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn scores_path_matches_rank_path() {
        let scores = [0.0, 0.3, 0.9, 0.1];
        let mut a = RankingAccumulator::new();
        a.push_scores(&scores, 1);
        let mut b = RankingAccumulator::new();
        b.push_rank(full_rank(&scores, 1));
        assert_eq!(a.hr(2), b.hr(2));
    }
}
