//! # ssdrec-metrics
//!
//! Evaluation machinery for the SSDRec reproduction: full-ranking HR@K /
//! NDCG@K / MRR@K (paper §IV-A1), Welch two-sided t-tests for the paper's
//! significance claims, and over/under-denoising (OUP) ratios for Fig. 1.

#![warn(missing_docs)]

pub mod beyond;
pub mod buckets;
pub mod oup;
pub mod ranking;
pub mod stats;

pub use beyond::RecListAccumulator;
pub use buckets::LengthBuckets;
pub use oup::OupAccumulator;
pub use ranking::{
    full_rank, par_top_k, rank_rows, top_k, top_k_sparse, MetricReport, RankingAccumulator,
};
pub use stats::{t_two_sided_p, welch_t_test, TTest};
