//! Beyond-accuracy metrics: catalogue coverage, recommendation concentration
//! (Gini) and popularity bias.
//!
//! Sequence denoising changes *which* items get recommended, not just how
//! accurately — e.g. removing accidental interactions on viral items should
//! reduce popularity bias. These metrics quantify that side of the story.

/// Accumulates the top-K lists served to users.
#[derive(Clone, Debug)]
pub struct RecListAccumulator {
    num_items: usize,
    counts: Vec<usize>,
    lists: usize,
    list_len_total: usize,
}

impl RecListAccumulator {
    /// A new accumulator for a catalogue of `num_items` items
    /// (IDs `1..=num_items`).
    pub fn new(num_items: usize) -> Self {
        RecListAccumulator {
            num_items,
            counts: vec![0; num_items + 1],
            lists: 0,
            list_len_total: 0,
        }
    }

    /// Record one served top-K list.
    ///
    /// # Panics
    /// Panics if an item ID is out of range (0 = pad is also rejected:
    /// serving the pad item is always a bug).
    pub fn push(&mut self, items: &[usize]) {
        for &it in items {
            assert!(
                it >= 1 && it <= self.num_items,
                "recommended item {it} out of catalogue"
            );
            self.counts[it] += 1;
        }
        self.lists += 1;
        self.list_len_total += items.len();
    }

    /// Number of lists recorded.
    pub fn num_lists(&self) -> usize {
        self.lists
    }

    /// Mean length of the recorded lists.
    pub fn mean_list_len(&self) -> f64 {
        if self.lists == 0 {
            0.0
        } else {
            self.list_len_total as f64 / self.lists as f64
        }
    }

    /// Catalogue coverage: fraction of items recommended at least once.
    pub fn coverage(&self) -> f64 {
        if self.num_items == 0 {
            return 0.0;
        }
        let covered = self.counts.iter().skip(1).filter(|&&c| c > 0).count();
        covered as f64 / self.num_items as f64
    }

    /// Gini coefficient of recommendation counts over the catalogue
    /// (0 = perfectly even exposure, → 1 = all exposure on one item).
    pub fn gini(&self) -> f64 {
        let mut xs: Vec<f64> = self.counts.iter().skip(1).map(|&c| c as f64).collect();
        let total: f64 = xs.iter().sum();
        if total == 0.0 || xs.len() < 2 {
            return 0.0;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = xs.len() as f64;
        let weighted: f64 = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as f64 + 1.0) * x)
            .sum();
        (2.0 * weighted / (n * total)) - (n + 1.0) / n
    }

    /// Mean popularity of recommended items, where `popularity[i]` is item
    /// `i`'s training frequency — higher means stronger popularity bias.
    pub fn popularity_bias(&self, popularity: &[usize]) -> f64 {
        assert!(
            popularity.len() > self.num_items,
            "popularity table too short"
        );
        let mut total = 0.0f64;
        let mut n = 0usize;
        for (i, &c) in self.counts.iter().enumerate().skip(1) {
            total += popularity[i] as f64 * c as f64;
            n += c;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_counts_distinct_items() {
        let mut acc = RecListAccumulator::new(10);
        acc.push(&[1, 2, 3]);
        acc.push(&[2, 3, 4]);
        assert!((acc.coverage() - 0.4).abs() < 1e-12);
        assert_eq!(acc.num_lists(), 2);
    }

    #[test]
    fn gini_zero_for_uniform_exposure() {
        let mut acc = RecListAccumulator::new(4);
        acc.push(&[1, 2, 3, 4]);
        assert!(acc.gini().abs() < 1e-9, "gini {}", acc.gini());
    }

    #[test]
    fn gini_approaches_one_for_concentration() {
        let mut acc = RecListAccumulator::new(100);
        for _ in 0..50 {
            acc.push(&[7]);
        }
        assert!(acc.gini() > 0.95, "gini {}", acc.gini());
    }

    #[test]
    fn gini_monotone_in_concentration() {
        let mut even = RecListAccumulator::new(4);
        even.push(&[1, 2, 3, 4]);
        let mut skewed = RecListAccumulator::new(4);
        skewed.push(&[1, 1, 1, 2]);
        skewed.push(&[1]);
        assert!(skewed.gini() > even.gini());
    }

    #[test]
    fn popularity_bias_weighted_mean() {
        let mut acc = RecListAccumulator::new(3);
        acc.push(&[1, 3]);
        // popularity: pad, 10, 20, 30
        let bias = acc.popularity_bias(&[0, 10, 20, 30]);
        assert!((bias - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn pad_item_rejected() {
        let mut acc = RecListAccumulator::new(3);
        acc.push(&[0]);
    }

    #[test]
    fn empty_accumulator_is_neutral() {
        let acc = RecListAccumulator::new(5);
        assert_eq!(acc.coverage(), 0.0);
        assert_eq!(acc.gini(), 0.0);
        assert_eq!(acc.popularity_bias(&[0; 6]), 0.0);
    }
}
