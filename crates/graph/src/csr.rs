//! Compact weighted adjacency storage (CSR) for the multi-relation graph.

/// A weighted adjacency structure in compressed sparse row form.
///
/// Node `i`'s neighbours live in `nbrs[offsets[i]..offsets[i+1]]` as
/// `(neighbour, weight)` pairs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Csr {
    offsets: Vec<usize>,
    nbrs: Vec<(usize, f32)>,
}

impl Csr {
    /// Build from per-node neighbour lists.
    pub fn from_lists(lists: Vec<Vec<(usize, f32)>>) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0);
        let mut nbrs = Vec::new();
        for l in lists {
            nbrs.extend(l);
            offsets.push(nbrs.len());
        }
        Csr { offsets, nbrs }
    }

    /// Build directly from raw CSR arrays, as produced by counting-pass
    /// construction: `offsets` must be monotone with `offsets[0] == 0` and
    /// `offsets.last() == nbrs.len()` (node `i` owns
    /// `nbrs[offsets[i]..offsets[i+1]]`).
    pub fn from_parts(offsets: Vec<usize>, nbrs: Vec<(usize, f32)>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0, "bad offsets");
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "non-monotone");
        debug_assert_eq!(*offsets.last().unwrap(), nbrs.len(), "length mismatch");
        Csr { offsets, nbrs }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.nbrs.len()
    }

    /// The neighbours of node `i`.
    pub fn neighbors(&self, i: usize) -> &[(usize, f32)] {
        &self.nbrs[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Keep at most `k` heaviest neighbours per node.
    pub fn top_k(&self, k: usize) -> Csr {
        let lists = (0..self.num_nodes())
            .map(|i| {
                let mut l = self.neighbors(i).to_vec();
                // Explicit id tie-break: equal weights must truncate to the
                // same neighbours regardless of the caller's list order.
                l.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                l.truncate(k);
                l
            })
            .collect();
        Csr::from_lists(lists)
    }

    /// Row-normalise weights so each node's outgoing weights sum to 1.
    pub fn row_normalized(&self) -> Csr {
        let lists = (0..self.num_nodes())
            .map(|i| {
                let ns = self.neighbors(i);
                let total: f32 = ns.iter().map(|&(_, w)| w).sum();
                if total > 0.0 {
                    ns.iter().map(|&(j, w)| (j, w / total)).collect()
                } else {
                    ns.to_vec()
                }
            })
            .collect();
        Csr::from_lists(lists)
    }

    /// Look up the weight of edge `i → j`, if present.
    pub fn weight(&self, i: usize, j: usize) -> Option<f32> {
        self.neighbors(i)
            .iter()
            .find(|&&(n, _)| n == j)
            .map(|&(_, w)| w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Csr {
        Csr::from_lists(vec![
            vec![(1, 2.0), (2, 1.0)],
            vec![],
            vec![(0, 4.0), (1, 4.0), (2, 2.0)],
        ])
    }

    #[test]
    fn neighbors_and_degree() {
        let c = toy();
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.num_edges(), 5);
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.degree(1), 0);
        assert_eq!(c.neighbors(2).len(), 3);
    }

    #[test]
    fn weight_lookup() {
        let c = toy();
        assert_eq!(c.weight(0, 1), Some(2.0));
        assert_eq!(c.weight(1, 0), None);
    }

    #[test]
    fn top_k_keeps_heaviest() {
        let c = toy().top_k(2);
        assert_eq!(c.degree(2), 2);
        let ws: Vec<f32> = c.neighbors(2).iter().map(|&(_, w)| w).collect();
        assert_eq!(ws, vec![4.0, 4.0]);
    }

    #[test]
    fn row_normalized_sums_to_one() {
        let c = toy().row_normalized();
        for i in 0..c.num_nodes() {
            if c.degree(i) > 0 {
                let s: f32 = c.neighbors(i).iter().map(|&(_, w)| w).sum();
                assert!((s - 1.0).abs() < 1e-6);
            }
        }
    }
}
