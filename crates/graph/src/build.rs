//! Construction of the multi-relation graph `G` (paper §III-A).
//!
//! Five relation types are built in a fully data-driven way from raw
//! sequences, exactly following the paper's definitions:
//!
//! * **interacted** user–item edges weighted by interaction counts (`A`),
//! * **transitional** (directed) item edges weighted by
//!   `Σ_u (n_u − Dis(v_i, v_j)) / n_u` over sequences containing `v_i` before
//!   `v_j`,
//! * **incompatible** (undirected) item edges between *popular* items that
//!   never co-transit but share transitional context,
//! * **similar** user edges weighted by a Jaccard-style overlap of
//!   interaction mass,
//! * **dissimilar** user edges between users who never co-interact yet share
//!   a similar user.

use std::collections::{BTreeMap, HashMap};

use ssdrec_data::Dataset;

use crate::csr::Csr;

/// A `HashMap` keyed by edge, flattened into ascending-key order.
///
/// Every loop below that *iterates* an edge map goes through this: hash-map
/// iteration order is randomized per process, and float accumulation is not
/// associative, so iterating the raw map would make graph weights (and hence
/// trained checkpoints) differ between runs in their low bits.
fn sorted_edges(m: &HashMap<(usize, usize), f32>) -> Vec<((usize, usize), f32)> {
    let mut v: Vec<((usize, usize), f32)> = m.iter().map(|(&k, &w)| (k, w)).collect();
    v.sort_unstable_by_key(|&(k, _)| k);
    v
}

/// Knobs for graph construction. Defaults follow the paper's implementation
/// details (few-shot ratios 0.9 users / 0.8 items via the 20/80 principle).
#[derive(Clone, Debug)]
pub struct GraphConfig {
    /// Fraction of items regarded as few-shot (long-tail); the complement is
    /// "popular" and eligible for incompatible relations. Paper: 0.8.
    pub item_fewshot_ratio: f64,
    /// Fraction of users regarded as few-shot. Paper: 0.9.
    pub user_fewshot_ratio: f64,
    /// Keep only the `k` heaviest neighbours per node and relation
    /// (tractability cap; the encoder aggregates linearly in edge count).
    pub max_neighbors: usize,
    /// Limit on the positional distance considered for transitional pairs
    /// (`usize::MAX` = the paper's all-pairs definition).
    pub max_transition_distance: usize,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            item_fewshot_ratio: 0.8,
            user_fewshot_ratio: 0.9,
            max_neighbors: 32,
            max_transition_distance: usize::MAX,
        }
    }
}

/// The multi-relation graph `G = (N, E)` with all five edge sets in CSR form.
///
/// Item nodes are indexed by item ID (index 0 = padding, always isolated);
/// user nodes by user ID.
#[derive(Clone, Debug)]
pub struct MultiRelationGraph {
    /// Number of users.
    pub num_users: usize,
    /// Number of items (nodes `1..=num_items`).
    pub num_items: usize,
    /// `E_uv`: user → interacted items, weighted by interaction count.
    pub user_item: Csr,
    /// `E_uv` transposed: item → interacting users.
    pub item_user: Csr,
    /// `E⁺_vv` outgoing: `v → {v_j : v before v_j}`.
    pub trans_out: Csr,
    /// `E⁺_vv` incoming: `v → {v_i : v_i before v}`.
    pub trans_in: Csr,
    /// `E⁻_vv`: undirected incompatible item edges.
    pub incompatible: Csr,
    /// `E⁺_uu`: undirected similar user edges.
    pub similar: Csr,
    /// `E⁻_uu`: undirected dissimilar user edges.
    pub dissimilar: Csr,
    /// Per-item popularity flags used for incompatible eligibility.
    pub item_popular: Vec<bool>,
}

impl MultiRelationGraph {
    /// Data-driven context-coherence score per position of a sequence: the
    /// mean symmetric transitional weight between the item and its context
    /// within `window` positions, minus the mean incompatible weight.
    ///
    /// This is the graph acting as *prior knowledge* (paper §III-A): an
    /// accidental interaction has (almost) no transitional relations to its
    /// neighbours, so its coherence is low; incompatible items are actively
    /// penalised. Scores are clamped at zero.
    pub fn sequence_coherence(&self, seq: &[usize], window: usize) -> Vec<f32> {
        let n = seq.len();
        seq.iter()
            .enumerate()
            .map(|(t, &it)| {
                let mut s = 0.0f32;
                let mut cnt = 0.0f32;
                let lo = t.saturating_sub(window);
                let hi = (t + window).min(n.saturating_sub(1));
                for (j, &other) in seq.iter().enumerate().take(hi + 1).skip(lo) {
                    if j == t {
                        continue;
                    }
                    s += self.trans_out.weight(it, other).unwrap_or(0.0)
                        + self.trans_out.weight(other, it).unwrap_or(0.0);
                    s -= self.incompatible.weight(it, other).unwrap_or(0.0);
                    cnt += 1.0;
                }
                if cnt > 0.0 {
                    (s / cnt).max(0.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Total edge count across every relation (diagnostics).
    pub fn total_edges(&self) -> usize {
        self.user_item.num_edges()
            + self.item_user.num_edges()
            + self.trans_out.num_edges()
            + self.trans_in.num_edges()
            + self.incompatible.num_edges()
            + self.similar.num_edges()
            + self.dissimilar.num_edges()
    }
}

fn popular_flags(freq: &[usize], fewshot_ratio: f64) -> Vec<bool> {
    // Nodes above the (fewshot_ratio)-quantile of frequency are popular.
    let mut nonzero: Vec<usize> = freq.iter().copied().filter(|&f| f > 0).collect();
    if nonzero.is_empty() {
        return vec![false; freq.len()];
    }
    nonzero.sort_unstable();
    let idx = ((nonzero.len() as f64 * fewshot_ratio) as usize).min(nonzero.len() - 1);
    let threshold = nonzero[idx];
    freq.iter()
        .map(|&f| f > 0 && f >= threshold.max(1))
        .collect()
}

/// Build the full multi-relation graph from a dataset.
pub fn build_graph(ds: &Dataset, cfg: &GraphConfig) -> MultiRelationGraph {
    let n_items = ds.num_items + 1; // include pad slot 0
    let n_users = ds.num_users;

    // --- interactional relations (A) -------------------------------------
    let mut ui: Vec<HashMap<usize, f32>> = vec![HashMap::new(); n_users];
    for (u, seq) in ds.sequences.iter().enumerate() {
        for &it in seq {
            *ui[u].entry(it).or_insert(0.0) += 1.0;
        }
    }
    let mut iu_lists: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n_items];
    let ui_lists: Vec<Vec<(usize, f32)>> = ui
        .iter()
        .enumerate()
        .map(|(u, m)| {
            let mut l: Vec<(usize, f32)> = m.iter().map(|(&i, &w)| (i, w)).collect();
            l.sort_unstable_by_key(|&(i, _)| i);
            for &(i, w) in &l {
                iu_lists[i].push((u, w));
            }
            l
        })
        .collect();

    // --- transitional relations (E+_vv) -----------------------------------
    // w+_{ij} = Σ over sequences containing v_i before v_j of (n - Dis)/n.
    let mut trans: HashMap<(usize, usize), f32> = HashMap::new();
    for seq in &ds.sequences {
        let n = seq.len();
        if n < 2 {
            continue;
        }
        for a in 0..n {
            let hi = if cfg.max_transition_distance == usize::MAX {
                n
            } else {
                (a + 1 + cfg.max_transition_distance).min(n)
            };
            for b in (a + 1)..hi {
                if seq[a] == seq[b] {
                    continue;
                }
                let dis = (b - a) as f32;
                let w = (n as f32 - dis) / n as f32;
                *trans.entry((seq[a], seq[b])).or_insert(0.0) += w;
            }
        }
    }
    let trans_edges = sorted_edges(&trans);
    let mut trans_out_lists: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n_items];
    let mut trans_in_lists: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n_items];
    for &((i, j), w) in &trans_edges {
        trans_out_lists[i].push((j, w));
        trans_in_lists[j].push((i, w));
    }
    for l in trans_out_lists.iter_mut().chain(trans_in_lists.iter_mut()) {
        l.sort_unstable_by_key(|&(n, _)| n);
    }

    // --- incompatible relations (E-_vv) ------------------------------------
    // Popular items i, j with no transitional edge either way but a common
    // transitional neighbour k; weight Σ_k (w+_ik + w+_ki + w+_jk + w+_kj).
    let freq = ds.item_frequencies();
    let item_popular = popular_flags(&freq, cfg.item_fewshot_ratio);

    // Per-item transitional mass to/from each neighbour (symmetrised once).
    let mut trans_mass: Vec<HashMap<usize, f32>> = vec![HashMap::new(); n_items];
    for &((i, j), w) in &trans_edges {
        *trans_mass[i].entry(j).or_insert(0.0) += w;
        *trans_mass[j].entry(i).or_insert(0.0) += w;
    }

    let popular_items: Vec<usize> = (1..n_items).filter(|&i| item_popular[i]).collect();
    let mut incomp: HashMap<(usize, usize), f32> = HashMap::new();
    // Invert: for each context item k, the popular items connected to k
    // (a BTreeMap, and sorted context keys, so iteration order is canonical).
    let mut by_context: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &i in &popular_items {
        let mut ks: Vec<usize> = trans_mass[i].keys().copied().collect();
        ks.sort_unstable();
        for k in ks {
            by_context.entry(k).or_default().push(i);
        }
    }
    for (&k, items) in &by_context {
        for ai in 0..items.len() {
            for bi in (ai + 1)..items.len() {
                let (i, j) = (items[ai].min(items[bi]), items[ai].max(items[bi]));
                if trans.contains_key(&(i, j)) || trans.contains_key(&(j, i)) {
                    continue;
                }
                let w = trans_mass[i].get(&k).copied().unwrap_or(0.0)
                    + trans_mass[j].get(&k).copied().unwrap_or(0.0);
                *incomp.entry((i, j)).or_insert(0.0) += w;
            }
        }
    }
    let mut incomp_lists: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n_items];
    for &((i, j), w) in &sorted_edges(&incomp) {
        incomp_lists[i].push((j, w));
        incomp_lists[j].push((i, w));
    }

    // --- similar user relations (E+_uu) -------------------------------------
    // Users sharing an item; weight = Σ_k (w_ik + w_jk) / (Σ w_i + Σ w_j).
    // All sums run over `ui_lists` (item-sorted) rather than the hash maps.
    let user_mass: Vec<f32> = ui_lists
        .iter()
        .map(|l| l.iter().map(|&(_, w)| w).sum())
        .collect();
    let mut by_item: Vec<Vec<usize>> = vec![Vec::new(); n_items];
    for (u, l) in ui_lists.iter().enumerate() {
        for &(i, _) in l {
            by_item[i].push(u);
        }
    }
    let mut sim: HashMap<(usize, usize), f32> = HashMap::new();
    for item_users in by_item.iter() {
        for ai in 0..item_users.len() {
            for bi in (ai + 1)..item_users.len() {
                let (a, b) = (
                    item_users[ai].min(item_users[bi]),
                    item_users[ai].max(item_users[bi]),
                );
                sim.entry((a, b)).or_insert(0.0);
            }
        }
    }
    for ((a, b), w) in sim.iter_mut() {
        let shared: f32 = ui_lists[*a]
            .iter()
            .filter_map(|&(i, wa)| ui[*b].get(&i).map(|&wb| wa + wb))
            .sum();
        *w = shared / (user_mass[*a] + user_mass[*b]).max(1e-9);
    }
    let mut sim_lists: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n_users];
    for &((a, b), w) in &sorted_edges(&sim) {
        sim_lists[a].push((b, w));
        sim_lists[b].push((a, w));
    }
    for l in sim_lists.iter_mut() {
        // Weight-descending with an explicit id tie-break, so truncation
        // keeps the same neighbours on every run.
        l.sort_by(|x, y| {
            y.1.partial_cmp(&x.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.0.cmp(&y.0))
        });
        l.truncate(cfg.max_neighbors);
    }

    // --- dissimilar user relations (E-_uu) -----------------------------------
    // Popular users who never co-interact but share a similar user k;
    // weight Σ_k (w+_ik + w+_kj) over shared similar users.
    let user_freq: Vec<usize> = ds.sequences.iter().map(Vec::len).collect();
    let user_popular = popular_flags(&user_freq, cfg.user_fewshot_ratio);
    let mut dissim: HashMap<(usize, usize), f32> = HashMap::new();
    for nbrs in sim_lists.iter().take(n_users) {
        for ai in 0..nbrs.len() {
            for bi in (ai + 1)..nbrs.len() {
                let (a, wa) = nbrs[ai];
                let (b, wb) = nbrs[bi];
                if !user_popular[a] || !user_popular[b] {
                    continue;
                }
                let (lo, hi) = (a.min(b), a.max(b));
                if sim.contains_key(&(lo, hi)) {
                    continue; // they are similar, not dissimilar
                }
                *dissim.entry((lo, hi)).or_insert(0.0) += wa + wb;
            }
        }
    }
    let mut dissim_lists: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n_users];
    for &((a, b), w) in &sorted_edges(&dissim) {
        dissim_lists[a].push((b, w));
        dissim_lists[b].push((a, w));
    }

    let cap = cfg.max_neighbors;
    MultiRelationGraph {
        num_users: n_users,
        num_items: ds.num_items,
        user_item: Csr::from_lists(ui_lists).top_k(cap).row_normalized(),
        item_user: Csr::from_lists(iu_lists).top_k(cap).row_normalized(),
        trans_out: Csr::from_lists(trans_out_lists).top_k(cap).row_normalized(),
        trans_in: Csr::from_lists(trans_in_lists).top_k(cap).row_normalized(),
        incompatible: Csr::from_lists(incomp_lists).top_k(cap).row_normalized(),
        similar: Csr::from_lists(sim_lists).row_normalized(),
        dissimilar: Csr::from_lists(dissim_lists).top_k(cap).row_normalized(),
        item_popular,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdrec_data::SyntheticConfig;

    fn toy() -> Dataset {
        Dataset {
            name: "toy".into(),
            num_users: 4,
            num_items: 6,
            sequences: vec![vec![1, 2, 3], vec![1, 2, 4], vec![5, 2, 3], vec![6, 1, 2]],
            noise_labels: None,
        }
    }

    #[test]
    fn transitional_edges_follow_order() {
        let g = build_graph(&toy(), &GraphConfig::default());
        // 1 → 2 occurs in three sequences; 2 → 1 never.
        assert!(g.trans_out.weight(1, 2).is_some());
        assert!(g.trans_out.weight(2, 1).is_none());
        // trans_in is the transpose.
        assert!(g.trans_in.weight(2, 1).is_some());
    }

    #[test]
    fn transitional_weight_decays_with_distance() {
        // Unnormalised weights: in [1,2,3], w(1→2) uses Dis=1, w(1→3) Dis=2,
        // so pre-normalisation w(1→2) > w(1→3). Check via a single-sequence
        // dataset where normalisation preserves the ordering.
        let ds = Dataset {
            name: "t".into(),
            num_users: 1,
            num_items: 3,
            sequences: vec![vec![1, 2, 3]],
            noise_labels: None,
        };
        let g = build_graph(&ds, &GraphConfig::default());
        let w12 = g.trans_out.weight(1, 2).unwrap();
        let w13 = g.trans_out.weight(1, 3).unwrap();
        assert!(w12 > w13, "{w12} vs {w13}");
    }

    #[test]
    fn pad_item_is_isolated() {
        let g = build_graph(&toy(), &GraphConfig::default());
        assert_eq!(g.trans_out.degree(0), 0);
        assert_eq!(g.trans_in.degree(0), 0);
        assert_eq!(g.incompatible.degree(0), 0);
    }

    #[test]
    fn similar_users_share_items() {
        let g = build_graph(&toy(), &GraphConfig::default());
        // Users 0 and 1 share items {1, 2}.
        assert!(g.similar.weight(0, 1).is_some());
        assert!(g.similar.weight(1, 0).is_some(), "similar is undirected");
    }

    #[test]
    fn incompatible_requires_no_transitional_link() {
        let g = build_graph(&toy(), &GraphConfig::default());
        for i in 1..=g.num_items {
            for &(j, _) in g.incompatible.neighbors(i) {
                assert!(
                    g.trans_out.weight(i, j).is_none() && g.trans_out.weight(j, i).is_none(),
                    "incompatible pair ({i},{j}) has a transitional edge"
                );
            }
        }
    }

    #[test]
    fn dissimilar_users_never_similar() {
        let ds = SyntheticConfig::beauty().scaled(0.3).generate();
        let g = build_graph(&ds, &GraphConfig::default());
        for u in 0..g.num_users {
            for &(v, _) in g.dissimilar.neighbors(u) {
                assert!(
                    g.similar.weight(u, v).is_none(),
                    "({u},{v}) both similar and dissimilar"
                );
            }
        }
    }

    #[test]
    fn rows_are_normalized() {
        let g = build_graph(&toy(), &GraphConfig::default());
        for i in 1..=g.num_items {
            if g.trans_out.degree(i) > 0 {
                let s: f32 = g.trans_out.neighbors(i).iter().map(|&(_, w)| w).sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn neighbor_cap_enforced() {
        let ds = SyntheticConfig::ml100k().scaled(0.5).generate();
        let cfg = GraphConfig {
            max_neighbors: 5,
            ..GraphConfig::default()
        };
        let g = build_graph(&ds, &cfg);
        for i in 0..=g.num_items {
            assert!(g.trans_out.degree(i) <= 5);
        }
        for u in 0..g.num_users {
            assert!(g.similar.degree(u) <= 5);
        }
    }

    #[test]
    fn builds_on_every_profile() {
        for cfg in SyntheticConfig::all_profiles() {
            let ds = cfg.scaled(0.2).generate();
            let g = build_graph(&ds, &GraphConfig::default());
            assert!(g.total_edges() > 0, "{}: empty graph", ds.name);
        }
    }

    #[test]
    fn coherence_favours_cooccurring_items() {
        let g = build_graph(&toy(), &GraphConfig::default());
        // [1, 2, 3] is a frequent pattern; a sequence with an alien item
        // should score it lowest.
        let c = g.sequence_coherence(&[1, 2, 6, 3], 3);
        assert_eq!(c.len(), 4);
        let alien = c[2];
        assert!(
            c[0] > alien && c[1] > alien,
            "alien item not least coherent: {c:?}"
        );
    }

    #[test]
    fn coherence_handles_short_sequences() {
        let g = build_graph(&toy(), &GraphConfig::default());
        assert_eq!(g.sequence_coherence(&[1], 3), vec![0.0]);
        assert!(g.sequence_coherence(&[], 3).is_empty());
    }

    #[test]
    fn coherence_is_nonnegative() {
        let ds = SyntheticConfig::yelp().scaled(0.2).generate();
        let g = build_graph(&ds, &GraphConfig::default());
        for seq in ds.sequences.iter().take(20) {
            assert!(g.sequence_coherence(seq, 3).iter().all(|&c| c >= 0.0));
        }
    }

    #[test]
    fn construction_is_bit_identical_across_builds() {
        // Every intermediate edge map is a `HashMap` with a per-instance
        // random hasher, so two builds traverse the maps in different
        // orders. The canonicalized emission (`sorted_edges`, sorted
        // context keys, id tie-breaks) must still produce byte-identical
        // graphs — float sums are order-sensitive, and the stage-1 encoder
        // (and hence trained checkpoints) inherit every low bit from here.
        let ds = SyntheticConfig::beauty().scaled(0.3).generate();
        let a = build_graph(&ds, &GraphConfig::default());
        let b = build_graph(&ds, &GraphConfig::default());
        let pairs = [
            ("user_item", &a.user_item, &b.user_item),
            ("item_user", &a.item_user, &b.item_user),
            ("trans_out", &a.trans_out, &b.trans_out),
            ("trans_in", &a.trans_in, &b.trans_in),
            ("incompatible", &a.incompatible, &b.incompatible),
            ("similar", &a.similar, &b.similar),
            ("dissimilar", &a.dissimilar, &b.dissimilar),
        ];
        for (name, x, y) in pairs {
            assert_eq!(x.num_edges(), y.num_edges(), "{name}: edge count");
            for i in 0..x.num_nodes() {
                let (nx, ny) = (x.neighbors(i), y.neighbors(i));
                assert_eq!(nx.len(), ny.len(), "{name}: degree of {i}");
                for (&(jx, wx), &(jy, wy)) in nx.iter().zip(ny) {
                    assert_eq!(jx, jy, "{name}: neighbour order at node {i}");
                    assert_eq!(
                        wx.to_bits(),
                        wy.to_bits(),
                        "{name}: weight bits for edge {i}→{jx}"
                    );
                }
            }
        }
    }

    #[test]
    fn popularity_threshold_marks_minority() {
        let ds = SyntheticConfig::sports().scaled(0.5).generate();
        let g = build_graph(&ds, &GraphConfig::default());
        let popular = g.item_popular.iter().filter(|&&p| p).count();
        let total = g.num_items;
        assert!(
            popular > 0 && popular < total / 2,
            "popular {popular}/{total}"
        );
    }
}
