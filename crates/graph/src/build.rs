//! Construction of the multi-relation graph `G` (paper §III-A).
//!
//! Five relation types are built in a fully data-driven way from raw
//! sequences, exactly following the paper's definitions:
//!
//! * **interacted** user–item edges weighted by interaction counts (`A`),
//! * **transitional** (directed) item edges weighted by
//!   `Σ_u (n_u − Dis(v_i, v_j)) / n_u` over sequences containing `v_i` before
//!   `v_j`,
//! * **incompatible** (undirected) item edges between *popular* items that
//!   never co-transit but share transitional context,
//! * **similar** user edges weighted by a Jaccard-style overlap of
//!   interaction mass,
//! * **dissimilar** user edges between users who never co-interact yet share
//!   a similar user.

use ssdrec_data::{Dataset, SequenceStore};

use crate::csr::Csr;

/// Knobs for graph construction. Defaults follow the paper's implementation
/// details (few-shot ratios 0.9 users / 0.8 items via the 20/80 principle).
#[derive(Clone, Debug)]
pub struct GraphConfig {
    /// Fraction of items regarded as few-shot (long-tail); the complement is
    /// "popular" and eligible for incompatible relations. Paper: 0.8.
    pub item_fewshot_ratio: f64,
    /// Fraction of users regarded as few-shot. Paper: 0.9.
    pub user_fewshot_ratio: f64,
    /// Keep only the `k` heaviest neighbours per node and relation
    /// (tractability cap; the encoder aggregates linearly in edge count).
    pub max_neighbors: usize,
    /// Limit on the positional distance considered for transitional pairs
    /// (`usize::MAX` = the paper's all-pairs definition).
    pub max_transition_distance: usize,
    /// Cap on the popular-item list per transitional context when pairing
    /// incompatible candidates. Pairing is quadratic per context;
    /// `usize::MAX` (the default) keeps the paper's exact definition —
    /// finite values exist for corpus-scale builds (`bench_data --full`).
    pub max_context_items: usize,
    /// Cap on the per-item user list when enumerating similar-user pairs
    /// (quadratic per item). `usize::MAX` = the paper's exact definition.
    pub max_item_users: usize,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            item_fewshot_ratio: 0.8,
            user_fewshot_ratio: 0.9,
            max_neighbors: 32,
            max_transition_distance: usize::MAX,
            max_context_items: usize::MAX,
            max_item_users: usize::MAX,
        }
    }
}

/// The multi-relation graph `G = (N, E)` with all five edge sets in CSR form.
///
/// Item nodes are indexed by item ID (index 0 = padding, always isolated);
/// user nodes by user ID.
#[derive(Clone, Debug)]
pub struct MultiRelationGraph {
    /// Number of users.
    pub num_users: usize,
    /// Number of items (nodes `1..=num_items`).
    pub num_items: usize,
    /// `E_uv`: user → interacted items, weighted by interaction count.
    pub user_item: Csr,
    /// `E_uv` transposed: item → interacting users.
    pub item_user: Csr,
    /// `E⁺_vv` outgoing: `v → {v_j : v before v_j}`.
    pub trans_out: Csr,
    /// `E⁺_vv` incoming: `v → {v_i : v_i before v}`.
    pub trans_in: Csr,
    /// `E⁻_vv`: undirected incompatible item edges.
    pub incompatible: Csr,
    /// `E⁺_uu`: undirected similar user edges.
    pub similar: Csr,
    /// `E⁻_uu`: undirected dissimilar user edges.
    pub dissimilar: Csr,
    /// Per-item popularity flags used for incompatible eligibility.
    pub item_popular: Vec<bool>,
}

impl MultiRelationGraph {
    /// Data-driven context-coherence score per position of a sequence: the
    /// mean symmetric transitional weight between the item and its context
    /// within `window` positions, minus the mean incompatible weight.
    ///
    /// This is the graph acting as *prior knowledge* (paper §III-A): an
    /// accidental interaction has (almost) no transitional relations to its
    /// neighbours, so its coherence is low; incompatible items are actively
    /// penalised. Scores are clamped at zero.
    pub fn sequence_coherence(&self, seq: &[usize], window: usize) -> Vec<f32> {
        let n = seq.len();
        seq.iter()
            .enumerate()
            .map(|(t, &it)| {
                let mut s = 0.0f32;
                let mut cnt = 0.0f32;
                let lo = t.saturating_sub(window);
                let hi = (t + window).min(n.saturating_sub(1));
                for (j, &other) in seq.iter().enumerate().take(hi + 1).skip(lo) {
                    if j == t {
                        continue;
                    }
                    s += self.trans_out.weight(it, other).unwrap_or(0.0)
                        + self.trans_out.weight(other, it).unwrap_or(0.0);
                    s -= self.incompatible.weight(it, other).unwrap_or(0.0);
                    cnt += 1.0;
                }
                if cnt > 0.0 {
                    (s / cnt).max(0.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Total edge count across every relation (diagnostics).
    pub fn total_edges(&self) -> usize {
        self.user_item.num_edges()
            + self.item_user.num_edges()
            + self.trans_out.num_edges()
            + self.trans_in.num_edges()
            + self.incompatible.num_edges()
            + self.similar.num_edges()
            + self.dissimilar.num_edges()
    }
}

fn popular_flags(freq: &[usize], fewshot_ratio: f64) -> Vec<bool> {
    // Nodes above the (fewshot_ratio)-quantile of frequency are popular.
    let mut nonzero: Vec<usize> = freq.iter().copied().filter(|&f| f > 0).collect();
    if nonzero.is_empty() {
        return vec![false; freq.len()];
    }
    nonzero.sort_unstable();
    let idx = ((nonzero.len() as f64 * fewshot_ratio) as usize).min(nonzero.len() - 1);
    let threshold = nonzero[idx];
    freq.iter()
        .map(|&f| f > 0 && f >= threshold.max(1))
        .collect()
}

/// Exclusive prefix sum of per-node counts into CSR offsets.
fn prefix_offsets(deg: &[usize]) -> Vec<usize> {
    let mut offs = Vec::with_capacity(deg.len() + 1);
    let mut acc = 0usize;
    offs.push(0);
    for &d in deg {
        acc += d;
        offs.push(acc);
    }
    offs
}

/// Stable-sort a contribution stream by key, then merge-sum duplicate keys
/// left to right.
///
/// This is the replacement for `HashMap` `+=` accumulation: when the
/// contributions were *emitted* in encounter order, the stable sort keeps
/// that order within each key, and the left-to-right fold performs the
/// additions in exactly the sequence the hash map would have — so the merged
/// weights are bit-identical (float addition is order-sensitive), and the
/// output is already in ascending key order (the old `sorted_edges`).
fn merge_contributions<K: Ord + Copy>(v: &mut Vec<(K, f32)>) {
    v.sort_by_key(|&(k, _)| k);
    let mut w = 0usize;
    let mut r = 0usize;
    while r < v.len() {
        let (k, mut acc) = v[r];
        r += 1;
        while r < v.len() && v[r].0 == k {
            acc += v[r].1;
            r += 1;
        }
        v[w] = (k, acc);
        w += 1;
    }
    v.truncate(w);
}

/// Scatter an ascending-key undirected edge list into per-node CSR arrays
/// (each edge appears in both endpoint rows).
fn fill_undirected(n: usize, edges: &[((usize, usize), f32)]) -> (Vec<usize>, Vec<(usize, f32)>) {
    let mut deg = vec![0usize; n];
    for &((a, b), _) in edges {
        deg[a] += 1;
        deg[b] += 1;
    }
    let offs = prefix_offsets(&deg);
    let mut cur = offs[..n].to_vec();
    let mut nbrs = vec![(0usize, 0.0f32); offs[n]];
    for &((a, b), w) in edges {
        nbrs[cur[a]] = (b, w);
        cur[a] += 1;
        nbrs[cur[b]] = (a, w);
        cur[b] += 1;
    }
    (offs, nbrs)
}

/// Binary-search a key-sorted CSR row.
fn row_get(offsets: &[usize], nbrs: &[(usize, f32)], i: usize, j: usize) -> Option<f32> {
    let row = &nbrs[offsets[i]..offsets[i + 1]];
    row.binary_search_by_key(&j, |&(k, _)| k)
        .ok()
        .map(|p| row[p].1)
}

/// Build the full multi-relation graph from an in-RAM dataset.
pub fn build_graph(ds: &Dataset, cfg: &GraphConfig) -> MultiRelationGraph {
    build_graph_from_store(ds, cfg)
}

/// Build the full multi-relation graph by counting passes over a
/// [`SequenceStore`] — the out-of-core path.
///
/// The construction makes three sequential passes over the store (interaction
/// rows + frequencies, transitional-pair counts, transitional-pair fill); all
/// later relations derive from those CSR intermediates. Each relation follows
/// the count → offsets → fill → sort → weight-merge discipline instead of
/// hash-map accumulation, and [`merge_contributions`] reproduces the hash
/// map's addition order exactly, so the resulting graph is **byte-identical**
/// to the historical builder on every input
/// (`crates/graph/tests/csr_regression.rs` pins this against hashes captured
/// before the rewrite).
pub fn build_graph_from_store(store: &dyn SequenceStore, cfg: &GraphConfig) -> MultiRelationGraph {
    let n_items = store.num_items() + 1; // include pad slot 0
    let n_users = store.num_users();

    // --- store pass 1: frequencies + interacted rows (A) ------------------
    // Per-user sorted run-length counts replace the per-user hash map; the
    // counts are small integers, exact in f32 either way.
    let mut freq = vec![0usize; n_items];
    let mut user_freq = vec![0usize; n_users];
    let mut ui_offsets: Vec<usize> = Vec::with_capacity(n_users + 1);
    ui_offsets.push(0);
    let mut ui_nbrs: Vec<(usize, f32)> = Vec::new();
    let mut seq: Vec<usize> = Vec::new();
    let mut scratch: Vec<usize> = Vec::new();
    for u in 0..n_users {
        store.read_seq(u, &mut seq);
        user_freq[u] = seq.len();
        for &it in &seq {
            freq[it] += 1;
        }
        scratch.clear();
        scratch.extend_from_slice(&seq);
        scratch.sort_unstable();
        let mut i = 0;
        while i < scratch.len() {
            let it = scratch[i];
            let mut c = 0usize;
            while i < scratch.len() && scratch[i] == it {
                c += 1;
                i += 1;
            }
            ui_nbrs.push((it, c as f32));
        }
        ui_offsets.push(ui_nbrs.len());
    }

    // item → interacting users: counting transpose of the `ui` rows. Filling
    // in ascending user order leaves every row user-sorted.
    let mut iu_deg = vec![0usize; n_items];
    for &(i, _) in &ui_nbrs {
        iu_deg[i] += 1;
    }
    let iu_offsets = prefix_offsets(&iu_deg);
    let mut cur = iu_offsets[..n_items].to_vec();
    let mut iu_nbrs = vec![(0usize, 0.0f32); ui_nbrs.len()];
    for u in 0..n_users {
        for &(i, w) in &ui_nbrs[ui_offsets[u]..ui_offsets[u + 1]] {
            iu_nbrs[cur[i]] = (u, w);
            cur[i] += 1;
        }
    }

    // --- transitional relations (E+_vv) -----------------------------------
    // w+_{ij} = Σ over sequences containing v_i before v_j of (n - Dis)/n.
    // Store pass 2 counts one contribution per ordered pair; pass 3 scatters
    // `(target, w)` into a flat per-source buffer. Contributions land in scan
    // order, so the per-row sort + merge reproduces hash-map accumulation.
    let pair_range = |a: usize, n: usize| -> std::ops::Range<usize> {
        let hi = if cfg.max_transition_distance == usize::MAX {
            n
        } else {
            (a + 1 + cfg.max_transition_distance).min(n)
        };
        (a + 1)..hi
    };
    let mut tcnt = vec![0usize; n_items];
    for u in 0..n_users {
        store.read_seq(u, &mut seq);
        let n = seq.len();
        for a in 0..n {
            for b in pair_range(a, n) {
                if seq[a] != seq[b] {
                    tcnt[seq[a]] += 1;
                }
            }
        }
    }
    let tbuf_offs = prefix_offsets(&tcnt);
    // (u32, f32) halves the peak of the dominant intermediate.
    let mut tbuf: Vec<(u32, f32)> = vec![(0, 0.0); tbuf_offs[n_items]];
    let mut cur = tbuf_offs[..n_items].to_vec();
    for u in 0..n_users {
        store.read_seq(u, &mut seq);
        let n = seq.len();
        for a in 0..n {
            for b in pair_range(a, n) {
                if seq[a] == seq[b] {
                    continue;
                }
                let dis = (b - a) as f32;
                let w = (n as f32 - dis) / n as f32;
                tbuf[cur[seq[a]]] = (seq[b] as u32, w);
                cur[seq[a]] += 1;
            }
        }
    }
    let mut trans_offsets: Vec<usize> = Vec::with_capacity(n_items + 1);
    trans_offsets.push(0);
    let mut trans_nbrs: Vec<(usize, f32)> = Vec::new();
    for i in 0..n_items {
        let row = &mut tbuf[tbuf_offs[i]..tbuf_offs[i + 1]];
        row.sort_by_key(|&(j, _)| j); // stable: keeps encounter order per key
        let mut p = 0;
        while p < row.len() {
            let (j, mut acc) = row[p];
            p += 1;
            while p < row.len() && row[p].0 == j {
                acc += row[p].1;
                p += 1;
            }
            trans_nbrs.push((j as usize, acc));
        }
        trans_offsets.push(trans_nbrs.len());
    }
    drop(tbuf);

    // Incoming transpose; ascending-source fill keeps rows source-sorted.
    let mut tin_deg = vec![0usize; n_items];
    for &(j, _) in &trans_nbrs {
        tin_deg[j] += 1;
    }
    let tin_offsets = prefix_offsets(&tin_deg);
    let mut cur = tin_offsets[..n_items].to_vec();
    let mut tin_nbrs = vec![(0usize, 0.0f32); trans_nbrs.len()];
    for i in 0..n_items {
        for &(j, w) in &trans_nbrs[trans_offsets[i]..trans_offsets[i + 1]] {
            tin_nbrs[cur[j]] = (i, w);
            cur[j] += 1;
        }
    }

    // --- incompatible relations (E-_vv) ------------------------------------
    // Popular items i, j with no transitional edge either way but a common
    // transitional neighbour k; weight Σ_k (w+_ik + w+_ki + w+_jk + w+_kj).
    let item_popular = popular_flags(&freq, cfg.item_fewshot_ratio);

    // Per-item transitional mass to/from each neighbour (symmetrised once):
    // scatter both directions of every edge in ascending-edge order, then
    // sort + merge each row.
    let mut mass_deg = vec![0usize; n_items];
    for i in 0..n_items {
        for &(j, _) in &trans_nbrs[trans_offsets[i]..trans_offsets[i + 1]] {
            mass_deg[i] += 1;
            mass_deg[j] += 1;
        }
    }
    let mbuf_offs = prefix_offsets(&mass_deg);
    let mut mbuf: Vec<(usize, f32)> = vec![(0, 0.0); mbuf_offs[n_items]];
    let mut cur = mbuf_offs[..n_items].to_vec();
    for i in 0..n_items {
        for &(j, w) in &trans_nbrs[trans_offsets[i]..trans_offsets[i + 1]] {
            mbuf[cur[i]] = (j, w);
            cur[i] += 1;
            mbuf[cur[j]] = (i, w);
            cur[j] += 1;
        }
    }
    let mut mass_offsets: Vec<usize> = Vec::with_capacity(n_items + 1);
    mass_offsets.push(0);
    let mut mass_nbrs: Vec<(usize, f32)> = Vec::new();
    for i in 0..n_items {
        let row = &mut mbuf[mbuf_offs[i]..mbuf_offs[i + 1]];
        row.sort_by_key(|&(j, _)| j);
        let mut p = 0;
        while p < row.len() {
            let (j, mut acc) = row[p];
            p += 1;
            while p < row.len() && row[p].0 == j {
                acc += row[p].1;
                p += 1;
            }
            mass_nbrs.push((j, acc));
        }
        mass_offsets.push(mass_nbrs.len());
    }
    drop(mbuf);

    // Invert: for each context item k, the popular items connected to k.
    // The counting transpose fills in ascending popular-item order, which is
    // exactly the old per-context push order.
    let popular_items: Vec<usize> = (1..n_items).filter(|&i| item_popular[i]).collect();
    let mut ctx_deg = vec![0usize; n_items];
    for &i in &popular_items {
        for &(k, _) in &mass_nbrs[mass_offsets[i]..mass_offsets[i + 1]] {
            ctx_deg[k] += 1;
        }
    }
    let ctx_offs = prefix_offsets(&ctx_deg);
    let mut cur = ctx_offs[..n_items].to_vec();
    let mut ctx_items = vec![0usize; ctx_offs[n_items]];
    for &i in &popular_items {
        for &(k, _) in &mass_nbrs[mass_offsets[i]..mass_offsets[i + 1]] {
            ctx_items[cur[k]] = i;
            cur[k] += 1;
        }
    }

    // Contributions stream in ascending context order (the old BTreeMap
    // iteration); merge_contributions restores per-pair accumulation order.
    let mut icontrib: Vec<((usize, usize), f32)> = Vec::new();
    for k in 0..n_items {
        let items = &ctx_items[ctx_offs[k]..ctx_offs[k + 1]];
        let items = &items[..items.len().min(cfg.max_context_items)];
        for ai in 0..items.len() {
            for bi in (ai + 1)..items.len() {
                let (i, j) = (items[ai], items[bi]); // ascending ⇒ i < j
                if row_get(&trans_offsets, &trans_nbrs, i, j).is_some()
                    || row_get(&trans_offsets, &trans_nbrs, j, i).is_some()
                {
                    continue;
                }
                let w = row_get(&mass_offsets, &mass_nbrs, i, k).unwrap_or(0.0)
                    + row_get(&mass_offsets, &mass_nbrs, j, k).unwrap_or(0.0);
                icontrib.push(((i, j), w));
            }
        }
    }
    merge_contributions(&mut icontrib);
    let (inc_offsets, inc_nbrs) = fill_undirected(n_items, &icontrib);
    drop(icontrib);

    // --- similar user relations (E+_uu) -------------------------------------
    // Users sharing an item; weight = Σ_k (w_ik + w_jk) / (Σ w_i + Σ w_j).
    // The `iu` rows are user-sorted, so pair enumeration per item emits
    // `(a, b)` with `a < b` directly; sort + dedup gives the canonical pair
    // set. Each pair's weight is independent (no accumulation), computed by
    // a two-pointer merge over the two item-sorted `ui` rows — the same
    // ascending-item addition order as the old per-user hash-map probe.
    let user_mass: Vec<f32> = (0..n_users)
        .map(|u| {
            ui_nbrs[ui_offsets[u]..ui_offsets[u + 1]]
                .iter()
                .map(|&(_, w)| w)
                .sum()
        })
        .collect();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for i in 0..n_items {
        let us = &iu_nbrs[iu_offsets[i]..iu_offsets[i + 1]];
        let us = &us[..us.len().min(cfg.max_item_users)];
        for ai in 0..us.len() {
            for bi in (ai + 1)..us.len() {
                pairs.push((us[ai].0 as u32, us[bi].0 as u32));
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();

    let mut sim_edges: Vec<((usize, usize), f32)> = Vec::with_capacity(pairs.len());
    for &(a, b) in &pairs {
        let (a, b) = (a as usize, b as usize);
        let ra = &ui_nbrs[ui_offsets[a]..ui_offsets[a + 1]];
        let rb = &ui_nbrs[ui_offsets[b]..ui_offsets[b + 1]];
        let mut shared = 0.0f32;
        let (mut x, mut y) = (0usize, 0usize);
        while x < ra.len() && y < rb.len() {
            match ra[x].0.cmp(&rb[y].0) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    shared += ra[x].1 + rb[y].1;
                    x += 1;
                    y += 1;
                }
            }
        }
        let w = shared / (user_mass[a] + user_mass[b]).max(1e-9);
        sim_edges.push(((a, b), w));
    }

    // Scatter both directions, then per-row weight-descending sort with an
    // explicit id tie-break (a total order, so fill order is irrelevant) and
    // truncation — `similar` keeps this order through normalization, and the
    // dissimilar scan below consumes it.
    let (sbuf_offs, mut sbuf) = fill_undirected(n_users, &sim_edges);
    let mut sim_offsets: Vec<usize> = Vec::with_capacity(n_users + 1);
    sim_offsets.push(0);
    let mut sim_nbrs: Vec<(usize, f32)> = Vec::new();
    for u in 0..n_users {
        let row = &mut sbuf[sbuf_offs[u]..sbuf_offs[u + 1]];
        row.sort_by(|x, y| {
            y.1.partial_cmp(&x.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.0.cmp(&y.0))
        });
        let keep = row.len().min(cfg.max_neighbors);
        sim_nbrs.extend_from_slice(&row[..keep]);
        sim_offsets.push(sim_nbrs.len());
    }
    drop(sbuf);

    // --- dissimilar user relations (E-_uu) -----------------------------------
    // Popular users who never co-interact but share a similar user k;
    // weight Σ_k (w+_ik + w+_kj) over shared similar users. Contributions
    // stream in ascending-user scan order, matching the old hash-map walk.
    let user_popular = popular_flags(&user_freq, cfg.user_fewshot_ratio);
    let mut dcontrib: Vec<((usize, usize), f32)> = Vec::new();
    for u in 0..n_users {
        let nbrs = &sim_nbrs[sim_offsets[u]..sim_offsets[u + 1]];
        for ai in 0..nbrs.len() {
            for bi in (ai + 1)..nbrs.len() {
                let (a, wa) = nbrs[ai];
                let (b, wb) = nbrs[bi];
                if !user_popular[a] || !user_popular[b] {
                    continue;
                }
                let (lo, hi) = (a.min(b), a.max(b));
                if pairs.binary_search(&(lo as u32, hi as u32)).is_ok() {
                    continue; // they are similar, not dissimilar
                }
                dcontrib.push(((lo, hi), wa + wb));
            }
        }
    }
    merge_contributions(&mut dcontrib);
    let (dis_offsets, dis_nbrs) = fill_undirected(n_users, &dcontrib);
    drop(dcontrib);

    let cap = cfg.max_neighbors;
    MultiRelationGraph {
        num_users: n_users,
        num_items: store.num_items(),
        user_item: Csr::from_parts(ui_offsets, ui_nbrs)
            .top_k(cap)
            .row_normalized(),
        item_user: Csr::from_parts(iu_offsets, iu_nbrs)
            .top_k(cap)
            .row_normalized(),
        trans_out: Csr::from_parts(trans_offsets, trans_nbrs)
            .top_k(cap)
            .row_normalized(),
        trans_in: Csr::from_parts(tin_offsets, tin_nbrs)
            .top_k(cap)
            .row_normalized(),
        incompatible: Csr::from_parts(inc_offsets, inc_nbrs)
            .top_k(cap)
            .row_normalized(),
        similar: Csr::from_parts(sim_offsets, sim_nbrs).row_normalized(),
        dissimilar: Csr::from_parts(dis_offsets, dis_nbrs)
            .top_k(cap)
            .row_normalized(),
        item_popular,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdrec_data::SyntheticConfig;

    fn toy() -> Dataset {
        Dataset {
            name: "toy".into(),
            num_users: 4,
            num_items: 6,
            sequences: vec![vec![1, 2, 3], vec![1, 2, 4], vec![5, 2, 3], vec![6, 1, 2]],
            noise_labels: None,
        }
    }

    #[test]
    fn transitional_edges_follow_order() {
        let g = build_graph(&toy(), &GraphConfig::default());
        // 1 → 2 occurs in three sequences; 2 → 1 never.
        assert!(g.trans_out.weight(1, 2).is_some());
        assert!(g.trans_out.weight(2, 1).is_none());
        // trans_in is the transpose.
        assert!(g.trans_in.weight(2, 1).is_some());
    }

    #[test]
    fn transitional_weight_decays_with_distance() {
        // Unnormalised weights: in [1,2,3], w(1→2) uses Dis=1, w(1→3) Dis=2,
        // so pre-normalisation w(1→2) > w(1→3). Check via a single-sequence
        // dataset where normalisation preserves the ordering.
        let ds = Dataset {
            name: "t".into(),
            num_users: 1,
            num_items: 3,
            sequences: vec![vec![1, 2, 3]],
            noise_labels: None,
        };
        let g = build_graph(&ds, &GraphConfig::default());
        let w12 = g.trans_out.weight(1, 2).unwrap();
        let w13 = g.trans_out.weight(1, 3).unwrap();
        assert!(w12 > w13, "{w12} vs {w13}");
    }

    #[test]
    fn pad_item_is_isolated() {
        let g = build_graph(&toy(), &GraphConfig::default());
        assert_eq!(g.trans_out.degree(0), 0);
        assert_eq!(g.trans_in.degree(0), 0);
        assert_eq!(g.incompatible.degree(0), 0);
    }

    #[test]
    fn similar_users_share_items() {
        let g = build_graph(&toy(), &GraphConfig::default());
        // Users 0 and 1 share items {1, 2}.
        assert!(g.similar.weight(0, 1).is_some());
        assert!(g.similar.weight(1, 0).is_some(), "similar is undirected");
    }

    #[test]
    fn incompatible_requires_no_transitional_link() {
        let g = build_graph(&toy(), &GraphConfig::default());
        for i in 1..=g.num_items {
            for &(j, _) in g.incompatible.neighbors(i) {
                assert!(
                    g.trans_out.weight(i, j).is_none() && g.trans_out.weight(j, i).is_none(),
                    "incompatible pair ({i},{j}) has a transitional edge"
                );
            }
        }
    }

    #[test]
    fn dissimilar_users_never_similar() {
        let ds = SyntheticConfig::beauty().scaled(0.3).generate();
        let g = build_graph(&ds, &GraphConfig::default());
        for u in 0..g.num_users {
            for &(v, _) in g.dissimilar.neighbors(u) {
                assert!(
                    g.similar.weight(u, v).is_none(),
                    "({u},{v}) both similar and dissimilar"
                );
            }
        }
    }

    #[test]
    fn rows_are_normalized() {
        let g = build_graph(&toy(), &GraphConfig::default());
        for i in 1..=g.num_items {
            if g.trans_out.degree(i) > 0 {
                let s: f32 = g.trans_out.neighbors(i).iter().map(|&(_, w)| w).sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn neighbor_cap_enforced() {
        let ds = SyntheticConfig::ml100k().scaled(0.5).generate();
        let cfg = GraphConfig {
            max_neighbors: 5,
            ..GraphConfig::default()
        };
        let g = build_graph(&ds, &cfg);
        for i in 0..=g.num_items {
            assert!(g.trans_out.degree(i) <= 5);
        }
        for u in 0..g.num_users {
            assert!(g.similar.degree(u) <= 5);
        }
    }

    #[test]
    fn builds_on_every_profile() {
        for cfg in SyntheticConfig::all_profiles() {
            let ds = cfg.scaled(0.2).generate();
            let g = build_graph(&ds, &GraphConfig::default());
            assert!(g.total_edges() > 0, "{}: empty graph", ds.name);
        }
    }

    #[test]
    fn coherence_favours_cooccurring_items() {
        let g = build_graph(&toy(), &GraphConfig::default());
        // [1, 2, 3] is a frequent pattern; a sequence with an alien item
        // should score it lowest.
        let c = g.sequence_coherence(&[1, 2, 6, 3], 3);
        assert_eq!(c.len(), 4);
        let alien = c[2];
        assert!(
            c[0] > alien && c[1] > alien,
            "alien item not least coherent: {c:?}"
        );
    }

    #[test]
    fn coherence_handles_short_sequences() {
        let g = build_graph(&toy(), &GraphConfig::default());
        assert_eq!(g.sequence_coherence(&[1], 3), vec![0.0]);
        assert!(g.sequence_coherence(&[], 3).is_empty());
    }

    #[test]
    fn coherence_is_nonnegative() {
        let ds = SyntheticConfig::yelp().scaled(0.2).generate();
        let g = build_graph(&ds, &GraphConfig::default());
        for seq in ds.sequences.iter().take(20) {
            assert!(g.sequence_coherence(seq, 3).iter().all(|&c| c >= 0.0));
        }
    }

    #[test]
    fn construction_is_bit_identical_across_builds() {
        // Every intermediate edge map is a `HashMap` with a per-instance
        // random hasher, so two builds traverse the maps in different
        // orders. The canonicalized emission (`sorted_edges`, sorted
        // context keys, id tie-breaks) must still produce byte-identical
        // graphs — float sums are order-sensitive, and the stage-1 encoder
        // (and hence trained checkpoints) inherit every low bit from here.
        let ds = SyntheticConfig::beauty().scaled(0.3).generate();
        let a = build_graph(&ds, &GraphConfig::default());
        let b = build_graph(&ds, &GraphConfig::default());
        let pairs = [
            ("user_item", &a.user_item, &b.user_item),
            ("item_user", &a.item_user, &b.item_user),
            ("trans_out", &a.trans_out, &b.trans_out),
            ("trans_in", &a.trans_in, &b.trans_in),
            ("incompatible", &a.incompatible, &b.incompatible),
            ("similar", &a.similar, &b.similar),
            ("dissimilar", &a.dissimilar, &b.dissimilar),
        ];
        for (name, x, y) in pairs {
            assert_eq!(x.num_edges(), y.num_edges(), "{name}: edge count");
            for i in 0..x.num_nodes() {
                let (nx, ny) = (x.neighbors(i), y.neighbors(i));
                assert_eq!(nx.len(), ny.len(), "{name}: degree of {i}");
                for (&(jx, wx), &(jy, wy)) in nx.iter().zip(ny) {
                    assert_eq!(jx, jy, "{name}: neighbour order at node {i}");
                    assert_eq!(
                        wx.to_bits(),
                        wy.to_bits(),
                        "{name}: weight bits for edge {i}→{jx}"
                    );
                }
            }
        }
    }

    #[test]
    fn popularity_threshold_marks_minority() {
        let ds = SyntheticConfig::sports().scaled(0.5).generate();
        let g = build_graph(&ds, &GraphConfig::default());
        let popular = g.item_popular.iter().filter(|&&p| p).count();
        let total = g.num_items;
        assert!(
            popular > 0 && popular < total / 2,
            "popular {popular}/{total}"
        );
    }
}
