//! # ssdrec-graph
//!
//! Construction of SSDRec's multi-relation graph `G` (paper §III-A): five
//! relation types — interacted user–item, transitional and incompatible
//! item–item, similar and dissimilar user–user — built data-driven from raw
//! sequences and stored as weighted CSR adjacencies.

#![warn(missing_docs)]

pub mod build;
pub mod csr;
pub mod stats;

pub use build::{build_graph, build_graph_from_store, GraphConfig, MultiRelationGraph};
pub use csr::Csr;
pub use stats::{summarize, DegreeSummary, GraphReport};
