//! Diagnostics over a built multi-relation graph: per-relation edge counts,
//! degree distributions and density — useful for sanity-checking that a
//! dataset produced the relation structure the encoder expects.

use crate::build::MultiRelationGraph;
use crate::csr::Csr;

/// Degree summary of one relation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeSummary {
    /// Directed edge count.
    pub edges: usize,
    /// Nodes with at least one neighbour.
    pub connected_nodes: usize,
    /// Mean degree over connected nodes.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
}

/// Summarise one CSR relation (skipping node 0 when `skip_pad`).
pub fn summarize(csr: &Csr, skip_pad: bool) -> DegreeSummary {
    let start = usize::from(skip_pad);
    let mut edges = 0usize;
    let mut connected = 0usize;
    let mut max_degree = 0usize;
    for i in start..csr.num_nodes() {
        let d = csr.degree(i);
        edges += d;
        if d > 0 {
            connected += 1;
        }
        max_degree = max_degree.max(d);
    }
    DegreeSummary {
        edges,
        connected_nodes: connected,
        mean_degree: if connected > 0 {
            edges as f64 / connected as f64
        } else {
            0.0
        },
        max_degree,
    }
}

/// A full per-relation report.
#[derive(Clone, Debug)]
pub struct GraphReport {
    /// `(relation name, summary)` rows in a stable order.
    pub relations: Vec<(&'static str, DegreeSummary)>,
}

impl GraphReport {
    /// Build the report for a graph.
    pub fn new(g: &MultiRelationGraph) -> Self {
        GraphReport {
            relations: vec![
                ("transitional (out)", summarize(&g.trans_out, true)),
                ("transitional (in)", summarize(&g.trans_in, true)),
                ("incompatible", summarize(&g.incompatible, true)),
                ("user→item", summarize(&g.user_item, false)),
                ("item→user", summarize(&g.item_user, true)),
                ("similar users", summarize(&g.similar, false)),
                ("dissimilar users", summarize(&g.dissimilar, false)),
            ],
        }
    }

    /// Render as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{:<20} {:>8} {:>10} {:>10} {:>8}\n",
            "relation", "edges", "connected", "mean.deg", "max.deg"
        );
        for (name, s) in &self.relations {
            out.push_str(&format!(
                "{name:<20} {:>8} {:>10} {:>10.2} {:>8}\n",
                s.edges, s.connected_nodes, s.mean_degree, s.max_degree
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, GraphConfig};
    use ssdrec_data::SyntheticConfig;

    #[test]
    fn summarize_counts() {
        let csr = Csr::from_lists(vec![vec![(1, 1.0)], vec![], vec![(0, 1.0), (1, 1.0)]]);
        let s = summarize(&csr, false);
        assert_eq!(s.edges, 3);
        assert_eq!(s.connected_nodes, 2);
        assert_eq!(s.max_degree, 2);
        assert!((s.mean_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn skip_pad_excludes_node_zero() {
        let csr = Csr::from_lists(vec![vec![(1, 1.0), (2, 1.0)], vec![(0, 1.0)], vec![]]);
        let with = summarize(&csr, false);
        let without = summarize(&csr, true);
        assert_eq!(with.edges - without.edges, 2);
    }

    #[test]
    fn report_covers_all_relations() {
        let ds = SyntheticConfig::beauty().scaled(0.15).generate();
        let g = build_graph(&ds, &GraphConfig::default());
        let report = GraphReport::new(&g);
        assert_eq!(report.relations.len(), 7);
        // Interactional relations always exist for nonempty data.
        let ui = report
            .relations
            .iter()
            .find(|(n, _)| *n == "user→item")
            .unwrap()
            .1;
        assert!(ui.edges > 0);
        let table = report.to_table();
        assert!(table.contains("transitional"));
        assert!(table.lines().count() >= 8);
    }

    #[test]
    fn empty_relation_summarises_cleanly() {
        let csr = Csr::from_lists(vec![vec![], vec![]]);
        let s = summarize(&csr, false);
        assert_eq!(
            s,
            DegreeSummary {
                edges: 0,
                connected_nodes: 0,
                mean_degree: 0.0,
                max_degree: 0
            }
        );
    }
}
