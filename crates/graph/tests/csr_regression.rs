//! Regression pin for the multi-relation graph builder.
//!
//! The checksums below were captured from the original `HashMap`-of-edges
//! builder *before* it was rewritten into counting passes over a
//! [`ssdrec_graph::build`] store. Any builder change that shifts a single
//! neighbour id, a single weight bit, or a popularity flag on any of these
//! fixtures fails this test — the stage-1 relation encoder (and hence every
//! trained checkpoint in the workspace) inherits all of its low bits from
//! these CSRs.

use ssdrec_data::{Dataset, SyntheticConfig};
use ssdrec_graph::{build_graph, Csr, GraphConfig, MultiRelationGraph};

/// FNV-1a over every structural and numeric byte of a CSR.
fn hash_csr(h: &mut u64, csr: &Csr) {
    fnv(h, csr.num_nodes() as u64);
    for i in 0..csr.num_nodes() {
        let row = csr.neighbors(i);
        fnv(h, row.len() as u64);
        for &(j, w) in row {
            fnv(h, j as u64);
            fnv(h, w.to_bits() as u64);
        }
    }
}

fn fnv(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

fn hash_graph(g: &MultiRelationGraph) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv(&mut h, g.num_users as u64);
    fnv(&mut h, g.num_items as u64);
    for csr in [
        &g.user_item,
        &g.item_user,
        &g.trans_out,
        &g.trans_in,
        &g.incompatible,
        &g.similar,
        &g.dissimilar,
    ] {
        hash_csr(&mut h, csr);
    }
    for &p in &g.item_popular {
        fnv(&mut h, p as u64);
    }
    h
}

fn toy() -> Dataset {
    Dataset {
        name: "toy".into(),
        num_users: 4,
        num_items: 6,
        sequences: vec![vec![1, 2, 3], vec![1, 2, 4], vec![5, 2, 3], vec![6, 1, 2]],
        noise_labels: None,
    }
}

/// `(fixture, cfg, pinned hash)` — pinned from the pre-rewrite builder.
fn fixtures() -> Vec<(String, Dataset, GraphConfig, u64)> {
    let default = GraphConfig::default();
    let capped = GraphConfig {
        max_neighbors: 5,
        ..GraphConfig::default()
    };
    let short_hop = GraphConfig {
        max_transition_distance: 2,
        ..GraphConfig::default()
    };
    vec![
        ("toy".into(), toy(), default.clone(), 0xbea41d3d275af6ba),
        (
            "beauty_0.2".into(),
            SyntheticConfig::beauty().scaled(0.2).generate(),
            default.clone(),
            0xbe3c36000955c632,
        ),
        (
            "sports_0.2".into(),
            SyntheticConfig::sports().scaled(0.2).generate(),
            default.clone(),
            0x32c636e2e9acde68,
        ),
        (
            "yelp_0.2".into(),
            SyntheticConfig::yelp().scaled(0.2).generate(),
            default.clone(),
            0x685117bcb3ebf8e9,
        ),
        (
            "ml100k_0.2".into(),
            SyntheticConfig::ml100k().scaled(0.2).generate(),
            default.clone(),
            0xefd06c9ee720c0ae,
        ),
        (
            "ml1m_0.1".into(),
            SyntheticConfig::ml1m().scaled(0.1).generate(),
            default,
            0xcc88011bf260ba14,
        ),
        (
            "ml100k_0.3_cap5".into(),
            SyntheticConfig::ml100k().scaled(0.3).generate(),
            capped,
            0x80e3a2d741ff0e46,
        ),
        (
            "beauty_0.3_hop2".into(),
            SyntheticConfig::beauty().scaled(0.3).generate(),
            short_hop,
            0x98dec761cf80f065,
        ),
    ]
}

#[test]
fn graph_builder_matches_pre_rewrite_pins() {
    let mut failures = Vec::new();
    for (name, ds, cfg, pinned) in fixtures() {
        let got = hash_graph(&build_graph(&ds, &cfg));
        if got != pinned {
            failures.push(format!("{name}: got 0x{got:016x}, pinned 0x{pinned:016x}"));
        }
    }
    assert!(
        failures.is_empty(),
        "graph builder diverged from the pre-rewrite pin:\n{}",
        failures.join("\n")
    );
}
