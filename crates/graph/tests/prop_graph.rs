//! Property-based tests of multi-relation graph invariants.

use proptest::prelude::*;

use ssdrec_data::Dataset;
use ssdrec_graph::{build_graph, GraphConfig};

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (3usize..8, 5usize..16).prop_flat_map(|(users, items)| {
        prop::collection::vec(prop::collection::vec(1usize..=items, 2..10), users).prop_map(
            move |sequences| Dataset {
                name: "prop".into(),
                num_users: users,
                num_items: items,
                sequences,
                noise_labels: None,
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Undirected relations are symmetric in edge existence.
    #[test]
    fn undirected_relations_symmetric(ds in arb_dataset()) {
        let g = build_graph(&ds, &GraphConfig::default());
        for i in 1..=g.num_items {
            for &(j, _) in g.incompatible.neighbors(i) {
                prop_assert!(
                    g.incompatible.weight(j, i).is_some(),
                    "incompatible ({i},{j}) not symmetric"
                );
            }
        }
        for u in 0..g.num_users {
            for &(v, _) in g.dissimilar.neighbors(u) {
                prop_assert!(g.dissimilar.weight(v, u).is_some());
            }
        }
    }

    /// Incompatible and transitional relations are disjoint by definition.
    #[test]
    fn incompatible_disjoint_from_transitional(ds in arb_dataset()) {
        let g = build_graph(&ds, &GraphConfig::default());
        for i in 1..=g.num_items {
            for &(j, _) in g.incompatible.neighbors(i) {
                prop_assert!(g.trans_out.weight(i, j).is_none());
                prop_assert!(g.trans_out.weight(j, i).is_none());
            }
        }
    }

    /// Every relation's rows are normalised (sum to 1) or empty, and all
    /// weights are positive.
    #[test]
    fn rows_normalised_and_positive(ds in arb_dataset()) {
        let g = build_graph(&ds, &GraphConfig::default());
        let check = |csr: &ssdrec_graph::Csr| {
            for i in 0..csr.num_nodes() {
                let ns = csr.neighbors(i);
                if !ns.is_empty() {
                    let s: f32 = ns.iter().map(|&(_, w)| w).sum();
                    if (s - 1.0).abs() >= 1e-3 {
                        return Err(format!("row {i} sums to {s}"));
                    }
                    if ns.iter().any(|&(_, w)| w <= 0.0) {
                        return Err(format!("row {i} has non-positive weight"));
                    }
                }
            }
            Ok(())
        };
        prop_assert!(check(&g.trans_out).is_ok());
        prop_assert!(check(&g.trans_in).is_ok());
        prop_assert!(check(&g.user_item).is_ok());
        prop_assert!(check(&g.similar).is_ok());
    }

    /// trans_in is the transpose of trans_out in edge existence.
    #[test]
    fn trans_in_is_transpose(ds in arb_dataset()) {
        let g = build_graph(&ds, &GraphConfig::default());
        let cap_hit = |csr: &ssdrec_graph::Csr, i: usize|
            csr.degree(i) >= GraphConfig::default().max_neighbors;
        for i in 1..=g.num_items {
            for &(j, _) in g.trans_out.neighbors(i) {
                // Top-K pruning can drop the mirror edge only if j's in-list
                // is full.
                prop_assert!(
                    g.trans_in.weight(j, i).is_some() || cap_hit(&g.trans_in, j),
                    "missing mirror {j}←{i}"
                );
            }
        }
    }

    /// Coherence of any sequence over the graph is finite and non-negative.
    #[test]
    fn coherence_well_defined(ds in arb_dataset(), w in 1usize..5) {
        let g = build_graph(&ds, &GraphConfig::default());
        for seq in &ds.sequences {
            for c in g.sequence_coherence(seq, w) {
                prop_assert!(c.is_finite() && c >= 0.0);
            }
        }
    }

    /// The pad node (0) is always isolated in item relations.
    #[test]
    fn pad_isolated(ds in arb_dataset()) {
        let g = build_graph(&ds, &GraphConfig::default());
        prop_assert_eq!(g.trans_out.degree(0), 0);
        prop_assert_eq!(g.trans_in.degree(0), 0);
        prop_assert_eq!(g.incompatible.degree(0), 0);
        prop_assert_eq!(g.item_user.degree(0), 0);
    }
}
