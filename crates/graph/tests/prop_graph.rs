//! Property-based tests of multi-relation graph invariants, running on the
//! in-workspace `ssdrec-testkit` property framework.

use ssdrec_testkit::{gens, property, Gen};

use ssdrec_data::Dataset;
use ssdrec_graph::{build_graph, GraphConfig};

/// Random small dataset: 3–7 users, 5–15 items, sequences of length 2–9.
fn arb_dataset() -> Gen<Dataset> {
    Gen::from_fn(|rng| {
        let users = rng.between(3, 7);
        let items = rng.between(5, 15);
        let sequences = (0..users)
            .map(|_| {
                let len = rng.between(2, 9);
                (0..len).map(|_| rng.between(1, items)).collect()
            })
            .collect();
        Dataset {
            name: "prop".into(),
            num_users: users,
            num_items: items,
            sequences,
            noise_labels: None,
        }
    })
}

property! {
    cases = 64;

    /// Undirected relations are symmetric in edge existence.
    fn undirected_relations_symmetric(ds in arb_dataset()) {
        let g = build_graph(&ds, &GraphConfig::default());
        for i in 1..=g.num_items {
            for &(j, _) in g.incompatible.neighbors(i) {
                assert!(
                    g.incompatible.weight(j, i).is_some(),
                    "incompatible ({i},{j}) not symmetric"
                );
            }
        }
        for u in 0..g.num_users {
            for &(v, _) in g.dissimilar.neighbors(u) {
                assert!(g.dissimilar.weight(v, u).is_some());
            }
        }
    }

    /// Incompatible and transitional relations are disjoint by definition.
    fn incompatible_disjoint_from_transitional(ds in arb_dataset()) {
        let g = build_graph(&ds, &GraphConfig::default());
        for i in 1..=g.num_items {
            for &(j, _) in g.incompatible.neighbors(i) {
                assert!(g.trans_out.weight(i, j).is_none());
                assert!(g.trans_out.weight(j, i).is_none());
            }
        }
    }

    /// Every relation's rows are normalised (sum to 1) or empty, and all
    /// weights are positive.
    fn rows_normalised_and_positive(ds in arb_dataset()) {
        let g = build_graph(&ds, &GraphConfig::default());
        let check = |csr: &ssdrec_graph::Csr| {
            for i in 0..csr.num_nodes() {
                let ns = csr.neighbors(i);
                if !ns.is_empty() {
                    let s: f32 = ns.iter().map(|&(_, w)| w).sum();
                    if (s - 1.0).abs() >= 1e-3 {
                        return Err(format!("row {i} sums to {s}"));
                    }
                    if ns.iter().any(|&(_, w)| w <= 0.0) {
                        return Err(format!("row {i} has non-positive weight"));
                    }
                }
            }
            Ok(())
        };
        assert!(check(&g.trans_out).is_ok());
        assert!(check(&g.trans_in).is_ok());
        assert!(check(&g.user_item).is_ok());
        assert!(check(&g.similar).is_ok());
    }

    /// trans_in is the transpose of trans_out in edge existence.
    fn trans_in_is_transpose(ds in arb_dataset()) {
        let g = build_graph(&ds, &GraphConfig::default());
        let cap_hit = |csr: &ssdrec_graph::Csr, i: usize|
            csr.degree(i) >= GraphConfig::default().max_neighbors;
        for i in 1..=g.num_items {
            for &(j, _) in g.trans_out.neighbors(i) {
                // Top-K pruning can drop the mirror edge only if j's in-list
                // is full.
                assert!(
                    g.trans_in.weight(j, i).is_some() || cap_hit(&g.trans_in, j),
                    "missing mirror {j}←{i}"
                );
            }
        }
    }

    /// Coherence of any sequence over the graph is finite and non-negative.
    fn coherence_well_defined(ds in arb_dataset(), w in gens::usizes(1, 5)) {
        let g = build_graph(&ds, &GraphConfig::default());
        for seq in &ds.sequences {
            for c in g.sequence_coherence(seq, w) {
                assert!(c.is_finite() && c >= 0.0);
            }
        }
    }

    /// The pad node (0) is always isolated in item relations.
    fn pad_isolated(ds in arb_dataset()) {
        let g = build_graph(&ds, &GraphConfig::default());
        assert_eq!(g.trans_out.degree(0), 0);
        assert_eq!(g.trans_in.degree(0), 0);
        assert_eq!(g.incompatible.degree(0), 0);
        assert_eq!(g.item_user.degree(0), 0);
    }
}
