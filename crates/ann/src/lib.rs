//! Deterministic HNSW candidate retrieval over the frozen item table.
//!
//! Serving full-rank-scores every item per request — `O(items)` per user —
//! which stops scaling somewhere between a 100K- and a 1M-item catalogue.
//! This crate provides the approximate stage of the two-stage retrieval
//! pipeline: an HNSW graph built once over the `(V+1)×d` item embedding
//! matrix answers "give me the `ef_search` most promising items" per
//! request, and the caller re-ranks only that candidate set through the
//! exact frozen scorer ([`rerank_score`]) before the shared bounded-heap
//! top-K selection.
//!
//! ## Determinism contract
//!
//! The index is a pure function of `(table bytes, AnnParams)` — independent
//! of thread count, build repetition, and platform allocator state:
//!
//! - **Level assignment** draws every node's level upfront, in ascending id
//!   order, from a single [`ssdrec_testkit::Rng`] stream seeded with
//!   [`AnnParams::seed`]. No draw happens during graph construction.
//! - **Batched insertion.** Nodes are inserted in ascending id order in
//!   fixed-size batches of [`AnnParams::batch`]. Within a batch every
//!   node's candidate search runs read-only against the frozen pre-batch
//!   graph (this is the parallel phase — any thread assignment computes
//!   the same candidate lists), then edges are committed sequentially in
//!   ascending id order. Nodes of the same batch see each other through an
//!   exact brute-force pass over the batch prefix at commit time, so the
//!   first batch (empty pre-graph) degenerates to brute force.
//! - **Total ordering.** All heaps and frontiers order by
//!   `(score descending, id ascending)` via a monotone integer encoding of
//!   the f32 score ([`skey`]) — float ties always break to the lower item
//!   id, matching the pessimistic rule of `ssdrec_metrics::top_k`.
//! - **Sorted neighbour lists.** Every adjacency list is stored sorted by
//!   ascending id; [`HnswIndex::to_bytes`] serialises the whole index so
//!   tests can assert byte-identity across builds and thread counts.
//!
//! ## Similarity
//!
//! The serving scorer is a tied-weight inner product (`h_S · Eᵀ` plus a pad
//! mask), so the index searches by **maximum inner product**, not Euclidean
//! distance. [`dot_zskip`] replicates the workspace gemm kernel's
//! accumulation exactly (ascending-`p` adds, zero-skip on the query
//! element), and [`rerank_score`] appends the pad-mask `+ 0.0` — candidate
//! scores are therefore bit-identical to the corresponding entries of the
//! full `B×(V+1)` score row the exact path computes.

use std::collections::{BTreeSet, HashSet};

use ssdrec_testkit::Rng;

/// Hard cap on HNSW levels (level 15 at `m = 16` has probability ~1e-18).
const MAX_LEVEL: u8 = 15;

/// Build-time knobs. The index bytes are a pure function of the table and
/// this struct, so every field is part of the determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnnParams {
    /// Max out-degree per node on layers ≥ 1; layer 0 keeps `2·m` links.
    pub m: usize,
    /// Beam width of the candidate search during construction.
    pub ef_construction: usize,
    /// Seed of the level-assignment RNG stream.
    pub seed: u64,
    /// Insertion batch size. Searches within a batch run against the frozen
    /// pre-batch graph, so this value changes the built graph (it is a
    /// quality/parallelism knob, not a free parameter).
    pub batch: usize,
}

impl Default for AnnParams {
    fn default() -> Self {
        AnnParams {
            m: 16,
            ef_construction: 96,
            seed: 0x0A11_5EED,
            batch: 64,
        }
    }
}

/// Why an index build failed (bad inputs or an injected `ann.build` fault).
/// Construction is all-or-nothing: on `Err` no partial index escapes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildError(pub String);

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ann build failed: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

/// Monotone map from f32 to u32: `a < b` (IEEE order) ⇔ `skey(a) < skey(b)`.
/// Total — NaNs land at the extremes, `-0.0 < +0.0` — so every ordering
/// decision in the index is an integer compare.
#[inline]
fn skey(s: f32) -> u32 {
    let b = s.to_bits();
    if b & 0x8000_0000 != 0 {
        !b
    } else {
        b | 0x8000_0000
    }
}

#[inline]
fn skey_inv(k: u32) -> f32 {
    if k & 0x8000_0000 != 0 {
        f32::from_bits(k & 0x7fff_ffff)
    } else {
        f32::from_bits(!k)
    }
}

/// Best-first key: ascending order = (score descending, id ascending).
#[inline]
fn key_best(score: f32, id: u32) -> u64 {
    ((!skey(score) as u64) << 32) | id as u64
}

#[inline]
fn decode_best(k: u64) -> (u32, f32) {
    ((k & 0xffff_ffff) as u32, skey_inv(!((k >> 32) as u32)))
}

/// Worst-first key: ascending order = (score ascending, id descending) —
/// `set.first()` is the entry the pessimistic rule evicts first.
#[inline]
fn key_worst(score: f32, id: u32) -> u64 {
    ((skey(score) as u64) << 32) | (!id) as u64
}

#[inline]
fn decode_worst(k: u64) -> (u32, f32) {
    (!((k & 0xffff_ffff) as u32), skey_inv((k >> 32) as u32))
}

/// Inner product replicating the workspace gemm kernel bit-for-bit: adds run
/// over ascending `p` and terms whose **query** element is `±0.0` are
/// skipped, exactly like the `nn` gemm variant the frozen scorer uses
/// (`crates/tensor/src/backend/reference.rs`).
#[inline]
pub fn dot_zskip(q: &[f32], v: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&a, &b) in q.iter().zip(v.iter()) {
        if a == 0.0 {
            continue;
        }
        acc += a * b;
    }
    acc
}

/// The exact re-rank score of one candidate: the gemm-parity dot plus the
/// pad-mask add the exact path applies via `add_bcast` (the mask entry is
/// `0.0` for every real item; the explicit `+ 0.0` normalises `-0.0` the
/// same way the kernel does). Bit-identical to the candidate's entry in the
/// full score row.
#[inline]
pub fn rerank_score(q: &[f32], v: &[f32]) -> f32 {
    dot_zskip(q, v) + 0.0
}

/// One node's planned edges for a layer (computed in the read-only parallel
/// phase of a batch, consumed by the sequential commit).
#[derive(Clone, Default)]
struct NodePlan {
    /// `per_layer[l]` = candidate `(id, score)` list for layer `l`,
    /// best-first. Layers above the pre-batch entry level are empty.
    per_layer: Vec<Vec<(u32, f32)>>,
}

/// A deterministic HNSW index over item ids `1..=count` (row 0 of the table
/// is the pad embedding and never indexed).
pub struct HnswIndex {
    dim: usize,
    count: usize,
    params: AnnParams,
    /// Owned copy of the `(count+1)×dim` table.
    vecs: Vec<f32>,
    /// Per-id top level (index 0 unused).
    levels: Vec<u8>,
    /// `links[id][layer]`, each list sorted by ascending id.
    links: Vec<Vec<Vec<u32>>>,
    /// Entry node (highest level, ties to the lowest id); 0 iff `count == 0`.
    entry: u32,
}

impl HnswIndex {
    /// Build the index over `table` (`(count+1)×dim`, row-major, row 0 =
    /// pad). All-or-nothing: an injected `ann.build` fault or invalid input
    /// returns `Err` and no partial index.
    pub fn build(
        table: &[f32],
        dim: usize,
        count: usize,
        params: AnnParams,
    ) -> Result<HnswIndex, BuildError> {
        if dim == 0 {
            return Err(BuildError("dim must be ≥ 1".into()));
        }
        if table.len() != (count + 1) * dim {
            return Err(BuildError(format!(
                "table has {} values, want (count+1)·dim = {}",
                table.len(),
                (count + 1) * dim
            )));
        }
        if params.m < 2 {
            return Err(BuildError("m must be ≥ 2".into()));
        }
        if params.ef_construction == 0 || params.batch == 0 {
            return Err(BuildError("ef_construction and batch must be ≥ 1".into()));
        }

        // Phase 0: every level, upfront, from one seeded stream in id order.
        let ml = 1.0 / (params.m as f64).ln();
        let mut rng = Rng::seed(params.seed);
        let mut levels = vec![0u8; count + 1];
        for l in levels.iter_mut().skip(1) {
            let u = rng.next_f64().max(f64::MIN_POSITIVE);
            *l = ((-u.ln() * ml) as u64).min(MAX_LEVEL as u64) as u8;
        }

        let mut idx = HnswIndex {
            dim,
            count,
            params,
            vecs: table.to_vec(),
            links: levels
                .iter()
                .map(|&l| vec![Vec::new(); l as usize + 1])
                .collect(),
            levels,
            entry: 0,
        };

        // Batched insertion: parallel read-only search, sequential commit.
        let mut id = 1usize;
        while id <= count {
            ssdrec_faults::point("ann.build")
                .map_err(|_| BuildError("injected fault at ann.build".into()))?;
            let hi = (id + params.batch - 1).min(count);
            let mut plans: Vec<NodePlan> = vec![NodePlan::default(); hi - id + 1];
            let base = id;
            ssdrec_runtime::parallel_chunks_mut(&mut plans, 1, |ci, chunk| {
                chunk[0] = idx.plan_insert((base + ci) as u32);
            });
            for (off, plan) in plans.into_iter().enumerate() {
                idx.commit_insert((id + off) as u32, base as u32, plan);
            }
            id = hi + 1;
        }
        Ok(idx)
    }

    /// Catalogue size the index was built over.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The build parameters (part of the determinism contract).
    pub fn params(&self) -> AnnParams {
        self.params
    }

    #[inline]
    fn vec_of(&self, id: u32) -> &[f32] {
        let i = id as usize * self.dim;
        &self.vecs[i..i + self.dim]
    }

    #[inline]
    fn score(&self, q: &[f32], id: u32) -> f32 {
        dot_zskip(q, self.vec_of(id))
    }

    /// Max out-degree at `layer`.
    #[inline]
    fn max_degree(&self, layer: usize) -> usize {
        if layer == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    /// Greedy hill-climb at `layer`: move to the best neighbour while one
    /// strictly improves on `(score desc, id asc)`.
    fn greedy(&self, q: &[f32], mut ep: u32, layer: usize) -> u32 {
        let mut best = key_best(self.score(q, ep), ep);
        loop {
            let mut improved = false;
            for &nb in &self.links[ep as usize][layer] {
                let k = key_best(self.score(q, nb), nb);
                if k < best {
                    best = k;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
            ep = decode_best(best).0;
        }
    }

    /// Beam search at `layer`: the `ef` best nodes reachable from `ep`,
    /// best-first. Fully deterministic: both the frontier and the result
    /// set are ordered sets over the integer score keys.
    fn search_layer(&self, q: &[f32], ep: u32, ef: usize, layer: usize) -> Vec<(u32, f32)> {
        let eps = self.score(q, ep);
        let mut visited: HashSet<u32> = HashSet::new();
        visited.insert(ep);
        let mut frontier: BTreeSet<u64> = BTreeSet::new();
        frontier.insert(key_best(eps, ep));
        let mut results: BTreeSet<u64> = BTreeSet::new();
        results.insert(key_worst(eps, ep));

        while let Some(&ck) = frontier.first() {
            frontier.remove(&ck);
            let (cid, cscore) = decode_best(ck);
            let worst = *results.first().expect("results never empty");
            if results.len() >= ef && key_worst(cscore, cid) < worst {
                break; // best frontier entry can no longer enter the result set
            }
            for &nb in &self.links[cid as usize][layer] {
                if !visited.insert(nb) {
                    continue;
                }
                let s = self.score(q, nb);
                if results.len() < ef || key_worst(s, nb) > *results.first().expect("non-empty") {
                    frontier.insert(key_best(s, nb));
                    results.insert(key_worst(s, nb));
                    if results.len() > ef {
                        results.pop_first();
                    }
                }
            }
        }
        results.iter().rev().map(|&k| decode_worst(k)).collect()
    }

    /// HNSW neighbour-selection heuristic under inner-product similarity,
    /// deterministic: candidates are processed best-first and kept iff they
    /// are closer to the query than to any already-kept neighbour
    /// (`dot(c, q) > dot(c, kept)` for all kept); rejected candidates fill
    /// remaining slots in order so connectivity never drops below
    /// `min(max_deg, candidates)`.
    fn select_neighbors(&self, cands: &[(u32, f32)], max_deg: usize) -> Vec<u32> {
        let mut order: Vec<u64> = cands.iter().map(|&(id, s)| key_best(s, id)).collect();
        order.sort_unstable();
        let mut kept: Vec<(u32, f32)> = Vec::with_capacity(max_deg);
        let mut rejected: Vec<u32> = Vec::new();
        for &k in &order {
            if kept.len() >= max_deg {
                break;
            }
            let (id, s) = decode_best(k);
            let q_sim = s;
            let shadowed = kept
                .iter()
                .any(|&(kid, _)| self.score(self.vec_of(id), kid) >= q_sim);
            if shadowed {
                rejected.push(id);
            } else {
                kept.push((id, s));
            }
        }
        let mut out: Vec<u32> = kept.into_iter().map(|(id, _)| id).collect();
        for id in rejected {
            if out.len() >= max_deg {
                break;
            }
            out.push(id);
        }
        out.sort_unstable();
        out
    }

    /// Parallel phase of one insertion: candidate lists for every layer of
    /// `id`, searched read-only against the pre-batch graph.
    fn plan_insert(&self, id: u32) -> NodePlan {
        let lq = self.levels[id as usize] as usize;
        let mut plan = NodePlan {
            per_layer: vec![Vec::new(); lq + 1],
        };
        if self.entry == 0 {
            return plan; // empty pre-graph: the commit's prefix pass links the batch
        }
        let q = self.vec_of(id);
        let el = self.levels[self.entry as usize] as usize;
        let mut ep = self.entry;
        let mut l = el;
        while l > lq {
            ep = self.greedy(q, ep, l);
            l -= 1;
        }
        loop {
            let cands = self.search_layer(q, ep, self.params.ef_construction, l);
            ep = cands.first().map(|&(i, _)| i).unwrap_or(ep);
            plan.per_layer[l] = cands;
            if l == 0 {
                break;
            }
            l -= 1;
        }
        plan
    }

    /// Sequential phase: link `id` into the graph. `batch_base` is the first
    /// id of the current batch — earlier batch members (already committed)
    /// are brute-force candidates, since the parallel search could not see
    /// them.
    fn commit_insert(&mut self, id: u32, batch_base: u32, plan: NodePlan) {
        let lq = self.levels[id as usize] as usize;
        for l in (0..=lq).rev() {
            let mut cands = plan.per_layer.get(l).cloned().unwrap_or_default();
            for j in batch_base..id {
                if self.levels[j as usize] as usize >= l {
                    cands.push((j, self.score(self.vec_of(id), j)));
                }
            }
            if cands.is_empty() {
                continue;
            }
            let selected = self.select_neighbors(&cands, self.max_degree(l));
            for &nb in &selected {
                self.add_link(nb, id, l);
            }
            self.links[id as usize][l] = selected;
        }
        let cur = self.entry;
        if cur == 0 || self.levels[id as usize] > self.levels[cur as usize] {
            self.entry = id;
        }
    }

    /// Append the back-edge `from → to`, re-selecting `from`'s neighbour
    /// list when it overflows the layer's degree bound.
    fn add_link(&mut self, from: u32, to: u32, layer: usize) {
        let max_deg = self.max_degree(layer);
        let list = &mut self.links[from as usize][layer];
        match list.binary_search(&to) {
            Ok(_) => return,
            Err(pos) => list.insert(pos, to),
        }
        if list.len() > max_deg {
            let fv: Vec<(u32, f32)> = {
                let q = self.vec_of(from);
                self.links[from as usize][layer]
                    .iter()
                    .map(|&nb| (nb, dot_zskip(q, self.vec_of(nb))))
                    .collect()
            };
            let pruned = self.select_neighbors(&fv, max_deg);
            self.links[from as usize][layer] = pruned;
        }
    }

    /// The candidate set for query `q`: ids of the `ef` best reachable
    /// items, **sorted ascending** (canonical order for the exact re-rank).
    /// When `ef ≥ count` the search degenerates to the full catalogue —
    /// retrieval is exhaustive by construction, which is what the parity
    /// smoke and the `recall == 1.0` property rely on.
    pub fn candidates(&self, q: &[f32], ef: usize) -> Vec<u32> {
        assert_eq!(q.len(), self.dim, "query width must match the table");
        if self.count == 0 || ef == 0 {
            return Vec::new();
        }
        if ef >= self.count {
            return (1..=self.count as u32).collect();
        }
        let mut ep = self.entry;
        let q_ref = q;
        for l in (1..=self.levels[self.entry as usize] as usize).rev() {
            ep = self.greedy(q_ref, ep, l);
        }
        let mut ids: Vec<u32> = self
            .search_layer(q_ref, ep, ef, 0)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Canonical serialisation: every field that defines the index, in a
    /// fixed order. Two builds are interchangeable iff their bytes match.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"ANN1");
        for v in [
            self.dim as u64,
            self.count as u64,
            self.params.m as u64,
            self.params.ef_construction as u64,
            self.params.seed,
            self.params.batch as u64,
            self.entry as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.levels[1..]);
        for id in 1..=self.count {
            for layer in &self.links[id] {
                out.extend_from_slice(&(layer.len() as u32).to_le_bytes());
                for &nb in layer {
                    out.extend_from_slice(&nb.to_le_bytes());
                }
            }
        }
        out
    }

    /// Total directed edges at layer 0 (diagnostics).
    pub fn edges(&self) -> usize {
        (1..=self.count).map(|id| self.links[id][0].len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_table(count: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = Rng::seed(seed);
        let mut t = vec![0.0f32; (count + 1) * dim];
        for v in t.iter_mut().skip(dim) {
            *v = rng.next_f32() * 2.0 - 1.0;
        }
        t
    }

    #[test]
    fn skey_is_monotone_and_invertible() {
        let vals = [-f32::INFINITY, -3.5, -0.0, 0.0, 1.0e-9, 2.5, f32::INFINITY];
        for w in vals.windows(2) {
            assert!(skey(w[0]) <= skey(w[1]), "{} vs {}", w[0], w[1]);
        }
        for &v in &vals {
            assert_eq!(skey_inv(skey(v)).to_bits(), v.to_bits());
        }
        assert!(skey(-0.0) < skey(0.0), "total order separates signed zero");
    }

    #[test]
    fn key_best_breaks_ties_to_lower_id() {
        assert!(key_best(1.0, 3) < key_best(1.0, 7));
        assert!(key_best(2.0, 9) < key_best(1.0, 1));
        // worst-first: same score → higher id is evicted first
        assert!(key_worst(1.0, 7) < key_worst(1.0, 3));
    }

    #[test]
    fn dot_zskip_matches_plain_dot_without_zeros() {
        let a = [0.5f32, -1.25, 2.0];
        let b = [1.0f32, 3.0, -0.5];
        let want: f32 = 0.5 * 1.0 + (-1.25) * 3.0 + 2.0 * (-0.5);
        assert_eq!(dot_zskip(&a, &b).to_bits(), want.to_bits());
        // query-side zero skipped even against inf
        let a0 = [0.0f32, 1.0];
        let binf = [f32::INFINITY, 2.0];
        assert_eq!(dot_zskip(&a0, &binf), 2.0);
    }

    #[test]
    fn build_rejects_bad_shapes() {
        assert!(HnswIndex::build(&[0.0; 4], 0, 1, AnnParams::default()).is_err());
        assert!(HnswIndex::build(&[0.0; 5], 2, 2, AnnParams::default()).is_err());
        let bad_m = AnnParams {
            m: 1,
            ..AnnParams::default()
        };
        assert!(HnswIndex::build(&[0.0; 6], 2, 2, bad_m).is_err());
    }

    #[test]
    fn neighbour_lists_are_sorted_and_bounded() {
        let dim = 8;
        let n = 300;
        let t = toy_table(n, dim, 11);
        let idx = HnswIndex::build(&t, dim, n, AnnParams::default()).expect("build");
        for id in 1..=n {
            for (l, list) in idx.links[id].iter().enumerate() {
                assert!(list.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
                assert!(list.len() <= idx.max_degree(l), "degree bound at {l}");
                assert!(list.iter().all(|&nb| nb as usize != id), "no self-links");
            }
        }
        assert!(idx.entry != 0);
    }

    #[test]
    fn exhaustive_ef_returns_whole_catalogue() {
        let dim = 4;
        let n = 50;
        let t = toy_table(n, dim, 3);
        let idx = HnswIndex::build(&t, dim, n, AnnParams::default()).expect("build");
        let q = vec![0.25f32; dim];
        let ids = idx.candidates(&q, n);
        assert_eq!(ids, (1..=n as u32).collect::<Vec<_>>());
        assert_eq!(idx.candidates(&q, 0), Vec::<u32>::new());
    }

    #[test]
    fn candidates_are_sorted_unique_and_at_most_ef() {
        let dim = 8;
        let n = 400;
        let t = toy_table(n, dim, 17);
        let idx = HnswIndex::build(&t, dim, n, AnnParams::default()).expect("build");
        let mut rng = Rng::seed(9);
        for _ in 0..10 {
            let q: Vec<f32> = (0..dim).map(|_| rng.next_f32() - 0.5).collect();
            let ids = idx.candidates(&q, 32);
            assert!(ids.len() <= 32);
            assert!(!ids.is_empty());
            assert!(ids.windows(2).all(|w| w[0] < w[1]));
            assert!(ids.iter().all(|&i| i >= 1 && i <= n as u32));
        }
    }

    #[test]
    fn rebuild_is_byte_identical() {
        let dim = 6;
        let n = 257; // not a multiple of the batch size
        let t = toy_table(n, dim, 23);
        let a = HnswIndex::build(&t, dim, n, AnnParams::default()).expect("a");
        let b = HnswIndex::build(&t, dim, n, AnnParams::default()).expect("b");
        assert_eq!(a.to_bytes(), b.to_bytes());
    }
}
