//! Chaos coverage for the `ann.build` fault site, in its own test binary:
//! the fault registry is process-global, so arming it must not race the
//! crate's other (concurrently running) build tests.

use ssdrec_ann::{AnnParams, HnswIndex};
use ssdrec_faults::{arm, disarm, fired, FaultSpec};
use ssdrec_testkit::Rng;

fn toy_table(count: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed(seed);
    let mut t = vec![0.0f32; (count + 1) * dim];
    for v in t.iter_mut().skip(dim) {
        *v = rng.next_f32() * 2.0 - 1.0;
    }
    t
}

#[test]
fn injected_fault_fails_build_cleanly() {
    let dim = 4;
    let n = 200; // several 64-node batches, so nth=2 fires mid-build
    let t = toy_table(n, dim, 5);
    arm(vec![FaultSpec::parse("ann.build:error:2").expect("spec")]);
    let r = HnswIndex::build(&t, dim, n, AnnParams::default());
    let hits = fired("ann.build");
    disarm();
    assert!(r.is_err(), "mid-build fault must surface as Err");
    assert!(hits >= 1, "the armed fault must actually fire");
    // No torn state can escape: build is all-or-nothing, so a clean rebuild
    // is byte-identical to a never-faulted build.
    let a = HnswIndex::build(&t, dim, n, AnnParams::default()).expect("rebuild");
    let b = HnswIndex::build(&t, dim, n, AnnParams::default()).expect("fresh");
    assert_eq!(a.to_bytes(), b.to_bytes());
}
