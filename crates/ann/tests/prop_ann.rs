//! Property suite for the deterministic HNSW index: exactness in the
//! degenerate regime, recall sanity in the approximate regime, and
//! tie-break agreement with the shared pessimistic top-K.

use ssdrec_ann::{rerank_score, AnnParams, HnswIndex};
use ssdrec_metrics::{top_k, top_k_sparse};
use ssdrec_testkit::Rng;

fn gaussian_table(count: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed(seed);
    let mut t = vec![0.0f32; (count + 1) * dim];
    for v in t.iter_mut().skip(dim) {
        // Box–Muller-free approximation: sum of uniforms is fine here.
        *v = (0..4).map(|_| rng.next_f32()).sum::<f32>() - 2.0;
    }
    t
}

/// The full exact score row (index = item id, pad at 0 scored −inf-ish low
/// so it never competes), built with the same arithmetic the re-rank uses.
fn dense_scores(table: &[f32], dim: usize, count: usize, q: &[f32]) -> Vec<f32> {
    let mut row = vec![f32::NEG_INFINITY; count + 1];
    for i in 1..=count {
        row[i] = rerank_score(q, &table[i * dim..(i + 1) * dim]);
    }
    row
}

/// Run the two-stage pipeline: ANN candidates + exact re-rank + shared
/// pessimistic top-K.
fn ann_top_k(
    idx: &HnswIndex,
    table: &[f32],
    dim: usize,
    q: &[f32],
    ef: usize,
    k: usize,
) -> Vec<(usize, f32)> {
    let cands = idx.candidates(q, ef);
    top_k_sparse(
        cands.iter().map(|&c| {
            let ci = c as usize;
            (ci, rerank_score(q, &table[ci * dim..(ci + 1) * dim]))
        }),
        k,
    )
}

#[test]
fn recall_is_one_when_ef_covers_the_catalogue() {
    let (dim, n) = (8, 300);
    let table = gaussian_table(n, dim, 42);
    let idx = HnswIndex::build(&table, dim, n, AnnParams::default()).expect("build");
    let mut rng = Rng::seed(7);
    for case in 0..20 {
        let q: Vec<f32> = (0..dim).map(|_| rng.next_f32() - 0.5).collect();
        let exact = top_k(&dense_scores(&table, dim, n, &q), 10);
        // ef == catalogue and ef > catalogue must both be exhaustive.
        for ef in [n, n + 57] {
            let ann = ann_top_k(&idx, &table, dim, &q, ef, 10);
            assert_eq!(ann, exact, "case {case}, ef {ef}: recall@10 must be 1.0");
            for (a, e) in ann.iter().zip(&exact) {
                assert_eq!(a.1.to_bits(), e.1.to_bits(), "bit-exact re-rank scores");
            }
        }
    }
}

#[test]
fn recall_at_default_ef_is_high_on_a_real_beam() {
    // Approximate regime (ef ≪ catalogue): not exact by construction, but
    // the default parameters must keep recall@10 high — this is the same
    // bound BENCH_retrieval.json enforces at catalogue scale.
    let (dim, n) = (16, 2_000);
    let table = gaussian_table(n, dim, 1234);
    let idx = HnswIndex::build(&table, dim, n, AnnParams::default()).expect("build");
    let mut rng = Rng::seed(99);
    let mut hit = 0usize;
    let mut total = 0usize;
    for _ in 0..30 {
        let q: Vec<f32> = (0..dim).map(|_| rng.next_f32() - 0.5).collect();
        let exact: Vec<usize> = top_k(&dense_scores(&table, dim, n, &q), 10)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        let ann = ann_top_k(&idx, &table, dim, &q, 128, 10);
        hit += ann.iter().filter(|(i, _)| exact.contains(i)).count();
        total += exact.len();
    }
    let recall = hit as f64 / total as f64;
    assert!(recall >= 0.95, "recall@10 at ef=128 on 2K items: {recall}");
}

#[test]
fn duplicate_scores_agree_with_shared_top_k_ties() {
    // A catalogue of 120 items holding only 6 distinct embeddings: every
    // query sees 20-way score ties. The re-rank path must resolve them
    // exactly like `ssdrec_metrics::top_k` on the dense row — equal scores
    // break to the lower item id, at every pipeline stage.
    let (dim, n, distinct) = (8, 120, 6);
    let protos = gaussian_table(distinct, dim, 5);
    let mut table = vec![0.0f32; (n + 1) * dim];
    for i in 1..=n {
        let p = 1 + (i - 1) % distinct;
        table[i * dim..(i + 1) * dim].copy_from_slice(&protos[p * dim..(p + 1) * dim]);
    }
    let idx = HnswIndex::build(&table, dim, n, AnnParams::default()).expect("build");
    let mut rng = Rng::seed(11);
    for case in 0..10 {
        let q: Vec<f32> = (0..dim).map(|_| rng.next_f32() - 0.5).collect();
        let dense = dense_scores(&table, dim, n, &q);
        let exact = top_k(&dense, 10);
        // Degenerate beam: full agreement including tie order.
        let ann = ann_top_k(&idx, &table, dim, &q, n, 10);
        assert_eq!(ann, exact, "case {case}: exhaustive ties must match");
        // Narrow beam: the candidate search itself breaks ties to lower
        // ids, so the winning duplicate cluster's lowest ids must surface.
        let ann = ann_top_k(&idx, &table, dim, &q, 40, 10);
        for (pos, &(item, score)) in ann.iter().enumerate() {
            assert_eq!(
                score.to_bits(),
                dense[item].to_bits(),
                "case {case}: re-rank score is the exact score"
            );
            if pos > 0 {
                let prev = ann[pos - 1];
                assert!(
                    prev.1 > score || (prev.1 == score && prev.0 < item),
                    "case {case}: pessimistic order within the result"
                );
            }
        }
    }
}

#[test]
fn build_is_byte_identical_across_thread_counts() {
    // The batched insert parallelizes candidate search across the runtime
    // pool; the commit order is fixed, so the pool width must never leak
    // into the graph. (Thread-count invariance is the whole point — if a
    // sibling test's build overlaps a pool resize here, its bytes still
    // may not change.)
    let (dim, n) = (8, 400);
    let table = gaussian_table(n, dim, 31);
    let mut reference: Option<Vec<u8>> = None;
    for threads in [1usize, 4] {
        ssdrec_runtime::set_threads(threads);
        let idx = HnswIndex::build(&table, dim, n, AnnParams::default()).expect("build");
        let bytes = idx.to_bytes();
        match &reference {
            None => reference = Some(bytes),
            Some(want) => assert_eq!(&bytes, want, "index diverged at {threads} threads"),
        }
    }
    ssdrec_runtime::set_threads(1);
}

#[test]
fn two_builds_are_byte_identical() {
    let (dim, n) = (8, 500);
    let table = gaussian_table(n, dim, 77);
    let params = AnnParams::default();
    let a = HnswIndex::build(&table, dim, n, params).expect("a");
    let b = HnswIndex::build(&table, dim, n, params).expect("b");
    assert_eq!(a.to_bytes(), b.to_bytes(), "same inputs ⇒ same index bytes");
    // And a different seed is allowed to (and here does) change the graph.
    let c = HnswIndex::build(
        &table,
        dim,
        n,
        AnnParams {
            seed: params.seed + 1,
            ..params
        },
    )
    .expect("c");
    assert_ne!(a.to_bytes(), c.to_bytes(), "seed is part of the contract");
}
