//! Bench behind Table VI: one optimisation step (forward + backward + Adam)
//! per model on a fixed mini-batch — the unit that per-epoch time is made of.
//! Runs on the in-workspace `ssdrec_testkit::bench::Harness`.

use ssdrec_testkit::bench::Harness;

use ssdrec_core::{SsdRec, SsdRecConfig};
use ssdrec_data::{make_batches, prepare, SyntheticConfig};
use ssdrec_denoise::Hsd;
use ssdrec_graph::{build_graph, GraphConfig};
use ssdrec_models::{BackboneKind, RecModel, SeqRec};
use ssdrec_tensor::{Adam, Graph, Rng};

fn one_step<M: RecModel>(model: &mut M, batch: &ssdrec_data::Batch, opt: &mut Adam, rng: &mut Rng) {
    let mut g = Graph::new();
    let bind = model.store().bind_all(&mut g);
    let loss = model.loss(&mut g, &bind, batch, rng);
    let mut grads = g.backward(loss);
    opt.step(model.store_mut(), &bind, &mut grads);
}

fn main() {
    let raw = SyntheticConfig::beauty().scaled(0.25).generate();
    let (ds, split) = prepare(&raw, 50, 2);
    let graph = build_graph(&ds, &GraphConfig::default());
    let batches = make_batches(&split.train, 32, 0);
    let batch = batches
        .iter()
        .max_by_key(|b| b.len())
        .expect("nonempty training data")
        .clone();
    let d = 16;

    let mut sasrec = SeqRec::new(BackboneKind::SasRec, ds.num_items, d, 50, 0);
    let mut hsd = Hsd::new(ds.num_users, ds.num_items, d, 50, 0);
    let cfg = SsdRecConfig {
        dim: d,
        max_len: 50,
        backbone: BackboneKind::SasRec,
        ..SsdRecConfig::default()
    };
    let mut ssdrec = SsdRec::new(&graph, cfg);

    let mut h = Harness::new("epoch_time");
    {
        let mut opt = Adam::new(1e-3);
        let mut rng = Rng::seed(1);
        h.bench("train_step/sasrec", || {
            one_step(&mut sasrec, &batch, &mut opt, &mut rng)
        });
    }
    {
        let mut opt = Adam::new(1e-3);
        let mut rng = Rng::seed(2);
        h.bench("train_step/hsd", || {
            one_step(&mut hsd, &batch, &mut opt, &mut rng)
        });
    }
    {
        let mut opt = Adam::new(1e-3);
        let mut rng = Rng::seed(3);
        h.bench("train_step/ssdrec", || {
            one_step(&mut ssdrec, &batch, &mut opt, &mut rng)
        });
    }
    h.finish();
}
