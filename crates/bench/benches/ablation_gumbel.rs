//! Ablation bench (DESIGN.md §5.1): straight-through hard Gumbel vs the soft
//! relaxation inside the position selector — cost of the hard path and of
//! the full augmentation step, at several sequence lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ssdrec_core::SelfAugmenter;
use ssdrec_tensor::nn::{gumbel_softmax, GumbelMode};
use ssdrec_tensor::{Graph, ParamStore, Rng, Tensor};

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::seed(seed);
    let n: usize = shape.iter().product();
    Tensor::new((0..n).map(|_| rng.uniform(0.01, 1.0)).collect(), shape)
}

fn bench_gumbel_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("gumbel_mode");
    for &v in &[100usize, 400, 1600] {
        let probs = rand_tensor(&[32, v], 1);
        for (label, mode) in [("soft", GumbelMode::Soft), ("hard", GumbelMode::Hard)] {
            group.bench_with_input(BenchmarkId::new(label, v), &v, |b, _| {
                b.iter(|| {
                    let mut g = Graph::new();
                    let mut rng = Rng::seed(2);
                    let p = g.constant(probs.clone());
                    gumbel_softmax(&mut g, &mut rng, p, 1.0, mode)
                })
            });
        }
    }
    group.finish();
}

fn bench_augment_lengths(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let mut rng0 = Rng::seed(3);
    let aug = SelfAugmenter::new(&mut store, "aug", 16, &mut rng0);
    let table = rand_tensor(&[200, 16], 4);

    let mut group = c.benchmark_group("augment_step");
    group.sample_size(10);
    for &t in &[5usize, 10, 20] {
        let h0 = rand_tensor(&[16, t, 16], 5);
        group.bench_with_input(BenchmarkId::new("seq_len", t), &t, |b, _| {
            b.iter(|| {
                let mut g = Graph::new();
                let bind = store.bind_all(&mut g);
                let mut rng = Rng::seed(6);
                let h = g.constant(h0.clone());
                let tv = g.constant(table.clone());
                aug.augment(&mut g, &bind, &mut rng, h, tv, 1.0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gumbel_modes, bench_augment_lengths);
criterion_main!(benches);
