//! Ablation bench (DESIGN.md §5.1): straight-through hard Gumbel vs the soft
//! relaxation inside the position selector — cost of the hard path and of
//! the full augmentation step, at several sequence lengths. Runs on the
//! in-workspace `ssdrec_testkit::bench::Harness`.

use ssdrec_testkit::bench::Harness;

use ssdrec_core::SelfAugmenter;
use ssdrec_tensor::nn::{gumbel_softmax, GumbelMode};
use ssdrec_tensor::{Graph, ParamStore, Rng, Tensor};

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::seed(seed);
    let n: usize = shape.iter().product();
    Tensor::new((0..n).map(|_| rng.uniform(0.01, 1.0)).collect(), shape)
}

fn bench_gumbel_modes(h: &mut Harness) {
    for &v in &[100usize, 400, 1600] {
        let probs = rand_tensor(&[32, v], 1);
        for (label, mode) in [("soft", GumbelMode::Soft), ("hard", GumbelMode::Hard)] {
            h.bench(&format!("gumbel_mode/{label}/{v}"), || {
                let mut g = Graph::new();
                let mut rng = Rng::seed(2);
                let p = g.constant(probs.clone());
                gumbel_softmax(&mut g, &mut rng, p, 1.0, mode)
            });
        }
    }
}

fn bench_augment_lengths(h: &mut Harness) {
    let mut store = ParamStore::new();
    let mut rng0 = Rng::seed(3);
    let aug = SelfAugmenter::new(&mut store, "aug", 16, &mut rng0);
    let table = rand_tensor(&[200, 16], 4);

    for &t in &[5usize, 10, 20] {
        let h0 = rand_tensor(&[16, t, 16], 5);
        h.bench(&format!("augment_step/seq_len/{t}"), || {
            let mut g = Graph::new();
            let bind = store.bind_all(&mut g);
            let mut rng = Rng::seed(6);
            let hv = g.constant(h0.clone());
            let tv = g.constant(table.clone());
            aug.augment(&mut g, &bind, &mut rng, hv, tv, 1.0)
        });
    }
}

fn main() {
    let mut h = Harness::new("ablation_gumbel");
    bench_gumbel_modes(&mut h);
    bench_augment_lengths(&mut h);
    h.finish();
}
