//! Micro-benchmarks for the substrate kernels that dominate training time:
//! matmul, softmax, the relation-graph construction and the Bi-LSTM unroll.
//! Runs on the in-workspace `ssdrec_testkit::bench::Harness` (set
//! `SSDREC_BENCH_FAST=1` to smoke-test without measurement time).

use ssdrec_testkit::bench::Harness;

use ssdrec_data::SyntheticConfig;
use ssdrec_graph::{build_graph, GraphConfig};
use ssdrec_tensor::nn::BiLstm;
use ssdrec_tensor::{kernels, Graph, ParamStore, Rng, Tensor};

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::seed(seed);
    let n: usize = shape.iter().product();
    Tensor::new((0..n).map(|_| rng.uniform(-1.0, 1.0)).collect(), shape)
}

fn bench_matmul(h: &mut Harness) {
    for &n in &[32usize, 64, 128] {
        let a = rand_tensor(&[n, n], 1);
        let b = rand_tensor(&[n, n], 2);
        h.bench(&format!("matmul/square/{n}"), || kernels::matmul(&a, &b));
    }
    // The scoring matmul shape: B×d against d×V.
    let hm = rand_tensor(&[64, 32], 3);
    let table = rand_tensor(&[32, 400], 4);
    h.bench("matmul/score_64x32x400", || kernels::matmul(&hm, &table));
}

fn bench_softmax_layer_norm(h: &mut Harness) {
    let x = rand_tensor(&[64, 400], 5);
    h.bench("softmax_64x400", || kernels::softmax_last(&x));
    let g = Tensor::ones(&[400]);
    let be = Tensor::zeros(&[400]);
    h.bench("layer_norm_64x400", || kernels::layer_norm(&x, &g, &be));
}

fn bench_graph_build(h: &mut Harness) {
    let ds = SyntheticConfig::beauty().scaled(0.35).generate();
    h.bench("multi_relation_graph_build", || {
        build_graph(&ds, &GraphConfig::default())
    });
}

fn bench_bilstm(h: &mut Harness) {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed(6);
    let lstm = BiLstm::new(&mut store, "b", 32, 32, &mut rng);
    let x0 = rand_tensor(&[16, 20, 32], 7);
    h.bench("bilstm_16x20x32_fwd_bwd", || {
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let x = g.constant(x0.clone());
        let (hl, hr) = lstm.forward(&mut g, &bind, x);
        let p = g.mul(hl, hr);
        let loss = g.sum_all(p);
        g.backward(loss)
    });
}

fn main() {
    let mut h = Harness::new("kernels");
    bench_matmul(&mut h);
    bench_softmax_layer_norm(&mut h);
    bench_graph_build(&mut h);
    bench_bilstm(&mut h);
    h.finish();
}
