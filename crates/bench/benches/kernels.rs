//! Criterion micro-benchmarks for the substrate kernels that dominate
//! training time: matmul, softmax, the relation-graph construction and the
//! Bi-LSTM unroll.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ssdrec_data::SyntheticConfig;
use ssdrec_graph::{build_graph, GraphConfig};
use ssdrec_tensor::nn::BiLstm;
use ssdrec_tensor::{kernels, Graph, ParamStore, Rng, Tensor};

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::seed(seed);
    let n: usize = shape.iter().product();
    Tensor::new((0..n).map(|_| rng.uniform(-1.0, 1.0)).collect(), shape)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = rand_tensor(&[n, n], 1);
        let b = rand_tensor(&[n, n], 2);
        group.bench_with_input(BenchmarkId::new("square", n), &n, |bench, _| {
            bench.iter(|| kernels::matmul(&a, &b))
        });
    }
    // The scoring matmul shape: B×d against d×V.
    let h = rand_tensor(&[64, 32], 3);
    let table = rand_tensor(&[32, 400], 4);
    group.bench_function("score_64x32x400", |bench| bench.iter(|| kernels::matmul(&h, &table)));
    group.finish();
}

fn bench_softmax_layer_norm(c: &mut Criterion) {
    let x = rand_tensor(&[64, 400], 5);
    c.bench_function("softmax_64x400", |b| b.iter(|| kernels::softmax_last(&x)));
    let g = Tensor::ones(&[400]);
    let be = Tensor::zeros(&[400]);
    c.bench_function("layer_norm_64x400", |b| b.iter(|| kernels::layer_norm(&x, &g, &be)));
}

fn bench_graph_build(c: &mut Criterion) {
    let ds = SyntheticConfig::beauty().scaled(0.35).generate();
    c.bench_function("multi_relation_graph_build", |b| {
        b.iter(|| build_graph(&ds, &GraphConfig::default()))
    });
}

fn bench_bilstm(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed(6);
    let lstm = BiLstm::new(&mut store, "b", 32, 32, &mut rng);
    let x0 = rand_tensor(&[16, 20, 32], 7);
    c.bench_function("bilstm_16x20x32_fwd_bwd", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let bind = store.bind_all(&mut g);
            let x = g.constant(x0.clone());
            let (hl, hr) = lstm.forward(&mut g, &bind, x);
            let p = g.mul(hl, hr);
            let loss = g.sum_all(p);
            g.backward(loss)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_softmax_layer_norm, bench_graph_build, bench_bilstm
}
criterion_main!(benches);
