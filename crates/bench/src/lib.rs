//! # ssdrec-bench
//!
//! The benchmark harness: shared experiment plumbing for the binaries that
//! regenerate every table and figure of the paper (see `DESIGN.md` §3 for
//! the experiment index) and the Criterion micro-benchmarks.

#![warn(missing_docs)]

use std::time::Instant;

use ssdrec_core::{SsdRec, SsdRecConfig};
use ssdrec_data::{prepare, Dataset, Split, SyntheticConfig};
use ssdrec_denoise::{DcRec, Dsan, FmlpRec, Hsd, Mgsd, Steam};
use ssdrec_graph::{build_graph, GraphConfig, MultiRelationGraph};
use ssdrec_metrics::MetricReport;
use ssdrec_models::{
    train, BackboneKind, ContrastiveSeqRec, RecModel, SeqRec, TrainConfig, TrainReport,
};

/// Experiment-scale knobs shared by all harness binaries.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Dataset scale multiplier (1.0 = the profiles in `DESIGN.md`).
    pub scale: f64,
    /// Max training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Embedding width.
    pub dim: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Per-user training-prefix cap.
    pub max_train_prefixes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HarnessConfig {
    /// Quick mode: small enough to finish a whole table on one CPU core.
    pub fn quick() -> Self {
        HarnessConfig {
            scale: 0.35,
            epochs: 20,
            batch_size: 64,
            dim: 16,
            patience: 6,
            max_train_prefixes: 2,
            seed: 7,
        }
    }

    /// Standard mode: the `DESIGN.md` profiles, longer training.
    pub fn standard() -> Self {
        HarnessConfig {
            scale: 1.0,
            epochs: 25,
            batch_size: 64,
            dim: 32,
            patience: 5,
            max_train_prefixes: 3,
            seed: 7,
        }
    }

    /// Fast smoke mode: two epochs at a tiny scale — small enough for CI
    /// to validate a whole table end-to-end in seconds.
    pub fn fast() -> Self {
        HarnessConfig {
            scale: 0.08,
            epochs: 2,
            batch_size: 32,
            dim: 8,
            patience: 10,
            max_train_prefixes: 2,
            seed: 7,
        }
    }

    /// Parse `--full` / `--fast` / `--quick` from CLI args (quick is the
    /// default).
    pub fn from_args(args: &[String]) -> Self {
        if args.iter().any(|a| a == "--full") {
            Self::standard()
        } else if args.iter().any(|a| a == "--fast") {
            Self::fast()
        } else {
            Self::quick()
        }
    }

    /// The training config this harness scale implies.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch_size,
            patience: self.patience,
            seed: self.seed,
            ..TrainConfig::default()
        }
    }
}

/// The five paper dataset profiles by name.
pub fn profile(name: &str) -> SyntheticConfig {
    match name {
        "ml-100k" => SyntheticConfig::ml100k(),
        "ml-1m" => SyntheticConfig::ml1m(),
        "beauty" => SyntheticConfig::beauty(),
        "sports" => SyntheticConfig::sports(),
        "yelp" => SyntheticConfig::yelp(),
        other => panic!("unknown dataset profile {other}"),
    }
}

/// Dataset names in the paper's Table III order.
pub const DATASETS: [&str; 5] = ["ml-100k", "ml-1m", "beauty", "sports", "yelp"];

/// Per-profile max sequence length (paper: 200 for ML-1M, 50 otherwise).
pub fn max_len_for(name: &str) -> usize {
    if name == "ml-1m" {
        200
    } else {
        50
    }
}

/// A fully prepared experiment dataset.
pub struct Prepared {
    /// Filtered, truncated dataset.
    pub dataset: Dataset,
    /// Leave-one-out split.
    pub split: Split,
    /// Multi-relation graph over the filtered data.
    pub graph: MultiRelationGraph,
    /// Max length used.
    pub max_len: usize,
}

/// Generate, filter and split a named profile at the harness scale.
pub fn prepare_profile(name: &str, h: &HarnessConfig) -> Prepared {
    let cfg = profile(name).scaled(h.scale).with_seed(h.seed);
    let raw = cfg.generate();
    let max_len = max_len_for(name);
    let (dataset, split) = prepare(&raw, max_len, h.max_train_prefixes);
    let graph = build_graph(&dataset, &GraphConfig::default());
    Prepared {
        dataset,
        split,
        graph,
        max_len,
    }
}

/// Train a vanilla backbone (Table III "w/o" columns).
pub fn run_backbone(kind: BackboneKind, prep: &Prepared, h: &HarnessConfig) -> TrainReport {
    let mut model = SeqRec::new(kind, prep.dataset.num_items, h.dim, prep.max_len, h.seed);
    train(&mut model, &prep.split, &h.train_config())
}

/// Train SSDRec with the given backbone and stage toggles.
pub fn run_ssdrec(
    backbone: BackboneKind,
    stages: (bool, bool, bool),
    prep: &Prepared,
    h: &HarnessConfig,
    tau: f32,
) -> (SsdRec, TrainReport) {
    let cfg = SsdRecConfig {
        dim: h.dim,
        max_len: prep.max_len,
        backbone,
        tau,
        stage1: stages.0,
        stage2: stages.1,
        stage3: stages.2,
        seed: h.seed,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&prep.graph, cfg);
    let report = train(&mut model, &prep.split, &h.train_config());
    (model, report)
}

/// Which denoising baseline to train.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DenoiserKind {
    /// DSAN [23].
    Dsan,
    /// FMLP-Rec [28].
    Fmlp,
    /// HSD [27].
    Hsd,
    /// DCRec [41].
    DcRec,
    /// STEAM [29].
    Steam,
    /// CL4SRec-style contrastive self-supervision (2022 line).
    Cl4s,
    /// MGSD-WSS multi-granularity weakly-supervised denoising (2025 line).
    Mgsd,
}

impl DenoiserKind {
    /// All baselines in the paper's Table IV order, extended with the
    /// post-paper methods (CL4SRec, MGSD-WSS).
    pub fn all() -> [DenoiserKind; 7] {
        [
            DenoiserKind::Dsan,
            DenoiserKind::Fmlp,
            DenoiserKind::Hsd,
            DenoiserKind::DcRec,
            DenoiserKind::Steam,
            DenoiserKind::Cl4s,
            DenoiserKind::Mgsd,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DenoiserKind::Dsan => "DSAN",
            DenoiserKind::Fmlp => "FMLP-Rec",
            DenoiserKind::Hsd => "HSD",
            DenoiserKind::DcRec => "DCRec",
            DenoiserKind::Steam => "STEAM",
            DenoiserKind::Cl4s => "CL4SRec",
            DenoiserKind::Mgsd => "MGSD-WSS",
        }
    }
}

/// Train one denoising baseline; returns its report.
pub fn run_denoiser(kind: DenoiserKind, prep: &Prepared, h: &HarnessConfig) -> TrainReport {
    let ni = prep.dataset.num_items;
    let nu = prep.dataset.num_users;
    let tc = h.train_config();
    match kind {
        DenoiserKind::Dsan => {
            let mut m = Dsan::new(ni, h.dim, h.seed);
            train(&mut m, &prep.split, &tc)
        }
        DenoiserKind::Fmlp => {
            let mut m = FmlpRec::new(ni, h.dim, prep.max_len.min(50), 2, h.seed);
            train(&mut m, &prep.split, &tc)
        }
        DenoiserKind::Hsd => {
            let mut m = Hsd::new(nu, ni, h.dim, prep.max_len, h.seed);
            train(&mut m, &prep.split, &tc)
        }
        DenoiserKind::DcRec => {
            let freq = prep.dataset.item_frequencies();
            let mut m = DcRec::new(ni, h.dim, prep.max_len, &freq, h.seed);
            train(&mut m, &prep.split, &tc)
        }
        DenoiserKind::Steam => {
            let mut m = Steam::new(ni, h.dim, prep.max_len, h.seed);
            train(&mut m, &prep.split, &tc)
        }
        DenoiserKind::Cl4s => {
            let mut m =
                ContrastiveSeqRec::new(BackboneKind::SasRec, ni, h.dim, prep.max_len, h.seed);
            train(&mut m, &prep.split, &tc)
        }
        DenoiserKind::Mgsd => {
            let mut m = Mgsd::new(nu, ni, h.dim, prep.max_len, h.seed);
            train(&mut m, &prep.split, &tc)
        }
    }
}

/// Format one metric row in the paper's column order.
pub fn metric_row(name: &str, m: &MetricReport) -> String {
    format!(
        "{name:<18} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
        m.hr5, m.hr10, m.hr20, m.ndcg5, m.ndcg10, m.ndcg20, m.mrr20
    )
}

/// The header matching [`metric_row`].
pub fn metric_header() -> String {
    format!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "model", "HR@5", "HR@10", "HR@20", "N@5", "N@10", "N@20", "MRR"
    )
}

/// CSV line for a metric report.
pub fn metric_csv(dataset: &str, name: &str, m: &MetricReport) -> String {
    format!(
        "{dataset},{name},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
        m.hr5, m.hr10, m.hr20, m.ndcg5, m.ndcg10, m.ndcg20, m.mrr20
    )
}

/// Append lines to `results/<file>` under the workspace root, creating the
/// directory if needed. Errors are printed, not fatal — results also go to
/// stdout.
pub fn write_results(file: &str, header: &str, lines: &[String]) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warn: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(file);
    let mut content = String::from(header);
    content.push('\n');
    for l in lines {
        content.push_str(l);
        content.push('\n');
    }
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warn: cannot write {}: {e}", path.display());
    } else {
        eprintln!("results written to {}", path.display());
    }
}

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Resolve dataset names from CLI args (`--datasets a,b,c`), defaulting to
/// all five profiles.
pub fn datasets_from_args(args: &[String]) -> Vec<String> {
    for (i, a) in args.iter().enumerate() {
        if a == "--datasets" {
            if let Some(list) = args.get(i + 1) {
                return list.split(',').map(str::to_string).collect();
            }
        }
    }
    DATASETS.iter().map(|s| s.to_string()).collect()
}

/// Mean per-epoch training seconds and one-pass inference seconds for an
/// arbitrary model (Table VI measurement without full convergence).
pub fn measure_efficiency<M: RecModel>(
    model: &mut M,
    split: &Split,
    h: &HarnessConfig,
) -> (f64, f64) {
    let tc = TrainConfig {
        epochs: 1,
        patience: 10,
        ..h.train_config()
    };
    let report = train(model, split, &tc);
    (report.train_secs_per_epoch, report.infer_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_resolve() {
        for d in DATASETS {
            let p = profile(d);
            assert!(p.num_users > 0);
        }
    }

    #[test]
    #[should_panic]
    fn unknown_profile_panics() {
        profile("imaginary");
    }

    #[test]
    fn prepare_profile_quick() {
        let h = HarnessConfig::quick();
        let prep = prepare_profile("beauty", &h);
        assert!(!prep.split.test.is_empty());
        assert!(prep.graph.total_edges() > 0);
    }

    #[test]
    fn args_parsing() {
        let args = vec!["--datasets".into(), "beauty,yelp".into(), "--full".into()];
        assert_eq!(datasets_from_args(&args), vec!["beauty", "yelp"]);
        assert_eq!(HarnessConfig::from_args(&args).scale, 1.0);
        assert_eq!(HarnessConfig::from_args(&[]).scale, 0.35);
    }

    #[test]
    fn metric_formatting_is_aligned() {
        let m = MetricReport::default();
        assert_eq!(metric_row("x", &m).len(), metric_header().len());
    }
}
