//! Table III: every backbone with (w) and without (w/o) SSDRec, on every
//! dataset, reporting HR@{5,10,20}, NDCG@{5,10,20}, MRR and the average
//! relative improvement.
//!
//! Usage:
//! `cargo run --release -p ssdrec-bench --bin table3_backbones \
//!     [--full] [--datasets beauty,yelp] [--models SASRec,GRU4Rec]`

use ssdrec_bench::{
    datasets_from_args, metric_csv, metric_header, metric_row, prepare_profile, run_backbone,
    run_ssdrec, write_results, HarnessConfig,
};
use ssdrec_models::BackboneKind;

fn models_from_args(args: &[String]) -> Vec<BackboneKind> {
    for (i, a) in args.iter().enumerate() {
        if a == "--models" {
            if let Some(list) = args.get(i + 1) {
                return list
                    .split(',')
                    .map(|n| {
                        BackboneKind::all()
                            .into_iter()
                            .find(|k| k.name().eq_ignore_ascii_case(n))
                            .unwrap_or_else(|| panic!("unknown model {n}"))
                    })
                    .collect();
            }
        }
    }
    BackboneKind::all().to_vec()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let h = HarnessConfig::from_args(&args);
    let datasets = datasets_from_args(&args);
    let models = models_from_args(&args);

    let mut csv = Vec::new();
    for ds in &datasets {
        let prep = prepare_profile(ds, &h);
        println!(
            "\n=== Table III — {ds} ({} test users) ===",
            prep.split.test.len()
        );
        println!("{}", metric_header());
        for kind in &models {
            let base = run_backbone(*kind, &prep, &h);
            println!(
                "{}",
                metric_row(&format!("{} (w/o)", kind.name()), &base.test)
            );
            csv.push(metric_csv(ds, &format!("{}-wo", kind.name()), &base.test));

            let (_m, with) = run_ssdrec(*kind, (true, true, true), &prep, &h, 1.0);
            println!(
                "{}",
                metric_row(&format!("{} (w)", kind.name()), &with.test)
            );
            csv.push(metric_csv(ds, &format!("{}-w", kind.name()), &with.test));

            let imp = with.test.improvement_over(&base.test);
            println!("{:<18} {:>+8.2}%", "  improvement", imp);
        }
    }
    write_results(
        "table3_backbones.csv",
        "dataset,model,hr5,hr10,hr20,ndcg5,ndcg10,ndcg20,mrr20",
        &csv,
    );
}
