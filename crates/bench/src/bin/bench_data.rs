//! Out-of-core data-pipeline benchmark: columnar encode and scan
//! throughput, pass-based graph construction, and the peak-RSS contract.
//!
//! Three phases over a scratch `.ssdc` file:
//!
//! 1. **Encode** — stream a synthetic corpus straight to disk with
//!    `generate_to` (never materializing the dataset) and report
//!    interactions/sec plus the on-disk byte size.
//! 2. **Scan** — read every sequence back through the windowed
//!    `ColumnarReader` (one reusable buffer, bounded window) and report
//!    interactions/sec.
//! 3. **Graph** — build all five relation CSRs with
//!    `build_graph_from_store` in counting passes over the store.
//!
//! Peak RSS (`VmHWM`) is read at the end; in `--full` mode — 1M users ×
//! 100K items, ~9M interactions — the run *asserts* peak RSS stays under
//! [`FULL_RSS_BUDGET`], pinning the bounded-RAM claim of the out-of-core
//! pipeline (see DESIGN.md §14).
//!
//! The report is written to `target/ssdrec-bench/bench_data.json` and to
//! `BENCH_data.json` at the repository root.
//!
//! `cargo run --release -p ssdrec-bench --bin bench_data [-- --fast | -- --full]`
//!
//! `--fast` (or `SSDREC_BENCH_FAST=1`) shrinks the corpus to a CI smoke.

use std::path::PathBuf;
use std::time::Instant;

use ssdrec_data::{ColumnarReader, SequenceStore, SyntheticConfig, TruncatedStore};
use ssdrec_graph::{build_graph_from_store, GraphConfig};
use ssdrec_testkit::bench::Harness;

/// Peak-RSS ceiling for the `--full` 1M-user × 100K-item run, in bytes.
///
/// The graph build dominates: the five CSRs plus the transition
/// contribution buffer sit around 2–3 GiB at this scale; 8 GiB leaves
/// headroom without letting the "bounded RAM" claim degenerate into
/// "fits in a 128 GiB box".
const FULL_RSS_BUDGET: u64 = 8 * 1024 * 1024 * 1024;

struct Config {
    fast: bool,
    full: bool,
    num_users: usize,
    num_items: usize,
    graph: GraphConfig,
}

fn config() -> Config {
    let fast = std::env::var("SSDREC_BENCH_FAST").is_ok_and(|v| v == "1")
        || std::env::args().skip(1).any(|a| a == "--fast");
    let full = !fast && std::env::args().skip(1).any(|a| a == "--full");
    if fast {
        Config {
            fast,
            full,
            num_users: 2_000,
            num_items: 1_000,
            graph: GraphConfig::default(),
        }
    } else if full {
        // At 100K items the uncapped similar/incompatible relations would
        // enumerate hundreds of millions of item pairs; the caps bound the
        // pair fan-out per item/context without touching the small-scale
        // (default-config) behavior the regression hashes pin.
        Config {
            fast,
            full,
            num_users: 1_000_000,
            num_items: 100_000,
            graph: GraphConfig {
                max_item_users: 16,
                max_context_items: 64,
                ..GraphConfig::default()
            },
        }
    } else {
        Config {
            fast,
            full,
            num_users: 50_000,
            num_items: 10_000,
            graph: GraphConfig::default(),
        }
    }
}

/// The outermost ancestor holding a `Cargo.lock` — the workspace root
/// (cargo runs bin targets with cwd = the package dir).
fn repo_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    cwd.ancestors()
        .filter(|a| a.join("Cargo.lock").is_file())
        .last()
        .map(PathBuf::from)
        .unwrap_or(cwd)
}

fn main() {
    let cfg = config();
    let threads = ssdrec_runtime::threads();
    let mode = if cfg.fast {
        "fast"
    } else if cfg.full {
        "full"
    } else {
        "default"
    };
    eprintln!(
        "bench_data: encode → scan → graph ({mode} mode, {} users × {} items)",
        cfg.num_users, cfg.num_items
    );

    let work = repo_root()
        .join("target")
        .join("ssdrec-bench")
        .join("data-work");
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("scratch dir");
    let path = work.join("corpus.ssdc");

    let gen = SyntheticConfig {
        name: format!("bench-{mode}"),
        num_users: cfg.num_users,
        num_items: cfg.num_items,
        num_clusters: (cfg.num_items / 25).clamp(4, 256),
        avg_len: 9,
        min_len: 5,
        stay_prob: 0.7,
        noise_ratio: 0.1,
        zipf_s: 1.1,
        seed: 7,
    };

    // Phase 1: encode. The generator streams users straight into the
    // columnar writer — the corpus never exists in RAM all at once.
    let t0 = Instant::now();
    let summary = gen.generate_to(&path).expect("generate_to");
    let encode_ms = t0.elapsed().as_secs_f64() * 1e3;
    let interactions = summary.num_interactions;
    let encode_ips = interactions as f64 / (encode_ms / 1e3).max(1e-9);
    eprintln!(
        "  encode: {interactions} interactions → {} bytes in {encode_ms:.1} ms ({encode_ips:.0} inter/s)",
        summary.bytes
    );

    // Phase 2: scan. Full sequential pass through the windowed reader with
    // one reusable buffer — the steady-state read pattern of training.
    let reader = ColumnarReader::open(&path).expect("open");
    let t0 = Instant::now();
    let mut buf = Vec::new();
    let mut checksum = 0u64;
    for u in 0..SequenceStore::num_users(&reader) {
        reader.read_seq(u, &mut buf);
        checksum = checksum.wrapping_add(buf.iter().map(|&i| i as u64).sum::<u64>());
    }
    let scan_ms = t0.elapsed().as_secs_f64() * 1e3;
    let scan_ips = interactions as f64 / (scan_ms / 1e3).max(1e-9);
    assert!(checksum > 0, "scan must observe real items");
    eprintln!("  scan  : {interactions} interactions in {scan_ms:.1} ms ({scan_ips:.0} inter/s)");

    // Phase 3: graph. Counting passes over the (truncated) store — no
    // HashMap intermediates, peak RAM is the CSRs themselves.
    let store = TruncatedStore::new(&reader, 50);
    let t0 = Instant::now();
    let graph = build_graph_from_store(&store, &cfg.graph);
    let graph_ms = t0.elapsed().as_secs_f64() * 1e3;
    let graph_ips = interactions as f64 / (graph_ms / 1e3).max(1e-9);
    let graph_edges = graph.total_edges();
    eprintln!("  graph : {graph_edges} edges in {graph_ms:.1} ms ({graph_ips:.0} inter/s)");
    drop(graph);

    let peak_rss = Harness::peak_rss_bytes();
    eprintln!(
        "  peak RSS: {:.1} MiB (budget for --full: {:.0} MiB)",
        peak_rss as f64 / (1024.0 * 1024.0),
        FULL_RSS_BUDGET as f64 / (1024.0 * 1024.0)
    );
    if cfg.full {
        assert!(
            peak_rss > 0,
            "--full requires a readable VmHWM to enforce the RSS budget"
        );
        assert!(
            peak_rss < FULL_RSS_BUDGET,
            "peak RSS {peak_rss} bytes exceeds the documented --full budget {FULL_RSS_BUDGET}"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"data\",\n  \"mode\": \"{mode}\",\n  \"threads\": {threads},\n  \
         \"num_users\": {},\n  \"num_items\": {},\n  \"interactions\": {interactions},\n  \
         \"file_bytes\": {},\n  \"encode_ms\": {encode_ms:.3},\n  \
         \"encode_interactions_per_sec\": {encode_ips:.1},\n  \"scan_ms\": {scan_ms:.3},\n  \
         \"scan_interactions_per_sec\": {scan_ips:.1},\n  \"graph_ms\": {graph_ms:.3},\n  \
         \"graph_interactions_per_sec\": {graph_ips:.1},\n  \"graph_edges\": {graph_edges},\n  \
         \"peak_rss_bytes\": {peak_rss},\n  \"rss_budget_bytes\": {FULL_RSS_BUDGET}\n}}\n",
        cfg.num_users, cfg.num_items, summary.bytes,
    );

    // Self-check: the report must parse with the workspace JSON parser and
    // carry the fields CI validates.
    let parsed = ssdrec_serve::json::parse(&json).expect("BENCH_data.json must be valid JSON");
    // Byte/RSS counts exceed the request-parser's u32 `as_usize` cap at full
    // scale; validate them as finite numbers instead.
    for field in [
        "interactions",
        "file_bytes",
        "graph_edges",
        "peak_rss_bytes",
        "rss_budget_bytes",
        "encode_interactions_per_sec",
        "scan_interactions_per_sec",
        "graph_interactions_per_sec",
    ] {
        assert!(
            parsed.get(field).and_then(|v| v.as_f64()).is_some(),
            "missing field {field}"
        );
    }

    let target = repo_root().join("target").join("ssdrec-bench");
    let _ = std::fs::create_dir_all(&target);
    let _ = std::fs::write(target.join("bench_data.json"), &json);
    let path = repo_root().join("BENCH_data.json");
    std::fs::write(&path, &json).expect("write BENCH_data.json");
    println!(
        "bench_data: {encode_ips:.0} inter/s encode, {scan_ips:.0} inter/s scan, \
         {graph_ms:.0} ms graph, peak RSS {:.1} MiB; wrote {}",
        peak_rss as f64 / (1024.0 * 1024.0),
        path.display()
    );
}
