//! Extension experiment: where do SSDRec's gains come from? The paper argues
//! denoising from intra-sequence information is least reliable on *short*
//! sequences and that self-augmentation targets exactly those. This binary
//! buckets the test users by history length and reports SASRec vs SSDRec per
//! bucket — the gains should concentrate in the short buckets.
//!
//! Usage: `cargo run --release -p ssdrec-bench --bin ext_length_breakdown [--full]`

use ssdrec_bench::{datasets_from_args, prepare_profile, run_ssdrec, write_results, HarnessConfig};
use ssdrec_data::make_batches;
use ssdrec_metrics::{full_rank, LengthBuckets};
use ssdrec_models::{train, BackboneKind, RecModel, SeqRec};
use ssdrec_tensor::Graph;

fn bucketed<M: RecModel>(model: &M, split: &ssdrec_data::Split) -> LengthBuckets {
    let mut buckets = LengthBuckets::short_medium_long();
    for batch in make_batches(&split.test, 64, 0) {
        let mut g = Graph::new();
        let bind = model.store().bind_all(&mut g);
        let scores = model.eval_scores(&mut g, &bind, &batch);
        let sv = g.value(scores);
        let v = sv.shape()[1];
        for (i, &target) in batch.targets.iter().enumerate() {
            let row = &sv.data()[i * v..(i + 1) * v];
            buckets.push(batch.seq_len, full_rank(row, target));
        }
    }
    buckets
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let h = HarnessConfig::from_args(&args);
    let mut datasets = datasets_from_args(&args);
    if !args.iter().any(|a| a == "--datasets") {
        datasets = vec!["ml-100k".into(), "beauty".into()];
    }

    let mut csv = Vec::new();
    for ds in &datasets {
        let prep = prepare_profile(ds, &h);

        let mut base = SeqRec::new(
            BackboneKind::SasRec,
            prep.dataset.num_items,
            h.dim,
            prep.max_len,
            h.seed,
        );
        train(&mut base, &prep.split, &h.train_config());
        let base_b = bucketed(&base, &prep.split);

        let (model, _) = run_ssdrec(BackboneKind::SasRec, (true, true, true), &prep, &h, 1.0);
        let ssd_b = bucketed(&model, &prep.split);

        println!("\n=== {ds}: HR@20 by history length ===");
        println!(
            "{:<10} {:>6} {:>10} {:>10} {:>10}",
            "bucket", "n", "SASRec", "SSDRec", "Δ"
        );
        for i in 0..base_b.num_buckets() {
            let n = base_b.count(i);
            if n == 0 {
                continue;
            }
            let b = base_b.report(i).hr20;
            let s = ssd_b.report(i).hr20;
            println!(
                "{:<10} {n:>6} {b:>10.4} {s:>10.4} {:>+10.4}",
                base_b.label(i),
                s - b
            );
            csv.push(format!("{ds},{},{n},{b:.6},{s:.6}", base_b.label(i)));
        }
    }
    write_results(
        "ext_length_breakdown.csv",
        "dataset,bucket,n,sasrec_hr20,ssdrec_hr20",
        &csv,
    );
}
