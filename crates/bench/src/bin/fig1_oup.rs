//! Fig. 1: the over/under-denoising problem (OUP) of HSD and STEAM on
//! ML-100K, with SSDRec added for contrast.
//!
//! Following the paper: unobserved interactions are randomly inserted into
//! raw short sequences as ground-truth noise; after training each denoiser
//! on the noisy data, the kept-noise fraction (under-denoising) and
//! dropped-raw fraction (over-denoising) are measured from its explicit
//! keep/drop decisions.
//!
//! `--sweep-insert` additionally sweeps the number of inserted items
//! (the DESIGN.md §5.3 ablation on insertion-count trade-offs).
//!
//! Usage:
//! `cargo run --release -p ssdrec-bench --bin fig1_oup [--full] [--sweep-insert]`

use ssdrec_bench::{write_results, HarnessConfig};
use ssdrec_core::{SsdRec, SsdRecConfig};
use ssdrec_data::{inject_unobserved, prepare, SyntheticConfig};
use ssdrec_denoise::{Denoiser, Hsd, Steam};
use ssdrec_graph::{build_graph, GraphConfig};
use ssdrec_metrics::OupAccumulator;
use ssdrec_models::{train, BackboneKind};

/// Returns (under-denoising ratio, over-denoising ratio, mean keep score on
/// noise positions, mean keep score on clean positions). The score gap is a
/// threshold-free view of how well the denoiser separates injected noise.
fn measure<D: Denoiser>(model: &D, split: &ssdrec_data::Split) -> (f64, f64, f64, f64) {
    let mut acc = OupAccumulator::new();
    let (mut ns, mut nn, mut cs, mut nc) = (0.0f64, 0usize, 0.0f64, 0usize);
    for ex in &split.test {
        let Some(noise) = &ex.noise else { continue };
        if ex.seq.is_empty() {
            continue;
        }
        let kept = model.keep_decisions(&ex.seq, ex.user);
        acc.push(noise, &kept);
        let scores = model.keep_scores(&ex.seq, ex.user);
        for (&is_noise, &s) in noise.iter().zip(&scores) {
            if is_noise {
                ns += s as f64;
                nn += 1;
            } else {
                cs += s as f64;
                nc += 1;
            }
        }
    }
    (
        acc.under_denoising_ratio(),
        acc.over_denoising_ratio(),
        if nn > 0 { ns / nn as f64 } else { 0.0 },
        if nc > 0 { cs / nc as f64 } else { 0.0 },
    )
}

fn run_one(per_seq: usize, h: &HarnessConfig, csv: &mut Vec<String>) {
    // ML-100K profile, generator noise off so injected noise is the only
    // ground truth (matching the paper's controlled setup).
    let raw = SyntheticConfig::ml100k()
        .scaled(h.scale)
        .with_noise_ratio(0.0)
        .with_seed(h.seed)
        .generate();
    let noisy = inject_unobserved(&raw, 60, per_seq, h.seed);
    let (dataset, split) = prepare(&noisy, 50, h.max_train_prefixes);
    let graph = build_graph(&dataset, &GraphConfig::default());
    let tc = h.train_config();

    println!("\n--- Fig. 1 (inserted per short sequence: {per_seq}) ---");
    println!(
        "{:<10} {:>16} {:>16} {:>12} {:>12}",
        "model", "under-denoising", "over-denoising", "score|noise", "score|clean"
    );

    let mut hsd = Hsd::new(dataset.num_users, dataset.num_items, h.dim, 50, h.seed);
    train(&mut hsd, &split, &tc);
    let (u, o, sn, sc) = measure(&hsd, &split);
    println!("{:<10} {u:>16.4} {o:>16.4} {sn:>12.4} {sc:>12.4}", "HSD");
    csv.push(format!("{per_seq},HSD,{u:.6},{o:.6},{sn:.6},{sc:.6}"));

    let mut steam = Steam::new(dataset.num_items, h.dim, 50, h.seed);
    train(&mut steam, &split, &tc);
    let (u, o, sn, sc) = measure(&steam, &split);
    println!("{:<10} {u:>16.4} {o:>16.4} {sn:>12.4} {sc:>12.4}", "STEAM");
    csv.push(format!("{per_seq},STEAM,{u:.6},{o:.6},{sn:.6},{sc:.6}"));

    let cfg = SsdRecConfig {
        dim: h.dim,
        max_len: 50,
        backbone: BackboneKind::SasRec,
        seed: h.seed,
        ..SsdRecConfig::default()
    };
    let mut ssdrec = SsdRec::new(&graph, cfg);
    train(&mut ssdrec, &split, &tc);
    let (u, o, sn, sc) = measure(&ssdrec, &split);
    println!("{:<10} {u:>16.4} {o:>16.4} {sn:>12.4} {sc:>12.4}", "SSDRec");
    csv.push(format!("{per_seq},SSDRec,{u:.6},{o:.6},{sn:.6},{sc:.6}"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut h = HarnessConfig::from_args(&args);
    // OUP needs the denoiser past its conservative warm-up phase.
    h.epochs = h.epochs.max(12);
    h.patience = h.patience.max(12);
    let sweep = args.iter().any(|a| a == "--sweep-insert");

    let mut csv = Vec::new();
    if sweep {
        for per_seq in [1usize, 2, 4] {
            run_one(per_seq, &h, &mut csv);
        }
    } else {
        run_one(2, &h, &mut csv);
    }
    write_results(
        "fig1_oup.csv",
        "inserted_per_seq,model,under_ratio,over_ratio,score_noise,score_clean",
        &csv,
    );
}
