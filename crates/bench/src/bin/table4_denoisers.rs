//! Table IV: SSDRec vs the state-of-the-art denoising / debiased methods
//! (DSAN, FMLP-Rec, HSD, DCRec, STEAM, plus the post-paper CL4SRec and
//! MGSD-WSS rows) on every dataset, with the relative improvement over the
//! strongest baseline and a two-sided t-test on the per-user HR@20
//! indicators.
//!
//! Usage:
//! `cargo run --release -p ssdrec-bench --bin table4_denoisers \
//!     [--full | --fast] [--datasets beauty]`
//!
//! `--fast` is the CI smoke: two epochs at a tiny scale on one dataset
//! (unless `--datasets` overrides), emitting a machine-checkable JSON
//! report to `results/table4_fast.json` with one row per method.
use ssdrec_bench::{
    datasets_from_args, metric_csv, metric_header, metric_row, prepare_profile, run_denoiser,
    run_ssdrec, write_results, DenoiserKind, HarnessConfig,
};
use ssdrec_metrics::welch_t_test;
use ssdrec_models::BackboneKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let h = HarnessConfig::from_args(&args);
    let datasets = if fast && !args.iter().any(|a| a == "--datasets") {
        vec!["sports".to_string()]
    } else {
        datasets_from_args(&args)
    };

    let mut csv = Vec::new();
    let mut json_rows: Vec<String> = Vec::new();
    let mut push_json = |ds: &str, name: &str, m: &ssdrec_metrics::MetricReport| {
        json_rows.push(format!(
            "{{\"dataset\":\"{ds}\",\"model\":\"{name}\",\"hr10\":{:.6},\"hr20\":{:.6},\"ndcg10\":{:.6}}}",
            m.hr10, m.hr20, m.ndcg10
        ));
    };
    for ds in &datasets {
        let prep = prepare_profile(ds, &h);
        println!("\n=== Table IV — {ds} ===");
        println!("{}", metric_header());

        let mut best_baseline = None::<(String, ssdrec_models::TrainReport)>;
        for kind in DenoiserKind::all() {
            let report = run_denoiser(kind, &prep, &h);
            println!("{}", metric_row(kind.name(), &report.test));
            csv.push(metric_csv(ds, kind.name(), &report.test));
            push_json(ds, kind.name(), &report.test);
            let better = match &best_baseline {
                None => true,
                Some((_, b)) => report.test.hr20 > b.test.hr20,
            };
            if better {
                best_baseline = Some((kind.name().to_string(), report));
            }
        }

        let (_model, ssdrec) = run_ssdrec(BackboneKind::SasRec, (true, true, true), &prep, &h, 1.0);
        println!("{}", metric_row("SSDRec", &ssdrec.test));
        csv.push(metric_csv(ds, "SSDRec", &ssdrec.test));
        push_json(ds, "SSDRec", &ssdrec.test);

        if let Some((bname, best)) = best_baseline {
            let imp = ssdrec.test.improvement_over(&best.test);
            println!(
                "{:<18} {:>+8.2}%  (over strongest baseline: {bname})",
                "  improvement", imp
            );
            // Per-user HR@20 indicators for significance.
            let ind = |ranks: &[usize]| -> Vec<f64> {
                ranks
                    .iter()
                    .map(|&r| if r <= 20 { 1.0 } else { 0.0 })
                    .collect()
            };
            let a = ind(&ssdrec.test_ranks);
            let b = ind(&best.test_ranks);
            if a.len() >= 2 && b.len() >= 2 {
                let tt = welch_t_test(&a, &b);
                println!(
                    "  two-sided t-test vs {bname}: t={:.3}, p={:.4}",
                    tt.t, tt.p
                );
            }
        }
    }
    write_results(
        "table4_denoisers.csv",
        "dataset,model,hr5,hr10,hr20,ndcg5,ndcg10,ndcg20,mrr20",
        &csv,
    );
    if fast {
        let json = format!("[\n{}\n]", json_rows.join(",\n"));
        write_results("table4_fast.json", &json, &[]);
        println!("{json}");
    }
}
