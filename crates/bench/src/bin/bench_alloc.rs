//! Allocation-telemetry benchmark for the step-scoped tensor pool.
//!
//! Runs the trainer's inner loop (reset → bind → loss → backward_into →
//! Adam) over the full SSDRec model on the default golden synthetic config
//! and records per-step pool counters: hits, misses, bytes served from
//! recycled storage, and steps/sec. The report is written to
//! `target/ssdrec-bench/bench_alloc.json` and to `BENCH_alloc.json` at the
//! repository root.
//!
//! This binary **asserts the steady-state contract**: from the second
//! training step onward at least 90% of buffer takes must be pool hits,
//! or it exits non-zero.
//!
//! `cargo run --release -p ssdrec-bench --bin bench_alloc [-- --fast]`
//!
//! `--fast` (or `SSDREC_BENCH_FAST=1`) shrinks the dataset to a CI smoke
//! that still runs enough steps to check the steady-state hit rate.

use std::path::PathBuf;
use std::time::Instant;

use ssdrec_core::{SsdRec, SsdRecConfig};
use ssdrec_data::{make_batches, prepare, SyntheticConfig};
use ssdrec_graph::{build_graph, GraphConfig};
use ssdrec_models::RecModel;
use ssdrec_tensor::{pool, Adam, Gradients, Graph, Rng};

struct Config {
    fast: bool,
    scale: f64,
    dim: usize,
    batch_size: usize,
    epochs: usize,
}

fn config() -> Config {
    let fast = std::env::var("SSDREC_BENCH_FAST").is_ok_and(|v| v == "1")
        || std::env::args().skip(1).any(|a| a == "--fast");
    if fast {
        Config {
            fast,
            scale: 0.03,
            dim: 8,
            batch_size: 32,
            epochs: 1,
        }
    } else {
        Config {
            fast,
            scale: 0.08,
            dim: 8,
            batch_size: 32,
            // Enough epochs to cross the augmentation warm-up curriculum
            // (the loss path changes shape when `aug_active` flips on, a
            // one-time inventory build) and measure true steady state.
            epochs: 4,
        }
    }
}

/// The outermost ancestor holding a `Cargo.lock` — the workspace root
/// (cargo runs bin targets with cwd = the package dir).
fn repo_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    cwd.ancestors()
        .filter(|a| a.join("Cargo.lock").is_file())
        .last()
        .map(PathBuf::from)
        .unwrap_or(cwd)
}

fn main() {
    let cfg = config();
    let threads = ssdrec_runtime::threads();
    eprintln!(
        "bench_alloc: pool telemetry over the SSDRec step loop{}",
        if cfg.fast { " (fast mode)" } else { "" }
    );

    // The golden-determinism pipeline: sports profile, seed 7.
    let raw = SyntheticConfig::sports()
        .scaled(cfg.scale)
        .with_seed(7)
        .generate();
    let (dataset, split) = prepare(&raw, 50, 2);
    let item_graph = build_graph(&dataset, &GraphConfig::default());
    let model_cfg = SsdRecConfig {
        dim: cfg.dim,
        max_len: 50,
        seed: 7,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&item_graph, model_cfg);
    eprintln!(
        "  data: {} items, {} train examples",
        dataset.num_items,
        split.train.len()
    );

    assert!(
        pool::is_enabled(),
        "bench_alloc requires the pool (unset SSDREC_POOL)"
    );
    pool::reset_local_stats();

    let mut opt = Adam::new(1e-3);
    let mut rng = Rng::seed(7);
    let mut g = Graph::with_capacity(Graph::DEFAULT_CAPACITY);
    let mut ws = Gradients::new();

    // Per-step pool-counter deltas: step 1 builds the pool's inventory
    // (expected misses); the steady-state contract covers steps 2..N.
    let mut steps = 0usize;
    let mut first_step = pool::PoolStats::default();
    let before = pool::local_stats();
    let t0 = Instant::now();
    for epoch in 0..cfg.epochs {
        model.on_epoch_start(epoch, cfg.epochs);
        let batches = make_batches(
            &split.train,
            cfg.batch_size,
            7u64.wrapping_add(epoch as u64),
        );
        for batch in &batches {
            g.reset();
            let bind = model.store().bind_all(&mut g);
            let loss = model.loss(&mut g, &bind, batch, &mut rng);
            if g.value(loss).item().is_finite() {
                g.backward_into(loss, &mut ws);
                opt.step(model.store_mut(), &bind, &mut ws);
            }
            model.after_step();
            steps += 1;
            if steps == 1 {
                first_step = pool::local_stats().since(&before);
            }
        }
    }
    let wall_clock_ms = t0.elapsed().as_secs_f64() * 1e3;
    let total = pool::local_stats();
    let steady = total.since(&first_step);
    let steps_per_sec = steps as f64 / (wall_clock_ms / 1e3).max(1e-9);

    let hit_rate_from_step2 = steady.hit_rate();
    eprintln!(
        "  {} steps in {:.1} ms ({:.1} steps/s)",
        steps, wall_clock_ms, steps_per_sec
    );
    eprintln!(
        "  step 1 (inventory build): {} hits / {} misses",
        first_step.hits, first_step.misses
    );
    eprintln!(
        "  steps 2..{}: {} hits / {} misses (hit rate {:.4}), {} bytes recycled",
        steps, steady.hits, steady.misses, hit_rate_from_step2, steady.bytes_recycled
    );
    assert!(
        steps >= 2,
        "need at least two steps to measure the steady state"
    );
    assert!(
        hit_rate_from_step2 >= 0.90,
        "steady-state pool hit rate {hit_rate_from_step2:.4} below the 90% contract"
    );

    let json = format!(
        "{{\n  \"bench\": \"alloc\",\n  \"fast\": {},\n  \"threads\": {},\n  \
         \"steps\": {},\n  \"steps_per_sec\": {:.3},\n  \"wall_clock_ms\": {:.3},\n  \
         \"pool_hits\": {},\n  \"pool_misses\": {},\n  \"bytes_recycled\": {},\n  \
         \"first_step\": {{\"pool_hits\": {}, \"pool_misses\": {}}},\n  \
         \"hit_rate_from_step2\": {:.6}\n}}\n",
        cfg.fast,
        threads,
        steps,
        steps_per_sec,
        wall_clock_ms,
        total.hits,
        total.misses,
        total.bytes_recycled,
        first_step.hits,
        first_step.misses,
        hit_rate_from_step2,
    );

    // Self-check: the report must parse with the workspace JSON parser and
    // carry the telemetry fields CI validates.
    let parsed = ssdrec_serve::json::parse(&json).expect("BENCH_alloc.json must be valid JSON");
    for field in ["pool_hits", "pool_misses", "bytes_recycled", "steps"] {
        assert!(
            parsed.get(field).and_then(|v| v.as_usize()).is_some(),
            "missing field {field}"
        );
    }

    let target = repo_root().join("target").join("ssdrec-bench");
    let _ = std::fs::create_dir_all(&target);
    let _ = std::fs::write(target.join("bench_alloc.json"), &json);
    let path = repo_root().join("BENCH_alloc.json");
    std::fs::write(&path, &json).expect("write BENCH_alloc.json");
    println!(
        "bench_alloc: hit rate {:.2}% from step 2 over {} steps; wrote {}",
        hit_rate_from_step2 * 100.0,
        steps,
        path.display()
    );
}
