//! Closed-loop load generator for the online serving subsystem.
//!
//! Trains a small SSDRec model, checkpoints it, serves the checkpoint on an
//! ephemeral port, then drives it with several concurrent closed-loop HTTP
//! clients (each waits for its response before sending the next request).
//! Reports client-observed latency percentiles and throughput next to the
//! server's own `/metrics` view, and writes a CSV latency report to
//! `target/ssdrec-bench/`.
//!
//! `cargo run --release -p ssdrec-bench --bin bench_serve \
//!     [--full] [--clients N] [--requests N]`
//!
//! `SSDREC_BENCH_FAST=1` (the CI smoke) shrinks everything to a few
//! seconds.
//!
//! With `--retrieval` the binary instead runs the **retrieval harness**:
//! engine-level closed-loop comparison of the exact full-rank path against
//! the two-stage ANN path (HNSW candidates + exact re-rank) at catalogue
//! scale — 10K items in fast mode, 10K/100K by default, plus 1M with
//! `--full`. Reports single-thread QPS, p50/p95/p99, ANN-vs-exact
//! recall@{10,20} and index build wall-clock to `BENCH_retrieval.json` at
//! the repository root, and asserts the determinism contract (rebuild
//! byte-identical, 1-vs-4-thread build byte-identical, served bits stable).

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ssdrec_bench::timed;
use ssdrec_core::{SsdRec, SsdRecConfig};
use ssdrec_data::{prepare, Split, SyntheticConfig};
use ssdrec_graph::{build_graph, GraphConfig, MultiRelationGraph};
use ssdrec_models::{train, BackboneKind, TrainConfig};
use ssdrec_serve::{client, serve, Engine, EngineConfig, ServerStats};
use ssdrec_tensor::{load_params, save_params};

struct LoadConfig {
    scale: f64,
    epochs: usize,
    clients: usize,
    requests_per_client: usize,
    max_len: usize,
    dim: usize,
}

fn config() -> LoadConfig {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = std::env::var("SSDREC_BENCH_FAST").is_ok_and(|v| v == "1");
    let full = args.iter().any(|a| a == "--full");
    let mut cfg = if fast {
        LoadConfig {
            scale: 0.03,
            epochs: 1,
            clients: 4,
            requests_per_client: 8,
            max_len: 12,
            dim: 8,
        }
    } else if full {
        LoadConfig {
            scale: 0.35,
            epochs: 5,
            clients: 8,
            requests_per_client: 100,
            max_len: 50,
            dim: 16,
        }
    } else {
        LoadConfig {
            scale: 0.1,
            epochs: 2,
            clients: 4,
            requests_per_client: 40,
            max_len: 20,
            dim: 8,
        }
    };
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    if let Some(c) = flag("--clients") {
        cfg.clients = c.max(1);
    }
    if let Some(r) = flag("--requests") {
        cfg.requests_per_client = r.max(1);
    }
    cfg
}

/// Outermost ancestor holding a `Cargo.lock` — the workspace root, where
/// the committed bench reports live.
fn repo_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    cwd.ancestors()
        .filter(|a| a.join("Cargo.lock").is_file())
        .last()
        .map(PathBuf::from)
        .unwrap_or(cwd)
}

fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/ssdrec-bench");
    std::fs::create_dir_all(&dir).expect("create target/ssdrec-bench");
    dir
}

fn checkpointed_world(cfg: &LoadConfig) -> (Split, MultiRelationGraph, PathBuf) {
    let raw = SyntheticConfig::beauty()
        .scaled(cfg.scale)
        .with_seed(7)
        .generate();
    let (dataset, split) = prepare(&raw, cfg.max_len, 2);
    assert!(!split.test.is_empty(), "load-test dataset has no sequences");
    let graph = build_graph(&dataset, &GraphConfig::default());

    let model_cfg = SsdRecConfig {
        dim: cfg.dim,
        max_len: cfg.max_len,
        backbone: BackboneKind::SasRec,
        seed: 7,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, model_cfg);
    let (_, train_secs) = timed(|| {
        train(
            &mut model,
            &split,
            &TrainConfig {
                epochs: cfg.epochs,
                batch_size: 64,
                seed: 7,
                ..TrainConfig::default()
            },
        )
    });
    println!("trained {} in {train_secs:.1}s", "SSDRec[SASRec]");

    let ckpt = out_dir().join("serve_ckpt.ssdt");
    save_params(&model.store, &ckpt).expect("write checkpoint");
    (split, graph, ckpt)
}

fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len()) - 1;
    sorted_us[idx] as f64 / 1000.0
}

fn drive_load(addr: SocketAddr, split: &Split, cfg: &LoadConfig) -> (Vec<u64>, f64) {
    let examples: Arc<Vec<(usize, Vec<usize>)>> =
        Arc::new(split.test.iter().map(|e| (e.user, e.seq.clone())).collect());
    let wall = Instant::now();
    let threads: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let examples = Arc::clone(&examples);
            let n = cfg.requests_per_client;
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(n);
                for r in 0..n {
                    let (user, seq) = &examples[(c * 131 + r) % examples.len()];
                    let body = format!(
                        "{{\"user\":{user},\"seq\":[{}],\"k\":10}}",
                        seq.iter()
                            .map(|i| i.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    );
                    let t0 = Instant::now();
                    let (status, resp) = client::post(addr, "/recommend", &body).expect("request");
                    latencies.push(t0.elapsed().as_micros() as u64);
                    assert_eq!(status, 200, "client {c} req {r}: {resp}");
                    assert!(
                        resp.contains("\"items\":["),
                        "client {c} req {r}: malformed {resp}"
                    );
                }
                latencies
            })
        })
        .collect();
    let mut all: Vec<u64> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("client thread"))
        .collect();
    let wall_secs = wall.elapsed().as_secs_f64();
    all.sort_unstable();
    (all, wall_secs)
}

fn main() {
    if std::env::args().any(|a| a == "--retrieval") {
        retrieval::run();
        return;
    }
    let cfg = config();
    let (split, graph, ckpt) = checkpointed_world(&cfg);

    // Reload the checkpoint into a fresh model — the same path `ssdrec
    // serve` takes — so the benchmark covers checkpoint I/O too.
    let model_cfg = SsdRecConfig {
        dim: cfg.dim,
        max_len: cfg.max_len,
        backbone: BackboneKind::SasRec,
        seed: 7,
        ..SsdRecConfig::default()
    };
    let mut served = SsdRec::new(&graph, model_cfg);
    load_params(&mut served.store, &ckpt).expect("reload checkpoint");

    let engine = Engine::new(
        served.into(),
        EngineConfig {
            workers: 2,
            max_batch: 32,
            linger: Duration::from_millis(2),
            cache_capacity: 256,
            max_len: cfg.max_len,
            ..EngineConfig::default()
        },
        Arc::new(ServerStats::new()),
    );
    let mut handle = serve(engine, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = handle.addr();
    println!(
        "serving on {addr}: {} clients × {} closed-loop requests",
        cfg.clients, cfg.requests_per_client
    );

    let (latencies, wall_secs) = drive_load(addr, &split, &cfg);
    let total = latencies.len();
    let qps = total as f64 / wall_secs;
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    let mean = latencies.iter().sum::<u64>() as f64 / total.max(1) as f64 / 1000.0;

    println!("client-observed over {total} requests in {wall_secs:.2}s:");
    println!("  qps  : {qps:.1}");
    println!("  mean : {mean:.2} ms");
    println!("  p50  : {p50:.2} ms   p95: {p95:.2} ms   p99: {p99:.2} ms");

    let (status, metrics) = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    println!("server /metrics: {metrics}");

    let report = out_dir().join("serve_latency.csv");
    let csv = format!(
        "clients,requests,wall_secs,qps,mean_ms,p50_ms,p95_ms,p99_ms\n{},{},{:.3},{:.1},{:.3},{:.3},{:.3},{:.3}\n",
        cfg.clients, total, wall_secs, qps, mean, p50, p95, p99
    );
    std::fs::write(&report, csv).expect("write latency report");
    println!("latency report written to {}", report.display());

    handle.shutdown();
    std::fs::remove_file(&ckpt).ok();
}

/// The retrieval harness (`--retrieval`): exact vs ANN at catalogue scale.
mod retrieval {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use ssdrec_ann::{AnnParams, HnswIndex};
    use ssdrec_models::{BackboneKind, SeqRec};
    use ssdrec_serve::{Engine, EngineConfig, RetrievalConfig, RetrievalMode, ServerStats};
    use ssdrec_tensor::Graph;

    use super::{percentile, repo_root};

    const MAX_LEN: usize = 20;
    const K: usize = 20;
    const SEED: u64 = 42;

    struct RetrievalCfg {
        fast: bool,
        catalogs: Vec<(usize, usize)>, // (items, dim)
        queries: usize,
    }

    fn config() -> RetrievalCfg {
        let fast = std::env::var("SSDREC_BENCH_FAST").is_ok_and(|v| v == "1")
            || std::env::args().any(|a| a == "--fast");
        let full = std::env::args().any(|a| a == "--full");
        if fast {
            RetrievalCfg {
                fast: true,
                catalogs: vec![(10_000, 8)],
                queries: 40,
            }
        } else if full {
            RetrievalCfg {
                fast: false,
                catalogs: vec![(10_000, 16), (100_000, 16), (1_000_000, 16)],
                queries: 200,
            }
        } else {
            RetrievalCfg {
                fast: false,
                catalogs: vec![(10_000, 16), (100_000, 16)],
                queries: 200,
            }
        }
    }

    /// Deterministic query sequences from the synthetic generator: each
    /// simulated user's raw, time-ordered history over the full catalogue
    /// (no k-core filtering — the ids must span all `items`), truncated to
    /// the serving window.
    fn queries(items: usize, n: usize) -> Vec<(usize, Vec<usize>)> {
        let raw = ssdrec_data::SyntheticConfig::beauty()
            .with_users(n + 60)
            .with_items(items)
            .with_seed(7)
            .generate();
        let qs: Vec<(usize, Vec<usize>)> = raw
            .sequences
            .iter()
            .enumerate()
            .filter(|(_, s)| s.len() >= 2)
            .take(n)
            .map(|(u, s)| (u, s[s.len().saturating_sub(MAX_LEN)..].to_vec()))
            .collect();
        assert!(qs.len() >= n.min(1), "not enough synthetic users");
        qs
    }

    fn engine(items: usize, dim: usize, retrieval: RetrievalConfig) -> Engine {
        let model = SeqRec::new(BackboneKind::SasRec, items, dim, MAX_LEN, SEED);
        Engine::try_new(
            model.into(),
            EngineConfig {
                workers: 1,
                max_batch: 1,
                linger: Duration::ZERO,
                cache_capacity: 0, // every request crosses the worker
                max_len: MAX_LEN,
                retrieval,
                ..EngineConfig::default()
            },
            Arc::new(ServerStats::new()),
        )
        .expect("engine")
    }

    /// Closed-loop single-caller sweep; returns per-query top-K lists and
    /// sorted per-query latencies in µs.
    fn drive(engine: &Engine, qs: &[(usize, Vec<usize>)]) -> (Vec<Vec<(usize, u32)>>, Vec<u64>) {
        for (user, seq) in qs.iter().take(5) {
            engine.recommend(*user, seq, K).expect("warmup");
        }
        let mut tops = Vec::with_capacity(qs.len());
        let mut lat = Vec::with_capacity(qs.len());
        for (user, seq) in qs {
            let t0 = Instant::now();
            let rec = engine.recommend(*user, seq, K).expect("recommend");
            lat.push(t0.elapsed().as_micros() as u64);
            tops.push(
                rec.items
                    .iter()
                    .map(|&(i, s)| (i, s.to_bits()))
                    .collect::<Vec<_>>(),
            );
        }
        lat.sort_unstable();
        (tops, lat)
    }

    fn recall_at(exact: &[Vec<(usize, u32)>], ann: &[Vec<(usize, u32)>], k: usize) -> f64 {
        let mut hit = 0usize;
        let mut total = 0usize;
        for (e, a) in exact.iter().zip(ann) {
            let want: Vec<usize> = e.iter().take(k).map(|&(i, _)| i).collect();
            hit += a.iter().take(k).filter(|(i, _)| want.contains(i)).count();
            total += want.len();
        }
        hit as f64 / total.max(1) as f64
    }

    /// Byte-level determinism of the index build itself: rebuild equality
    /// and 1-vs-4-thread equality over the model's real embedding table.
    fn build_determinism(items: usize, dim: usize) -> (bool, bool) {
        let model = SeqRec::new(BackboneKind::SasRec, items, dim, MAX_LEN, SEED);
        let mut g = Graph::inference_with_capacity(4096);
        let bind = model.store.bind_all(&mut g);
        let frozen = model.precompute_frozen(&mut g, &bind);
        let table = g.value(frozen.table).data().to_vec();
        let build = || {
            HnswIndex::build(&table, dim, items, AnnParams::default())
                .expect("build")
                .to_bytes()
        };
        let a = build();
        let rebuild_ok = a == build();
        ssdrec_runtime::set_threads(4);
        let threads_ok = a == build();
        ssdrec_runtime::set_threads(1);
        (rebuild_ok, threads_ok)
    }

    pub fn run() {
        let cfg = config();
        ssdrec_runtime::set_threads(1); // single-thread QPS comparison

        // The determinism contract is asserted once, on the smallest
        // catalogue (three full builds are too expensive at 100K+).
        let (items0, dim0) = cfg.catalogs[0];
        let (rebuild_ok, threads_ok) = build_determinism(items0, dim0);
        assert!(rebuild_ok, "index rebuild must be byte-identical");
        assert!(threads_ok, "index build must not depend on thread count");
        println!("determinism at {items0} items: rebuild ok, 1-vs-4-thread ok");

        let retrieval = RetrievalConfig::default(); // m=16, ef_search=128
        let mut rows = Vec::new();
        for &(items, dim) in &cfg.catalogs {
            let qs = queries(items, cfg.queries);
            println!("catalogue {items} (dim {dim}): {} queries", qs.len());

            let exact = engine(items, dim, RetrievalConfig::default());
            let (exact_tops, exact_lat) = drive(&exact, &qs);
            let exact_secs = exact_lat.iter().sum::<u64>() as f64 / 1e6;
            exact.shutdown();

            let ann = engine(
                items,
                dim,
                RetrievalConfig {
                    mode: RetrievalMode::Ann,
                    ..retrieval
                },
            );
            let build_ms = ann.stats().retrieval().build_us as f64 / 1000.0;
            let (ann_tops, ann_lat) = drive(&ann, &qs);
            let ann_secs = ann_lat.iter().sum::<u64>() as f64 / 1e6;

            // Served bits must be stable across repeat requests.
            let (u0, s0) = &qs[0];
            let once = ann.recommend(*u0, s0, K).expect("repeat");
            let twice = ann.recommend(*u0, s0, K).expect("repeat");
            let stable = once
                .items
                .iter()
                .zip(&twice.items)
                .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits());
            assert!(stable, "served ANN bits unstable at {items} items");
            ann.shutdown();

            let n = qs.len() as f64;
            let exact_qps = n / exact_secs.max(1e-9);
            let ann_qps = n / ann_secs.max(1e-9);
            let speedup = ann_qps / exact_qps;
            let r10 = recall_at(&exact_tops, &ann_tops, 10);
            let r20 = recall_at(&exact_tops, &ann_tops, 20);
            println!(
                "  exact {exact_qps:.0} qps, ann {ann_qps:.0} qps ({speedup:.2}x); \
                 recall@10 {r10:.4}, recall@20 {r20:.4}; build {build_ms:.0} ms"
            );
            assert!(
                r10 >= 0.95,
                "recall@10 {r10:.4} < 0.95 at {items} items (default ef_search)"
            );
            if items >= 100_000 {
                assert!(
                    speedup >= 3.0,
                    "ANN speedup {speedup:.2}x < 3x at {items} items"
                );
            }

            rows.push(format!(
                "    {{\"items\": {items}, \"dim\": {dim}, \"queries\": {}, \
                 \"build_ms\": {build_ms:.1}, \
                 \"exact_qps\": {exact_qps:.1}, \"ann_qps\": {ann_qps:.1}, \
                 \"speedup\": {speedup:.3}, \
                 \"exact_p50_ms\": {:.3}, \"exact_p95_ms\": {:.3}, \"exact_p99_ms\": {:.3}, \
                 \"ann_p50_ms\": {:.3}, \"ann_p95_ms\": {:.3}, \"ann_p99_ms\": {:.3}, \
                 \"recall_at_10\": {r10:.4}, \"recall_at_20\": {r20:.4}, \
                 \"serve_bits_stable\": true}}",
                qs.len(),
                percentile(&exact_lat, 0.50),
                percentile(&exact_lat, 0.95),
                percentile(&exact_lat, 0.99),
                percentile(&ann_lat, 0.50),
                percentile(&ann_lat, 0.95),
                percentile(&ann_lat, 0.99),
            ));
        }

        let params = AnnParams::default();
        let json = format!(
            "{{\n  \"bench\": \"retrieval\",\n  \"fast\": {},\n  \"threads\": 1,\n  \
             \"k\": {K},\n  \
             \"ann\": {{\"m\": {}, \"ef_construction\": {}, \"ef_search\": {}}},\n  \
             \"deterministic_rebuild\": {rebuild_ok},\n  \
             \"thread_invariant_build\": {threads_ok},\n  \
             \"catalogs\": [\n{}\n  ]\n}}\n",
            cfg.fast,
            params.m,
            params.ef_construction,
            retrieval.ef_search,
            rows.join(",\n")
        );

        // Self-check: the report must parse with the workspace JSON parser
        // and keep the recall field CI greps for.
        let parsed =
            ssdrec_serve::json::parse(&json).expect("BENCH_retrieval.json must be valid JSON");
        let cats = parsed
            .get("catalogs")
            .and_then(|c| c.as_arr())
            .expect("catalogs array");
        assert_eq!(cats.len(), cfg.catalogs.len());
        for c in cats {
            let r = c
                .get("recall_at_10")
                .and_then(|v| v.as_f64())
                .expect("recall_at_10 field");
            assert!(r >= 0.95);
        }

        let path = repo_root().join("BENCH_retrieval.json");
        std::fs::write(&path, &json).expect("write BENCH_retrieval.json");
        println!("wrote {}", path.display());
    }
}
