//! Closed-loop load generator for the online serving subsystem.
//!
//! Trains a small SSDRec model, checkpoints it, serves the checkpoint on an
//! ephemeral port, then drives it with several concurrent closed-loop HTTP
//! clients (each waits for its response before sending the next request).
//! Reports client-observed latency percentiles and throughput next to the
//! server's own `/metrics` view, and writes a CSV latency report to
//! `target/ssdrec-bench/`.
//!
//! `cargo run --release -p ssdrec-bench --bin bench_serve \
//!     [--full] [--clients N] [--requests N]`
//!
//! `SSDREC_BENCH_FAST=1` (the CI smoke) shrinks everything to a few
//! seconds.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ssdrec_bench::timed;
use ssdrec_core::{SsdRec, SsdRecConfig};
use ssdrec_data::{prepare, Split, SyntheticConfig};
use ssdrec_graph::{build_graph, GraphConfig, MultiRelationGraph};
use ssdrec_models::{train, BackboneKind, TrainConfig};
use ssdrec_serve::{client, serve, Engine, EngineConfig, ServerStats};
use ssdrec_tensor::{load_params, save_params};

struct LoadConfig {
    scale: f64,
    epochs: usize,
    clients: usize,
    requests_per_client: usize,
    max_len: usize,
    dim: usize,
}

fn config() -> LoadConfig {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = std::env::var("SSDREC_BENCH_FAST").is_ok_and(|v| v == "1");
    let full = args.iter().any(|a| a == "--full");
    let mut cfg = if fast {
        LoadConfig {
            scale: 0.03,
            epochs: 1,
            clients: 4,
            requests_per_client: 8,
            max_len: 12,
            dim: 8,
        }
    } else if full {
        LoadConfig {
            scale: 0.35,
            epochs: 5,
            clients: 8,
            requests_per_client: 100,
            max_len: 50,
            dim: 16,
        }
    } else {
        LoadConfig {
            scale: 0.1,
            epochs: 2,
            clients: 4,
            requests_per_client: 40,
            max_len: 20,
            dim: 8,
        }
    };
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    if let Some(c) = flag("--clients") {
        cfg.clients = c.max(1);
    }
    if let Some(r) = flag("--requests") {
        cfg.requests_per_client = r.max(1);
    }
    cfg
}

fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/ssdrec-bench");
    std::fs::create_dir_all(&dir).expect("create target/ssdrec-bench");
    dir
}

fn checkpointed_world(cfg: &LoadConfig) -> (Split, MultiRelationGraph, PathBuf) {
    let raw = SyntheticConfig::beauty()
        .scaled(cfg.scale)
        .with_seed(7)
        .generate();
    let (dataset, split) = prepare(&raw, cfg.max_len, 2);
    assert!(!split.test.is_empty(), "load-test dataset has no sequences");
    let graph = build_graph(&dataset, &GraphConfig::default());

    let model_cfg = SsdRecConfig {
        dim: cfg.dim,
        max_len: cfg.max_len,
        backbone: BackboneKind::SasRec,
        seed: 7,
        ..SsdRecConfig::default()
    };
    let mut model = SsdRec::new(&graph, model_cfg);
    let (_, train_secs) = timed(|| {
        train(
            &mut model,
            &split,
            &TrainConfig {
                epochs: cfg.epochs,
                batch_size: 64,
                seed: 7,
                ..TrainConfig::default()
            },
        )
    });
    println!("trained {} in {train_secs:.1}s", "SSDRec[SASRec]");

    let ckpt = out_dir().join("serve_ckpt.ssdt");
    save_params(&model.store, &ckpt).expect("write checkpoint");
    (split, graph, ckpt)
}

fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len()) - 1;
    sorted_us[idx] as f64 / 1000.0
}

fn drive_load(addr: SocketAddr, split: &Split, cfg: &LoadConfig) -> (Vec<u64>, f64) {
    let examples: Arc<Vec<(usize, Vec<usize>)>> =
        Arc::new(split.test.iter().map(|e| (e.user, e.seq.clone())).collect());
    let wall = Instant::now();
    let threads: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let examples = Arc::clone(&examples);
            let n = cfg.requests_per_client;
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(n);
                for r in 0..n {
                    let (user, seq) = &examples[(c * 131 + r) % examples.len()];
                    let body = format!(
                        "{{\"user\":{user},\"seq\":[{}],\"k\":10}}",
                        seq.iter()
                            .map(|i| i.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    );
                    let t0 = Instant::now();
                    let (status, resp) = client::post(addr, "/recommend", &body).expect("request");
                    latencies.push(t0.elapsed().as_micros() as u64);
                    assert_eq!(status, 200, "client {c} req {r}: {resp}");
                    assert!(
                        resp.contains("\"items\":["),
                        "client {c} req {r}: malformed {resp}"
                    );
                }
                latencies
            })
        })
        .collect();
    let mut all: Vec<u64> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("client thread"))
        .collect();
    let wall_secs = wall.elapsed().as_secs_f64();
    all.sort_unstable();
    (all, wall_secs)
}

fn main() {
    let cfg = config();
    let (split, graph, ckpt) = checkpointed_world(&cfg);

    // Reload the checkpoint into a fresh model — the same path `ssdrec
    // serve` takes — so the benchmark covers checkpoint I/O too.
    let model_cfg = SsdRecConfig {
        dim: cfg.dim,
        max_len: cfg.max_len,
        backbone: BackboneKind::SasRec,
        seed: 7,
        ..SsdRecConfig::default()
    };
    let mut served = SsdRec::new(&graph, model_cfg);
    load_params(&mut served.store, &ckpt).expect("reload checkpoint");

    let engine = Engine::new(
        served.into(),
        EngineConfig {
            workers: 2,
            max_batch: 32,
            linger: Duration::from_millis(2),
            cache_capacity: 256,
            max_len: cfg.max_len,
            ..EngineConfig::default()
        },
        Arc::new(ServerStats::new()),
    );
    let mut handle = serve(engine, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = handle.addr();
    println!(
        "serving on {addr}: {} clients × {} closed-loop requests",
        cfg.clients, cfg.requests_per_client
    );

    let (latencies, wall_secs) = drive_load(addr, &split, &cfg);
    let total = latencies.len();
    let qps = total as f64 / wall_secs;
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    let mean = latencies.iter().sum::<u64>() as f64 / total.max(1) as f64 / 1000.0;

    println!("client-observed over {total} requests in {wall_secs:.2}s:");
    println!("  qps  : {qps:.1}");
    println!("  mean : {mean:.2} ms");
    println!("  p50  : {p50:.2} ms   p95: {p95:.2} ms   p99: {p99:.2} ms");

    let (status, metrics) = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    println!("server /metrics: {metrics}");

    let report = out_dir().join("serve_latency.csv");
    let csv = format!(
        "clients,requests,wall_secs,qps,mean_ms,p50_ms,p95_ms,p99_ms\n{},{},{:.3},{:.1},{:.3},{:.3},{:.3},{:.3}\n",
        cfg.clients, total, wall_secs, qps, mean, p50, p95, p99
    );
    std::fs::write(&report, csv).expect("write latency report");
    println!("latency report written to {}", report.display());

    handle.shutdown();
    std::fs::remove_file(&ckpt).ok();
}
