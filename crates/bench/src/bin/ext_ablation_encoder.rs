//! Extension ablation (DESIGN.md §6.2): Eq. 2's attention-weighted directed
//! aggregation vs an untyped mean in the global relation encoder.
//!
//! Usage: `cargo run --release -p ssdrec-bench --bin ext_ablation_encoder [--full]`

use ssdrec_bench::{metric_header, metric_row, prepare_profile, write_results, HarnessConfig};
use ssdrec_core::{SsdRec, SsdRecConfig};
use ssdrec_models::{train, BackboneKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let h = HarnessConfig::from_args(&args);

    let mut csv = Vec::new();
    for ds in ["beauty", "yelp"] {
        let prep = prepare_profile(ds, &h);
        println!("\n=== relation-encoder ablation — {ds} ===");
        println!("{}", metric_header());
        for (label, use_att) in [("directed attention", true), ("untyped mean", false)] {
            let cfg = SsdRecConfig {
                dim: h.dim,
                max_len: prep.max_len,
                backbone: BackboneKind::SasRec,
                relation_attention: use_att,
                seed: h.seed,
                ..SsdRecConfig::default()
            };
            let mut model = SsdRec::new(&prep.graph, cfg);
            let report = train(&mut model, &prep.split, &h.train_config());
            println!("{}", metric_row(label, &report.test));
            csv.push(format!(
                "{ds},{},{:.6},{:.6},{:.6}",
                if use_att { "attention" } else { "mean" },
                report.test.hr20,
                report.test.ndcg20,
                report.test.mrr20
            ));
        }
    }
    write_results(
        "ext_ablation_encoder.csv",
        "dataset,aggregation,hr20,ndcg20,mrr20",
        &csv,
    );
}
