//! Extension experiment (not in the paper): beyond-accuracy effects of
//! denoising. Accidental interactions disproportionately hit popular items,
//! so removing them should reduce popularity bias and exposure concentration
//! in the served recommendations. Compares the bare backbone against SSDRec
//! on catalogue coverage, Gini concentration and popularity bias of top-10
//! lists.
//!
//! Usage: `cargo run --release -p ssdrec-bench --bin ext_beyond_accuracy [--full]`

use ssdrec_bench::{prepare_profile, run_ssdrec, write_results, HarnessConfig};
use ssdrec_metrics::RecListAccumulator;
use ssdrec_models::{BackboneKind, RecModel, SeqRec};

fn measure<M: RecModel>(model: &M, prep: &ssdrec_bench::Prepared, k: usize) -> (f64, f64, f64) {
    let mut acc = RecListAccumulator::new(prep.dataset.num_items);
    for ex in &prep.split.test {
        if ex.seq.is_empty() {
            continue;
        }
        let items: Vec<usize> = model
            .recommend(ex.user, &ex.seq, k)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        acc.push(&items);
    }
    let freq = prep.dataset.item_frequencies();
    (acc.coverage(), acc.gini(), acc.popularity_bias(&freq))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let h = HarnessConfig::from_args(&args);
    let k = 10;

    println!("Beyond-accuracy comparison (top-{k} lists on the test users)");
    println!(
        "{:<10} {:<14} {:>9} {:>7} {:>10}",
        "dataset", "model", "coverage", "gini", "pop.bias"
    );
    let mut csv = Vec::new();
    for ds in ["beauty", "sports"] {
        let prep = prepare_profile(ds, &h);

        // Bare SASRec.
        let mut base = SeqRec::new(
            BackboneKind::SasRec,
            prep.dataset.num_items,
            h.dim,
            prep.max_len,
            h.seed,
        );
        let _ = ssdrec_models::train(&mut base, &prep.split, &h.train_config());
        let (c, g, p) = measure(&base, &prep, k);
        println!("{ds:<10} {:<14} {c:>9.3} {g:>7.3} {p:>10.2}", "SASRec");
        csv.push(format!("{ds},SASRec,{c:.4},{g:.4},{p:.4}"));

        // SASRec inside SSDRec.
        let (model, _report) = run_ssdrec(BackboneKind::SasRec, (true, true, true), &prep, &h, 1.0);
        let (c, g, p) = measure(&model, &prep, k);
        println!(
            "{ds:<10} {:<14} {c:>9.3} {g:>7.3} {p:>10.2}",
            "SSDRec[SASRec]"
        );
        csv.push(format!("{ds},SSDRec,{c:.4},{g:.4},{p:.4}"));
    }
    write_results(
        "ext_beyond_accuracy.csv",
        "dataset,model,coverage,gini,popularity_bias",
        &csv,
    );
}
