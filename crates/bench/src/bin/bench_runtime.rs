//! Thread-scaling and kernel-backend benchmark for the runtime hot paths.
//!
//! Two sweeps, one report (`BENCH_runtime.json` at the repository root):
//!
//! 1. **Thread sweep** — `SSDREC_THREADS` ∈ {1, 2, 4, 8} over the three hot
//!    paths the runtime accelerates: a full-catalogue-sized gemm, one
//!    training epoch, and a full evaluation pass (under the default kernel
//!    backend).
//! 2. **Kernel backend sweep** — single-threaded, per-kernel timings of the
//!    `reference` oracle vs the `blocked` backend, via direct
//!    [`ssdrec_tensor::Backend`] calls: all four gemm transpose variants
//!    plus the fused element-wise kernels.
//!
//! Alongside the timings the binary **asserts the determinism contract**:
//! thread-sweep output bits must be identical at every thread count, and
//! every kernel-sweep cell must be bit-identical between backends (the v1
//! kernel bits-contract). In full mode it additionally asserts the blocked
//! backend's best gemm-variant speedup is ≥ 2× over the reference oracle.
//! Any violation exits non-zero.
//!
//! `cargo run --release -p ssdrec-bench --bin bench_runtime [-- --fast]`
//!
//! `--fast` (or `SSDREC_BENCH_FAST=1`) shrinks the workload to a CI smoke
//! that still exercises every code path, including the JSON self-check
//! (speedups are recorded but not asserted in fast mode — smoke shapes are
//! too small to be meaningful).

use std::path::PathBuf;
use std::time::Instant;

use ssdrec_data::{make_batches, prepare, Split, SyntheticConfig};
use ssdrec_models::{evaluate, BackboneKind, RecModel, SeqRec};
use ssdrec_tensor::backend::{Blocked, Reference, KERNEL_BITS_MAX_ULPS, KERNEL_BITS_VERSION};
use ssdrec_tensor::kernels::matmul;
use ssdrec_tensor::{Activation, Adam, Backend, Graph, Rng, Tensor};
use ssdrec_testkit::bench::{BenchConfig, Harness};

const SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Config {
    fast: bool,
    /// gemm shape: scoring-shaped `B×d · d×V`.
    gemm_m: usize,
    gemm_k: usize,
    gemm_n: usize,
    /// Dataset scale for the epoch/eval workloads.
    scale: f64,
    dim: usize,
    batch_size: usize,
    /// Timing repetitions (best-of).
    reps: usize,
}

fn config() -> Config {
    let fast = std::env::var("SSDREC_BENCH_FAST").is_ok_and(|v| v == "1")
        || std::env::args().skip(1).any(|a| a == "--fast");
    if fast {
        Config {
            fast,
            gemm_m: 64,
            gemm_k: 32,
            gemm_n: 512,
            scale: 0.02,
            dim: 8,
            batch_size: 32,
            reps: 1,
        }
    } else {
        Config {
            fast,
            gemm_m: 128,
            gemm_k: 64,
            gemm_n: 2048,
            scale: 0.08,
            dim: 16,
            batch_size: 64,
            reps: 3,
        }
    }
}

/// Deterministic dense fill shared by every sweep point.
fn fill(n: usize, salt: u64) -> Vec<f32> {
    let mut rng = Rng::seed(salt);
    (0..n).map(|_| rng.next_f32() * 2.0 - 1.0).collect()
}

/// Wrapping sum of the raw bit patterns: equal ⇔ (almost surely) the same
/// bits in the same order — a compact identity witness per sweep point.
fn bit_checksum(data: &[f32]) -> u64 {
    data.iter().fold(0u64, |acc, x| {
        acc.wrapping_mul(31).wrapping_add(x.to_bits() as u64)
    })
}

/// One training epoch over `split.train` (the trainer's inner loop on the
/// public model API), returning the mean loss.
fn run_epoch(model: &mut SeqRec, split: &Split, batch_size: usize) -> f32 {
    let mut opt = Adam::new(1e-3);
    let mut rng = Rng::seed(7);
    let batches = make_batches(&split.train, batch_size, 7);
    let mut total = 0.0f32;
    let mut nb = 0usize;
    let mut g = Graph::new();
    let mut ws = ssdrec_tensor::Gradients::new();
    for batch in &batches {
        g.reset();
        let bind = model.store().bind_all(&mut g);
        let loss = model.loss(&mut g, &bind, batch, &mut rng);
        let lv = g.value(loss).item();
        if lv.is_finite() {
            total += lv;
            nb += 1;
            g.backward_into(loss, &mut ws);
            opt.step(model.store_mut(), &bind, &mut ws);
        }
    }
    if nb > 0 {
        total / nb as f32
    } else {
        f32::NAN
    }
}

/// Best-of-`reps` wall-clock milliseconds of `f`.
fn time_best_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best, last.expect("reps >= 1"))
}

/// The outermost ancestor holding a `Cargo.lock` — the workspace root
/// (cargo runs bin targets with cwd = the package dir).
fn repo_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    cwd.ancestors()
        .filter(|a| a.join("Cargo.lock").is_file())
        .last()
        .map(PathBuf::from)
        .unwrap_or(cwd)
}

struct SweepPoint {
    threads: usize,
    gemm_ms: f64,
    epoch_ms: f64,
    eval_ms: f64,
    gemm_checksum: u64,
    loss_bits: u32,
    hr10_bits: u64,
    ndcg10_bits: u64,
}

struct KernelPoint {
    kernel: &'static str,
    reference_ms: f64,
    blocked_ms: f64,
    speedup: f64,
    bits_match: bool,
}

/// Single-threaded per-kernel comparison of the two backends, via direct
/// [`Backend`] trait calls (the runtime pool is not involved, so thread
/// configuration cannot leak in). Each cell also witnesses the v1 kernel
/// bits-contract: both backends must produce identical output bits.
fn kernel_sweep(cfg: &Config) -> Vec<KernelPoint> {
    let (m, k, n) = (cfg.gemm_m, cfg.gemm_k, cfg.gemm_n);
    let rows = m;
    let iters = if cfg.fast { 2 } else { 5 };

    // Operand layouts per transpose flag: `ta` stores `a` as k×m, `tb`
    // stores `b` as n×k. Fresh salts so no operand aliases another.
    let a_n = fill(m * k, 11);
    let a_t = fill(k * m, 12);
    let b_n = fill(k * n, 13);
    let b_t = fill(n * k, 14);
    let x = fill(rows * n, 15);
    let bias = fill(n, 16);
    let gamma = fill(n, 17);
    let beta = fill(n, 18);
    // A causal-ish row mask with the large-finite sentinel the attention
    // path uses (−1e9), never infinities (finite-input contract).
    let mask: Vec<f32> = fill(n, 19)
        .iter()
        .map(|&v| if v > 0.0 { 0.0 } else { -1e9 })
        .collect();

    let mut points: Vec<KernelPoint> = Vec::new();
    let mut sweep = |kernel: &'static str, out_len: usize, f: &dyn Fn(&dyn Backend, &mut [f32])| {
        let time_one = |be: &dyn Backend| {
            let mut out = vec![0.0f32; out_len];
            let mut best = f64::INFINITY;
            for _ in 0..cfg.reps.max(1) {
                let t0 = Instant::now();
                for _ in 0..iters {
                    f(be, &mut out);
                }
                best = best.min(t0.elapsed().as_secs_f64() * 1e3 / iters as f64);
            }
            (best, out)
        };
        let (reference_ms, ro) = time_one(&Reference);
        let (blocked_ms, bo) = time_one(&Blocked);
        let bits_match =
            ro.len() == bo.len() && ro.iter().zip(&bo).all(|(a, b)| a.to_bits() == b.to_bits());
        points.push(KernelPoint {
            kernel,
            reference_ms,
            blocked_ms,
            speedup: reference_ms / blocked_ms.max(1e-9),
            bits_match,
        });
    };

    sweep("gemm_nn", m * n, &|be, out| {
        out.fill(0.0);
        be.gemm_rows(&a_n, false, &b_n, false, m, k, n, out, 0, m);
    });
    sweep("gemm_tn", m * n, &|be, out| {
        out.fill(0.0);
        be.gemm_rows(&a_t, true, &b_n, false, m, k, n, out, 0, m);
    });
    sweep("gemm_nt", m * n, &|be, out| {
        out.fill(0.0);
        be.gemm_rows(&a_n, false, &b_t, true, m, k, n, out, 0, m);
    });
    sweep("gemm_tt", m * n, &|be, out| {
        out.fill(0.0);
        be.gemm_rows(&a_t, true, &b_t, true, m, k, n, out, 0, m);
    });
    sweep("bias_act_relu", rows * n, &|be, out| {
        be.bias_act(&x, &bias, Activation::Relu, out);
    });
    sweep("softmax_rows", rows * n, &|be, out| {
        be.softmax_rows(&x, out, n);
    });
    sweep("layer_norm_rows", rows * n, &|be, out| {
        be.layer_norm_rows(&x, &gamma, &beta, out, n);
    });
    sweep("scaled_masked_softmax", rows * n, &|be, out| {
        be.scaled_masked_softmax(&x, 0.125, Some(&mask), out, n);
    });
    points
}

fn main() {
    let cfg = config();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "bench_runtime: sweeping threads {SWEEP:?} on a {host_cpus}-cpu host{}",
        if cfg.fast { " (fast mode)" } else { "" }
    );

    // Kernel backend sweep (single-threaded, direct Backend calls).
    let kernels = kernel_sweep(&cfg);
    for p in &kernels {
        eprintln!(
            "  kernel {}: reference {:.3} ms, blocked {:.3} ms, {:.2}x, bits_match={}",
            p.kernel, p.reference_ms, p.blocked_ms, p.speedup, p.bits_match
        );
        assert!(
            p.bits_match,
            "kernel {} violated the v1 bits-contract: backends diverged",
            p.kernel
        );
    }
    let gemm_speedup_best = kernels
        .iter()
        .filter(|p| p.kernel.starts_with("gemm_"))
        .map(|p| p.speedup)
        .fold(0.0f64, f64::max);
    if cfg.fast {
        eprintln!("  kernels: best gemm speedup {gemm_speedup_best:.2}x (recorded, not asserted)");
    } else {
        assert!(
            gemm_speedup_best >= 2.0,
            "blocked backend's best gemm variant must be >= 2x over reference, got {gemm_speedup_best:.2}x"
        );
        eprintln!("  kernels: best gemm speedup {gemm_speedup_best:.2}x (>= 2x contract holds)");
    }

    let a = Tensor::new(fill(cfg.gemm_m * cfg.gemm_k, 1), &[cfg.gemm_m, cfg.gemm_k]);
    let b = Tensor::new(fill(cfg.gemm_k * cfg.gemm_n, 2), &[cfg.gemm_k, cfg.gemm_n]);
    let raw = SyntheticConfig::beauty()
        .scaled(cfg.scale)
        .with_seed(7)
        .generate();
    let (dataset, split) = prepare(&raw, 20, 2);
    eprintln!(
        "  data: {} items, {} train / {} test examples",
        dataset.num_items,
        split.train.len(),
        split.test.len()
    );

    let mut points: Vec<SweepPoint> = Vec::new();
    for &threads in &SWEEP {
        ssdrec_runtime::set_threads(threads);

        // gemm goes through the testkit harness so the per-thread JSON under
        // target/ssdrec-bench/ carries the new `threads` field.
        let mut h = Harness::with_config(&format!("runtime_t{threads}"), BenchConfig::default());
        h.set_threads(threads);
        let gemm_stats = h.bench("gemm_scoring_shape", || matmul(&a, &b));
        let gemm_ms = gemm_stats.median_ns / 1e6;
        let gemm_checksum = bit_checksum(matmul(&a, &b).data());
        let pool = ssdrec_tensor::pool::global_stats();
        h.set_pool_stats(pool.hits, pool.misses, pool.bytes_recycled);
        h.finish();

        let (epoch_ms, loss) = time_best_ms(cfg.reps, || {
            let mut model = SeqRec::new(BackboneKind::SasRec, dataset.num_items, cfg.dim, 20, 7);
            run_epoch(&mut model, &split, cfg.batch_size)
        });

        let eval_model = SeqRec::new(BackboneKind::SasRec, dataset.num_items, cfg.dim, 20, 7);
        let (eval_ms, report) = time_best_ms(cfg.reps, || {
            evaluate(&eval_model, &split.test, cfg.batch_size).report()
        });

        eprintln!(
            "  threads {threads}: gemm {gemm_ms:.3} ms, epoch {epoch_ms:.1} ms, eval {eval_ms:.1} ms"
        );
        points.push(SweepPoint {
            threads,
            gemm_ms,
            epoch_ms,
            eval_ms,
            gemm_checksum,
            loss_bits: loss.to_bits(),
            hr10_bits: report.hr10.to_bits(),
            ndcg10_bits: report.ndcg10.to_bits(),
        });
    }
    ssdrec_runtime::set_threads(1);

    // Determinism contract: every sweep point produced identical bits.
    let base = &points[0];
    for p in &points[1..] {
        assert_eq!(
            p.gemm_checksum, base.gemm_checksum,
            "gemm bits diverged at {} threads",
            p.threads
        );
        assert_eq!(
            p.loss_bits, base.loss_bits,
            "epoch loss bits diverged at {} threads",
            p.threads
        );
        assert_eq!(
            (p.hr10_bits, p.ndcg10_bits),
            (base.hr10_bits, base.ndcg10_bits),
            "evaluation metric bits diverged at {} threads",
            p.threads
        );
    }
    eprintln!("  determinism: all outputs bit-identical across the sweep");

    let at = |t: usize, f: fn(&SweepPoint) -> f64| {
        points
            .iter()
            .find(|p| p.threads == t)
            .map(f)
            .expect("sweep point")
    };
    let speedup_gemm_4 = at(1, |p| p.gemm_ms) / at(4, |p| p.gemm_ms).max(1e-9);
    let speedup_eval_4 = at(1, |p| p.eval_ms) / at(4, |p| p.eval_ms).max(1e-9);

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"threads\": {}, \"gemm_ms\": {:.4}, \"epoch_ms\": {:.3}, \
                 \"eval_ms\": {:.3}, \"gemm_bits_checksum\": {}, \"loss_bits\": {}, \
                 \"hr10_bits\": {}, \"ndcg10_bits\": {}}}",
                p.threads,
                p.gemm_ms,
                p.epoch_ms,
                p.eval_ms,
                p.gemm_checksum,
                p.loss_bits,
                p.hr10_bits,
                p.ndcg10_bits
            )
        })
        .collect();
    let kernel_rows: Vec<String> = kernels
        .iter()
        .map(|p| {
            format!(
                "    {{\"kernel\": \"{}\", \"reference_ms\": {:.4}, \"blocked_ms\": {:.4}, \
                 \"speedup\": {:.3}, \"bits_match\": {}}}",
                p.kernel, p.reference_ms, p.blocked_ms, p.speedup, p.bits_match
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"runtime\",\n  \"fast\": {},\n  \"host_cpus\": {},\n  \
         \"backend_default\": \"{}\",\n  \
         \"kernel_contract\": {{\"version\": {}, \"max_ulps\": {}}},\n  \
         \"bit_identical_across_sweep\": true,\n  \
         \"speedup_at_4_threads\": {{\"gemm\": {:.3}, \"eval\": {:.3}}},\n  \
         \"gemm_speedup_best_1t\": {:.3},\n  \
         \"kernel_sweep_1t\": [\n{}\n  ],\n  \
         \"sweep\": [\n{}\n  ]\n}}\n",
        cfg.fast,
        host_cpus,
        ssdrec_tensor::backend_kind().name(),
        KERNEL_BITS_VERSION,
        KERNEL_BITS_MAX_ULPS,
        speedup_gemm_4,
        speedup_eval_4,
        gemm_speedup_best,
        kernel_rows.join(",\n"),
        rows.join(",\n")
    );

    // Self-check: the report must parse with the workspace JSON parser.
    let parsed = ssdrec_serve::json::parse(&json).expect("BENCH_runtime.json must be valid JSON");
    assert_eq!(
        parsed
            .get("sweep")
            .and_then(|s| s.as_arr())
            .map(|a| a.len()),
        Some(SWEEP.len())
    );
    assert_eq!(
        parsed
            .get("kernel_sweep_1t")
            .and_then(|s| s.as_arr())
            .map(|a| a.len()),
        Some(kernels.len())
    );

    let path = repo_root().join("BENCH_runtime.json");
    std::fs::write(&path, &json).expect("write BENCH_runtime.json");
    println!(
        "bench_runtime: speedup@4 gemm {speedup_gemm_4:.2}x, eval {speedup_eval_4:.2}x, \
         best 1-thread gemm backend speedup {gemm_speedup_best:.2}x \
         (host has {host_cpus} cpu(s)); wrote {}",
        path.display()
    );
}
