//! Table II: statistics of the experimental datasets.
//!
//! Prints the generated synthetic profiles' statistics in the paper's
//! format (# Users, # Items, # Actions, # Avg. lens, # Sparsity) alongside
//! the paper's reported values, so the structural correspondence is visible.
//!
//! Usage: `cargo run --release -p ssdrec-bench --bin table2_stats [--full]`

use ssdrec_bench::{prepare_profile, write_results, HarnessConfig, DATASETS};

/// The paper's Table II rows for reference printing.
const PAPER: [(&str, usize, usize, usize, f64, f64); 5] = [
    ("beauty", 22_364, 12_102, 198_502, 8.9, 99.93),
    ("sports", 35_599, 18_358, 296_337, 8.3, 99.95),
    ("yelp", 30_495, 20_062, 317_078, 10.4, 99.95),
    ("ml-100k", 944, 1_350, 99_287, 105.3, 92.21),
    ("ml-1m", 6_041, 3_417, 999_611, 165.5, 95.16),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let h = HarnessConfig::from_args(&args);

    println!("Table II — dataset statistics (simulated profiles vs paper)");
    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>9} {:>10}   | paper: users/items/actions/avg/sparsity",
        "dataset", "users", "items", "actions", "avg.len", "sparsity%"
    );
    let mut csv = Vec::new();
    for name in DATASETS {
        let prep = prepare_profile(name, &h);
        let ds = &prep.dataset;
        let nonempty = ds.sequences.iter().filter(|s| !s.is_empty()).count();
        let paper = PAPER.iter().find(|p| p.0 == name).expect("paper row");
        println!(
            "{:<10} {:>8} {:>8} {:>9} {:>9.1} {:>10.2}   | {}/{}/{}/{:.1}/{:.2}",
            name,
            nonempty,
            ds.num_items,
            ds.num_actions(),
            ds.avg_len(),
            ds.sparsity(),
            paper.1,
            paper.2,
            paper.3,
            paper.4,
            paper.5,
        );
        csv.push(format!(
            "{name},{nonempty},{},{},{:.2},{:.4}",
            ds.num_items,
            ds.num_actions(),
            ds.avg_len(),
            ds.sparsity()
        ));
    }
    write_results(
        "table2_stats.csv",
        "dataset,users,items,actions,avg_len,sparsity_pct",
        &csv,
    );
}
