//! Fig. 4: the explainability case study — for sampled test users, show the
//! raw sequence, the items the self-augmenter inserts (blue circles in the
//! paper), the positions the denoiser removes (red circles), and how the
//! true next item's score evolves raw → augmented → denoised.
//!
//! Usage:
//! `cargo run --release -p ssdrec-bench --bin fig4_case_study [--full] [--users N]`

use ssdrec_bench::{prepare_profile, run_ssdrec, write_results, HarnessConfig};
use ssdrec_models::BackboneKind;
use ssdrec_tensor::Rng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let h = HarnessConfig::from_args(&args);
    let n_users = args
        .iter()
        .position(|a| a == "--users")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize);

    let prep = prepare_profile("ml-100k", &h);
    let (model, report) = run_ssdrec(BackboneKind::SasRec, (true, true, true), &prep, &h, 1.0);
    println!(
        "trained SSDRec on ml-100k: test HR@20 {:.4}\n",
        report.test.hr20
    );

    let mut rng = Rng::seed(h.seed);
    let mut csv = Vec::new();
    let mut shown = 0usize;
    for ex in &prep.split.test {
        if ex.seq.len() < 5 || ex.seq.len() > 12 {
            continue; // pick compact sequences, like the paper's 6-item view
        }
        let cs = model.explain(&ex.seq, ex.user, ex.target, &mut rng);
        println!("=== user {} (next item {}) ===", ex.user, ex.target);
        println!("raw sequence : {:?}", cs.seq);
        if let (Some(p), Some((l, r))) = (cs.position, cs.inserted) {
            println!("augmentation : insert items {l} (left) / {r} (right) around position {p}");
        }
        let removed: Vec<usize> = cs
            .kept
            .iter()
            .enumerate()
            .filter(|(_, &k)| !k)
            .map(|(i, _)| cs.seq[i])
            .collect();
        println!("removed items: {removed:?}");
        println!(
            "target score : raw {:.3} → augmented {:.3} → denoised {:.3}\n",
            cs.raw_score, cs.augmented_score, cs.denoised_score
        );
        csv.push(format!(
            "{},{},{:.4},{:.4},{:.4},{}",
            ex.user,
            ex.target,
            cs.raw_score,
            cs.augmented_score,
            cs.denoised_score,
            removed.len()
        ));
        shown += 1;
        if shown >= n_users {
            break;
        }
    }

    // The paper also reports overall drop ratios per dataset (§IV-E).
    let mut dropped = 0usize;
    let mut total = 0usize;
    for ex in prep.split.test.iter().take(200) {
        if ex.seq.is_empty() {
            continue;
        }
        let kept = model.keep_decisions_for(&ex.seq, ex.user);
        dropped += kept.iter().filter(|&&k| !k).count();
        total += kept.len();
    }
    if total > 0 {
        println!(
            "overall drop ratio on ml-100k test histories: {:.2}% (paper: 24.22%)",
            100.0 * dropped as f64 / total as f64
        );
    }

    write_results(
        "fig4_case_study.csv",
        "user,target,raw_score,augmented_score,denoised_score,n_removed",
        &csv,
    );
}
