//! Online-loop benchmark: ingest throughput, incremental-retrain latency,
//! and the request-visible pause of a zero-downtime model hot swap.
//!
//! Three phases over a scratch log + versioned checkpoint directory:
//!
//! 1. **Ingest** — bulk-append the day-0 history and report records/sec.
//! 2. **Retrain** — one full round (v1) and one incremental delta round
//!    (v2, warm-started), reporting both wall-clocks; the delta round is
//!    the steady-state cost of the online loop.
//! 3. **Swap** — a reader thread times every `EngineSlot::engine()`
//!    acquisition (the only serving-path contention point) while the main
//!    thread publishes and hot-swaps further versions; the p99 of those
//!    acquisitions is the swap pause a live request can observe.
//!
//! The report is written to `target/ssdrec-bench/bench_stream.json` and to
//! `BENCH_stream.json` at the repository root.
//!
//! `cargo run --release -p ssdrec-bench --bin bench_stream [-- --fast]`
//!
//! `--fast` (or `SSDREC_BENCH_FAST=1`) shrinks the catalog and round count
//! to a CI smoke.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ssdrec_models::{BackboneKind, TrainConfig};
use ssdrec_serve::{
    Engine, EngineConfig, EngineSlot, LatencyHistogram, LoadedModel, ReloadOutcome, ServerStats,
};
use ssdrec_stream::{
    load_current, load_newer, open_or_create_log, retrain, ArchSpec, LogHeader, RetrainOutcome,
    RetrainSpec,
};

struct Config {
    fast: bool,
    num_users: usize,
    num_items: usize,
    events_per_user: usize,
    epochs: usize,
    swaps: usize,
}

fn config() -> Config {
    let fast = std::env::var("SSDREC_BENCH_FAST").is_ok_and(|v| v == "1")
        || std::env::args().skip(1).any(|a| a == "--fast");
    if fast {
        Config {
            fast,
            num_users: 24,
            num_items: 50,
            events_per_user: 8,
            epochs: 1,
            swaps: 2,
        }
    } else {
        Config {
            fast,
            num_users: 200,
            num_items: 400,
            events_per_user: 20,
            epochs: 2,
            swaps: 4,
        }
    }
}

/// The outermost ancestor holding a `Cargo.lock` — the workspace root
/// (cargo runs bin targets with cwd = the package dir).
fn repo_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    cwd.ancestors()
        .filter(|a| a.join("Cargo.lock").is_file())
        .last()
        .map(PathBuf::from)
        .unwrap_or(cwd)
}

fn spec(cfg: &Config) -> RetrainSpec {
    let tc = TrainConfig::default();
    RetrainSpec {
        arch: ArchSpec {
            backbone: BackboneKind::SasRec,
            dim: 8,
            max_len: 12,
            seed: 7,
        },
        epochs: cfg.epochs,
        batch_size: 32,
        lr: tc.lr,
        weight_decay: tc.weight_decay,
        checkpoint_every: 1,
    }
}

fn published_version(outcome: RetrainOutcome) -> u64 {
    match outcome {
        RetrainOutcome::Trained(t) => t.version,
        RetrainOutcome::UpToDate { version } => {
            panic!("expected a trained round, found v{version} already up to date")
        }
    }
}

fn main() {
    let cfg = config();
    let threads = ssdrec_runtime::threads();
    eprintln!(
        "bench_stream: ingest → retrain → hot-swap{}",
        if cfg.fast { " (fast mode)" } else { "" }
    );

    let work = repo_root()
        .join("target")
        .join("ssdrec-bench")
        .join("stream-work");
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("scratch dir");
    let log_path = work.join("events.sslg");
    let root = work.join("ckpts");
    let catalog = LogHeader {
        num_users: cfg.num_users,
        num_items: cfg.num_items,
    };
    let sp = spec(&cfg);

    // Phase 1: ingest. Deterministic user-major history, one fsync at the
    // end (the CLI's bulk-load pattern).
    let (mut log, _) = open_or_create_log(&log_path, Some(catalog)).expect("create log");
    let t0 = Instant::now();
    for u in 0..cfg.num_users {
        for t in 0..cfg.events_per_user {
            log.append(u, (u * 13 + t * 7) % cfg.num_items + 1)
                .expect("append");
        }
    }
    log.sync().expect("sync");
    let ingest_ms = t0.elapsed().as_secs_f64() * 1e3;
    let ingest_records = log.records();
    drop(log);
    let ingest_rps = ingest_records as f64 / (ingest_ms / 1e3).max(1e-9);
    eprintln!("  ingest: {ingest_records} records in {ingest_ms:.2} ms ({ingest_rps:.0} rec/s)");

    // Phase 2: one full round, then one warm-started delta round.
    let t0 = Instant::now();
    assert_eq!(
        published_version(retrain(&log_path, &root, &sp, false).expect("v1")),
        1
    );
    let retrain_full_ms = t0.elapsed().as_secs_f64() * 1e3;

    let (mut log, _) = open_or_create_log(&log_path, None).expect("reopen");
    for u in 0..cfg.num_users {
        log.append(u, (u * 31 + 5) % cfg.num_items + 1)
            .expect("append");
    }
    log.sync().expect("sync");
    drop(log);
    let t0 = Instant::now();
    assert_eq!(
        published_version(retrain(&log_path, &root, &sp, false).expect("v2")),
        2
    );
    let retrain_delta_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!("  retrain: full {retrain_full_ms:.1} ms, delta {retrain_delta_ms:.1} ms");

    // Phase 3: hot swaps under a live reader. The reader times every
    // engine-snapshot acquisition; swaps land concurrently.
    let booted = load_current(&log_path, &root)
        .expect("load")
        .expect("published");
    let engine = Engine::new(
        booted.model.into(),
        EngineConfig {
            workers: 1,
            max_len: sp.arch.max_len,
            cache_capacity: 0,
            ..EngineConfig::default()
        },
        Arc::new(ServerStats::new()),
    );
    let (l, r) = (log_path.clone(), root.clone());
    let slot = Arc::new(EngineSlot::reloadable(
        engine,
        booted.version,
        Box::new(move |current| {
            Ok(load_newer(&l, &r, current)?.map(|newer| LoadedModel {
                model: newer.model.into(),
                version: newer.version,
            }))
        }),
    ));

    let pauses = Arc::new(LatencyHistogram::new());
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let (slot, pauses, stop) = (Arc::clone(&slot), Arc::clone(&pauses), Arc::clone(&stop));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let t = Instant::now();
                let engine = slot.engine();
                pauses.record_us(t.elapsed().as_micros() as u64);
                let _ = engine.recommend(0, &[3, 9, 4, 1], 8);
            }
        })
    };

    let mut swap_ms_total = 0.0f64;
    for i in 0..cfg.swaps {
        let (mut log, _) = open_or_create_log(&log_path, None).expect("reopen");
        for u in 0..cfg.num_users {
            log.append(u, (u * 17 + i * 3 + 11) % cfg.num_items + 1)
                .expect("append");
        }
        log.sync().expect("sync");
        drop(log);
        retrain(&log_path, &root, &sp, false).expect("delta round");
        let t0 = Instant::now();
        let outcome = slot.reload().expect("reload");
        swap_ms_total += t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            matches!(outcome, ReloadOutcome::Swapped { .. }),
            "each round must publish something newer"
        );
    }
    stop.store(true, Ordering::Relaxed);
    reader.join().expect("reader thread");
    let final_version = slot.stats().model_version();
    assert_eq!(
        final_version,
        2 + cfg.swaps as u64,
        "every swap must have landed"
    );
    slot.shutdown();

    let pause_p50_ms = pauses.quantile_ms(0.50);
    let pause_p99_ms = pauses.quantile_ms(0.99);
    let swap_mean_ms = swap_ms_total / cfg.swaps as f64;
    eprintln!(
        "  swap: {} swaps, mean {:.1} ms each; engine-snapshot pause p50 {:.3} ms, p99 {:.3} ms \
         over {} acquisitions",
        cfg.swaps,
        swap_mean_ms,
        pause_p50_ms,
        pause_p99_ms,
        pauses.count()
    );

    let json = format!(
        "{{\n  \"bench\": \"stream\",\n  \"fast\": {},\n  \"threads\": {},\n  \
         \"ingest_records\": {},\n  \"ingest_records_per_sec\": {:.1},\n  \
         \"retrain_full_ms\": {:.3},\n  \"retrain_delta_ms\": {:.3},\n  \
         \"swaps\": {},\n  \"swap_mean_ms\": {:.3},\n  \"final_model_version\": {},\n  \
         \"pause_samples\": {},\n  \"swap_pause_p50_ms\": {:.6},\n  \
         \"swap_pause_p99_ms\": {:.6}\n}}\n",
        cfg.fast,
        threads,
        ingest_records,
        ingest_rps,
        retrain_full_ms,
        retrain_delta_ms,
        cfg.swaps,
        swap_mean_ms,
        final_version,
        pauses.count(),
        pause_p50_ms,
        pause_p99_ms,
    );

    // Self-check: the report must parse with the workspace JSON parser and
    // carry the fields CI validates.
    let parsed = ssdrec_serve::json::parse(&json).expect("BENCH_stream.json must be valid JSON");
    for field in [
        "ingest_records",
        "swaps",
        "pause_samples",
        "final_model_version",
    ] {
        assert!(
            parsed.get(field).and_then(|v| v.as_usize()).is_some(),
            "missing field {field}"
        );
    }
    for field in [
        "ingest_records_per_sec",
        "retrain_full_ms",
        "retrain_delta_ms",
        "swap_pause_p99_ms",
    ] {
        assert!(
            parsed.get(field).and_then(|v| v.as_f64()).is_some(),
            "missing field {field}"
        );
    }

    let target = repo_root().join("target").join("ssdrec-bench");
    let _ = std::fs::create_dir_all(&target);
    let _ = std::fs::write(target.join("bench_stream.json"), &json);
    let path = repo_root().join("BENCH_stream.json");
    std::fs::write(&path, &json).expect("write BENCH_stream.json");
    println!(
        "bench_stream: {:.0} rec/s ingest, {:.1} ms delta retrain, {:.3} ms swap-pause p99; wrote {}",
        ingest_rps,
        retrain_delta_ms,
        pause_p99_ms,
        path.display()
    );
}
