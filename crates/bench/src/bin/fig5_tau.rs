//! Fig. 5: sensitivity of SSDRec to the initial Gumbel temperature τ,
//! sweeping τ ∈ {1e-2, 1e-1, 1, 10, 1e2, 1e3} and reporting HR@20, NDCG@20
//! and MRR per dataset.
//!
//! Usage:
//! `cargo run --release -p ssdrec-bench --bin fig5_tau [--full] [--datasets ml-100k,yelp]`

use ssdrec_bench::{datasets_from_args, prepare_profile, run_ssdrec, write_results, HarnessConfig};
use ssdrec_models::BackboneKind;

const TAUS: [f32; 6] = [1e-2, 1e-1, 1.0, 10.0, 1e2, 1e3];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let h = HarnessConfig::from_args(&args);
    let mut datasets = datasets_from_args(&args);
    if !args.iter().any(|a| a == "--datasets") {
        // Default to the two ends of the paper's size spectrum to keep the
        // quick run bounded; pass --datasets for the full five.
        datasets = vec!["ml-100k".into(), "beauty".into()];
    }

    let mut csv = Vec::new();
    for ds in &datasets {
        let prep = prepare_profile(ds, &h);
        println!("\n=== Fig. 5 — τ sensitivity on {ds} ===");
        println!("{:>10} {:>8} {:>8} {:>8}", "tau", "HR@20", "N@20", "MRR");
        for &tau in &TAUS {
            let (_m, report) = run_ssdrec(BackboneKind::SasRec, (true, true, true), &prep, &h, tau);
            println!(
                "{tau:>10.0e} {:>8.4} {:>8.4} {:>8.4}",
                report.test.hr20, report.test.ndcg20, report.test.mrr20
            );
            csv.push(format!(
                "{ds},{tau},{:.6},{:.6},{:.6}",
                report.test.hr20, report.test.ndcg20, report.test.mrr20
            ));
        }
    }
    write_results("fig5_tau.csv", "dataset,tau,hr20,ndcg20,mrr20", &csv);
}
