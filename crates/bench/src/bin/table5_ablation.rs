//! Table V: the stage-wise ablation on the ML-100K profile —
//! w/o SSDRec-1 (stages 2+3), w/o SSDRec-2 (stages 1+3 = "HSD + global
//! relations"), w/o SSDRec-3 (stages 1+2), plain HSD, and full SSDRec.
//!
//! Usage:
//! `cargo run --release -p ssdrec-bench --bin table5_ablation [--full] [--datasets ml-100k]`

use ssdrec_bench::{
    datasets_from_args, metric_csv, metric_header, metric_row, prepare_profile, run_denoiser,
    run_ssdrec, write_results, DenoiserKind, HarnessConfig,
};
use ssdrec_models::BackboneKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let h = HarnessConfig::from_args(&args);
    let mut datasets = datasets_from_args(&args);
    // The paper runs this table on ML-100K only; we default to ML-100K plus
    // Beauty so both sequence-length regimes are covered (stage 2 only
    // fires on short sequences). Pass --datasets to override.
    if !args.iter().any(|a| a == "--datasets") {
        datasets = vec!["ml-100k".to_string(), "beauty".to_string()];
    }

    let variants: [(&str, (bool, bool, bool)); 4] = [
        ("w/o SSDRec-1", (false, true, true)),
        ("w/o SSDRec-2", (true, false, true)),
        ("w/o SSDRec-3", (true, true, false)),
        ("SSDRec", (true, true, true)),
    ];

    let mut csv = Vec::new();
    for ds in &datasets {
        let prep = prepare_profile(ds, &h);
        println!("\n=== Table V — ablation on {ds} ===");
        println!("{}", metric_header());

        // Plain HSD as the reference row (paper includes it).
        let hsd = run_denoiser(DenoiserKind::Hsd, &prep, &h);
        println!("{}", metric_row("HSD", &hsd.test));
        csv.push(metric_csv(ds, "HSD", &hsd.test));

        for (name, stages) in variants {
            let (_m, report) = run_ssdrec(BackboneKind::SasRec, stages, &prep, &h, 1.0);
            println!("{}", metric_row(name, &report.test));
            csv.push(metric_csv(ds, name, &report.test));
        }
    }
    write_results(
        "table5_ablation.csv",
        "dataset,variant,hr5,hr10,hr20,ndcg5,ndcg10,ndcg20,mrr20",
        &csv,
    );
}
