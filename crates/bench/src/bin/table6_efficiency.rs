//! Table VI: per-epoch training and inference wall-clock (seconds) for HSD,
//! STEAM, DCRec and SSDRec on every dataset.
//!
//! Absolute numbers differ from the paper (single CPU core vs an RTX 8000);
//! the *relationships* are what this reproduces: SSDRec's training epoch is
//! the most expensive of the explicit methods (it contains HSD plus two
//! extra stages), while its inference adds no augmentation cost.
//!
//! Usage:
//! `cargo run --release -p ssdrec-bench --bin table6_efficiency [--full] [--datasets beauty]`

use ssdrec_bench::{
    datasets_from_args, measure_efficiency, prepare_profile, write_results, HarnessConfig,
};
use ssdrec_core::{SsdRec, SsdRecConfig};
use ssdrec_denoise::{DcRec, Hsd, Steam};
use ssdrec_models::BackboneKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let h = HarnessConfig::from_args(&args);
    let datasets = datasets_from_args(&args);

    println!("Table VI — per-epoch training / inference seconds");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}   (train | infer)",
        "dataset", "HSD", "STEAM", "DCRec", "SSDRec"
    );

    let mut csv = Vec::new();
    for ds in &datasets {
        let prep = prepare_profile(ds, &h);
        let ni = prep.dataset.num_items;
        let nu = prep.dataset.num_users;

        let mut hsd = Hsd::new(nu, ni, h.dim, prep.max_len, h.seed);
        let (hsd_t, hsd_i) = measure_efficiency(&mut hsd, &prep.split, &h);

        let mut steam = Steam::new(ni, h.dim, prep.max_len, h.seed);
        let (steam_t, steam_i) = measure_efficiency(&mut steam, &prep.split, &h);

        let freq = prep.dataset.item_frequencies();
        let mut dcrec = DcRec::new(ni, h.dim, prep.max_len, &freq, h.seed);
        let (dcrec_t, dcrec_i) = measure_efficiency(&mut dcrec, &prep.split, &h);

        let cfg = SsdRecConfig {
            dim: h.dim,
            max_len: prep.max_len,
            backbone: BackboneKind::SasRec,
            seed: h.seed,
            ..SsdRecConfig::default()
        };
        let mut ssdrec = SsdRec::new(&prep.graph, cfg);
        let (ssd_t, ssd_i) = measure_efficiency(&mut ssdrec, &prep.split, &h);

        println!(
            "{ds:<10} {hsd_t:>6.2}|{hsd_i:<5.2} {steam_t:>6.2}|{steam_i:<5.2} {dcrec_t:>6.2}|{dcrec_i:<5.2} {ssd_t:>6.2}|{ssd_i:<5.2}"
        );
        csv.push(format!(
            "{ds},{hsd_t:.4},{hsd_i:.4},{steam_t:.4},{steam_i:.4},{dcrec_t:.4},{dcrec_i:.4},{ssd_t:.4},{ssd_i:.4}"
        ));
    }
    write_results(
        "table6_efficiency.csv",
        "dataset,hsd_train,hsd_infer,steam_train,steam_infer,dcrec_train,dcrec_infer,ssdrec_train,ssdrec_infer",
        &csv,
    );
}
