//! Extension ablation (DESIGN.md §5.2): sweep the stage-3 keep rule's
//! relative threshold β and calibration sharpness κ, reporting accuracy and
//! OUP on a noise-labelled ML-100K profile. Shows the precision/recall
//! trade-off of explicit denoising: higher β removes more noise but drops
//! more clean items.
//!
//! Usage: `cargo run --release -p ssdrec-bench --bin ext_ablation_keep_rule [--full]`

use ssdrec_bench::{write_results, HarnessConfig};
use ssdrec_core::{SsdRec, SsdRecConfig};
use ssdrec_data::{inject_unobserved, prepare, SyntheticConfig};
use ssdrec_denoise::Denoiser;
use ssdrec_graph::{build_graph, GraphConfig};
use ssdrec_metrics::OupAccumulator;
use ssdrec_models::{train, BackboneKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut h = HarnessConfig::from_args(&args);
    h.epochs = h.epochs.max(12);
    h.patience = h.patience.max(12);

    let raw = SyntheticConfig::ml100k()
        .scaled(h.scale)
        .with_noise_ratio(0.0)
        .with_seed(h.seed)
        .generate();
    let noisy = inject_unobserved(&raw, 60, 2, h.seed);
    let (dataset, split) = prepare(&noisy, 50, h.max_train_prefixes);
    let graph = build_graph(&dataset, &GraphConfig::default());

    println!(
        "{:>5} {:>6} {:>8} {:>8} {:>8}",
        "beta", "kappa", "HR@20", "under", "over"
    );
    let mut csv = Vec::new();
    for &beta in &[0.4f32, 0.6, 0.8] {
        for &kappa in &[4.0f32, 8.0, 16.0] {
            let cfg = SsdRecConfig {
                dim: h.dim,
                max_len: 50,
                backbone: BackboneKind::SasRec,
                keep_beta: beta,
                keep_kappa: kappa,
                seed: h.seed,
                ..SsdRecConfig::default()
            };
            let mut model = SsdRec::new(&graph, cfg);
            let report = train(&mut model, &split, &h.train_config());

            let mut acc = OupAccumulator::new();
            for ex in &split.test {
                let Some(noise) = &ex.noise else { continue };
                if ex.seq.is_empty() {
                    continue;
                }
                acc.push(noise, &model.keep_decisions(&ex.seq, ex.user));
            }
            println!(
                "{beta:>5.1} {kappa:>6.0} {:>8.4} {:>8.4} {:>8.4}",
                report.test.hr20,
                acc.under_denoising_ratio(),
                acc.over_denoising_ratio()
            );
            csv.push(format!(
                "{beta},{kappa},{:.6},{:.6},{:.6}",
                report.test.hr20,
                acc.under_denoising_ratio(),
                acc.over_denoising_ratio()
            ));
        }
    }
    write_results(
        "ext_ablation_keep_rule.csv",
        "beta,kappa,hr20,under_ratio,over_ratio",
        &csv,
    );
}
