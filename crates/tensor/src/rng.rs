//! Deterministic random-number utilities.
//!
//! All stochastic components (init, dropout, Gumbel noise, data generation)
//! draw from a seeded [`Rng`] so that every experiment in this workspace is
//! exactly reproducible.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A seeded RNG with the sampling helpers the rest of the workspace needs.
pub struct Rng {
    inner: StdRng,
}

impl Rng {
    /// A new deterministic generator from a seed.
    pub fn seed(seed: u64) -> Self {
        Rng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derive an independent child generator (useful for giving each module
    /// its own stream without coupling draw orders).
    pub fn split(&mut self) -> Rng {
        Rng::seed(self.inner.gen())
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.inner.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Standard Gumbel(0,1) sample: `−ln(−ln U)`.
    pub fn gumbel(&mut self) -> f32 {
        let u: f32 = self.inner.gen_range(f32::EPSILON..1.0);
        -(-u.ln()).ln()
    }

    /// Bernoulli draw with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// An inverted-dropout mask: each element is `0` with probability `p`,
    /// else `1/(1-p)`.
    pub fn dropout_mask(&mut self, len: usize, p: f32) -> Vec<f32> {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        let keep = 1.0 - p;
        (0..len)
            .map(|_| if self.inner.gen::<f32>() < p { 0.0 } else { 1.0 / keep })
            .collect()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Sample an index from unnormalised non-negative weights.
    ///
    /// # Panics
    /// Panics if all weights are zero or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[f32]) -> usize {
        let total: f32 = weights.iter().sum();
        assert!(total > 0.0 && !weights.is_empty(), "weighted_index on empty/zero weights");
        let mut r = self.inner.gen_range(0.0..total);
        for (i, &w) in weights.iter().enumerate() {
            if r < w {
                return i;
            }
            r -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed(7);
        let mut b = Rng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_var() {
        let mut r = Rng::seed(42);
        let xs: Vec<f32> = (0..20_000).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gumbel_mean_near_euler_mascheroni() {
        let mut r = Rng::seed(3);
        let n = 20_000;
        let mean = (0..n).map(|_| r.gumbel()).sum::<f32>() / n as f32;
        assert!((mean - 0.5772).abs() < 0.05, "gumbel mean {mean}");
    }

    #[test]
    fn dropout_mask_scales_kept() {
        let mut r = Rng::seed(1);
        let m = r.dropout_mask(1_000, 0.5);
        assert!(m.iter().all(|&x| x == 0.0 || (x - 2.0).abs() < 1e-6));
        let kept = m.iter().filter(|&&x| x > 0.0).count();
        assert!((300..700).contains(&kept));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = Rng::seed(9);
        let mut counts = [0usize; 3];
        for _ in 0..6_000 {
            counts[r.weighted_index(&[1.0, 0.0, 2.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed(5);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
