//! Deterministic random-number utilities.
//!
//! All stochastic components (init, dropout, Gumbel noise, data generation)
//! draw from a seeded [`Rng`] so that every experiment in this workspace is
//! exactly reproducible. The generator itself lives in
//! [`ssdrec_testkit::rng`] — a from-scratch `xoshiro256**` with SplitMix64
//! seeding — and is re-exported here unchanged so substrate code and tests
//! share one stream implementation.
//!
//! # Stream-stability contract
//!
//! Same seed → same draw sequence, on every platform and **across PRs**: the
//! generator, its seeding scheme and the per-helper draw counts are frozen
//! (see the [`ssdrec_testkit::rng`] module docs for the precise terms).
//! Golden tests and the recorded experiments under `results/` rely on this;
//! any change to the stream is a breaking change that must refresh those
//! values and be flagged in `CHANGES.md`. A pinned-value test in the testkit
//! (`golden_stream_is_frozen`) turns an accidental break into a test failure.
//!
//! Call sites that need decoupled streams (e.g. per-module init vs. dropout)
//! should derive children with [`Rng::split`] instead of sharing one stream,
//! so inserting draws in one module cannot shift another module's sequence.

pub use ssdrec_testkit::rng::Rng;

#[cfg(test)]
mod tests {
    use super::*;

    // Behavioural checks that the re-exported generator still provides the
    // sampling surface the substrate depends on; the statistical tests live
    // with the implementation in `ssdrec_testkit::rng`.

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed(7);
        let mut b = Rng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn split_decouples_streams() {
        let mut parent = Rng::seed(4);
        let mut child = parent.split();
        let c1 = child.normal();
        // Additional parent draws must not affect the child's stream.
        let mut parent2 = Rng::seed(4);
        let mut child2 = parent2.split();
        for _ in 0..10 {
            parent2.normal();
        }
        assert_eq!(c1, child2.normal());
    }

    #[test]
    fn dropout_mask_scales_kept() {
        let mut r = Rng::seed(1);
        let m = r.dropout_mask(1_000, 0.5);
        assert!(m.iter().all(|&x| x == 0.0 || (x - 2.0).abs() < 1e-6));
        let kept = m.iter().filter(|&&x| x > 0.0).count();
        assert!((300..700).contains(&kept));
    }

    #[test]
    fn full_sampling_surface_present() {
        let mut r = Rng::seed(2);
        let _ = r.uniform(-1.0, 1.0);
        let _ = r.below(10);
        let _ = r.between(2, 5);
        let _ = r.normal();
        let _ = r.gumbel();
        let _ = r.bernoulli(0.5);
        let _ = r.shuffle(&mut [1, 2, 3]);
        let _ = r.choice(&[1, 2, 3]);
        let _ = r.weighted_index(&[1.0, 2.0]);
        let _ = r.split();
    }
}
