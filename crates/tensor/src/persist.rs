//! Parameter persistence: save/load a [`ParamStore`]'s values to a simple,
//! self-describing binary format (no external dependencies).
//!
//! Format (little-endian):
//! ```text
//! magic  "SSDT" (4 bytes)
//! version u32
//! count   u32                    — number of tensors
//! repeat count times:
//!   name_len u32, name bytes (UTF-8)
//!   ndim u32, dims u32×ndim
//!   data f32×len
//! ```
//!
//! Loading is strict: the target store must have the same tensor names,
//! order and shapes (it is a *checkpoint* format, not a model format — the
//! code that built the store defines the architecture).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::optim::ParamStore;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"SSDT";
const VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Atomically write a file: the payload goes to `<path>.tmp`, is flushed,
/// and only then renamed over `path`. A crash or injected fault at any point
/// (fault site `fault_site`, fired between flush and rename — the widest
/// window) leaves the original file untouched; the temp file is removed on
/// error.
pub fn atomic_write(
    path: &Path,
    fault_site: &str,
    write_fn: impl FnOnce(&mut BufWriter<File>) -> io::Result<()>,
) -> io::Result<()> {
    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    let result = (|| {
        let mut w = BufWriter::new(File::create(&tmp)?);
        write_fn(&mut w)?;
        w.flush()?;
        ssdrec_faults::point(fault_site)?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Serialise every parameter of `store` to `path` (atomic: temp file +
/// rename, so a partially written checkpoint never replaces a good one).
pub fn save_params(store: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    atomic_write(path.as_ref(), "persist.save", |w| write_store(store, w))
}

fn write_store(store: &ParamStore, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    write_u32(w, store.num_tensors() as u32)?;
    for i in 0..store.num_tensors() {
        let r = crate::optim::ParamStore::param_ref_by_index(i);
        let name = store.name(r);
        let t = store.get(r);
        write_u32(w, name.len() as u32)?;
        w.write_all(name.as_bytes())?;
        write_u32(w, t.ndim() as u32)?;
        for &d in t.shape() {
            write_u32(w, d as u32)?;
        }
        for &x in t.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Load a checkpoint into `store`. Names, order and shapes must match the
/// store exactly; optimizer moments are left untouched.
pub fn load_params(store: &mut ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(err("not an SSDT checkpoint"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(err(format!("unsupported checkpoint version {version}")));
    }
    let count = read_u32(&mut r)? as usize;
    if count != store.num_tensors() {
        return Err(err(format!(
            "checkpoint has {count} tensors, store has {}",
            store.num_tensors()
        )));
    }
    let mut values = Vec::with_capacity(count);
    for i in 0..count {
        // Every failure from here on names the offending tensor so a bad
        // checkpoint can be diagnosed without a hex dump.
        let named = |name: &str, e: io::Error| err(format!("tensor {i} ({name}): {e}"));
        let name_len = read_u32(&mut r).map_err(|e| named("<header>", e))? as usize;
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)
            .map_err(|e| named("<header>", e))?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| err(format!("tensor {i}: invalid name encoding")))?;
        let pr = crate::optim::ParamStore::param_ref_by_index(i);
        if store.name(pr) != name {
            return Err(err(format!(
                "tensor {i}: checkpoint name {name:?} vs store {:?}",
                store.name(pr)
            )));
        }
        let ndim = read_u32(&mut r).map_err(|e| named(&name, e))? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(read_u32(&mut r).map_err(|e| named(&name, e))? as usize);
        }
        if shape != store.get(pr).shape() {
            return Err(err(format!(
                "tensor {i} ({name}): checkpoint shape {shape:?} vs store {:?}",
                store.get(pr).shape()
            )));
        }
        let n: usize = shape.iter().product();
        let mut data = vec![0f32; n];
        for x in data.iter_mut() {
            let mut b = [0u8; 4];
            r.read_exact(&mut b).map_err(|e| named(&name, e))?;
            *x = f32::from_le_bytes(b);
        }
        values.push(Tensor::new(data, &shape));
    }
    store.restore(&values);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn demo_store() -> ParamStore {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(42);
        store.add_xavier("layer.w", &[4, 3], &mut rng);
        store.add_zeros("layer.b", &[3]);
        store.add_ones("ln.gamma", &[3]);
        store
    }

    #[test]
    fn roundtrip_preserves_values() {
        let dir = std::env::temp_dir().join("ssdrec_persist_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.ssdt");

        let store = demo_store();
        save_params(&store, &path).unwrap();

        let mut other = demo_store();
        // Perturb before loading.
        other.get_mut(ParamStore::param_ref_by_index(0)).data_mut()[0] = 99.0;
        load_params(&mut other, &path).unwrap();
        assert_eq!(other.snapshot(), store.snapshot());
    }

    #[test]
    fn rejects_mismatched_architecture() {
        let dir = std::env::temp_dir().join("ssdrec_persist_mm");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.ssdt");
        save_params(&demo_store(), &path).unwrap();

        let mut smaller = ParamStore::new();
        smaller.add_zeros("layer.w", &[4, 3]);
        assert!(
            load_params(&mut smaller, &path).is_err(),
            "tensor count mismatch accepted"
        );

        let mut renamed = ParamStore::new();
        let mut rng = Rng::seed(0);
        renamed.add_xavier("other.w", &[4, 3], &mut rng);
        renamed.add_zeros("layer.b", &[3]);
        renamed.add_ones("ln.gamma", &[3]);
        assert!(
            load_params(&mut renamed, &path).is_err(),
            "name mismatch accepted"
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let dir = std::env::temp_dir().join("ssdrec_persist_magic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.ssdt");
        save_params(&demo_store(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[..4].copy_from_slice(b"NOPE");
        std::fs::write(&path, &bytes).unwrap();
        let e = load_params(&mut demo_store(), &path).unwrap_err();
        assert!(e.to_string().contains("not an SSDT checkpoint"), "{e}");
    }

    #[test]
    fn rejects_version_mismatch() {
        let dir = std::env::temp_dir().join("ssdrec_persist_ver");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.ssdt");
        save_params(&demo_store(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let e = load_params(&mut demo_store(), &path).unwrap_err();
        assert!(e.to_string().contains("version 99"), "{e}");
    }

    #[test]
    fn truncated_file_error_names_the_tensor() {
        let dir = std::env::temp_dir().join("ssdrec_persist_trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.ssdt");
        save_params(&demo_store(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut inside the very last tensor's data section.
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        let e = load_params(&mut demo_store(), &path).unwrap_err();
        assert!(e.to_string().contains("ln.gamma"), "error lacks name: {e}");
    }

    #[test]
    fn shape_mismatch_error_names_the_tensor() {
        let dir = std::env::temp_dir().join("ssdrec_persist_shape");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.ssdt");
        save_params(&demo_store(), &path).unwrap();
        let mut reshaped = ParamStore::new();
        let mut rng = Rng::seed(1);
        reshaped.add_xavier("layer.w", &[2, 6], &mut rng); // same size, new shape
        reshaped.add_zeros("layer.b", &[3]);
        reshaped.add_ones("ln.gamma", &[3]);
        let e = load_params(&mut reshaped, &path).unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("layer.w") && msg.contains("shape"),
            "error lacks context: {msg}"
        );
    }

    #[test]
    fn faulted_save_leaves_original_untouched() {
        use ssdrec_testkit::fault::FaultPlan;
        let dir = std::env::temp_dir().join("ssdrec_persist_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.ssdt");
        let tmp = dir.join("ckpt.ssdt.tmp");

        let store = demo_store();
        save_params(&store, &path).unwrap();
        let good = std::fs::read(&path).unwrap();

        let mut changed = demo_store();
        changed
            .get_mut(ParamStore::param_ref_by_index(0))
            .data_mut()[0] = 7.0;
        {
            let _armed = FaultPlan::new().error("persist.save", 1).arm();
            let e = save_params(&changed, &path).unwrap_err();
            assert!(e.to_string().contains("persist.save"), "{e}");
        }
        // Original bytes intact, no temp file left behind.
        assert_eq!(std::fs::read(&path).unwrap(), good);
        assert!(!tmp.exists(), "temp file not cleaned up");

        // After disarm the save succeeds and replaces the file atomically.
        save_params(&changed, &path).unwrap();
        assert_ne!(std::fs::read(&path).unwrap(), good);
    }

    #[test]
    fn rejects_garbage_files() {
        let dir = std::env::temp_dir().join("ssdrec_persist_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.bin");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        let mut store = demo_store();
        assert!(load_params(&mut store, &path).is_err());
    }
}
