//! Dense, row-major, contiguous `f32` tensor value type.
//!
//! [`Tensor`] is the plain value carried through the autograd graph. It has no
//! gradient machinery of its own; see [`crate::graph`] for differentiation.

use std::fmt;

/// A dense, row-major tensor of `f32` values with up to four dimensions.
///
/// All model state (embeddings, weights, activations) in this workspace flows
/// through this type. The representation is deliberately simple — a contiguous
/// `Vec<f32>` plus a shape — so that kernels are cache-friendly loops and the
/// autograd tape can clone values cheaply when needed.
///
/// Constructors ([`Tensor::zeros`], [`Tensor::full`], [`Tensor::map`],
/// `clone`) draw their storage from the step-scoped buffer pool
/// ([`crate::pool`]); dropping a tensor frees the buffer normally, but
/// step-scoped owners ([`crate::graph::Graph`],
/// [`crate::graph::Gradients`], the optimizers) recycle buffers back into
/// the pool instead.
#[derive(PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = crate::pool::take(self.data.len());
        data.copy_from_slice(&self.data);
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        // Every tensor returns its storage to the step-scoped pool, so
        // temporaries (kernel intermediates, model-code scratch) recirculate
        // instead of leaking pool inventory each step. [`Tensor::into_data`]
        // empties `data` first, so callers that keep the buffer are exempt;
        // recycling an empty Vec is a no-op.
        crate::pool::recycle(std::mem::take(&mut self.data));
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 12 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(
                f,
                ", data=[{:.4}, {:.4}, …; {}])",
                self.data[0],
                self.data[1],
                self.data.len()
            )
        }
    }
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn new(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "data length {} does not match shape {:?} (= {n})",
            data.len(),
            shape
        );
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// An all-zeros tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            data: crate::pool::take_zeroed(n),
            shape: shape.to_vec(),
        }
    }

    /// An all-ones tensor of the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        let mut data = crate::pool::take(n);
        data.fill(value);
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// A 0-dimensional-like scalar represented as shape `[1]`.
    pub fn scalar(value: f32) -> Self {
        Self::full(&[1], value)
    }

    /// Borrow the underlying data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume and return the underlying buffer (it is *not* recycled; the
    /// caller owns it — see the [`Drop`] impl).
    pub fn into_data(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// The scalar value of a single-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor does not hold exactly one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() on tensor of shape {:?}",
            self.shape
        );
        self.data[0]
    }

    /// Reinterpret the same buffer under a new shape with equal element count.
    pub fn reshaped(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            n,
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// For a matrix (2-D tensor), the `(rows, cols)` pair.
    pub fn dims2(&self) -> (usize, usize) {
        assert_eq!(self.ndim(), 2, "dims2 on shape {:?}", self.shape);
        (self.shape[0], self.shape[1])
    }

    /// For a 3-D tensor, the `(batch, rows, cols)` triple.
    pub fn dims3(&self) -> (usize, usize, usize) {
        assert_eq!(self.ndim(), 3, "dims3 on shape {:?}", self.shape);
        (self.shape[0], self.shape[1], self.shape[2])
    }

    /// Row `i` of a 2-D tensor as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        let (r, c) = self.dims2();
        assert!(i < r, "row {i} out of {r}");
        &self.data[i * c..(i + 1) * c]
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = crate::pool::take(self.data.len());
        for (o, &x) in data.iter_mut().zip(self.data.iter()) {
            *o = f(x);
        }
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// In-place `self += other` (shapes must match).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place scale by a constant.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean (L2) norm of all elements.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Index of the maximum element (ties resolve to the first).
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        let mut bv = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > bv {
                bv = v;
                best = i;
            }
        }
        best
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_checks_shape() {
        let t = Tensor::new(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.dims2(), (2, 2));
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn new_rejects_bad_shape() {
        Tensor::new(vec![1.0, 2.0, 3.0], &[2, 2]);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[3]).data(), &[0.0, 0.0, 0.0]);
        assert_eq!(Tensor::ones(&[2]).data(), &[1.0, 1.0]);
        assert_eq!(Tensor::full(&[2], 7.0).data(), &[7.0, 7.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).reshaped(&[3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn argmax_first_tie() {
        let t = Tensor::new(vec![1.0, 3.0, 3.0, 0.0], &[4]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::new(vec![1.0, 2.0], &[2]);
        a.add_assign(&Tensor::new(vec![3.0, 4.0], &[2]));
        a.scale_assign(2.0);
        assert_eq!(a.data(), &[8.0, 12.0]);
    }

    #[test]
    fn l2_norm() {
        let t = Tensor::new(vec![3.0, 4.0], &[2]);
        assert!((t.l2_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn non_finite_detection() {
        let t = Tensor::new(vec![1.0, f32::NAN], &[2]);
        assert!(t.has_non_finite());
        assert!(!Tensor::ones(&[2]).has_non_finite());
    }
}
