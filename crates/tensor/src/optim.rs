//! Parameter storage and optimizers.
//!
//! Long-lived trainable parameters live in a [`ParamStore`] outside the
//! per-step autograd [`Graph`](crate::graph::Graph). Each training step a
//! module calls [`ParamStore::bind_all`] to register every parameter as a
//! graph leaf; after `backward` the returned [`Binding`] maps gradients back
//! to their slots so the optimizer can apply an update.

use crate::graph::{Gradients, Graph, Var};
use crate::rng::Rng;
use crate::tensor::Tensor;

/// Handle to a parameter slot inside a [`ParamStore`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ParamRef(usize);

struct Slot {
    name: String,
    value: Tensor,
    /// Adam first-moment estimate.
    m: Tensor,
    /// Adam second-moment estimate.
    v: Tensor,
}

/// Owns all trainable tensors of a model plus their optimizer state.
#[derive(Default)]
pub struct ParamStore {
    slots: Vec<Slot>,
}

/// Maps [`ParamRef`]s to the leaf [`Var`]s registered for one graph.
pub struct Binding {
    vars: Vec<Var>,
}

impl Binding {
    /// The graph leaf corresponding to a parameter.
    pub fn var(&self, p: ParamRef) -> Var {
        self.vars[p.0]
    }
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter tensor under a diagnostic name.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamRef {
        let m = Tensor::zeros(value.shape());
        let v = Tensor::zeros(value.shape());
        self.slots.push(Slot {
            name: name.into(),
            value,
            m,
            v,
        });
        ParamRef(self.slots.len() - 1)
    }

    /// Register a parameter initialised with Xavier/Glorot uniform init.
    pub fn add_xavier(
        &mut self,
        name: impl Into<String>,
        shape: &[usize],
        rng: &mut Rng,
    ) -> ParamRef {
        self.add(name, crate::init::xavier_uniform(shape, rng))
    }

    /// Register a zero-initialised parameter (e.g. biases).
    pub fn add_zeros(&mut self, name: impl Into<String>, shape: &[usize]) -> ParamRef {
        self.add(name, Tensor::zeros(shape))
    }

    /// Register a ones-initialised parameter (e.g. LayerNorm gains).
    pub fn add_ones(&mut self, name: impl Into<String>, shape: &[usize]) -> ParamRef {
        self.add(name, Tensor::ones(shape))
    }

    /// Current value of a parameter.
    pub fn get(&self, p: ParamRef) -> &Tensor {
        &self.slots[p.0].value
    }

    /// Mutable access (used by tests and by manual weight surgery).
    pub fn get_mut(&mut self, p: ParamRef) -> &mut Tensor {
        &mut self.slots[p.0].value
    }

    /// Diagnostic name of a parameter.
    pub fn name(&self, p: ParamRef) -> &str {
        &self.slots[p.0].name
    }

    /// Number of parameters tensors.
    pub fn num_tensors(&self) -> usize {
        self.slots.len()
    }

    /// The [`ParamRef`] of the `i`-th registered parameter (registration
    /// order), used for iteration and checkpoint I/O.
    pub fn param_ref_by_index(i: usize) -> ParamRef {
        ParamRef(i)
    }

    /// Total number of scalar parameters (the paper's |Θ|).
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// Register every parameter as a leaf of `g`, returning the binding.
    pub fn bind_all(&self, g: &mut Graph) -> Binding {
        let vars = self
            .slots
            .iter()
            .map(|s| g.param(s.value.clone()))
            .collect();
        Binding { vars }
    }

    /// True if any parameter contains NaN/inf (training-divergence guard).
    pub fn any_non_finite(&self) -> bool {
        self.slots.iter().any(|s| s.value.has_non_finite())
    }

    /// The Adam moment estimates `(m, v)` of a parameter, for checkpointing.
    pub fn moments(&self, p: ParamRef) -> (&Tensor, &Tensor) {
        let slot = &self.slots[p.0];
        (&slot.m, &slot.v)
    }

    /// Restore the Adam moment estimates of a parameter (resume-from-
    /// checkpoint path).
    ///
    /// # Panics
    /// Panics if either tensor's shape differs from the parameter's.
    pub fn set_moments(&mut self, p: ParamRef, m: Tensor, v: Tensor) {
        let slot = &mut self.slots[p.0];
        assert_eq!(
            m.shape(),
            slot.value.shape(),
            "moment m shape mismatch for {}",
            slot.name
        );
        assert_eq!(
            v.shape(),
            slot.value.shape(),
            "moment v shape mismatch for {}",
            slot.name
        );
        slot.m = m;
        slot.v = v;
    }

    /// Snapshot all parameter values (e.g. for early-stopping restore).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.slots.iter().map(|s| s.value.clone()).collect()
    }

    /// Restore parameter values from a [`ParamStore::snapshot`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the store's layout.
    pub fn restore(&mut self, snap: &[Tensor]) {
        assert_eq!(snap.len(), self.slots.len(), "snapshot layout mismatch");
        for (slot, t) in self.slots.iter_mut().zip(snap) {
            assert_eq!(
                slot.value.shape(),
                t.shape(),
                "snapshot shape mismatch for {}",
                slot.name
            );
            slot.value = t.clone();
        }
    }
}

/// Adam optimizer with optional decoupled L2 regularisation and global
/// gradient-norm clipping (the paper trains everything with Adam, lr 1e-3).
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// L2 regularisation coefficient (paper searches {0, 1e-3, 1e-4}).
    pub weight_decay: f32,
    /// If set, gradients are rescaled so their global L2 norm is at most this.
    pub clip_norm: Option<f32>,
    step: u64,
}

impl Adam {
    /// Adam with the paper's defaults (lr 1e-3, β₁ 0.9, β₂ 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            clip_norm: Some(5.0),
            step: 0,
        }
    }

    /// Builder-style weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of updates applied so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Restore the update counter from a checkpoint. Bias correction depends
    /// on it, so a resumed run must set it before the first `step`.
    pub fn set_steps(&mut self, steps: u64) {
        self.step = steps;
    }

    /// Apply one update from the gradients of a completed backward pass.
    ///
    /// Parameters that did not participate in the loss (no gradient) are
    /// left untouched, as are their moment estimates.
    pub fn step(&mut self, store: &mut ParamStore, binding: &Binding, grads: &mut Gradients) {
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);

        // Collect (slot index, grad) pairs first so we can clip globally.
        let mut pairs: Vec<(usize, Tensor)> = Vec::new();
        for (i, _slot) in store.slots.iter().enumerate() {
            if let Some(gt) = grads.take(binding.vars[i]) {
                pairs.push((i, gt));
            }
        }
        if let Some(maxn) = self.clip_norm {
            let total: f32 = pairs
                .iter()
                .map(|(_, g)| g.data().iter().map(|x| x * x).sum::<f32>())
                .sum();
            let norm = total.sqrt();
            if norm > maxn {
                let s = maxn / norm;
                for (_, g) in pairs.iter_mut() {
                    g.scale_assign(s);
                }
            }
        }

        for (i, g) in pairs {
            let slot = &mut store.slots[i];
            for j in 0..slot.value.len() {
                let mut gj = g.data()[j];
                if !gj.is_finite() {
                    gj = 0.0;
                }
                if self.weight_decay > 0.0 {
                    gj += self.weight_decay * slot.value.data()[j];
                }
                let m = &mut slot.m.data_mut()[j];
                *m = self.beta1 * *m + (1.0 - self.beta1) * gj;
                let v = &mut slot.v.data_mut()[j];
                *v = self.beta2 * *v + (1.0 - self.beta2) * gj * gj;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                slot.value.data_mut()[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            crate::pool::recycle(g.into_data());
        }
    }
}

/// Plain SGD, kept for ablations and tests.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// A new SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Apply one SGD update.
    pub fn step(&mut self, store: &mut ParamStore, binding: &Binding, grads: &mut Gradients) {
        for i in 0..store.slots.len() {
            if let Some(g) = grads.take(binding.vars[i]) {
                let slot = &mut store.slots[i];
                for j in 0..slot.value.len() {
                    let gj = g.data()[j];
                    if gj.is_finite() {
                        slot.value.data_mut()[j] -= self.lr * gj;
                    }
                }
                crate::pool::recycle(g.into_data());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(w) = (w - 3)² with Adam; must converge near 3.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0));
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            let mut g = Graph::new();
            let b = store.bind_all(&mut g);
            let wv = b.var(w);
            let c = g.constant(Tensor::scalar(3.0));
            let d = g.sub(wv, c);
            let sq = g.mul(d, d);
            let loss = g.sum_all(sq);
            let mut grads = g.backward(loss);
            opt.step(&mut store, &b, &mut grads);
        }
        assert!(
            (store.get(w).item() - 3.0).abs() < 1e-2,
            "w = {}",
            store.get(w).item()
        );
    }

    #[test]
    fn sgd_descends() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(5.0));
        let mut opt = Sgd::new(0.2);
        let mut last = f32::INFINITY;
        for _ in 0..50 {
            let mut g = Graph::new();
            let b = store.bind_all(&mut g);
            let wv = b.var(w);
            let sq = g.mul(wv, wv);
            let loss = g.sum_all(sq);
            let lv = g.value(loss).item();
            assert!(lv <= last + 1e-6);
            last = lv;
            let mut grads = g.backward(loss);
            opt.step(&mut store, &b, &mut grads);
        }
        assert!(store.get(w).item().abs() < 0.1);
    }

    #[test]
    fn clip_norm_caps_updates() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0));
        let mut opt = Adam::new(1.0);
        opt.clip_norm = Some(1e-3);
        let mut g = Graph::new();
        let b = store.bind_all(&mut g);
        let wv = b.var(w);
        let big = g.scale(wv, 1e6);
        let c = g.add_scalar(big, 1.0);
        let loss = g.sum_all(c);
        let mut grads = g.backward(loss);
        opt.step(&mut store, &b, &mut grads);
        // Even with a huge gradient, clipped Adam moves at most ~lr.
        assert!(store.get(w).item().abs() <= 1.001);
    }

    #[test]
    fn unused_params_untouched() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(1.5));
        let u = store.add("unused", Tensor::scalar(9.0));
        let mut opt = Adam::new(0.1);
        let mut g = Graph::new();
        let b = store.bind_all(&mut g);
        let wv = b.var(w);
        let sq = g.mul(wv, wv);
        let loss = g.sum_all(sq);
        let mut grads = g.backward(loss);
        opt.step(&mut store, &b, &mut grads);
        assert_eq!(store.get(u).item(), 9.0);
        assert_ne!(store.get(w).item(), 1.5);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(4.0));
        let mut opt = Adam::new(0.05).with_weight_decay(1e-1);
        for _ in 0..200 {
            let mut g = Graph::new();
            let b = store.bind_all(&mut g);
            let wv = b.var(w);
            // loss independent of w except through decay: constant grad 0
            let z = g.scale(wv, 0.0);
            let loss = g.sum_all(z);
            let mut grads = g.backward(loss);
            opt.step(&mut store, &b, &mut grads);
        }
        assert!(store.get(w).item() < 4.0);
    }

    #[test]
    fn param_store_counts() {
        let mut store = ParamStore::new();
        store.add("a", Tensor::zeros(&[3, 4]));
        store.add("b", Tensor::zeros(&[5]));
        assert_eq!(store.num_tensors(), 2);
        assert_eq!(store.num_scalars(), 17);
    }
}
