//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation eagerly (forward values are computed at
//! build time) and can then back-propagate from any scalar node. Nodes are
//! referenced by lightweight [`Var`] handles; creation order is a valid
//! topological order, so the backward pass is a single reverse sweep.
//!
//! The tape is built per training step; long-lived parameters live outside
//! the graph (see [`crate::optim`]) and are re-registered as leaves each
//! step via [`Graph::param`]. Step loops keep **one** long-lived `Graph`
//! and call [`Graph::reset`] between steps: the node `Vec` keeps its
//! capacity and every node's value buffer returns to the buffer pool
//! ([`crate::pool`]), so steady-state steps allocate (almost) nothing.
//! Likewise [`Graph::backward_into`] reuses a caller-owned [`Gradients`]
//! workspace instead of allocating one per step.

use crate::backend::Activation;
use crate::kernels;
use crate::pool;
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The raw node index (useful for mapping parameter gradients back).
    pub fn id(self) -> usize {
        self.0
    }
}

/// The recorded operation for one node. Stored so the backward pass can
/// dispatch without closures.
#[derive(Debug)]
enum Op {
    /// Leaf (constant or parameter); no parents.
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    /// `a + broadcast(b)` where `b`'s shape is a suffix of `a`'s.
    AddBcast(Var, Var),
    /// `a * broadcast(b)` where `b`'s shape is a suffix of `a`'s.
    MulBcast(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    Exp(Var),
    /// Natural log of `max(x, LN_CLAMP)`.
    Ln(Var),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Sqrt(Var),
    /// Element-wise maximum; gradient routes to the larger input (ties → lhs).
    Max2(Var, Var),
    /// Matrix product supporting 2×2, 3×3 (batched), 3×2 and 2×3 operand ranks.
    Matmul(Var, Var),
    /// Swap the last two dimensions (2-D or 3-D input).
    TransposeLast(Var),
    SoftmaxLast(Var),
    LogSoftmaxLast(Var),
    /// Fused `act(a + broadcast(bias))` — one backend pass replacing an
    /// [`Op::AddBcast`] followed by an activation node, bit-identical to
    /// that chain.
    BiasAct(Var, Var, Activation),
    /// Fused `softmax_last(a·scale + broadcast(mask))` — one backend pass
    /// replacing [`Op::Scale`] → add-mask → [`Op::SoftmaxLast`],
    /// bit-identical to that chain.
    ScaledMaskedSoftmax(Var, Option<Var>, f32),
    /// Layer normalisation over the last dimension: `(x, gamma, beta)`.
    LayerNorm(Var, Var, Var),
    SumAll(Var),
    MeanAll(Var),
    /// Sum over the last dimension (drops it; scalars become shape `[1]`).
    SumLast(Var),
    /// Sum over the time axis: `B×T×d → B×d`.
    SumTime(Var),
    /// Concatenate along the last dimension.
    ConcatLast(Vec<Var>),
    /// Slice `[start, start+len)` of the last dimension.
    SliceLast(Var, usize, usize),
    /// Slice `[start, start+len)` of the time axis of a `B×T×d` tensor.
    SliceTime(Var, usize, usize),
    /// Pick time step `t` from `B×T×d`, yielding `B×d`.
    SelectTime(Var, usize),
    /// Stack `T` tensors of shape `B×d` into `B×T×d`.
    StackTime(Vec<Var>),
    /// Row gather from a `V×d` weight by indices, yielding `N×d`.
    Embedding(Var, Vec<usize>),
    /// Pick one column per row of a 2-D tensor, yielding shape `[B]`.
    PickPerRow(Var, Vec<usize>),
    Reshape(Var),
    /// Multiply by a fixed 0/1 (already scaled) dropout mask.
    Dropout(Var, Vec<f32>),
    /// Identity with severed gradient.
    Detach,
}

struct Node {
    value: Tensor,
    op: Op,
    requires_grad: bool,
}

/// Gradients produced by [`Graph::backward`] / filled by
/// [`Graph::backward_into`], indexed by [`Var::id`].
///
/// # Lifetime
///
/// The entries are indexed by node id and are only meaningful for the
/// backward pass that produced them: once the graph is
/// [`reset`](Graph::reset) or truncated, the same `Var` ids name different
/// nodes, so a `Gradients` held across a reset is stale. A reusable
/// workspace handed back to [`Graph::backward_into`] is safe — every pass
/// first clears all stale entries (recycling their buffers) and resizes the
/// table to the current tape, so a leftover gradient can never be observed
/// through [`Gradients::get`]/[`Gradients::take`] on a later step.
#[derive(Default)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// An empty workspace, ready to be passed to [`Graph::backward_into`].
    pub fn new() -> Self {
        Gradients::default()
    }

    /// The gradient of the loss w.r.t. `v`, if it participated in the loss.
    ///
    /// `v` must come from the same graph state as the backward pass that
    /// filled this workspace (see the type-level lifetime note).
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Take ownership of the gradient for `v`.
    ///
    /// Taking leaves the slot empty but does **not** shrink the table; the
    /// table is re-sized to the live tape by the next
    /// [`Graph::backward_into`] (or [`Gradients::clear`]).
    pub fn take(&mut self, v: Var) -> Option<Tensor> {
        self.grads.get_mut(v.0).and_then(|g| g.take())
    }

    /// Number of node slots (the tape length of the producing backward
    /// pass; 0 for a fresh workspace).
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Whether the workspace holds no slots at all.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Drop every entry (recycling gradient buffers into the pool) and
    /// shrink the slot table to zero, keeping its capacity.
    pub fn clear(&mut self) {
        self.reset_to(0);
    }

    /// Recycle every remaining gradient and resize to `n` empty slots.
    fn reset_to(&mut self, n: usize) {
        for slot in self.grads.iter_mut() {
            if let Some(t) = slot.take() {
                pool::recycle(t.into_data());
            }
        }
        self.grads.resize_with(n, || None);
    }
}

impl Drop for Gradients {
    fn drop(&mut self) {
        // Un-taken gradients (e.g. parameters excluded from an update) go
        // back to the pool rather than to the allocator.
        self.reset_to(0);
    }
}

/// An eagerly-evaluated autograd tape.
pub struct Graph {
    nodes: Vec<Node>,
    /// Whether operations are recorded for backprop. Inference graphs
    /// (see [`Graph::inference`]) store only forward values — no ops, no
    /// gradient bookkeeping — making every node a frozen constant.
    record: bool,
    /// Highest node count ever seen on this graph; survives
    /// [`Graph::reset`]/[`Graph::truncate`] so callers can pre-size the
    /// next graph (or step) from the previous high-water mark.
    hwm: usize,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new()
    }
}

impl Drop for Graph {
    fn drop(&mut self) {
        // One-shot graphs (single-sequence recommend paths, tests) return
        // their buffers to the pool on drop, so they feed the long-lived
        // step loops' inventory instead of starving it.
        self.recycle_from(0);
    }
}

/// Lower bound applied inside [`Graph::ln`] to keep logs finite.
pub const LN_CLAMP: f32 = 1e-12;

impl Graph {
    /// Default node capacity used by [`Graph::new`]/[`Graph::inference`]
    /// when the caller has no better estimate (see
    /// [`Graph::with_capacity`]).
    pub const DEFAULT_CAPACITY: usize = 256;

    /// An empty graph with [`Graph::DEFAULT_CAPACITY`] node slots reserved.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty graph with `capacity` node slots reserved. Step loops that
    /// rebuild the tape repeatedly should size this from the previous
    /// step's [`Graph::high_water`] to avoid re-growing the node `Vec`.
    pub fn with_capacity(capacity: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(capacity),
            record: true,
            hwm: 0,
        }
    }

    /// An empty *inference* graph: forward values are computed by exactly
    /// the same kernels as a recording graph (results are bit-identical),
    /// but no operation tape is kept — nodes store only their value, every
    /// node is gradient-free, and [`Graph::backward`] panics. Combined with
    /// [`Graph::mark`]/[`Graph::truncate`] this is the frozen forward path
    /// used by the serving subsystem: parameters are bound once below the
    /// mark, and each request appends (then truncates) only its own
    /// activation nodes, so no per-request tape is ever allocated.
    pub fn inference() -> Self {
        Self::inference_with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty inference graph (see [`Graph::inference`]) with `capacity`
    /// node slots reserved.
    pub fn inference_with_capacity(capacity: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(capacity),
            record: false,
            hwm: 0,
        }
    }

    /// The largest node count this graph has ever held. Unlike
    /// [`Graph::len`], this survives [`Graph::reset`] and
    /// [`Graph::truncate`], making it the right pre-sizing hint for the
    /// next step or the next worker's graph.
    pub fn high_water(&self) -> usize {
        self.hwm
    }

    /// Clear the tape for the next step: every node is dropped, each value
    /// buffer (and any dropout mask) returns to the buffer pool, and the
    /// node `Vec` keeps its capacity. The recording mode and
    /// [`Graph::high_water`] are preserved. All previously issued [`Var`]s
    /// become invalid; node ids restart at 0, so a step rebuilt after a
    /// reset produces bit-identical values and ids to one built on a fresh
    /// graph.
    pub fn reset(&mut self) {
        self.recycle_from(0);
    }

    /// Drop nodes `start..` into the pool, keeping the `Vec` allocation.
    fn recycle_from(&mut self, start: usize) {
        for node in self.nodes.drain(start..) {
            if let Op::Dropout(_, mask) = node.op {
                pool::recycle(mask);
            }
            pool::recycle(node.value.into_data());
        }
    }

    /// Whether this graph records an autograd tape (false for
    /// [`Graph::inference`] graphs).
    pub fn is_recording(&self) -> bool {
        self.record
    }

    /// The current node count, usable as a checkpoint for
    /// [`Graph::truncate`].
    pub fn mark(&self) -> usize {
        self.nodes.len()
    }

    /// Drop every node pushed after `mark` (from [`Graph::mark`]), keeping
    /// the allocated node buffer and recycling the dropped nodes' value
    /// buffers into the pool. [`Var`]s issued before the mark stay valid
    /// (their values are untouched); later ones must not be used again.
    ///
    /// # Panics
    /// Panics if `mark` exceeds the current node count.
    pub fn truncate(&mut self, mark: usize) {
        assert!(
            mark <= self.nodes.len(),
            "truncate past the end of the graph"
        );
        self.recycle_from(mark);
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        let (op, requires_grad) = if self.record {
            (op, requires_grad)
        } else {
            // Inference graphs keep no tape: every node degenerates to a
            // gradient-free leaf holding only its forward value.
            (Op::Leaf, false)
        };
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        self.hwm = self.hwm.max(self.nodes.len());
        Var(self.nodes.len() - 1)
    }

    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Register a constant leaf (no gradient).
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, false)
    }

    /// Register a trainable-parameter leaf (gradient will be produced).
    pub fn param(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, true)
    }

    // ----- element-wise binary ------------------------------------------------

    /// `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let t = kernels::zip(self.value(a), self.value(b), |x, y| x + y);
        let rg = self.rg(a) || self.rg(b);
        self.push(t, Op::Add(a, b), rg)
    }

    /// `a - b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let t = kernels::zip(self.value(a), self.value(b), |x, y| x - y);
        let rg = self.rg(a) || self.rg(b);
        self.push(t, Op::Sub(a, b), rg)
    }

    /// `a * b` element-wise (same shape).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let t = kernels::zip(self.value(a), self.value(b), |x, y| x * y);
        let rg = self.rg(a) || self.rg(b);
        self.push(t, Op::Mul(a, b), rg)
    }

    /// `a / b` element-wise (same shape).
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let t = kernels::zip(self.value(a), self.value(b), |x, y| x / y);
        let rg = self.rg(a) || self.rg(b);
        self.push(t, Op::Div(a, b), rg)
    }

    /// `a + broadcast(b)`, where `b.shape` must be a suffix of `a.shape`.
    pub fn add_bcast(&mut self, a: Var, b: Var) -> Var {
        let t = kernels::bcast_zip(self.value(a), self.value(b), |x, y| x + y);
        let rg = self.rg(a) || self.rg(b);
        self.push(t, Op::AddBcast(a, b), rg)
    }

    /// `a * broadcast(b)`, where `b.shape` must be a suffix of `a.shape`.
    pub fn mul_bcast(&mut self, a: Var, b: Var) -> Var {
        let t = kernels::bcast_zip(self.value(a), self.value(b), |x, y| x * y);
        let rg = self.rg(a) || self.rg(b);
        self.push(t, Op::MulBcast(a, b), rg)
    }

    // ----- element-wise unary -------------------------------------------------

    /// `a * c` for a scalar constant `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let t = self.value(a).map(|x| x * c);
        let rg = self.rg(a);
        self.push(t, Op::Scale(a, c), rg)
    }

    /// `a + c` for a scalar constant `c`.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let t = self.value(a).map(|x| x + c);
        let rg = self.rg(a);
        self.push(t, Op::AddScalar(a), rg)
    }

    /// `-a`.
    pub fn neg(&mut self, a: Var) -> Var {
        self.scale(a, -1.0)
    }

    /// `exp(a)`.
    pub fn exp(&mut self, a: Var) -> Var {
        let t = self.value(a).map(f32::exp);
        let rg = self.rg(a);
        self.push(t, Op::Exp(a), rg)
    }

    /// `ln(max(a, LN_CLAMP))` — clamped for numerical safety.
    pub fn ln(&mut self, a: Var) -> Var {
        let t = self.value(a).map(|x| x.max(LN_CLAMP).ln());
        let rg = self.rg(a);
        self.push(t, Op::Ln(a), rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let t = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let rg = self.rg(a);
        self.push(t, Op::Sigmoid(a), rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let t = self.value(a).map(f32::tanh);
        let rg = self.rg(a);
        self.push(t, Op::Tanh(a), rg)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let t = self.value(a).map(|x| x.max(0.0));
        let rg = self.rg(a);
        self.push(t, Op::Relu(a), rg)
    }

    /// `sqrt(a)` (inputs must be non-negative).
    pub fn sqrt(&mut self, a: Var) -> Var {
        let t = self.value(a).map(f32::sqrt);
        let rg = self.rg(a);
        self.push(t, Op::Sqrt(a), rg)
    }

    /// Element-wise maximum of two same-shape tensors.
    pub fn max2(&mut self, a: Var, b: Var) -> Var {
        let t = kernels::zip(self.value(a), self.value(b), f32::max);
        let rg = self.rg(a) || self.rg(b);
        self.push(t, Op::Max2(a, b), rg)
    }

    // ----- linear algebra -------------------------------------------------

    /// Matrix multiplication with rank promotion:
    /// `2×2`, `3×3` (batched, equal batch), `3×2` (rhs broadcast over batch),
    /// and `2×3` (lhs broadcast over batch).
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let t = kernels::matmul(self.value(a), self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(t, Op::Matmul(a, b), rg)
    }

    /// Swap the last two dimensions of a 2-D or 3-D tensor.
    pub fn transpose_last(&mut self, a: Var) -> Var {
        let t = kernels::transpose_last(self.value(a));
        let rg = self.rg(a);
        self.push(t, Op::TransposeLast(a), rg)
    }

    /// Softmax over the last dimension.
    pub fn softmax_last(&mut self, a: Var) -> Var {
        let t = kernels::softmax_last(self.value(a));
        let rg = self.rg(a);
        self.push(t, Op::SoftmaxLast(a), rg)
    }

    /// Log-softmax over the last dimension.
    pub fn log_softmax_last(&mut self, a: Var) -> Var {
        let t = kernels::log_softmax_last(self.value(a));
        let rg = self.rg(a);
        self.push(t, Op::LogSoftmaxLast(a), rg)
    }

    /// Fused `act(a + broadcast(bias))` where `bias`'s shape is a suffix of
    /// `a`'s — one tape node (and one backend pass) replacing
    /// [`Graph::add_bcast`] followed by the activation node, with
    /// bit-identical forward values and gradients.
    pub fn bias_act(&mut self, a: Var, bias: Var, act: Activation) -> Var {
        let t = kernels::bias_act(self.value(a), self.value(bias), act);
        let rg = self.rg(a) || self.rg(bias);
        self.push(t, Op::BiasAct(a, bias, act), rg)
    }

    /// Apply an [`Activation`] as its unfused node ([`Graph::relu`] and
    /// friends); `Identity` is a no-op returning `a` itself.
    pub fn activation(&mut self, a: Var, act: Activation) -> Var {
        match act {
            Activation::Identity => a,
            Activation::Relu => self.relu(a),
            Activation::Sigmoid => self.sigmoid(a),
            Activation::Tanh => self.tanh(a),
        }
    }

    /// Fused `softmax_last(a·scale + broadcast(mask))` — one tape node
    /// replacing [`Graph::scale`] → mask add → [`Graph::softmax_last`],
    /// with bit-identical forward values and gradients. `mask`'s shape
    /// (when present) must be a suffix of `a`'s shape.
    pub fn scaled_masked_softmax(&mut self, a: Var, scale: f32, mask: Option<Var>) -> Var {
        let t = kernels::scaled_masked_softmax(self.value(a), scale, mask.map(|mv| self.value(mv)));
        let rg = self.rg(a) || mask.is_some_and(|mv| self.rg(mv));
        self.push(t, Op::ScaledMaskedSoftmax(a, mask, scale), rg)
    }

    /// Layer normalisation over the last dimension, with learnable scale
    /// `gamma` and shift `beta` (both of the last-dimension length).
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var) -> Var {
        let t = kernels::layer_norm(self.value(x), self.value(gamma), self.value(beta));
        let rg = self.rg(x) || self.rg(gamma) || self.rg(beta);
        self.push(t, Op::LayerNorm(x, gamma, beta), rg)
    }

    // ----- reductions / shape ----------------------------------------------

    /// Sum of all elements (shape `[1]`).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let t = Tensor::scalar(self.value(a).sum());
        let rg = self.rg(a);
        self.push(t, Op::SumAll(a), rg)
    }

    /// Mean of all elements (shape `[1]`).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let n = self.value(a).len() as f32;
        let t = Tensor::scalar(self.value(a).sum() / n);
        let rg = self.rg(a);
        self.push(t, Op::MeanAll(a), rg)
    }

    /// Sum over the last dimension, dropping it (`[B]` stays `[1]`-safe).
    pub fn sum_last(&mut self, a: Var) -> Var {
        let t = kernels::sum_last(self.value(a));
        let rg = self.rg(a);
        self.push(t, Op::SumLast(a), rg)
    }

    /// Sum over the time axis: `B×T×d → B×d`.
    pub fn sum_time(&mut self, a: Var) -> Var {
        let t = kernels::sum_time(self.value(a));
        let rg = self.rg(a);
        self.push(t, Op::SumTime(a), rg)
    }

    /// Mean over the time axis: `B×T×d → B×d`.
    pub fn mean_time(&mut self, a: Var) -> Var {
        let t_len = self.value(a).dims3().1 as f32;
        let s = self.sum_time(a);
        self.scale(s, 1.0 / t_len)
    }

    /// Concatenate tensors along the last dimension (equal leading dims).
    pub fn concat_last(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_last of nothing");
        let vals: Vec<&Tensor> = parts.iter().map(|v| self.value(*v)).collect();
        let t = kernels::concat_last(&vals);
        let rg = parts.iter().any(|v| self.rg(*v));
        self.push(t, Op::ConcatLast(parts.to_vec()), rg)
    }

    /// Slice `[start, start+len)` of the last dimension.
    pub fn slice_last(&mut self, a: Var, start: usize, len: usize) -> Var {
        let t = kernels::slice_last(self.value(a), start, len);
        let rg = self.rg(a);
        self.push(t, Op::SliceLast(a, start, len), rg)
    }

    /// Slice `[start, start+len)` of the time axis of a `B×T×d` tensor.
    pub fn slice_time(&mut self, a: Var, start: usize, len: usize) -> Var {
        let t = kernels::slice_time(self.value(a), start, len);
        let rg = self.rg(a);
        self.push(t, Op::SliceTime(a, start, len), rg)
    }

    /// Select a single time step from `B×T×d`, yielding `B×d`.
    pub fn select_time(&mut self, a: Var, t_idx: usize) -> Var {
        let t = kernels::select_time(self.value(a), t_idx);
        let rg = self.rg(a);
        self.push(t, Op::SelectTime(a, t_idx), rg)
    }

    /// Stack `T` tensors of identical shape `B×d` into `B×T×d`.
    pub fn stack_time(&mut self, steps: &[Var]) -> Var {
        assert!(!steps.is_empty(), "stack_time of nothing");
        let vals: Vec<&Tensor> = steps.iter().map(|v| self.value(*v)).collect();
        let t = kernels::stack_time(&vals);
        let rg = steps.iter().any(|v| self.rg(*v));
        self.push(t, Op::StackTime(steps.to_vec()), rg)
    }

    /// Gather rows of a `V×d` embedding table, yielding `N×d`.
    pub fn embedding(&mut self, weight: Var, indices: &[usize]) -> Var {
        let t = kernels::gather_rows(self.value(weight), indices);
        let rg = self.rg(weight);
        self.push(t, Op::Embedding(weight, indices.to_vec()), rg)
    }

    /// For a `B×V` tensor, pick `a[i, idx[i]]` per row, yielding shape `[B]`.
    pub fn pick_per_row(&mut self, a: Var, idx: &[usize]) -> Var {
        let t = kernels::pick_per_row(self.value(a), idx);
        let rg = self.rg(a);
        self.push(t, Op::PickPerRow(a, idx.to_vec()), rg)
    }

    /// Reinterpret under a new shape with equal element count.
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let t = self.value(a).clone().reshaped(shape);
        let rg = self.rg(a);
        self.push(t, Op::Reshape(a), rg)
    }

    /// Inverted dropout with keep-prob scaling; `mask[i] ∈ {0, 1/(1-p)}`.
    pub fn dropout_with_mask(&mut self, a: Var, mask: Vec<f32>) -> Var {
        assert_eq!(mask.len(), self.value(a).len(), "dropout mask length");
        let t = {
            let v = self.value(a);
            let mut data = pool::take(v.len());
            for ((o, &x), &m) in data.iter_mut().zip(v.data()).zip(mask.iter()) {
                *o = x * m;
            }
            Tensor::new(data, v.shape())
        };
        let rg = self.rg(a);
        self.push(t, Op::Dropout(a, mask), rg)
    }

    /// Identity in value, but blocks gradient flow.
    pub fn detach(&mut self, a: Var) -> Var {
        let t = self.value(a).clone();
        self.push(t, Op::Detach, false)
    }

    // ----- backward ---------------------------------------------------------

    /// Back-propagate from a scalar `loss` node, returning per-node gradients.
    ///
    /// Step loops should prefer [`Graph::backward_into`] with a reusable
    /// [`Gradients`] workspace; this convenience wrapper allocates a fresh
    /// workspace per call.
    ///
    /// # Panics
    /// Panics if `loss` is not a single-element tensor, or if this is an
    /// inference graph (no tape to walk).
    pub fn backward(&self, loss: Var) -> Gradients {
        let mut ws = Gradients::new();
        self.backward_into(loss, &mut ws);
        ws
    }

    /// Back-propagate from a scalar `loss` node into a caller-owned,
    /// reusable [`Gradients`] workspace.
    ///
    /// Any stale entries in `ws` (from a previous step, even on a
    /// different tape length) are recycled into the pool and the slot
    /// table is resized to this graph before the sweep, so the results are
    /// bit-identical to a fresh [`Graph::backward`] call.
    ///
    /// # Panics
    /// Panics if `loss` is not a single-element tensor, or if this is an
    /// inference graph (no tape to walk).
    pub fn backward_into(&self, loss: Var, ws: &mut Gradients) {
        assert!(self.record, "backward on an inference graph");
        assert_eq!(self.value(loss).len(), 1, "backward from non-scalar node");
        ws.reset_to(self.nodes.len());
        let grads = &mut ws.grads;
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for id in (0..=loss.0).rev() {
            let node = &self.nodes[id];
            if grads[id].is_none() || !node.requires_grad {
                if let Some(t) = grads[id].take() {
                    // A gradient reached a node that does not require one
                    // (e.g. below a detach); recycle rather than drop it.
                    pool::recycle(t.into_data());
                }
                continue;
            }
            if matches!(node.op, Op::Leaf) {
                // Keep leaf (parameter) gradients for the caller.
                continue;
            }
            let gout = grads[id].take().expect("checked above");
            self.backprop_node(node, &gout, grads);
            pool::recycle(gout.into_data());
        }
    }

    fn accum(&self, grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
        if !self.rg(v) {
            pool::recycle(g.into_data());
            return;
        }
        match &mut grads[v.0] {
            Some(acc) => {
                acc.add_assign(&g);
                pool::recycle(g.into_data());
            }
            slot @ None => *slot = Some(g),
        }
    }

    fn backprop_node(&self, node: &Node, gout: &Tensor, grads: &mut [Option<Tensor>]) {
        match &node.op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.accum(grads, *a, gout.clone());
                self.accum(grads, *b, gout.clone());
            }
            Op::Sub(a, b) => {
                self.accum(grads, *a, gout.clone());
                self.accum(grads, *b, gout.map(|x| -x));
            }
            Op::Mul(a, b) => {
                if self.rg(*a) {
                    self.accum(grads, *a, kernels::zip(gout, self.value(*b), |g, y| g * y));
                }
                if self.rg(*b) {
                    self.accum(grads, *b, kernels::zip(gout, self.value(*a), |g, x| g * x));
                }
            }
            Op::Div(a, b) => {
                let bv = self.value(*b);
                if self.rg(*a) {
                    self.accum(grads, *a, kernels::zip(gout, bv, |g, y| g / y));
                }
                if self.rg(*b) {
                    let av = self.value(*a);
                    let mut g = Tensor::zeros(bv.shape());
                    for i in 0..g.len() {
                        g.data_mut()[i] =
                            -gout.data()[i] * av.data()[i] / (bv.data()[i] * bv.data()[i]);
                    }
                    self.accum(grads, *b, g);
                }
            }
            Op::AddBcast(a, b) => {
                self.accum(grads, *a, gout.clone());
                if self.rg(*b) {
                    self.accum(
                        grads,
                        *b,
                        kernels::reduce_to_suffix(gout, self.value(*b).shape()),
                    );
                }
            }
            Op::MulBcast(a, b) => {
                let av = self.value(*a);
                let bv = self.value(*b);
                if self.rg(*a) {
                    self.accum(grads, *a, kernels::bcast_zip(gout, bv, |g, y| g * y));
                }
                if self.rg(*b) {
                    let prod = kernels::zip(gout, av, |g, x| g * x);
                    self.accum(grads, *b, kernels::reduce_to_suffix(&prod, bv.shape()));
                }
            }
            Op::Scale(a, c) => self.accum(grads, *a, gout.map(|g| g * c)),
            Op::AddScalar(a) => self.accum(grads, *a, gout.clone()),
            Op::Exp(a) => {
                self.accum(grads, *a, kernels::zip(gout, &node.value, |g, y| g * y));
            }
            Op::Ln(a) => {
                let av = self.value(*a);
                self.accum(
                    grads,
                    *a,
                    kernels::zip(gout, av, |g, x| g / x.max(LN_CLAMP)),
                );
            }
            Op::Sigmoid(a) => {
                self.accum(
                    grads,
                    *a,
                    kernels::zip(gout, &node.value, |g, y| g * y * (1.0 - y)),
                );
            }
            Op::Tanh(a) => {
                self.accum(
                    grads,
                    *a,
                    kernels::zip(gout, &node.value, |g, y| g * (1.0 - y * y)),
                );
            }
            Op::Relu(a) => {
                let av = self.value(*a);
                self.accum(
                    grads,
                    *a,
                    kernels::zip(gout, av, |g, x| if x > 0.0 { g } else { 0.0 }),
                );
            }
            Op::Sqrt(a) => {
                self.accum(
                    grads,
                    *a,
                    kernels::zip(
                        gout,
                        &node.value,
                        |g, y| if y > 0.0 { g / (2.0 * y) } else { 0.0 },
                    ),
                );
            }
            Op::Max2(a, b) => {
                let av = self.value(*a);
                let bv = self.value(*b);
                if self.rg(*a) {
                    let mut g = Tensor::zeros(av.shape());
                    for i in 0..g.len() {
                        if av.data()[i] >= bv.data()[i] {
                            g.data_mut()[i] = gout.data()[i];
                        }
                    }
                    self.accum(grads, *a, g);
                }
                if self.rg(*b) {
                    let mut g = Tensor::zeros(bv.shape());
                    for i in 0..g.len() {
                        if bv.data()[i] > av.data()[i] {
                            g.data_mut()[i] = gout.data()[i];
                        }
                    }
                    self.accum(grads, *b, g);
                }
            }
            Op::Matmul(a, b) => {
                let (ga, gb) = kernels::matmul_backward(self.value(*a), self.value(*b), gout);
                if self.rg(*a) {
                    self.accum(grads, *a, ga);
                }
                if self.rg(*b) {
                    self.accum(grads, *b, gb);
                }
            }
            Op::TransposeLast(a) => {
                self.accum(grads, *a, kernels::transpose_last(gout));
            }
            Op::SoftmaxLast(a) => {
                self.accum(grads, *a, kernels::softmax_last_backward(&node.value, gout));
            }
            Op::LogSoftmaxLast(a) => {
                self.accum(
                    grads,
                    *a,
                    kernels::log_softmax_last_backward(&node.value, gout),
                );
            }
            Op::BiasAct(a, bias, act) => {
                // Gradient through the activation via the fused output,
                // then the AddBcast split — the exact unfused chain.
                let gact = kernels::act_backward(gout, &node.value, *act);
                if self.rg(*bias) {
                    self.accum(
                        grads,
                        *bias,
                        kernels::reduce_to_suffix(&gact, self.value(*bias).shape()),
                    );
                }
                self.accum(grads, *a, gact);
            }
            Op::ScaledMaskedSoftmax(a, mask, scale) => {
                // Softmax backward, then the unfused chain's mask-add split
                // (clone for a same-shape add, suffix reduction for a
                // broadcast add) and the scale backward.
                let gs = kernels::softmax_last_backward(&node.value, gout);
                if let Some(mv) = mask {
                    if self.rg(*mv) {
                        let mshape = self.value(*mv).shape();
                        let gm = if mshape == gs.shape() {
                            gs.clone()
                        } else {
                            kernels::reduce_to_suffix(&gs, mshape)
                        };
                        self.accum(grads, *mv, gm);
                    }
                }
                let c = *scale;
                self.accum(grads, *a, gs.map(|g| g * c));
                pool::recycle(gs.into_data());
            }
            Op::LayerNorm(x, gamma, beta) => {
                let (gx, gg, gb) =
                    kernels::layer_norm_backward(self.value(*x), self.value(*gamma), gout);
                if self.rg(*x) {
                    self.accum(grads, *x, gx);
                }
                if self.rg(*gamma) {
                    self.accum(grads, *gamma, gg);
                }
                if self.rg(*beta) {
                    self.accum(grads, *beta, gb);
                }
            }
            Op::SumAll(a) => {
                let g = gout.item();
                self.accum(grads, *a, Tensor::full(self.value(*a).shape(), g));
            }
            Op::MeanAll(a) => {
                let n = self.value(*a).len() as f32;
                let g = gout.item() / n;
                self.accum(grads, *a, Tensor::full(self.value(*a).shape(), g));
            }
            Op::SumLast(a) => {
                self.accum(
                    grads,
                    *a,
                    kernels::sum_last_backward(self.value(*a).shape(), gout),
                );
            }
            Op::SumTime(a) => {
                self.accum(
                    grads,
                    *a,
                    kernels::sum_time_backward(self.value(*a).shape(), gout),
                );
            }
            Op::ConcatLast(parts) => {
                let shapes: Vec<&[usize]> = parts.iter().map(|v| self.value(*v).shape()).collect();
                let gs = kernels::concat_last_backward(&shapes, gout);
                for (v, g) in parts.iter().zip(gs) {
                    self.accum(grads, *v, g);
                }
            }
            Op::SliceLast(a, start, _len) => {
                self.accum(
                    grads,
                    *a,
                    kernels::slice_last_backward(self.value(*a).shape(), *start, gout),
                );
            }
            Op::SliceTime(a, start, _len) => {
                self.accum(
                    grads,
                    *a,
                    kernels::slice_time_backward(self.value(*a).shape(), *start, gout),
                );
            }
            Op::SelectTime(a, t) => {
                self.accum(
                    grads,
                    *a,
                    kernels::select_time_backward(self.value(*a).shape(), *t, gout),
                );
            }
            Op::StackTime(steps) => {
                for (t, v) in steps.iter().enumerate() {
                    if self.rg(*v) {
                        self.accum(grads, *v, kernels::select_time(gout, t));
                    }
                }
            }
            Op::Embedding(w, idx) => {
                if self.rg(*w) {
                    self.accum(
                        grads,
                        *w,
                        kernels::scatter_rows(self.value(*w).shape(), idx, gout),
                    );
                }
            }
            Op::PickPerRow(a, idx) => {
                let shape = self.value(*a).shape();
                let mut g = Tensor::zeros(shape);
                let cols = shape[1];
                for (i, &j) in idx.iter().enumerate() {
                    g.data_mut()[i * cols + j] = gout.data()[i];
                }
                self.accum(grads, *a, g);
            }
            Op::Reshape(a) => {
                let ash = self.value(*a).shape().to_vec();
                self.accum(grads, *a, gout.clone().reshaped(&ash));
            }
            Op::Dropout(a, mask) => {
                let mut data = pool::take(gout.len());
                for ((o, &g), &m) in data.iter_mut().zip(gout.data()).zip(mask.iter()) {
                    *o = g * m;
                }
                self.accum(grads, *a, Tensor::new(data, gout.shape()));
            }
            Op::Detach => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check of `d loss / d x[i]` for every input
    /// element, against the autograd gradient.
    fn check_grad(build: impl Fn(&mut Graph, Var) -> Var, x0: Tensor, tol: f32) {
        let mut g = Graph::new();
        let x = g.param(x0.clone());
        let loss = build(&mut g, x);
        let grads = g.backward(loss);
        let analytic = grads.get(x).expect("no grad").clone();

        let eps = 1e-3f32;
        for i in 0..x0.len() {
            let mut xp = x0.clone();
            xp.data_mut()[i] += eps;
            let mut gp = Graph::new();
            let vp = gp.param(xp);
            let lp_var = build(&mut gp, vp);
            let lp = gp.value(lp_var).item();

            let mut xm = x0.clone();
            xm.data_mut()[i] -= eps;
            let mut gm = Graph::new();
            let vm = gm.param(xm);
            let lm_var = build(&mut gm, vm);
            let lm = gm.value(lm_var).item();

            let num = (lp - lm) / (2.0 * eps);
            let ana = analytic.data()[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                "grad mismatch at {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    fn t(v: &[f32], s: &[usize]) -> Tensor {
        Tensor::new(v.to_vec(), s)
    }

    #[test]
    fn grad_add_mul_chain() {
        check_grad(
            |g, x| {
                let y = g.mul(x, x);
                let z = g.add(y, x);
                g.sum_all(z)
            },
            t(&[0.5, -1.2, 2.0], &[3]),
            1e-2,
        );
    }

    #[test]
    fn grad_div() {
        check_grad(
            |g, x| {
                let c = g.constant(t(&[2.0, 4.0, -3.0], &[3]));
                let q = g.div(x, c);
                let q2 = g.div(c, x);
                let s = g.add(q, q2);
                g.sum_all(s)
            },
            t(&[1.5, -2.0, 0.7], &[3]),
            2e-2,
        );
    }

    #[test]
    fn grad_activations() {
        check_grad(
            |g, x| {
                let a = g.sigmoid(x);
                let b = g.tanh(x);
                let c = g.relu(x);
                let e = g.exp(x);
                let ab = g.add(a, b);
                let ce = g.add(c, e);
                let s = g.add(ab, ce);
                g.sum_all(s)
            },
            t(&[0.3, -0.8, 1.1, 0.01], &[4]),
            1e-2,
        );
    }

    #[test]
    fn grad_ln_sqrt() {
        check_grad(
            |g, x| {
                let l = g.ln(x);
                let s = g.sqrt(x);
                let y = g.add(l, s);
                g.sum_all(y)
            },
            t(&[0.5, 1.5, 3.0], &[3]),
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_2x2() {
        let b0 = t(&[1.0, -2.0, 0.5, 3.0, 1.0, -1.0], &[3, 2]);
        check_grad(
            move |g, x| {
                let b = g.param(b0.clone());
                let y = g.matmul(x, b);
                g.sum_all(y)
            },
            t(&[0.2, 0.4, -0.6, 1.0, 2.0, -1.0], &[2, 3]),
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_batched() {
        let b0 = t(
            &(0..12).map(|i| 0.1 * i as f32 - 0.5).collect::<Vec<_>>(),
            &[2, 3, 2],
        );
        check_grad(
            move |g, x| {
                let b = g.param(b0.clone());
                let y = g.matmul(x, b);
                g.sum_all(y)
            },
            t(
                &(0..12).map(|i| 0.05 * i as f32).collect::<Vec<_>>(),
                &[2, 2, 3],
            ),
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_mixed_3x2() {
        let b0 = t(&[0.5, -0.2, 0.1, 0.9, -1.0, 0.3], &[3, 2]);
        check_grad(
            move |g, x| {
                let b = g.param(b0.clone());
                let y = g.matmul(x, b); // (2,2,3)x(3,2)
                g.sum_all(y)
            },
            t(
                &(0..12).map(|i| 0.07 * i as f32 - 0.3).collect::<Vec<_>>(),
                &[2, 2, 3],
            ),
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_mixed_2x3() {
        // lhs 2-D broadcast over the rhs batch.
        let x0 = t(&[0.3, -0.1, 0.2, 0.5, 0.7, -0.4], &[2, 3]);
        check_grad(
            move |g, x| {
                let b = g.constant(t(
                    &(0..18).map(|i| 0.05 * i as f32 - 0.4).collect::<Vec<_>>(),
                    &[3, 3, 2],
                ));
                let y = g.matmul(x, b); // (2,3)x(3,3,2) -> (3,2,2)
                g.sum_all(y)
            },
            x0,
            1e-2,
        );
    }

    #[test]
    fn grad_softmax_logsoftmax() {
        check_grad(
            |g, x| {
                let s = g.softmax_last(x);
                let l = g.log_softmax_last(x);
                let w = g.constant(t(&[1.0, -2.0, 0.5, 0.3, 2.0, -0.7], &[2, 3]));
                let sw = g.mul(s, w);
                let lw = g.mul(l, w);
                let y = g.add(sw, lw);
                g.sum_all(y)
            },
            t(&[0.1, 0.9, -0.5, 1.2, 0.0, 0.4], &[2, 3]),
            1e-2,
        );
    }

    #[test]
    fn grad_layer_norm() {
        let gamma0 = t(&[1.2, 0.8, 1.0], &[3]);
        let beta0 = t(&[0.1, -0.2, 0.0], &[3]);
        check_grad(
            move |g, x| {
                let gamma = g.param(gamma0.clone());
                let beta = g.param(beta0.clone());
                let y = g.layer_norm(x, gamma, beta);
                let w = g.constant(t(&[1.0, -1.0, 0.5, 0.2, 0.7, -0.3], &[2, 3]));
                let yw = g.mul(y, w);
                g.sum_all(yw)
            },
            t(&[0.5, -0.1, 0.8, 1.0, 2.0, -0.5], &[2, 3]),
            3e-2,
        );
    }

    #[test]
    fn grad_bcast_ops() {
        let b0 = t(&[0.5, -0.3], &[2]);
        check_grad(
            move |g, x| {
                let b = g.param(b0.clone());
                let y = g.add_bcast(x, b);
                let z = g.mul_bcast(y, b);
                g.sum_all(z)
            },
            t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_slice() {
        check_grad(
            |g, x| {
                let a = g.slice_last(x, 0, 2);
                let b = g.slice_last(x, 2, 2);
                let c = g.concat_last(&[b, a]);
                let sq = g.mul(c, c);
                g.sum_all(sq)
            },
            t(&[1.0, -2.0, 3.0, 0.5, 0.1, 0.2, 0.3, 0.4], &[2, 4]),
            1e-2,
        );
    }

    #[test]
    fn grad_time_ops() {
        check_grad(
            |g, x| {
                let s0 = g.select_time(x, 0);
                let s1 = g.select_time(x, 1);
                let restacked = g.stack_time(&[s1, s0]);
                let st = g.sum_time(restacked);
                let sq = g.mul(st, st);
                g.sum_all(sq)
            },
            t(
                &(0..12).map(|i| 0.3 * i as f32 - 1.0).collect::<Vec<_>>(),
                &[2, 2, 3],
            ),
            1e-2,
        );
    }

    #[test]
    fn grad_embedding_pick() {
        check_grad(
            |g, w| {
                let e = g.embedding(w, &[2, 0, 2]);
                let sq = g.mul(e, e);
                g.sum_all(sq)
            },
            t(
                &(0..8).map(|i| 0.25 * i as f32 - 1.0).collect::<Vec<_>>(),
                &[4, 2],
            ),
            1e-2,
        );
        check_grad(
            |g, x| {
                let p = g.pick_per_row(x, &[1, 0]);
                let sq = g.mul(p, p);
                g.sum_all(sq)
            },
            t(&[0.3, -0.4, 0.9, 1.5], &[2, 2]),
            1e-2,
        );
    }

    #[test]
    fn grad_transpose_and_reshape() {
        check_grad(
            |g, x| {
                let xt = g.transpose_last(x);
                let y = g.matmul(x, xt);
                let r = g.reshape(y, &[4]);
                let sq = g.mul(r, r);
                g.sum_all(sq)
            },
            t(&[0.3, 0.7, -0.2, 0.5, 1.0, -0.8], &[2, 3]),
            2e-2,
        );
    }

    #[test]
    fn detach_blocks_gradient() {
        let mut g = Graph::new();
        let x = g.param(t(&[1.0, 2.0], &[2]));
        let d = g.detach(x);
        let y = g.mul(d, d);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert!(grads.get(x).is_none(), "gradient leaked through detach");
    }

    #[test]
    fn straight_through_passes_gradient() {
        // out = hard - detach(soft) + soft ⇒ d out/d soft = identity.
        let mut g = Graph::new();
        let x = g.param(t(&[0.2, 0.8], &[2]));
        let soft = g.softmax_last(x);
        let hard = g.constant(t(&[0.0, 1.0], &[2]));
        let det = g.detach(soft);
        let hm = g.sub(hard, det);
        let out = g.add(hm, soft);
        let w = g.constant(t(&[1.0, 3.0], &[2]));
        let ow = g.mul(out, w);
        let loss = g.sum_all(ow);
        let grads = g.backward(loss);
        assert!(grads.get(x).is_some());
    }

    #[test]
    fn grad_max2_routing() {
        let mut g = Graph::new();
        let a = g.param(t(&[1.0, 5.0], &[2]));
        let b = g.param(t(&[3.0, 2.0], &[2]));
        let m = g.max2(a, b);
        let loss = g.sum_all(m);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[0.0, 1.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[1.0, 0.0]);
    }

    #[test]
    fn dropout_mask_applies_in_both_directions() {
        let mut g = Graph::new();
        let x = g.param(t(&[1.0, 2.0, 3.0], &[3]));
        let y = g.dropout_with_mask(x, vec![2.0, 0.0, 2.0]);
        assert_eq!(g.value(y).data(), &[2.0, 0.0, 6.0]);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[2.0, 0.0, 2.0]);
    }

    #[test]
    fn mean_all_grad_is_uniform() {
        let mut g = Graph::new();
        let x = g.param(t(&[1.0, 2.0, 3.0, 4.0], &[4]));
        let m = g.mean_all(x);
        let grads = g.backward(m);
        assert_eq!(grads.get(x).unwrap().data(), &[0.25; 4]);
    }

    #[test]
    fn grad_accumulates_on_reuse() {
        // loss = sum(x) + sum(x) must give gradient 2 everywhere.
        let mut g = Graph::new();
        let x = g.param(t(&[1.0, 1.0], &[2]));
        let s1 = g.sum_all(x);
        let s2 = g.sum_all(x);
        let loss = g.add(s1, s2);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    fn grad_slice_time() {
        check_grad(
            |g, x| {
                let mid = g.slice_time(x, 1, 2);
                let sq = g.mul(mid, mid);
                g.sum_all(sq)
            },
            t(
                &(0..18).map(|i| 0.2 * i as f32 - 1.0).collect::<Vec<_>>(),
                &[2, 3, 3],
            ),
            1e-2,
        );
    }

    #[test]
    fn inference_matches_recording_bitwise() {
        let build = |g: &mut Graph| {
            let x = g.param(t(&[0.3, -1.2, 0.8, 2.0, -0.5, 0.1], &[2, 3]));
            let w = g.constant(t(
                &(0..9).map(|i| 0.1 * i as f32 - 0.4).collect::<Vec<_>>(),
                &[3, 3],
            ));
            let y = g.matmul(x, w);
            let s = g.softmax_last(y);
            let l = g.ln(s);
            let z = g.tanh(l);
            g.value(z).data().to_vec()
        };
        let mut rec = Graph::new();
        let mut inf = Graph::inference();
        assert_eq!(build(&mut rec), build(&mut inf));
        assert!(rec.is_recording() && !inf.is_recording());
    }

    #[test]
    fn inference_truncate_keeps_leaves_valid() {
        let mut g = Graph::inference();
        let w = g.param(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let mark = g.mark();
        for _ in 0..3 {
            g.truncate(mark);
            let y = g.matmul(w, w);
            assert_eq!(g.value(y).data(), &[7.0, 10.0, 15.0, 22.0]);
            assert_eq!(g.mark(), mark + 1, "one activation node per pass");
        }
        assert_eq!(g.value(w).data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "backward on an inference graph")]
    fn inference_backward_panics() {
        let mut g = Graph::inference();
        let x = g.param(t(&[1.0], &[1]));
        let y = g.mul(x, x);
        g.backward(y);
    }

    #[test]
    fn reset_then_rebuild_is_bit_identical() {
        let build = |g: &mut Graph| -> (Vec<f32>, Vec<f32>) {
            let x = g.param(t(&[0.3, -1.2, 0.8, 2.0], &[2, 2]));
            let w = g.constant(t(&[0.5, -0.1, 0.2, 0.9], &[2, 2]));
            let y = g.matmul(x, w);
            let s = g.softmax_last(y);
            let l = g.ln(s);
            let loss = g.sum_all(l);
            let grads = g.backward(loss);
            (
                g.value(loss).data().to_vec(),
                grads.get(x).unwrap().data().to_vec(),
            )
        };
        let mut fresh = Graph::new();
        let want = build(&mut fresh);

        let mut reused = Graph::new();
        for _ in 0..3 {
            reused.reset();
            let got = build(&mut reused);
            assert_eq!(
                got.0.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.0.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(
                got.1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.1.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn reset_preserves_capacity_and_high_water() {
        let mut g = Graph::new();
        for i in 0..10 {
            let x = g.param(t(&[i as f32], &[1]));
            g.mul(x, x);
        }
        assert_eq!(g.high_water(), 20);
        g.reset();
        assert!(g.is_empty());
        assert_eq!(g.high_water(), 20, "high-water mark survives reset");
        assert!(g.is_recording());
        let x = g.param(t(&[1.0], &[1]));
        assert_eq!(x.id(), 0, "node ids restart at 0 after reset");
    }

    #[test]
    fn backward_into_reuses_workspace_across_tape_sizes() {
        let mut ws = Gradients::new();

        // Big graph first so the workspace grows.
        let mut g = Graph::new();
        let x = g.param(t(&[1.0, 2.0, 3.0, 4.0], &[4]));
        let mut y = g.mul(x, x);
        for _ in 0..5 {
            y = g.add(y, x);
        }
        let loss = g.sum_all(y);
        g.backward_into(loss, &mut ws);
        let big_len = ws.len();
        assert!(ws.get(x).is_some());

        // Smaller graph into the same workspace: table shrinks, stale
        // high-id entries are gone, result matches a fresh backward.
        g.reset();
        let x2 = g.param(t(&[0.5, -1.5], &[2]));
        let y2 = g.mul(x2, x2);
        let loss2 = g.sum_all(y2);
        g.backward_into(loss2, &mut ws);
        assert!(ws.len() < big_len, "workspace resized to the live tape");
        assert_eq!(ws.len(), g.len());
        assert_eq!(ws.get(x2).unwrap().data(), &[1.0, -3.0]);
        // An id from the dead tape is out of bounds now, not stale data.
        assert!(ws.get(Var(ws.len() + 1)).is_none());
    }

    #[test]
    fn gradients_clear_empties_table() {
        let mut g = Graph::new();
        let x = g.param(t(&[2.0], &[1]));
        let y = g.mul(x, x);
        let mut ws = g.backward(y);
        assert!(ws.get(x).is_some());
        ws.clear();
        assert!(ws.is_empty());
        assert!(ws.get(x).is_none());
    }

    #[test]
    fn truncate_recycles_and_keeps_lower_nodes() {
        let mut g = Graph::new();
        let x = g.param(t(&[1.0, 2.0], &[2]));
        let mark = g.mark();
        for _ in 0..4 {
            let y = g.mul(x, x);
            let loss = g.sum_all(y);
            let grads = g.backward(loss);
            assert_eq!(grads.get(x).unwrap().data(), &[2.0, 4.0]);
            g.truncate(mark);
            assert_eq!(g.value(x).data(), &[1.0, 2.0], "below-mark value intact");
        }
    }

    #[test]
    fn grad_sum_last_3d() {
        check_grad(
            |g, x| {
                let s = g.sum_last(x); // B×T
                let sq = g.mul(s, s);
                g.sum_all(sq)
            },
            t(
                &(0..12).map(|i| 0.1 * i as f32).collect::<Vec<_>>(),
                &[2, 3, 2],
            ),
            1e-2,
        );
    }
}
