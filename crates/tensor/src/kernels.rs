//! Numeric kernels backing the autograd ops.
//!
//! These are plain functions over [`Tensor`] values; all differentiation logic
//! lives in [`crate::graph`]. Kernels favour simple cache-friendly loops —
//! shapes in this workspace are small (d ≤ 128, T ≤ 200) so a tuned BLAS is
//! unnecessary.

use crate::tensor::Tensor;

/// Element-wise zip of two same-shape tensors.
pub fn zip(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "zip shape mismatch");
    let mut data = crate::pool::take(a.len());
    for ((o, &x), &y) in data.iter_mut().zip(a.data()).zip(b.data()) {
        *o = f(x, y);
    }
    Tensor::new(data, a.shape())
}

/// Zip where `b`'s shape is a suffix of `a`'s shape; `b` is tiled over the
/// leading dimensions of `a`.
pub fn bcast_zip(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    let (ash, bsh) = (a.shape(), b.shape());
    assert!(
        bsh.len() <= ash.len() && ash[ash.len() - bsh.len()..] == *bsh,
        "broadcast: {bsh:?} is not a suffix of {ash:?}"
    );
    let bn = b.len();
    let mut data = crate::pool::take(a.len());
    for (i, (o, &x)) in data.iter_mut().zip(a.data()).enumerate() {
        *o = f(x, b.data()[i % bn]);
    }
    Tensor::new(data, ash)
}

/// Sum a tensor down to a suffix shape (inverse of suffix broadcasting).
pub fn reduce_to_suffix(a: &Tensor, suffix: &[usize]) -> Tensor {
    let bn: usize = suffix.iter().product();
    let mut out = Tensor::zeros(suffix);
    for (i, &x) in a.data().iter().enumerate() {
        out.data_mut()[i % bn] += x;
    }
    out
}

/// Parallelize a gemm only when it is worth a dispatch: roughly `2·m·k·n`
/// flops. Below this the inline sequential path wins outright.
const GEMM_PAR_WORK: usize = 16 * 1024;

/// Minimum scattered elements (`N·d`) before the destination-partitioned
/// parallel scatter-add beats the sequential loop.
const SCATTER_PAR_WORK: usize = 16 * 1024;

/// Output-row chunking for parallel gemm. Derived from `m` alone — never
/// from the thread count — so chunk boundaries (and hence results) are
/// identical under any `SSDREC_THREADS`.
fn gemm_row_grain(m: usize) -> usize {
    m.div_ceil(32).max(1)
}

/// Compute output rows `[r0, r1)` of `out[m×n] (+)= a[m×k] · b[k×n]` into
/// `block` (the slice for exactly those rows) on the active
/// [`crate::backend::Backend`]. For every output element the inner
/// accumulation runs over `p` ascending in all four transpose variants, so
/// any row partition produces bits identical to `[0, m)`.
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    a: &[f32],
    ta: bool,
    b: &[f32],
    tb: bool,
    m: usize,
    k: usize,
    n: usize,
    block: &mut [f32],
    r0: usize,
    r1: usize,
) {
    crate::backend::backend().gemm_rows(a, ta, b, tb, m, k, n, block, r0, r1);
}

/// `out[m×n] (+)= a[m×k] · b[k×n]` with optional operand transposes.
///
/// Large products are partitioned into output-row blocks and run on the
/// [`ssdrec_runtime`] pool; both paths call [`gemm_rows`], whose per-element
/// accumulation order is fixed, so results are bit-identical at every
/// thread count.
#[allow(clippy::too_many_arguments)]
fn gemm(a: &[f32], ta: bool, b: &[f32], tb: bool, m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    if 2 * m * k * n >= GEMM_PAR_WORK && m > 1 && ssdrec_runtime::threads() > 1 {
        let rows = gemm_row_grain(m);
        ssdrec_runtime::parallel_chunks_mut(out, rows * n, |ci, block| {
            let r0 = ci * rows;
            let r1 = (r0 + rows).min(m);
            gemm_rows(a, ta, b, tb, m, k, n, block, r0, r1);
        });
    } else {
        gemm_rows(a, ta, b, tb, m, k, n, out, 0, m);
    }
}

/// Run `f(batch, out_block)` over every batch's disjoint output block,
/// in parallel when `work` (flops) justifies it. One chunk per batch, so
/// chunking depends only on the shape and results match the sequential
/// batch loop bit-for-bit.
fn for_each_batch(
    block_len: usize,
    work: usize,
    out: &mut [f32],
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if block_len == 0 {
        // Degenerate batches (some dim is 0) have no output to write, and
        // `chunks_mut(0)` panics even on an empty slice.
        return;
    }
    if out.len() > block_len && work >= GEMM_PAR_WORK && ssdrec_runtime::threads() > 1 {
        ssdrec_runtime::parallel_chunks_mut(out, block_len, f);
    } else {
        for (i, block) in out.chunks_mut(block_len).enumerate() {
            f(i, block);
        }
    }
}

/// Shape cases supported by [`matmul`].
enum MatCase {
    /// `(m×k)(k×n)`
    TwoTwo(usize, usize, usize),
    /// `(B×m×k)(B×k×n)`
    ThreeThree(usize, usize, usize, usize),
    /// `(B×m×k)(k×n)` — rhs broadcast over batch.
    ThreeTwo(usize, usize, usize, usize),
    /// `(m×k)(B×k×n)` — lhs broadcast over batch.
    TwoThree(usize, usize, usize, usize),
}

fn mat_case(a: &Tensor, b: &Tensor) -> MatCase {
    match (a.ndim(), b.ndim()) {
        (2, 2) => {
            let (m, k) = a.dims2();
            let (k2, n) = b.dims2();
            assert_eq!(
                k,
                k2,
                "matmul inner dims: {:?} x {:?}",
                a.shape(),
                b.shape()
            );
            MatCase::TwoTwo(m, k, n)
        }
        (3, 3) => {
            let (ba, m, k) = a.dims3();
            let (bb, k2, n) = b.dims3();
            assert_eq!(ba, bb, "batched matmul batch dims");
            assert_eq!(
                k,
                k2,
                "matmul inner dims: {:?} x {:?}",
                a.shape(),
                b.shape()
            );
            MatCase::ThreeThree(ba, m, k, n)
        }
        (3, 2) => {
            let (ba, m, k) = a.dims3();
            let (k2, n) = b.dims2();
            assert_eq!(
                k,
                k2,
                "matmul inner dims: {:?} x {:?}",
                a.shape(),
                b.shape()
            );
            MatCase::ThreeTwo(ba, m, k, n)
        }
        (2, 3) => {
            let (m, k) = a.dims2();
            let (bb, k2, n) = b.dims3();
            assert_eq!(
                k,
                k2,
                "matmul inner dims: {:?} x {:?}",
                a.shape(),
                b.shape()
            );
            MatCase::TwoThree(bb, m, k, n)
        }
        (da, db) => panic!("matmul unsupported ranks {da}/{db}"),
    }
}

/// Matrix product with rank promotion (see [`crate::graph::Graph::matmul`]).
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    match mat_case(a, b) {
        MatCase::TwoTwo(m, k, n) => {
            let mut out = Tensor::zeros(&[m, n]);
            gemm(a.data(), false, b.data(), false, m, k, n, out.data_mut());
            out
        }
        MatCase::ThreeThree(bs, m, k, n) => {
            let mut out = Tensor::zeros(&[bs, m, n]);
            for_each_batch(m * n, 2 * bs * m * k * n, out.data_mut(), |i, block| {
                gemm_rows(
                    &a.data()[i * m * k..(i + 1) * m * k],
                    false,
                    &b.data()[i * k * n..(i + 1) * k * n],
                    false,
                    m,
                    k,
                    n,
                    block,
                    0,
                    m,
                );
            });
            out
        }
        MatCase::ThreeTwo(bs, m, k, n) => {
            let mut out = Tensor::zeros(&[bs, m, n]);
            for_each_batch(m * n, 2 * bs * m * k * n, out.data_mut(), |i, block| {
                gemm_rows(
                    &a.data()[i * m * k..(i + 1) * m * k],
                    false,
                    b.data(),
                    false,
                    m,
                    k,
                    n,
                    block,
                    0,
                    m,
                );
            });
            out
        }
        MatCase::TwoThree(bs, m, k, n) => {
            let mut out = Tensor::zeros(&[bs, m, n]);
            for_each_batch(m * n, 2 * bs * m * k * n, out.data_mut(), |i, block| {
                gemm_rows(
                    a.data(),
                    false,
                    &b.data()[i * k * n..(i + 1) * k * n],
                    false,
                    m,
                    k,
                    n,
                    block,
                    0,
                    m,
                );
            });
            out
        }
    }
}

/// Gradients of [`matmul`] w.r.t. both operands given the output gradient.
pub fn matmul_backward(a: &Tensor, b: &Tensor, gout: &Tensor) -> (Tensor, Tensor) {
    match mat_case(a, b) {
        MatCase::TwoTwo(m, k, n) => {
            let mut ga = Tensor::zeros(&[m, k]);
            let mut gb = Tensor::zeros(&[k, n]);
            // dA = dC · Bᵀ ; dB = Aᵀ · dC
            gemm(gout.data(), false, b.data(), true, m, n, k, ga.data_mut());
            gemm(a.data(), true, gout.data(), false, k, m, n, gb.data_mut());
            (ga, gb)
        }
        MatCase::ThreeThree(bs, m, k, n) => {
            let mut ga = Tensor::zeros(&[bs, m, k]);
            let mut gb = Tensor::zeros(&[bs, k, n]);
            // Both gradients are per-batch disjoint: two parallel passes.
            for_each_batch(m * k, 2 * bs * m * n * k, ga.data_mut(), |i, block| {
                gemm_rows(
                    &gout.data()[i * m * n..(i + 1) * m * n],
                    false,
                    &b.data()[i * k * n..(i + 1) * k * n],
                    true,
                    m,
                    n,
                    k,
                    block,
                    0,
                    m,
                );
            });
            for_each_batch(k * n, 2 * bs * k * m * n, gb.data_mut(), |i, block| {
                gemm_rows(
                    &a.data()[i * m * k..(i + 1) * m * k],
                    true,
                    &gout.data()[i * m * n..(i + 1) * m * n],
                    false,
                    k,
                    m,
                    n,
                    block,
                    0,
                    k,
                );
            });
            (ga, gb)
        }
        MatCase::ThreeTwo(bs, m, k, n) => {
            let mut ga = Tensor::zeros(&[bs, m, k]);
            let mut gb = Tensor::zeros(&[k, n]);
            for_each_batch(m * k, 2 * bs * m * n * k, ga.data_mut(), |i, block| {
                gemm_rows(
                    &gout.data()[i * m * n..(i + 1) * m * n],
                    false,
                    b.data(),
                    true,
                    m,
                    n,
                    k,
                    block,
                    0,
                    m,
                );
            });
            // gb accumulates across batches: the batch loop must stay
            // sequential so each element's adds keep batch-ascending order.
            // The inner gemm may still row-parallelize (bit-identical).
            for i in 0..bs {
                gemm(
                    &a.data()[i * m * k..(i + 1) * m * k],
                    true,
                    &gout.data()[i * m * n..(i + 1) * m * n],
                    false,
                    k,
                    m,
                    n,
                    gb.data_mut(),
                );
            }
            (ga, gb)
        }
        MatCase::TwoThree(bs, m, k, n) => {
            let mut ga = Tensor::zeros(&[m, k]);
            let mut gb = Tensor::zeros(&[bs, k, n]);
            // ga accumulates across batches: sequential batch loop (order),
            // row-parallel inside gemm. gb is per-batch disjoint.
            for i in 0..bs {
                gemm(
                    &gout.data()[i * m * n..(i + 1) * m * n],
                    false,
                    &b.data()[i * k * n..(i + 1) * k * n],
                    true,
                    m,
                    n,
                    k,
                    ga.data_mut(),
                );
            }
            for_each_batch(k * n, 2 * bs * k * m * n, gb.data_mut(), |i, block| {
                gemm_rows(
                    a.data(),
                    true,
                    &gout.data()[i * m * n..(i + 1) * m * n],
                    false,
                    k,
                    m,
                    n,
                    block,
                    0,
                    k,
                );
            });
            (ga, gb)
        }
    }
}

/// Swap the last two dims of a 2-D or 3-D tensor.
pub fn transpose_last(a: &Tensor) -> Tensor {
    match a.ndim() {
        2 => {
            let (m, n) = a.dims2();
            let mut out = Tensor::zeros(&[n, m]);
            for i in 0..m {
                for j in 0..n {
                    out.data_mut()[j * m + i] = a.data()[i * n + j];
                }
            }
            out
        }
        3 => {
            let (b, m, n) = a.dims3();
            let mut out = Tensor::zeros(&[b, n, m]);
            for bi in 0..b {
                let src = &a.data()[bi * m * n..(bi + 1) * m * n];
                let dst = &mut out.data_mut()[bi * m * n..(bi + 1) * m * n];
                for i in 0..m {
                    for j in 0..n {
                        dst[j * m + i] = src[i * n + j];
                    }
                }
            }
            out
        }
        d => panic!("transpose_last on rank {d}"),
    }
}

fn last_dim(shape: &[usize]) -> usize {
    *shape.last().expect("empty shape")
}

/// Numerically-stable softmax over the last dimension.
pub fn softmax_last(a: &Tensor) -> Tensor {
    let n = last_dim(a.shape());
    let mut out = Tensor::zeros(a.shape());
    if n == 0 {
        return out;
    }
    crate::backend::backend().softmax_rows(a.data(), out.data_mut(), n);
    out
}

/// Backward of [`softmax_last`]: `dx = y ⊙ (dy − Σ dy·y)` per row.
pub fn softmax_last_backward(y: &Tensor, gout: &Tensor) -> Tensor {
    let n = last_dim(y.shape());
    let mut out = Tensor::zeros(y.shape());
    if n == 0 {
        return out;
    }
    for ((yr, gr), dr) in y
        .data()
        .chunks(n)
        .zip(gout.data().chunks(n))
        .zip(out.data_mut().chunks_mut(n))
    {
        let dot: f32 = yr.iter().zip(gr.iter()).map(|(&a, &b)| a * b).sum();
        for ((d, &yv), &gv) in dr.iter_mut().zip(yr.iter()).zip(gr.iter()) {
            *d = yv * (gv - dot);
        }
    }
    out
}

/// Numerically-stable log-softmax over the last dimension.
pub fn log_softmax_last(a: &Tensor) -> Tensor {
    let n = last_dim(a.shape());
    let mut out = Tensor::zeros(a.shape());
    if n == 0 {
        return out;
    }
    crate::backend::backend().log_softmax_rows(a.data(), out.data_mut(), n);
    out
}

/// Backward of [`log_softmax_last`]: `dx = dy − softmax(x) · Σ dy` per row.
pub fn log_softmax_last_backward(y: &Tensor, gout: &Tensor) -> Tensor {
    let n = last_dim(y.shape());
    let mut out = Tensor::zeros(y.shape());
    if n == 0 {
        return out;
    }
    for ((yr, gr), dr) in y
        .data()
        .chunks(n)
        .zip(gout.data().chunks(n))
        .zip(out.data_mut().chunks_mut(n))
    {
        let gsum: f32 = gr.iter().sum();
        for ((d, &lv), &gv) in dr.iter_mut().zip(yr.iter()).zip(gr.iter()) {
            *d = gv - lv.exp() * gsum;
        }
    }
    out
}

use crate::backend::LN_EPS;

/// Layer normalisation over the last dimension with scale/shift.
pub fn layer_norm(x: &Tensor, gamma: &Tensor, beta: &Tensor) -> Tensor {
    let n = last_dim(x.shape());
    assert_eq!(gamma.len(), n, "layer_norm gamma length");
    assert_eq!(beta.len(), n, "layer_norm beta length");
    let mut out = Tensor::zeros(x.shape());
    if n == 0 {
        return out;
    }
    crate::backend::backend().layer_norm_rows(
        x.data(),
        gamma.data(),
        beta.data(),
        out.data_mut(),
        n,
    );
    out
}

/// Backward of [`layer_norm`]; returns `(dx, dgamma, dbeta)`.
pub fn layer_norm_backward(x: &Tensor, gamma: &Tensor, gout: &Tensor) -> (Tensor, Tensor, Tensor) {
    let n = last_dim(x.shape());
    let nf = n as f32;
    let mut dx = Tensor::zeros(x.shape());
    let mut dgamma = Tensor::zeros(&[n]);
    let mut dbeta = Tensor::zeros(&[n]);
    if n == 0 {
        return (dx, dgamma, dbeta);
    }
    for ((src, gr), dr) in x
        .data()
        .chunks(n)
        .zip(gout.data().chunks(n))
        .zip(dx.data_mut().chunks_mut(n))
    {
        let mean = src.iter().sum::<f32>() / nf;
        let var = src.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / nf;
        let inv = 1.0 / (var + LN_EPS).sqrt();
        // xhat_j = (x_j - mean) * inv
        let mut sum_g = 0.0;
        let mut sum_gx = 0.0;
        for j in 0..n {
            let xhat = (src[j] - mean) * inv;
            let gl = gr[j] * gamma.data()[j];
            sum_g += gl;
            sum_gx += gl * xhat;
            dgamma.data_mut()[j] += gr[j] * xhat;
            dbeta.data_mut()[j] += gr[j];
        }
        for j in 0..n {
            let xhat = (src[j] - mean) * inv;
            let gl = gr[j] * gamma.data()[j];
            dr[j] = inv * (gl - sum_g / nf - xhat * sum_gx / nf);
        }
    }
    (dx, dgamma, dbeta)
}

/// Fused `act(a + broadcast(bias))` where `bias`'s shape is a suffix of
/// `a`'s shape — one backend pass instead of an add node plus an
/// activation node.
pub fn bias_act(a: &Tensor, bias: &Tensor, act: crate::backend::Activation) -> Tensor {
    let (ash, bsh) = (a.shape(), bias.shape());
    assert!(
        bsh.len() <= ash.len() && ash[ash.len() - bsh.len()..] == *bsh,
        "bias_act: {bsh:?} is not a suffix of {ash:?}"
    );
    let mut data = crate::pool::take(a.len());
    crate::backend::backend().bias_act(a.data(), bias.data(), act, &mut data);
    Tensor::new(data, ash)
}

/// Backward of the activation half of [`bias_act`], expressed via the fused
/// output `y` — the exact formulas of the unfused activation backward ops.
pub fn act_backward(gout: &Tensor, y: &Tensor, act: crate::backend::Activation) -> Tensor {
    zip(gout, y, |g, yv| act.grad_from_output(g, yv))
}

/// Fused `softmax_last(a·scale + broadcast(mask))`; `mask`'s shape (when
/// present) must be a suffix of `a`'s shape covering the last dimension.
pub fn scaled_masked_softmax(a: &Tensor, scale: f32, mask: Option<&Tensor>) -> Tensor {
    let n = last_dim(a.shape());
    if let Some(mv) = mask {
        let (ash, msh) = (a.shape(), mv.shape());
        assert!(
            !msh.is_empty() && msh.len() <= ash.len() && ash[ash.len() - msh.len()..] == *msh,
            "scaled_masked_softmax: {msh:?} is not a suffix of {ash:?}"
        );
    }
    let mut out = Tensor::zeros(a.shape());
    if n == 0 {
        return out;
    }
    crate::backend::backend().scaled_masked_softmax(
        a.data(),
        scale,
        mask.map(|mv| mv.data()),
        out.data_mut(),
        n,
    );
    out
}

/// Sum over the last dimension (shape loses its last axis; rank-1 → `[1]`).
pub fn sum_last(a: &Tensor) -> Tensor {
    let n = last_dim(a.shape());
    let out_shape: Vec<usize> = if a.ndim() == 1 {
        vec![1]
    } else {
        a.shape()[..a.ndim() - 1].to_vec()
    };
    let mut out = Tensor::zeros(&out_shape);
    for (i, chunk) in a.data().chunks(n).enumerate() {
        out.data_mut()[i] = chunk.iter().sum();
    }
    out
}

/// Backward of [`sum_last`]: tile the gradient over the removed axis.
pub fn sum_last_backward(in_shape: &[usize], gout: &Tensor) -> Tensor {
    let n = *in_shape.last().unwrap();
    let mut out = Tensor::zeros(in_shape);
    for (i, chunk) in out.data_mut().chunks_mut(n).enumerate() {
        let g = gout.data()[i];
        for c in chunk {
            *c = g;
        }
    }
    out
}

/// Sum over the time axis of `B×T×d`, yielding `B×d`.
pub fn sum_time(a: &Tensor) -> Tensor {
    let (b, t, d) = a.dims3();
    let mut out = Tensor::zeros(&[b, d]);
    for bi in 0..b {
        for ti in 0..t {
            let src = &a.data()[(bi * t + ti) * d..(bi * t + ti + 1) * d];
            let dst = &mut out.data_mut()[bi * d..(bi + 1) * d];
            for (o, &s) in dst.iter_mut().zip(src.iter()) {
                *o += s;
            }
        }
    }
    out
}

/// Backward of [`sum_time`].
pub fn sum_time_backward(in_shape: &[usize], gout: &Tensor) -> Tensor {
    let (b, t, d) = (in_shape[0], in_shape[1], in_shape[2]);
    let mut out = Tensor::zeros(in_shape);
    for bi in 0..b {
        let g = &gout.data()[bi * d..(bi + 1) * d];
        for ti in 0..t {
            let dst = &mut out.data_mut()[(bi * t + ti) * d..(bi * t + ti + 1) * d];
            dst.copy_from_slice(g);
        }
    }
    out
}

/// Concatenate along the last dimension.
pub fn concat_last(parts: &[&Tensor]) -> Tensor {
    let lead = &parts[0].shape()[..parts[0].ndim() - 1];
    let rows: usize = lead.iter().product();
    let widths: Vec<usize> = parts
        .iter()
        .map(|p| {
            assert_eq!(&p.shape()[..p.ndim() - 1], lead, "concat_last leading dims");
            last_dim(p.shape())
        })
        .collect();
    let total: usize = widths.iter().sum();
    let mut shape = lead.to_vec();
    shape.push(total);
    let mut out = Tensor::zeros(&shape);
    for r in 0..rows {
        let mut off = 0;
        for (p, &w) in parts.iter().zip(widths.iter()) {
            let src = &p.data()[r * w..(r + 1) * w];
            out.data_mut()[r * total + off..r * total + off + w].copy_from_slice(src);
            off += w;
        }
    }
    out
}

/// Backward of [`concat_last`]: split the gradient back into the parts.
pub fn concat_last_backward(shapes: &[&[usize]], gout: &Tensor) -> Vec<Tensor> {
    let widths: Vec<usize> = shapes.iter().map(|s| *s.last().unwrap()).collect();
    let total: usize = widths.iter().sum();
    let rows = gout.len() / total;
    let mut outs: Vec<Tensor> = shapes.iter().map(|s| Tensor::zeros(s)).collect();
    for r in 0..rows {
        let mut off = 0;
        for (o, &w) in outs.iter_mut().zip(widths.iter()) {
            let dst = &mut o.data_mut()[r * w..(r + 1) * w];
            dst.copy_from_slice(&gout.data()[r * total + off..r * total + off + w]);
            off += w;
        }
    }
    outs
}

/// Slice `[start, start+len)` of the last dimension.
pub fn slice_last(a: &Tensor, start: usize, len: usize) -> Tensor {
    let n = last_dim(a.shape());
    assert!(start + len <= n, "slice_last {start}+{len} > {n}");
    let rows = a.len() / n;
    let mut shape = a.shape().to_vec();
    *shape.last_mut().unwrap() = len;
    let mut out = Tensor::zeros(&shape);
    for r in 0..rows {
        out.data_mut()[r * len..(r + 1) * len]
            .copy_from_slice(&a.data()[r * n + start..r * n + start + len]);
    }
    out
}

/// Backward of [`slice_last`].
pub fn slice_last_backward(in_shape: &[usize], start: usize, gout: &Tensor) -> Tensor {
    let n = *in_shape.last().unwrap();
    let len = last_dim(gout.shape());
    let rows: usize = in_shape.iter().product::<usize>() / n;
    let mut out = Tensor::zeros(in_shape);
    for r in 0..rows {
        out.data_mut()[r * n + start..r * n + start + len]
            .copy_from_slice(&gout.data()[r * len..(r + 1) * len]);
    }
    out
}

/// Slice `[start, start+len)` along the time axis of `B×T×d`.
pub fn slice_time(a: &Tensor, start: usize, len: usize) -> Tensor {
    let (b, t, d) = a.dims3();
    assert!(start + len <= t, "slice_time {start}+{len} > {t}");
    let mut out = Tensor::zeros(&[b, len, d]);
    for bi in 0..b {
        let src = &a.data()[(bi * t + start) * d..(bi * t + start + len) * d];
        out.data_mut()[bi * len * d..(bi + 1) * len * d].copy_from_slice(src);
    }
    out
}

/// Backward of [`slice_time`].
pub fn slice_time_backward(in_shape: &[usize], start: usize, gout: &Tensor) -> Tensor {
    let (b, t, d) = (in_shape[0], in_shape[1], in_shape[2]);
    let len = gout.dims3().1;
    let mut out = Tensor::zeros(in_shape);
    for bi in 0..b {
        let dst = &mut out.data_mut()[(bi * t + start) * d..(bi * t + start + len) * d];
        dst.copy_from_slice(&gout.data()[bi * len * d..(bi + 1) * len * d]);
    }
    out
}

/// Pick time step `t` from `B×T×d`, yielding `B×d`.
pub fn select_time(a: &Tensor, t_idx: usize) -> Tensor {
    let (b, t, d) = a.dims3();
    assert!(t_idx < t, "select_time {t_idx} out of {t}");
    let mut out = Tensor::zeros(&[b, d]);
    for bi in 0..b {
        let src = &a.data()[(bi * t + t_idx) * d..(bi * t + t_idx + 1) * d];
        out.data_mut()[bi * d..(bi + 1) * d].copy_from_slice(src);
    }
    out
}

/// Backward of [`select_time`].
pub fn select_time_backward(in_shape: &[usize], t_idx: usize, gout: &Tensor) -> Tensor {
    let (b, t, d) = (in_shape[0], in_shape[1], in_shape[2]);
    let mut out = Tensor::zeros(in_shape);
    for bi in 0..b {
        let dst = &mut out.data_mut()[(bi * t + t_idx) * d..(bi * t + t_idx + 1) * d];
        dst.copy_from_slice(&gout.data()[bi * d..(bi + 1) * d]);
    }
    out
}

/// Stack `T` tensors of identical shape `B×d` into `B×T×d`.
pub fn stack_time(steps: &[&Tensor]) -> Tensor {
    let (b, d) = steps[0].dims2();
    let t = steps.len();
    let mut out = Tensor::zeros(&[b, t, d]);
    for (ti, s) in steps.iter().enumerate() {
        assert_eq!(s.dims2(), (b, d), "stack_time shape mismatch");
        for bi in 0..b {
            let dst = &mut out.data_mut()[(bi * t + ti) * d..(bi * t + ti + 1) * d];
            dst.copy_from_slice(&s.data()[bi * d..(bi + 1) * d]);
        }
    }
    out
}

/// Gather rows of a `V×d` matrix by index, yielding `N×d`.
pub fn gather_rows(weight: &Tensor, indices: &[usize]) -> Tensor {
    let (v, d) = weight.dims2();
    let mut out = Tensor::zeros(&[indices.len(), d]);
    for (i, &ix) in indices.iter().enumerate() {
        assert!(ix < v, "embedding index {ix} out of vocabulary {v}");
        out.data_mut()[i * d..(i + 1) * d].copy_from_slice(weight.row(ix));
    }
    out
}

/// Scatter-add row gradients back into a `V×d` weight gradient.
///
/// The parallel path partitions by **destination** rows — each task owns a
/// disjoint block of vocabulary rows and scans all indices for hits — so
/// every weight row receives its additions in ascending-`i` order, exactly
/// like the sequential loop, and the result is bit-identical at every
/// thread count.
pub fn scatter_rows(weight_shape: &[usize], indices: &[usize], gout: &Tensor) -> Tensor {
    let (v, d) = (weight_shape[0], weight_shape[1]);
    for &ix in indices {
        assert!(ix < v, "scatter index {ix} out of vocabulary {v}");
    }
    let mut out = Tensor::zeros(weight_shape);
    if indices.len() * d >= SCATTER_PAR_WORK && v > 1 && ssdrec_runtime::threads() > 1 {
        let rows = v.div_ceil(16).max(1);
        ssdrec_runtime::parallel_chunks_mut(out.data_mut(), rows * d, |ci, block| {
            let lo = ci * rows;
            let hi = (lo + rows).min(v);
            for (i, &ix) in indices.iter().enumerate() {
                if ix < lo || ix >= hi {
                    continue;
                }
                let src = &gout.data()[i * d..(i + 1) * d];
                let dst = &mut block[(ix - lo) * d..(ix - lo + 1) * d];
                for (o, &s) in dst.iter_mut().zip(src.iter()) {
                    *o += s;
                }
            }
        });
    } else {
        for (i, &ix) in indices.iter().enumerate() {
            let src = &gout.data()[i * d..(i + 1) * d];
            let dst = &mut out.data_mut()[ix * d..(ix + 1) * d];
            for (o, &s) in dst.iter_mut().zip(src.iter()) {
                *o += s;
            }
        }
    }
    out
}

/// For a `B×V` matrix, pick `a[i, idx[i]]` per row, yielding shape `[B]`.
pub fn pick_per_row(a: &Tensor, idx: &[usize]) -> Tensor {
    let (b, v) = a.dims2();
    assert_eq!(idx.len(), b, "pick_per_row index length");
    let mut out = Tensor::zeros(&[b]);
    for (i, &j) in idx.iter().enumerate() {
        assert!(j < v, "pick index {j} out of {v}");
        out.data_mut()[i] = a.data()[i * v + j];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], s: &[usize]) -> Tensor {
        Tensor::new(v.to_vec(), s)
    }

    #[test]
    fn matmul_2x2_known() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_batched_matches_per_batch() {
        let a = t(&(0..12).map(|i| i as f32).collect::<Vec<_>>(), &[2, 2, 3]);
        let b = t(
            &(0..12).map(|i| (i as f32) * 0.5).collect::<Vec<_>>(),
            &[2, 3, 2],
        );
        let c = matmul(&a, &b);
        let a0 = t(&a.data()[..6], &[2, 3]);
        let b0 = t(&b.data()[..6], &[3, 2]);
        let c0 = matmul(&a0, &b0);
        assert_eq!(&c.data()[..4], c0.data());
    }

    #[test]
    fn matmul_broadcast_rhs() {
        let a = t(&(0..12).map(|i| i as f32).collect::<Vec<_>>(), &[2, 2, 3]);
        let b = t(&[1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        // row [0,1,2] · b = [0*1+1*0+2*1, 0*0+1*1+2*1] = [2, 3]
        assert_eq!(&c.data()[..2], &[2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t(&(0..24).map(|i| i as f32).collect::<Vec<_>>(), &[2, 3, 4]);
        let back = transpose_last(&transpose_last(&a));
        assert_eq!(back, a);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t(&[1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = softmax_last(&a);
        for row in s.data().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[101.0, 102.0, 103.0], &[3]);
        let (sa, sb) = (softmax_last(&a), softmax_last(&b));
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let a = t(&[0.5, -1.0, 2.0, 0.1], &[2, 2]);
        let ls = log_softmax_last(&a);
        let s = softmax_last(&a);
        for (x, y) in ls.data().iter().zip(s.data()) {
            assert!((x.exp() - y).abs() < 1e-6);
        }
    }

    #[test]
    fn layer_norm_output_standardised() {
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let gamma = Tensor::ones(&[4]);
        let beta = Tensor::zeros(&[4]);
        let y = layer_norm(&x, &gamma, &beta);
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        let var: f32 = y
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gather_scatter_adjoint() {
        // <gather(W, idx), G> == <W, scatter(idx, G)> — adjointness.
        let w = t(&(0..8).map(|i| i as f32).collect::<Vec<_>>(), &[4, 2]);
        let idx = [1usize, 1, 3];
        let g = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let fwd = gather_rows(&w, &idx);
        let lhs: f32 = fwd.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
        let bwd = scatter_rows(&[4, 2], &idx, &g);
        let rhs: f32 = w.data().iter().zip(bwd.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn concat_slice_roundtrip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0, 9.0, 10.0], &[2, 3]);
        let c = concat_last(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 5]);
        assert_eq!(slice_last(&c, 0, 2), a);
        assert_eq!(slice_last(&c, 2, 3), b);
    }

    #[test]
    fn stack_select_roundtrip() {
        let s0 = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let s1 = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let st = stack_time(&[&s0, &s1]);
        assert_eq!(select_time(&st, 0), s0);
        assert_eq!(select_time(&st, 1), s1);
    }

    #[test]
    fn reduce_to_suffix_sums_leading() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let r = reduce_to_suffix(&a, &[2]);
        assert_eq!(r.data(), &[9.0, 12.0]);
    }

    #[test]
    fn slice_time_known() {
        let a = t(&(0..12).map(|i| i as f32).collect::<Vec<_>>(), &[2, 3, 2]);
        let s = slice_time(&a, 1, 2);
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(&s.data()[..4], &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn sum_time_known() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 3, 2]);
        let s = sum_time(&a);
        assert_eq!(s.data(), &[9.0, 12.0]);
    }
}
