//! Weight initialisation schemes.
//!
//! The paper initialises embeddings and weights with Xavier/Glorot init [44].

use crate::rng::Rng;
use crate::tensor::Tensor;

fn fan_in_out(shape: &[usize]) -> (usize, usize) {
    match shape {
        [n] => (*n, *n),
        [i, o] => (*i, *o),
        // Higher-rank weights: treat trailing dims as receptive field.
        [i, o, rest @ ..] => {
            let r: usize = rest.iter().product();
            (i * r, o * r)
        }
        [] => (1, 1),
    }
}

/// Xavier/Glorot uniform: `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(shape: &[usize], rng: &mut Rng) -> Tensor {
    let (fi, fo) = fan_in_out(shape);
    let a = (6.0 / (fi + fo) as f32).sqrt();
    let n: usize = shape.iter().product();
    Tensor::new((0..n).map(|_| rng.uniform(-a, a)).collect(), shape)
}

/// Xavier/Glorot normal: `N(0, 2 / (fan_in + fan_out))`.
pub fn xavier_normal(shape: &[usize], rng: &mut Rng) -> Tensor {
    let (fi, fo) = fan_in_out(shape);
    let std = (2.0 / (fi + fo) as f32).sqrt();
    let n: usize = shape.iter().product();
    Tensor::new((0..n).map(|_| rng.normal() * std).collect(), shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_within_bound() {
        let mut rng = Rng::seed(0);
        let t = xavier_uniform(&[64, 64], &mut rng);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn normal_std_scales_with_fan() {
        let mut rng = Rng::seed(1);
        let big = xavier_normal(&[512, 512], &mut rng);
        let small = xavier_normal(&[4, 4], &mut rng);
        let std = |t: &Tensor| {
            let m = t.data().iter().sum::<f32>() / t.len() as f32;
            (t.data().iter().map(|x| (x - m) * (x - m)).sum::<f32>() / t.len() as f32).sqrt()
        };
        assert!(std(&big) < std(&small));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = xavier_uniform(&[8, 8], &mut Rng::seed(77));
        let b = xavier_uniform(&[8, 8], &mut Rng::seed(77));
        assert_eq!(a, b);
    }
}
