//! Finite-difference verification of whole layers, bridging
//! [`ssdrec_testkit::check_grads`] (which speaks flat `&[f32]` vectors) to
//! this crate's [`ParamStore`]/[`Graph`] world.
//!
//! Test suites hand [`fd_check_all_params`] a closure that rebuilds the
//! forward graph and returns a scalar loss; every tensor registered in the
//! store — including inputs smuggled in as parameters — is then perturbed
//! coordinate by coordinate and compared against the tape's gradients.

use ssdrec_testkit::check_grads;

use crate::graph::{Graph, Var};
use crate::optim::{Binding, ParamStore};

/// Verify the autograd gradients of `build`'s scalar loss with respect to
/// **every** parameter tensor in `store`, using central finite differences.
///
/// `build` must be deterministic (reseed any internal RNG on each call) and
/// must return a scalar (1-element) loss variable. Parameters the loss does
/// not depend on are checked against a zero gradient. Panics with the
/// offending parameter's name on the first mismatch; returns the worst
/// relative error seen across all tensors otherwise.
pub fn fd_check_all_params(
    store: &mut ParamStore,
    eps: f32,
    tol: f32,
    build: impl Fn(&mut Graph, &Binding) -> Var,
) -> f32 {
    // Analytic pass at the current parameter values.
    let mut g = Graph::new();
    let bind = store.bind_all(&mut g);
    let loss = build(&mut g, &bind);
    assert_eq!(g.value(loss).data().len(), 1, "loss must be scalar");
    let grads = g.backward(loss);

    let infos: Vec<(String, Vec<f32>, Vec<f32>)> = (0..store.num_tensors())
        .map(|i| {
            let p = ParamStore::param_ref_by_index(i);
            let orig = store.get(p).data().to_vec();
            let analytic = grads
                .get(bind.var(p))
                .map(|t| t.data().to_vec())
                .unwrap_or_else(|| vec![0.0; orig.len()]);
            (store.name(p).to_string(), orig, analytic)
        })
        .collect();
    drop(g);

    let mut worst = 0.0f32;
    for (i, (name, orig, analytic)) in infos.iter().enumerate() {
        let p = ParamStore::param_ref_by_index(i);
        let result = check_grads(
            |vals: &[f32]| {
                store.get_mut(p).data_mut().copy_from_slice(vals);
                let mut g = Graph::new();
                let bind = store.bind_all(&mut g);
                let loss = build(&mut g, &bind);
                g.value(loss).data()[0]
            },
            orig,
            analytic,
            eps,
            tol,
        );
        store.get_mut(p).data_mut().copy_from_slice(orig);
        match result {
            Ok(report) => worst = worst.max(report.max_rel_err),
            Err(e) => panic!("gradient check failed for `{name}`: {e}"),
        }
    }
    worst
}
