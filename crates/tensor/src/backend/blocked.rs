//! The default backend: cache-blocked, register-tiled gemm plus single-pass
//! fused element-wise kernels — bit-identical to [`Reference`].
//!
//! # Why tiling does not change bits
//!
//! The oracle computes every output element as one `p`-ascending addition
//! chain. The blocked gemm computes the *same chain for the same element* —
//! it only changes where the partial sums live (an 8×8 register tile
//! instead of the output buffer) and in what order *different* elements are
//! advanced. Floating-point addition is not reassociated, the operand
//! packing copies values verbatim, and Rust never contracts `a*b + c` into
//! an FMA, so the result bits match the oracle exactly.
//!
//! Two oracle quirks need care:
//!
//! * **Zero skipping.** The `!tb` oracle variants skip `a` elements that
//!   are exactly `±0.0`; the blocked kernel does not. Adding the skipped
//!   `±0·b = ±0` term anyway cannot change an accumulator under
//!   round-to-nearest unless the accumulator is exactly `-0.0` — and an
//!   accumulation chain that starts at `+0.0` can never produce `-0.0`
//!   (IEEE 754 only yields `-0` from `(-0) + (-0)`). Output buffers here
//!   are always `+0`-zeroed (or the result of prior chains with the same
//!   property), and inputs are finite per the [`Backend`] contract, so the
//!   skipped terms are bitwise no-ops.
//! * **Degenerate `k = 0`.** The `tb` oracle variants still add an empty
//!   sum (`+0.0`) to every output element; the `!tb` variants add nothing.
//!   The blocked kernel mirrors both.
//!
//! # What is actually faster
//!
//! * gemm packs `a` into a `p`-major 8-row panel (and `b` into a `p`-major
//!   matrix for the `tb` variants), turning every variant into the same
//!   unit-stride broadcast-multiply-accumulate over an 8×8 register tile.
//!   The `tb` oracle variants are scalar dot-product reductions the
//!   autovectorizer cannot touch (vectorizing an FP reduction would
//!   reassociate); the tiled form keeps each lane's chain separate, so it
//!   vectorizes across the 8 output columns — that is where the large wins
//!   come from. The `!tb` variants gain from streaming each `b` row once
//!   per 8 output rows instead of once per row.
//! * [`Backend::bias_act`] runs in one pass instead of add-then-activate.
//! * [`Backend::scaled_masked_softmax`] fuses the scale/mask pass with the
//!   row-max scan (3 passes instead of 4).
//!
//! Row softmax, log-softmax and LayerNorm have no bit-safe pass fusion
//! (e.g. multiplying by `1/sum` instead of dividing, or a one-pass
//! `E[x²]−E[x]²` variance, would change bits), so this backend delegates
//! them to the oracle unchanged.

use super::{Activation, Backend, Reference};

/// Register-tile rows (output rows advanced together per A panel).
const MR: usize = 8;
/// Register-tile columns.
const NR: usize = 8;

/// Accumulate an `mr×nr` output tile at `(ri0, j0)` of `block` from a
/// packed A panel (`k×MR`, `p`-major, lanes `ii < mr` valid) and a
/// `p`-major B (`k×n`).
///
/// `from_out` selects the oracle's two accumulation styles: the `!tb`
/// variants add term-by-term onto the existing output (tile preloads the
/// output and stores it back), the `tb` variants form a fresh sum and add
/// it once at the end.
///
/// `#[inline(always)]` so the full-tile call site (literal `MR`/`NR`)
/// const-propagates and the inner loops unroll to straight-line
/// vectorizable code, while the edge call site keeps runtime bounds.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tile(
    k: usize,
    ap: &[f32],
    bm: &[f32],
    n: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    block: &mut [f32],
    ri0: usize,
    from_out: bool,
) {
    let mut acc = [0.0f32; MR * NR];
    if from_out {
        for ii in 0..mr {
            let o = (ri0 + ii) * n + j0;
            acc[ii * NR..ii * NR + nr].copy_from_slice(&block[o..o + nr]);
        }
    }
    for p in 0..k {
        let arow = &ap[p * MR..p * MR + MR];
        let brow = &bm[p * n + j0..p * n + j0 + nr];
        for ii in 0..mr {
            let av = arow[ii];
            let dst = &mut acc[ii * NR..ii * NR + nr];
            for (o, &bv) in dst.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    if from_out {
        for ii in 0..mr {
            let o = (ri0 + ii) * n + j0;
            block[o..o + nr].copy_from_slice(&acc[ii * NR..ii * NR + nr]);
        }
    } else {
        for ii in 0..mr {
            let o = (ri0 + ii) * n + j0;
            for (d, &v) in block[o..o + nr]
                .iter_mut()
                .zip(acc[ii * NR..ii * NR + nr].iter())
            {
                *d += v;
            }
        }
    }
}

/// The cache-blocked, register-tiled default kernels.
pub struct Blocked;

impl Backend for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn gemm_rows(
        &self,
        a: &[f32],
        ta: bool,
        b: &[f32],
        tb: bool,
        m: usize,
        k: usize,
        n: usize,
        block: &mut [f32],
        r0: usize,
        r1: usize,
    ) {
        debug_assert_eq!(block.len(), (r1 - r0) * n);
        if n == 0 || r1 <= r0 {
            return;
        }
        if k == 0 {
            // Mirror the oracle's degenerate semantics (see module docs).
            if tb {
                for o in block.iter_mut() {
                    *o += 0.0;
                }
            }
            return;
        }
        let from_out = !tb;
        // p-major view of b: the `!tb` variants already store b as k×n; the
        // `tb` variants pack n×k → k×n once per call so every tile streams
        // contiguous rows instead of strided dot products.
        let packed_b;
        let bm: &[f32] = if tb {
            let mut bp = crate::pool::take(k * n);
            for (j, brow) in b.chunks_exact(k).enumerate() {
                for (p, &bv) in brow.iter().enumerate() {
                    bp[p * n + j] = bv;
                }
            }
            packed_b = bp;
            &packed_b
        } else {
            packed_b = Vec::new();
            b
        };
        let mut ap = crate::pool::take(k * MR);
        let mut i0 = r0;
        while i0 < r1 {
            let mr = MR.min(r1 - i0);
            // Pack the A panel p-major: ap[p·MR + ii] = a[i0+ii, p]. Lanes
            // ii ≥ mr keep whatever the pool buffer held; the edge tile
            // never reads them.
            if ta {
                for p in 0..k {
                    ap[p * MR..p * MR + mr].copy_from_slice(&a[p * m + i0..p * m + i0 + mr]);
                }
            } else {
                for (ii, arow) in a[i0 * k..(i0 + mr) * k].chunks_exact(k).enumerate() {
                    for (p, &av) in arow.iter().enumerate() {
                        ap[p * MR + ii] = av;
                    }
                }
            }
            let ri0 = i0 - r0;
            let mut j0 = 0;
            while j0 < n {
                let nr = NR.min(n - j0);
                if mr == MR && nr == NR {
                    // Literal bounds → fully unrolled vector tile.
                    tile(k, &ap, bm, n, j0, MR, NR, block, ri0, from_out);
                } else {
                    tile(k, &ap, bm, n, j0, mr, nr, block, ri0, from_out);
                }
                j0 += NR;
            }
            i0 += MR;
        }
        crate::pool::recycle(ap);
        if tb {
            crate::pool::recycle(packed_b);
        }
    }

    fn softmax_rows(&self, src: &[f32], dst: &mut [f32], n: usize) {
        // No bit-safe fusion exists (see module docs) — use the oracle.
        Reference.softmax_rows(src, dst, n);
    }

    fn log_softmax_rows(&self, src: &[f32], dst: &mut [f32], n: usize) {
        Reference.log_softmax_rows(src, dst, n);
    }

    fn layer_norm_rows(&self, x: &[f32], gamma: &[f32], beta: &[f32], dst: &mut [f32], n: usize) {
        Reference.layer_norm_rows(x, gamma, beta, dst, n);
    }

    fn bias_act(&self, a: &[f32], bias: &[f32], act: Activation, dst: &mut [f32]) {
        if dst.is_empty() {
            return;
        }
        // Single fused pass; `act(x + b)` is the same per-element operation
        // sequence as the oracle's add-then-activate double pass.
        for (arow, drow) in a.chunks(bias.len()).zip(dst.chunks_mut(bias.len())) {
            for ((d, &x), &bv) in drow.iter_mut().zip(arow.iter()).zip(bias.iter()) {
                *d = act.apply(x + bv);
            }
        }
    }

    fn scaled_masked_softmax(
        &self,
        a: &[f32],
        scale: f32,
        mask: Option<&[f32]>,
        dst: &mut [f32],
        n: usize,
    ) {
        let mn = mask.map_or(0, |mv| mv.len());
        for (r, (arow, drow)) in a.chunks(n).zip(dst.chunks_mut(n)).enumerate() {
            // Fused pass 1: z = a·scale (+ mask row) while scanning the row
            // max — same per-element ops and max fold order as the oracle.
            let mut mx = f32::NEG_INFINITY;
            match mask {
                Some(mv) => {
                    let mo = (r * n) % mn;
                    let mrow = &mv[mo..mo + n];
                    for ((d, &x), &add) in drow.iter_mut().zip(arow.iter()).zip(mrow.iter()) {
                        let z = x * scale + add;
                        *d = z;
                        mx = mx.max(z);
                    }
                }
                None => {
                    for (d, &x) in drow.iter_mut().zip(arow.iter()) {
                        let z = x * scale;
                        *d = z;
                        mx = mx.max(z);
                    }
                }
            }
            let mut sum = 0.0;
            for d in drow.iter_mut() {
                let e = (*d - mx).exp();
                *d = e;
                sum += e;
            }
            for d in drow.iter_mut() {
                *d /= sum;
            }
        }
    }
}
