//! Pluggable CPU kernel backends.
//!
//! Every compute-dense kernel (gemm, softmax, log-softmax, LayerNorm, and the
//! fused bias+activation / scale+mask+softmax passes) dispatches through the
//! [`Backend`] trait. Two implementations ship:
//!
//! * [`Reference`] — the original straight-line loops, kept verbatim as the
//!   oracle every other backend is tested against.
//! * [`Blocked`] — the default: cache-blocked, register-tiled gemm
//!   ([`Blocked`] packs operands into p-major panels and computes 8×8 output
//!   tiles) plus single-pass fused element-wise kernels.
//!
//! # The kernel bits-contract
//!
//! This workspace pins golden HR@10/NDCG@10 values, checkpoint bytes and
//! per-kernel bit checksums, so a kernel swap must not perturb results. The
//! contract has two layers:
//!
//! * **Self-contract (bit identity).** Each backend is bit-identical to
//!   itself across runs and thread counts: every output element's
//!   floating-point addition chain is fixed by the shape alone.
//! * **Cross-backend parity (ULP bound).** Any two backends agree within
//!   [`KERNEL_BITS_MAX_ULPS`] on finite inputs. Version
//!   [`KERNEL_BITS_VERSION`] pins the bound at **0** — `Blocked` is
//!   bit-identical to `Reference`, because its tiling only changes *where*
//!   partial sums live (registers instead of memory), never the per-element
//!   accumulation order. A future SIMD-intrinsics or GPU backend that
//!   reassociates sums would bump the version and widen the bound, and the
//!   parity suite in `crates/tensor/tests/backend_parity.rs` would keep
//!   enforcing the new bound.
//!
//! The selected backend is process-global: `SSDREC_BACKEND=reference|blocked`
//! at startup, or [`set_backend`] (the CLI's `--backend` flag). Tests that
//! switch backends must serialize through [`with_backend`] /
//! [`with_each_backend`], which hold a global lock so concurrent `#[test]`
//! threads cannot observe each other's backend.

mod blocked;
mod reference;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

pub use blocked::Blocked;
pub use reference::Reference;

/// Version of the kernel bits-contract (see the module docs). Bump when a
/// backend is allowed to diverge from `Reference` by more than the current
/// [`KERNEL_BITS_MAX_ULPS`].
pub const KERNEL_BITS_VERSION: u32 = 1;

/// Maximum ULP distance permitted between any two backends' outputs on
/// finite inputs under contract version [`KERNEL_BITS_VERSION`]. A bound of
/// 0 demands exact bit equality (±0 and NaN payloads included), which is
/// what keeps golden metric pins and checkpoint bytes backend-independent.
pub const KERNEL_BITS_MAX_ULPS: u64 = 0;

/// Epsilon inside LayerNorm's variance square root (shared by every backend
/// and by the backward kernel in [`crate::kernels`]).
pub(crate) const LN_EPS: f32 = 1e-5;

/// Element-wise activations understood by [`Backend::bias_act`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Activation {
    /// The identity map (bias add only).
    Identity,
    /// `max(x, 0)`.
    Relu,
    /// Logistic sigmoid `1/(1+e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Forward map. Bit-identical to the unfused graph ops
    /// ([`crate::graph::Graph::relu`] and friends).
    #[inline(always)]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Upstream gradient `g` through the activation, expressed via the
    /// forward **output** `y`. These are the exact formulas of the unfused
    /// backward ops; for Relu the unfused `x > 0` test is equivalent to
    /// `y > 0` because `y = max(x, 0)`.
    #[inline(always)]
    pub fn grad_from_output(self, g: f32, y: f32) -> f32 {
        match self {
            Activation::Identity => g,
            Activation::Relu => {
                if y > 0.0 {
                    g
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => g * y * (1.0 - y),
            Activation::Tanh => g * (1.0 - y * y),
        }
    }
}

/// A CPU kernel implementation. All methods speak flat `&[f32]` slices so
/// backends stay independent of [`crate::tensor::Tensor`]; shape-level
/// concerns (rank promotion, batching, thread partitioning, degenerate
/// shapes) live in [`crate::kernels`].
///
/// Every method must honour the bits-contract in the module docs: per
/// output element, the floating-point operation sequence is fixed by the
/// shape alone (accumulations run over the contraction index ascending), so
/// any row/batch partition of the same kernel is bit-identical.
pub trait Backend: Send + Sync {
    /// The backend's name as accepted by `SSDREC_BACKEND`.
    fn name(&self) -> &'static str;

    /// Compute output rows `[r0, r1)` of `out[m×n] (+)= a[m×k] · b[k×n]`
    /// into `block` (the slice for exactly those rows), with optional
    /// operand transposes (`ta`: `a` stored `k×m`; `tb`: `b` stored `n×k`).
    ///
    /// Accumulation-chain contract, matching the original kernels: the
    /// `!tb` variants add each `p` term directly onto the existing output
    /// value; the `tb` variants form a fresh `p`-ascending sum and add it to
    /// the output once. Inputs are assumed finite (no ±inf/NaN); score
    /// masking uses large finite values (−1e9), never infinities.
    #[allow(clippy::too_many_arguments)]
    fn gemm_rows(
        &self,
        a: &[f32],
        ta: bool,
        b: &[f32],
        tb: bool,
        m: usize,
        k: usize,
        n: usize,
        block: &mut [f32],
        r0: usize,
        r1: usize,
    );

    /// Row-wise numerically-stable softmax: `src` and `dst` are
    /// `rows × n` with `n ≥ 1`.
    fn softmax_rows(&self, src: &[f32], dst: &mut [f32], n: usize);

    /// Row-wise numerically-stable log-softmax (`n ≥ 1`).
    fn log_softmax_rows(&self, src: &[f32], dst: &mut [f32], n: usize);

    /// Row-wise LayerNorm with scale/shift: `gamma`/`beta` have length `n`.
    fn layer_norm_rows(&self, x: &[f32], gamma: &[f32], beta: &[f32], dst: &mut [f32], n: usize);

    /// Fused `dst[i] = act(a[i] + bias[i % bias.len()])` (suffix broadcast).
    fn bias_act(&self, a: &[f32], bias: &[f32], act: Activation, dst: &mut [f32]);

    /// Fused `dst = softmax_rows(a * scale + broadcast(mask))` over rows of
    /// length `n`; `mask` (when present) has length a multiple of `n` and is
    /// tiled over the leading rows (suffix broadcast).
    fn scaled_masked_softmax(
        &self,
        a: &[f32],
        scale: f32,
        mask: Option<&[f32]>,
        dst: &mut [f32],
        n: usize,
    );
}

/// Which [`Backend`] implementation to use.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// The straight-line oracle kernels.
    Reference,
    /// The cache-blocked default kernels.
    Blocked,
}

impl BackendKind {
    /// Parse a `SSDREC_BACKEND` / `--backend` value.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "reference" => Some(BackendKind::Reference),
            "blocked" => Some(BackendKind::Blocked),
            _ => None,
        }
    }

    /// The name as accepted by `SSDREC_BACKEND`.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Reference => "reference",
            BackendKind::Blocked => "blocked",
        }
    }

    /// Every available backend (the iteration order of
    /// [`with_each_backend`]).
    pub fn all() -> [BackendKind; 2] {
        [BackendKind::Reference, BackendKind::Blocked]
    }
}

static REFERENCE: Reference = Reference;
static BLOCKED: Blocked = Blocked;

/// 0 = unset (resolve from the environment on first use).
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn resolve_env() -> BackendKind {
    match std::env::var("SSDREC_BACKEND") {
        Ok(v) => BackendKind::parse(&v).unwrap_or_else(|| {
            panic!("SSDREC_BACKEND must be \"reference\" or \"blocked\", got {v:?}")
        }),
        Err(_) => BackendKind::Blocked,
    }
}

/// The currently selected backend kind. Resolved from `SSDREC_BACKEND` on
/// first use (default: [`BackendKind::Blocked`]).
pub fn backend_kind() -> BackendKind {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => BackendKind::Reference,
        2 => BackendKind::Blocked,
        _ => {
            let k = resolve_env();
            set_backend(k);
            k
        }
    }
}

/// Select the process-global backend (the CLI's `--backend` flag). Takes
/// effect for all subsequent kernel calls on every thread.
pub fn set_backend(kind: BackendKind) {
    let v = match kind {
        BackendKind::Reference => 1,
        BackendKind::Blocked => 2,
    };
    ACTIVE.store(v, Ordering::Relaxed);
}

/// The active [`Backend`] implementation.
pub fn backend() -> &'static dyn Backend {
    match backend_kind() {
        BackendKind::Reference => &REFERENCE,
        BackendKind::Blocked => &BLOCKED,
    }
}

/// Serializes backend switching across test threads: the backend is
/// process-global, so concurrent `#[test]`s that switch it must hold this
/// lock for the whole switched region.
static SWITCH_LOCK: Mutex<()> = Mutex::new(());

/// Restores the previous backend on drop (including on panic, so a failing
/// shrunk property case cannot leak its backend to the next case).
struct Restore(BackendKind);

impl Drop for Restore {
    fn drop(&mut self) {
        set_backend(self.0);
    }
}

/// Run `f` with `kind` selected, holding the global switch lock, and restore
/// the previous backend afterwards (also on panic). Not reentrant: do not
/// nest with itself or [`with_each_backend`].
pub fn with_backend<R>(kind: BackendKind, f: impl FnOnce() -> R) -> R {
    let _lock = SWITCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = Restore(backend_kind());
    set_backend(kind);
    f()
}

/// Run `f` once per backend in [`BackendKind::all`] order, holding the
/// global switch lock throughout, and restore the previous backend
/// afterwards (also on panic). Not reentrant (see [`with_backend`]).
pub fn with_each_backend(mut f: impl FnMut(BackendKind)) {
    let _lock = SWITCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = Restore(backend_kind());
    for kind in BackendKind::all() {
        set_backend(kind);
        f(kind);
    }
}

/// ULP distance between two `f32`s on the monotonic integer mapping of
/// floats: 0 for equal bits, 1 for adjacent representable values, and
/// `u64::MAX` when either value is NaN (unless both have identical bits).
/// `-0.0` and `+0.0` are adjacent-equal (distance 0) — a 0-ULP *contract*
/// therefore additionally requires exact bit equality, which is what
/// [`assert_within_ulps`] enforces when the bound is 0.
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    if a.to_bits() == b.to_bits() {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    fn key(x: f32) -> i64 {
        let b = x.to_bits();
        if b & 0x8000_0000 != 0 {
            -((b & 0x7FFF_FFFF) as i64)
        } else {
            b as i64
        }
    }
    key(a).abs_diff(key(b))
}

/// Assert element-wise agreement of `got` with `want` under the ULP bound:
/// a bound of 0 demands exact bit equality per element (the v1 contract);
/// larger bounds use [`ulp_distance`]. Panics with `ctx`, the offending
/// index and both values on the first violation.
pub fn assert_within_ulps(want: &[f32], got: &[f32], max_ulps: u64, ctx: &str) {
    assert_eq!(want.len(), got.len(), "{ctx}: length mismatch");
    for (i, (&w, &g)) in want.iter().zip(got.iter()).enumerate() {
        if w.to_bits() == g.to_bits() {
            continue;
        }
        if max_ulps == 0 {
            panic!(
                "{ctx}: bit mismatch at [{i}]: want {w:?} ({:#010x}), got {g:?} ({:#010x})",
                w.to_bits(),
                g.to_bits()
            );
        }
        let d = ulp_distance(w, g);
        assert!(
            d <= max_ulps,
            "{ctx}: {d} ULPs apart at [{i}] (bound {max_ulps}): want {w:?}, got {g:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for kind in BackendKind::all() {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::parse("simd"), None);
    }

    #[test]
    fn with_backend_restores_on_exit_and_panic() {
        let before = backend_kind();
        with_backend(BackendKind::Reference, || {
            assert_eq!(backend_kind(), BackendKind::Reference);
        });
        assert_eq!(backend_kind(), before);
        let r = std::panic::catch_unwind(|| {
            with_backend(BackendKind::Reference, || panic!("boom"));
        });
        assert!(r.is_err());
        assert_eq!(backend_kind(), before, "backend leaked across a panic");
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(0.0, -0.0), 0, "±0 are adjacent-equal");
        assert_eq!(ulp_distance(f32::NAN, 1.0), u64::MAX);
        // Distance is symmetric across the sign boundary.
        let tiny = f32::from_bits(1); // smallest positive subnormal
        assert_eq!(ulp_distance(-tiny, tiny), 2);
    }

    #[test]
    #[should_panic(expected = "bit mismatch")]
    fn zero_bound_distinguishes_signed_zero() {
        assert_within_ulps(&[0.0], &[-0.0], 0, "signed zero");
    }

    #[test]
    fn activation_matches_unfused_maps() {
        for &x in &[-2.5f32, -0.0, 0.0, 0.3, 4.0] {
            assert_eq!(Activation::Relu.apply(x).to_bits(), x.max(0.0).to_bits());
            assert_eq!(
                Activation::Sigmoid.apply(x).to_bits(),
                (1.0 / (1.0 + (-x).exp())).to_bits()
            );
            assert_eq!(Activation::Tanh.apply(x).to_bits(), x.tanh().to_bits());
            assert_eq!(Activation::Identity.apply(x).to_bits(), x.to_bits());
        }
    }
}
