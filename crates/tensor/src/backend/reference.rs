//! The oracle backend: the original straight-line kernels, kept verbatim.
//!
//! Every loop body here is the pre-backend implementation from
//! `kernels.rs`, moved without arithmetic changes. The parity suite tests
//! [`Blocked`](super::Blocked) (and any future backend) against these
//! kernels, so keep them boring: no tiling, no manual unrolling, no pass
//! fusion beyond what the graph ops themselves pinned (the fused entry
//! points below apply the same per-element operation sequence as the
//! unfused node chains they replace).

use super::{Activation, Backend, LN_EPS};

/// The straight-line oracle kernels.
pub struct Reference;

impl Backend for Reference {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn gemm_rows(
        &self,
        a: &[f32],
        ta: bool,
        b: &[f32],
        tb: bool,
        m: usize,
        k: usize,
        n: usize,
        block: &mut [f32],
        r0: usize,
        r1: usize,
    ) {
        // a is m×k after the (optional) transpose; likewise b is k×n.
        debug_assert_eq!(block.len(), (r1 - r0) * n);
        if !ta && !tb {
            for i in r0..r1 {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut block[(i - r0) * n..(i - r0 + 1) * n];
                for (p, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += av * bv;
                    }
                }
            }
        } else if ta && !tb {
            // a stored as k×m. Row-range form of the p-outer sequential loop;
            // per output element the adds still run over p ascending.
            for i in r0..r1 {
                let orow = &mut block[(i - r0) * n..(i - r0 + 1) * n];
                for p in 0..k {
                    let av = a[p * m + i];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += av * bv;
                    }
                }
            }
        } else if !ta && tb {
            // b stored as n×k
            for i in r0..r1 {
                let arow = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (&av, &bv) in arow.iter().zip(brow.iter()) {
                        acc += av * bv;
                    }
                    block[(i - r0) * n + j] += acc;
                }
            }
        } else {
            // a stored k×m, b stored n×k
            for i in r0..r1 {
                for j in 0..n {
                    let mut acc = 0.0;
                    for p in 0..k {
                        acc += a[p * m + i] * b[j * k + p];
                    }
                    block[(i - r0) * n + j] += acc;
                }
            }
        }
    }

    fn softmax_rows(&self, src: &[f32], dst: &mut [f32], n: usize) {
        for (src, dst) in src.chunks(n).zip(dst.chunks_mut(n)) {
            let mx = src.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = (s - mx).exp();
                sum += *d;
            }
            for d in dst.iter_mut() {
                *d /= sum;
            }
        }
    }

    fn log_softmax_rows(&self, src: &[f32], dst: &mut [f32], n: usize) {
        for (src, dst) in src.chunks(n).zip(dst.chunks_mut(n)) {
            let mx = src.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = src.iter().map(|&s| (s - mx).exp()).sum::<f32>().ln() + mx;
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = s - lse;
            }
        }
    }

    fn layer_norm_rows(&self, x: &[f32], gamma: &[f32], beta: &[f32], dst: &mut [f32], n: usize) {
        for (src, dst) in x.chunks(n).zip(dst.chunks_mut(n)) {
            let mean = src.iter().sum::<f32>() / n as f32;
            let var = src.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
            let inv = 1.0 / (var + LN_EPS).sqrt();
            for j in 0..n {
                dst[j] = gamma[j] * (src[j] - mean) * inv + beta[j];
            }
        }
    }

    fn bias_act(&self, a: &[f32], bias: &[f32], act: Activation, dst: &mut [f32]) {
        if dst.is_empty() {
            return;
        }
        // Two passes, mirroring the unfused add_bcast → activation node
        // chain this entry point replaces.
        let bn = bias.len();
        for (i, (d, &x)) in dst.iter_mut().zip(a.iter()).enumerate() {
            *d = x + bias[i % bn];
        }
        for d in dst.iter_mut() {
            *d = act.apply(*d);
        }
    }

    fn scaled_masked_softmax(
        &self,
        a: &[f32],
        scale: f32,
        mask: Option<&[f32]>,
        dst: &mut [f32],
        n: usize,
    ) {
        // Pass 1: z = a·scale (+ broadcast mask), mirroring the unfused
        // scale → add nodes; then the verbatim row softmax over z.
        match mask {
            Some(mv) => {
                let mn = mv.len();
                for (i, (d, &x)) in dst.iter_mut().zip(a.iter()).enumerate() {
                    *d = x * scale + mv[i % mn];
                }
            }
            None => {
                for (d, &x) in dst.iter_mut().zip(a.iter()) {
                    *d = x * scale;
                }
            }
        }
        for row in dst.chunks_mut(n) {
            let mx = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for d in row.iter_mut() {
                let s = *d;
                *d = (s - mx).exp();
                sum += *d;
            }
            for d in row.iter_mut() {
                *d /= sum;
            }
        }
    }
}
