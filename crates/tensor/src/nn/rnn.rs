//! Recurrent layers: GRU (GRU4Rec, NARM) and LSTM / Bi-LSTM (SSDRec's
//! context-aware encoder, paper Eq. 9 and Eq. 12).
//!
//! Sequences are short in this domain (T ≤ 200), so cells are unrolled on the
//! tape step by step.

use crate::graph::{Graph, Var};
use crate::optim::{Binding, ParamStore};
use crate::rng::Rng;
use crate::tensor::Tensor;

use super::linear::Linear;

/// One GRU step.
pub struct GruCell {
    wz: Linear,
    uz: Linear,
    wr: Linear,
    ur: Linear,
    wh: Linear,
    uh: Linear,
    hidden: usize,
}

impl GruCell {
    /// A new cell mapping `in_dim` inputs to `hidden` state units.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> Self {
        GruCell {
            wz: Linear::new(store, &format!("{name}.wz"), in_dim, hidden, rng),
            uz: Linear::new_no_bias(store, &format!("{name}.uz"), hidden, hidden, rng),
            wr: Linear::new(store, &format!("{name}.wr"), in_dim, hidden, rng),
            ur: Linear::new_no_bias(store, &format!("{name}.ur"), hidden, hidden, rng),
            wh: Linear::new(store, &format!("{name}.wh"), in_dim, hidden, rng),
            uh: Linear::new_no_bias(store, &format!("{name}.uh"), hidden, hidden, rng),
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// `h' = (1−z)⊙h + z⊙ĥ` for input `x` (`B×in`) and state `h` (`B×hidden`).
    pub fn step(&self, g: &mut Graph, bind: &Binding, x: Var, h: Var) -> Var {
        let zx = self.wz.forward(g, bind, x);
        let zh = self.uz.forward(g, bind, h);
        let zs = g.add(zx, zh);
        let z = g.sigmoid(zs);

        let rx = self.wr.forward(g, bind, x);
        let rh = self.ur.forward(g, bind, h);
        let rs = g.add(rx, rh);
        let r = g.sigmoid(rs);

        let hx = self.wh.forward(g, bind, x);
        let rh2 = g.mul(r, h);
        let hh = self.uh.forward(g, bind, rh2);
        let hs = g.add(hx, hh);
        let hcand = g.tanh(hs);

        let one = g.constant(Tensor::ones(g.value(z).shape()));
        let omz = g.sub(one, z);
        let keep = g.mul(omz, h);
        let new = g.mul(z, hcand);
        g.add(keep, new)
    }
}

/// A unidirectional GRU over `B×T×in` sequences.
pub struct Gru {
    cell: GruCell,
}

impl Gru {
    /// A new GRU layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> Self {
        Gru {
            cell: GruCell::new(store, &format!("{name}.cell"), in_dim, hidden, rng),
        }
    }

    /// Run over a full sequence; returns `(all_states B×T×hidden, last B×hidden)`.
    pub fn forward(&self, g: &mut Graph, bind: &Binding, x: Var) -> (Var, Var) {
        let (b, t, _d) = g.value(x).dims3();
        let mut h = g.constant(Tensor::zeros(&[b, self.cell.hidden()]));
        let mut states = Vec::with_capacity(t);
        for ti in 0..t {
            let xt = g.select_time(x, ti);
            h = self.cell.step(g, bind, xt, h);
            states.push(h);
        }
        let all = g.stack_time(&states);
        (all, h)
    }
}

/// One LSTM step.
pub struct LstmCell {
    wi: Linear,
    ui: Linear,
    wf: Linear,
    uf: Linear,
    wo: Linear,
    uo: Linear,
    wc: Linear,
    uc: Linear,
    hidden: usize,
}

impl LstmCell {
    /// A new cell mapping `in_dim` inputs to `hidden` state units.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> Self {
        LstmCell {
            wi: Linear::new(store, &format!("{name}.wi"), in_dim, hidden, rng),
            ui: Linear::new_no_bias(store, &format!("{name}.ui"), hidden, hidden, rng),
            wf: Linear::new(store, &format!("{name}.wf"), in_dim, hidden, rng),
            uf: Linear::new_no_bias(store, &format!("{name}.uf"), hidden, hidden, rng),
            wo: Linear::new(store, &format!("{name}.wo"), in_dim, hidden, rng),
            uo: Linear::new_no_bias(store, &format!("{name}.uo"), hidden, hidden, rng),
            wc: Linear::new(store, &format!("{name}.wc"), in_dim, hidden, rng),
            uc: Linear::new_no_bias(store, &format!("{name}.uc"), hidden, hidden, rng),
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// One step; returns `(h', c')`.
    pub fn step(&self, g: &mut Graph, bind: &Binding, x: Var, h: Var, c: Var) -> (Var, Var) {
        let gate = |g: &mut Graph, wx: &Linear, uh: &Linear, x: Var, h: Var| {
            let a = wx.forward(g, bind, x);
            let b = uh.forward(g, bind, h);
            g.add(a, b)
        };
        let i_s = gate(g, &self.wi, &self.ui, x, h);
        let i = g.sigmoid(i_s);
        let f_s = gate(g, &self.wf, &self.uf, x, h);
        let f = g.sigmoid(f_s);
        let o_s = gate(g, &self.wo, &self.uo, x, h);
        let o = g.sigmoid(o_s);
        let c_s = gate(g, &self.wc, &self.uc, x, h);
        let chat = g.tanh(c_s);
        let fc = g.mul(f, c);
        let ic = g.mul(i, chat);
        let c2 = g.add(fc, ic);
        let tc = g.tanh(c2);
        let h2 = g.mul(o, tc);
        (h2, c2)
    }
}

/// A unidirectional LSTM over `B×T×in` sequences.
pub struct Lstm {
    cell: LstmCell,
}

impl Lstm {
    /// A new LSTM layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> Self {
        Lstm {
            cell: LstmCell::new(store, &format!("{name}.cell"), in_dim, hidden, rng),
        }
    }

    /// Run left→right; returns all hidden states `B×T×hidden`.
    pub fn forward(&self, g: &mut Graph, bind: &Binding, x: Var) -> Var {
        self.run(g, bind, x, false)
    }

    /// Run right→left, with outputs re-aligned to input positions.
    pub fn forward_reversed(&self, g: &mut Graph, bind: &Binding, x: Var) -> Var {
        self.run(g, bind, x, true)
    }

    fn run(&self, g: &mut Graph, bind: &Binding, x: Var, reversed: bool) -> Var {
        let (b, t, _d) = g.value(x).dims3();
        let mut h = g.constant(Tensor::zeros(&[b, self.cell.hidden()]));
        let mut c = g.constant(Tensor::zeros(&[b, self.cell.hidden()]));
        let mut states = vec![h; t];
        let order: Vec<usize> = if reversed {
            (0..t).rev().collect()
        } else {
            (0..t).collect()
        };
        for ti in order {
            let xt = g.select_time(x, ti);
            let (h2, c2) = self.cell.step(g, bind, xt, h, c);
            h = h2;
            c = c2;
            states[ti] = h;
        }
        g.stack_time(&states)
    }
}

/// The paper's context-aware encoder: a bi-directional LSTM whose two
/// directional state sequences `H^L` (left→right) and `H^R` (right→left) are
/// returned separately, as required by Eq. 9 (`H^L ⊙ H^R ⊙ H_S`).
pub struct BiLstm {
    fwd: Lstm,
    bwd: Lstm,
}

impl BiLstm {
    /// A new Bi-LSTM with `hidden` units per direction.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> Self {
        BiLstm {
            fwd: Lstm::new(store, &format!("{name}.l"), in_dim, hidden, rng),
            bwd: Lstm::new(store, &format!("{name}.r"), in_dim, hidden, rng),
        }
    }

    /// Returns `(H^L, H^R)`, each `B×T×hidden`, aligned by position.
    pub fn forward(&self, g: &mut Graph, bind: &Binding, x: Var) -> (Var, Var) {
        let hl = self.fwd.forward(g, bind, x);
        let hr = self.bwd.forward_reversed(g, bind, x);
        (hl, hr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    fn seq_tensor(b: usize, t: usize, d: usize, f: impl Fn(usize, usize, usize) -> f32) -> Tensor {
        let mut data = Vec::with_capacity(b * t * d);
        for bi in 0..b {
            for ti in 0..t {
                for di in 0..d {
                    data.push(f(bi, ti, di));
                }
            }
        }
        Tensor::new(data, &[b, t, d])
    }

    #[test]
    fn gru_shapes() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(0);
        let gru = Gru::new(&mut store, "g", 3, 5, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let x = g.constant(seq_tensor(2, 4, 3, |b, t, d| (b + t + d) as f32 * 0.1));
        let (all, last) = gru.forward(&mut g, &bind, x);
        assert_eq!(g.value(all).shape(), &[2, 4, 5]);
        assert_eq!(g.value(last).shape(), &[2, 5]);
    }

    #[test]
    fn lstm_reversed_aligns_positions() {
        // With a single time step, forward and reversed runs must agree.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(1);
        let lstm = Lstm::new(&mut store, "l", 2, 3, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let x = g.constant(seq_tensor(1, 1, 2, |_, _, d| d as f32 + 0.5));
        let f = lstm.forward(&mut g, &bind, x);
        let r = lstm.forward_reversed(&mut g, &bind, x);
        assert_eq!(g.value(f).data(), g.value(r).data());
    }

    #[test]
    fn bilstm_directions_differ_on_asymmetric_input() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(2);
        let bi = BiLstm::new(&mut store, "bi", 2, 3, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let x = g.constant(seq_tensor(1, 4, 2, |_, t, _| t as f32));
        let (hl, hr) = bi.forward(&mut g, &bind, x);
        assert_ne!(g.value(hl).data(), g.value(hr).data());
        assert_eq!(g.value(hl).shape(), &[1, 4, 3]);
    }

    /// A GRU must be able to learn to remember the first token of a sequence
    /// — a task a memoryless model cannot solve.
    #[test]
    fn gru_learns_first_token_recall() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(3);
        let gru = Gru::new(&mut store, "g", 1, 8, &mut rng);
        let head = Linear::new(&mut store, "head", 8, 1, &mut rng);
        let mut opt = Adam::new(0.02);
        // Sequences [x, 0, 0, 0], target x.
        let xs = [0.9f32, -0.7, 0.3, -0.2];
        let mut final_loss = f32::INFINITY;
        for _ in 0..300 {
            let mut g = Graph::new();
            let bind = store.bind_all(&mut g);
            let mut data = Vec::new();
            for &x in &xs {
                data.extend_from_slice(&[x, 0.0, 0.0, 0.0]);
            }
            let x = g.constant(Tensor::new(data, &[4, 4, 1]));
            let (_, last) = gru.forward(&mut g, &bind, x);
            let pred = head.forward(&mut g, &bind, last);
            let target = g.constant(Tensor::new(xs.to_vec(), &[4, 1]));
            let d = g.sub(pred, target);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            final_loss = g.value(loss).item();
            let mut grads = g.backward(loss);
            opt.step(&mut store, &bind, &mut grads);
        }
        assert!(final_loss < 0.01, "loss {final_loss}");
    }

    #[test]
    fn lstm_gradient_flows_to_all_steps() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(4);
        let lstm = Lstm::new(&mut store, "l", 2, 3, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let x0 = seq_tensor(1, 5, 2, |_, t, d| (t * 2 + d) as f32 * 0.1);
        let x = g.param(x0);
        let out = lstm.forward(&mut g, &bind, x);
        let last = g.select_time(out, 4);
        let loss = g.sum_all(last);
        let grads = g.backward(loss);
        let gx = grads.get(x).expect("input grad");
        // Every timestep influences the last hidden state.
        for t in 0..5 {
            let slice = &gx.data()[t * 2..(t + 1) * 2];
            assert!(slice.iter().any(|&v| v != 0.0), "no grad at t={t}");
        }
    }
}
