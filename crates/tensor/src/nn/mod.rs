//! Neural-network layers built on the autograd [`Graph`](crate::graph::Graph).
//!
//! Layers own [`ParamRef`](crate::optim::ParamRef)s into a shared
//! [`ParamStore`](crate::optim::ParamStore); their `forward` methods take the
//! per-step graph and binding.

mod attention;
mod dft;
mod embedding;
mod gumbel;
mod linear;
mod rnn;

pub use attention::{causal_mask, padding_mask, FeedForward, MultiHeadAttention, TransformerBlock};
pub use dft::DftFilter;
pub use embedding::Embedding;
pub use gumbel::{gumbel_softmax, GumbelMode};
pub use linear::{LayerNorm, Linear};
pub use rnn::{BiLstm, Gru, GruCell, Lstm, LstmCell};
