//! ID-to-vector embedding table (paper Eq. 1).

use crate::graph::{Graph, Var};
use crate::optim::{Binding, ParamRef, ParamStore};
use crate::rng::Rng;

/// A `V×d` embedding look-up table.
pub struct Embedding {
    w: ParamRef,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// A new Xavier-initialised table for `vocab` IDs of width `dim`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut Rng,
    ) -> Self {
        let w = store.add_xavier(format!("{name}.weight"), &[vocab, dim], rng);
        Embedding { w, vocab, dim }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The underlying weight parameter (e.g. for tied output projections).
    pub fn weight(&self) -> ParamRef {
        self.w
    }

    /// Gather a flat list of IDs, yielding `N×d`.
    pub fn lookup(&self, g: &mut Graph, bind: &Binding, ids: &[usize]) -> Var {
        let w = bind.var(self.w);
        g.embedding(w, ids)
    }

    /// Gather a batch of padded sequences, yielding `B×T×d`.
    ///
    /// `ids` is row-major `B×T`; the caller supplies a padding ID that must
    /// be a valid row (conventionally row 0).
    pub fn lookup_seq(
        &self,
        g: &mut Graph,
        bind: &Binding,
        ids: &[usize],
        batch: usize,
        time: usize,
    ) -> Var {
        assert_eq!(ids.len(), batch * time, "lookup_seq id count");
        let flat = self.lookup(g, bind, ids);
        g.reshape(flat, &[batch, time, self.dim])
    }

    /// The full table as a graph value (`V×d`), e.g. for scoring against the
    /// entire item universe.
    pub fn table(&self, bind: &Binding) -> Var {
        bind.var(self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    #[test]
    fn lookup_gathers_rows() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(0);
        let emb = Embedding::new(&mut store, "e", 5, 3, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let out = emb.lookup(&mut g, &bind, &[4, 0]);
        assert_eq!(g.value(out).shape(), &[2, 3]);
        assert_eq!(g.value(out).row(0), store.get(emb.weight()).row(4));
    }

    #[test]
    fn lookup_seq_shape() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(0);
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let out = emb.lookup_seq(&mut g, &bind, &[1, 2, 3, 4, 5, 6], 2, 3);
        assert_eq!(g.value(out).shape(), &[2, 3, 4]);
    }

    /// Embeddings must receive sparse gradients: only looked-up rows move.
    #[test]
    fn only_touched_rows_update() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(2);
        let emb = Embedding::new(&mut store, "e", 4, 2, &mut rng);
        let before = store.get(emb.weight()).clone();
        let mut opt = Adam::new(0.1);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let out = emb.lookup(&mut g, &bind, &[1]);
        let sq = g.mul(out, out);
        let loss = g.sum_all(sq);
        let mut grads = g.backward(loss);
        opt.step(&mut store, &bind, &mut grads);
        let after = store.get(emb.weight());
        assert_eq!(after.row(0), before.row(0));
        assert_eq!(after.row(3), before.row(3));
        assert_ne!(after.row(1), before.row(1));
    }

    #[test]
    fn repeated_ids_accumulate_grads() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(3);
        let emb = Embedding::new(&mut store, "e", 3, 1, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let out = emb.lookup(&mut g, &bind, &[2, 2]);
        let loss = g.sum_all(out);
        let grads = g.backward(loss);
        let gw = grads.get(bind.var(emb.weight())).unwrap();
        assert_eq!(gw.data()[2], 2.0);
    }

    #[test]
    #[should_panic]
    fn out_of_vocab_panics() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(0);
        let emb = Embedding::new(&mut store, "e", 3, 2, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        emb.lookup(&mut g, &bind, &[3]);
    }
}
