//! Learnable frequency-domain filter — the core of FMLP-Rec [28].
//!
//! FMLP-Rec applies `x → iFFT(FFT(x) ⊙ W)` along the time axis, with a
//! learnable complex filter `W`. Here the transform is realised as an exact
//! DFT via constant matrices, so it is a linear operator the autograd engine
//! differentiates for free. Sequence lengths in this domain are ≤ 200, so the
//! O(T²) matrix form is cheap and avoids a bespoke FFT kernel.

use crate::graph::{Graph, Var};
use crate::optim::{Binding, ParamRef, ParamStore};
use crate::tensor::Tensor;

/// A per-(frequency, channel) complex filter applied in the DFT domain.
pub struct DftFilter {
    w_re: ParamRef,
    w_im: ParamRef,
    /// Forward DFT matrices (constants), `T×T`.
    f_re: Tensor,
    f_im: Tensor,
    /// Inverse DFT matrices (constants, includes the 1/T factor), `T×T`.
    inv_re: Tensor,
    inv_im: Tensor,
    t_len: usize,
}

/// Build the `T×T` real/imag DFT matrices `F[k][n] = e^{-2πi k n / T}`.
pub fn dft_matrices(t: usize) -> (Tensor, Tensor) {
    let mut re = Tensor::zeros(&[t, t]);
    let mut im = Tensor::zeros(&[t, t]);
    for k in 0..t {
        for n in 0..t {
            let ang = -2.0 * std::f64::consts::PI * (k * n) as f64 / t as f64;
            re.data_mut()[k * t + n] = ang.cos() as f32;
            im.data_mut()[k * t + n] = ang.sin() as f32;
        }
    }
    (re, im)
}

impl DftFilter {
    /// A new filter for sequences of length `t_len` with `dim` channels.
    ///
    /// The filter is initialised close to identity (re = 1, im = 0) so early
    /// training behaves like a pass-through.
    pub fn new(store: &mut ParamStore, name: &str, t_len: usize, dim: usize) -> Self {
        let w_re = store.add_ones(format!("{name}.w_re"), &[t_len, dim]);
        let w_im = store.add_zeros(format!("{name}.w_im"), &[t_len, dim]);
        let (f_re, f_im) = dft_matrices(t_len);
        // Inverse DFT: conj(F)/T.
        let inv_re = f_re.map(|x| x / t_len as f32);
        let inv_im = f_im.map(|x| -x / t_len as f32);
        DftFilter {
            w_re,
            w_im,
            f_re,
            f_im,
            inv_re,
            inv_im,
            t_len,
        }
    }

    /// Sequence length the filter was built for.
    pub fn t_len(&self) -> usize {
        self.t_len
    }

    /// Apply the filter to `x` of shape `B×T×d` (T must equal `t_len`).
    pub fn forward(&self, g: &mut Graph, bind: &Binding, x: Var) -> Var {
        let (_b, t, _d) = g.value(x).dims3();
        assert_eq!(
            t, self.t_len,
            "DftFilter built for T={}, got {t}",
            self.t_len
        );

        let fre = g.constant(self.f_re.clone());
        let fim = g.constant(self.f_im.clone());
        // Forward DFT along time (input is real): X = F x.
        let xre = g.matmul(fre, x);
        let xim = g.matmul(fim, x);

        // Complex multiply with the learnable filter, broadcast over batch.
        let wre = bind.var(self.w_re);
        let wim = bind.var(self.w_im);
        let rr = g.mul_bcast(xre, wre);
        let ii = g.mul_bcast(xim, wim);
        let yre = g.sub(rr, ii);
        let ri = g.mul_bcast(xre, wim);
        let ir = g.mul_bcast(xim, wre);
        let yim = g.add(ri, ir);

        // Inverse DFT, keeping the real part: x' = Re(F⁻¹ Y).
        let ire = g.constant(self.inv_re.clone());
        let iim = g.constant(self.inv_im.clone());
        let a = g.matmul(ire, yre);
        let b = g.matmul(iim, yim);
        g.sub(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn identity_filter_is_passthrough() {
        let mut store = ParamStore::new();
        let f = DftFilter::new(&mut store, "f", 6, 3);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let mut rng = Rng::seed(0);
        let x0 = Tensor::new(
            (0..2 * 6 * 3).map(|_| rng.uniform(-1.0, 1.0)).collect(),
            &[2, 6, 3],
        );
        let x = g.constant(x0.clone());
        let y = f.forward(&mut g, &bind, x);
        for (a, b) in g.value(y).data().iter().zip(x0.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn dft_matrices_orthogonality() {
        // F⁻¹ F = I (checked on a delta signal).
        let t = 8;
        let (re, im) = dft_matrices(t);
        let inv_re = re.map(|x| x / t as f32);
        let inv_im = im.map(|x| -x / t as f32);
        // delta at position 3
        let mut x = vec![0.0f32; t];
        x[3] = 1.0;
        // X = F x (complex), then x' = Re(F⁻¹ X)
        let mut xr = vec![0.0f32; t];
        let mut xi = vec![0.0f32; t];
        for k in 0..t {
            for (n, &xn) in x.iter().enumerate() {
                xr[k] += re.data()[k * t + n] * xn;
                xi[k] += im.data()[k * t + n] * xn;
            }
        }
        for (n, _) in x.iter().enumerate() {
            let mut acc = 0.0f32;
            for k in 0..t {
                acc += inv_re.data()[n * t + k] * xr[k] - inv_im.data()[n * t + k] * xi[k];
            }
            let expect = if n == 3 { 1.0 } else { 0.0 };
            assert!((acc - expect).abs() < 1e-5, "pos {n}: {acc}");
        }
    }

    #[test]
    fn zero_filter_annihilates_signal() {
        let mut store = ParamStore::new();
        let f = DftFilter::new(&mut store, "f", 4, 2);
        store.get_mut(f.w_re).data_mut().fill(0.0);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let x = g.constant(Tensor::ones(&[1, 4, 2]));
        let y = f.forward(&mut g, &bind, x);
        assert!(g.value(y).data().iter().all(|v| v.abs() < 1e-5));
    }

    #[test]
    fn filter_gradients_flow() {
        let mut store = ParamStore::new();
        let f = DftFilter::new(&mut store, "f", 4, 2);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let x = g.constant(Tensor::ones(&[1, 4, 2]));
        let y = f.forward(&mut g, &bind, x);
        let sq = g.mul(y, y);
        let loss = g.sum_all(sq);
        let grads = g.backward(loss);
        assert!(grads.get(bind.var(f.w_re)).is_some());
    }
}
