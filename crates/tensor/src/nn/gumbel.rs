//! Gumbel-Softmax reparameterisation (paper Eq. 11, following [47]).
//!
//! Used by SSDRec's position selector and item selector, and by HSD's subset
//! selection, to make discrete choices differentiable.

use crate::graph::{Graph, Var};
use crate::rng::Rng;
use crate::tensor::Tensor;

/// How the relaxed sample is emitted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GumbelMode {
    /// The soft relaxation `softmax((log p + g)/τ)`.
    Soft,
    /// Straight-through: a hard one-hot in the forward pass, soft gradients
    /// in the backward pass.
    Hard,
}

/// Sample a Gumbel-Softmax over the last dimension of `probs`.
///
/// `probs` holds (unnormalised, non-negative) probabilities; logs are taken
/// internally with clamping, matching the paper's
/// `exp((log r + g)/τ) / Σ exp((log r + g)/τ)` formulation.
pub fn gumbel_softmax(g: &mut Graph, rng: &mut Rng, probs: Var, tau: f32, mode: GumbelMode) -> Var {
    assert!(tau > 0.0, "gumbel temperature must be positive");
    let shape = g.value(probs).shape().to_vec();
    let n: usize = shape.iter().product();
    let noise = Tensor::new((0..n).map(|_| rng.gumbel()).collect(), &shape);

    let logp = g.ln(probs);
    let gn = g.constant(noise);
    let z = g.add(logp, gn);
    // Fused 1/τ scale + softmax; the noise add stays a separate node
    // because `(a + b)·s` and `a·s + b` differ bitwise.
    let soft = g.scaled_masked_softmax(z, 1.0 / tau, None);

    match mode {
        GumbelMode::Soft => soft,
        GumbelMode::Hard => {
            // One-hot of the per-row argmax of the soft sample.
            let sv = g.value(soft);
            let last = *shape.last().unwrap();
            let rows = n / last;
            let mut hard = Tensor::zeros(&shape);
            for r in 0..rows {
                let row = &sv.data()[r * last..(r + 1) * last];
                let mut best = 0;
                let mut bv = f32::NEG_INFINITY;
                for (i, &v) in row.iter().enumerate() {
                    if v > bv {
                        bv = v;
                        best = i;
                    }
                }
                hard.data_mut()[r * last + best] = 1.0;
            }
            let hc = g.constant(hard);
            let det = g.detach(soft);
            let diff = g.sub(hc, det);
            g.add(diff, soft)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_rows_sum_to_one() {
        let mut g = Graph::new();
        let mut rng = Rng::seed(0);
        let p = g.constant(Tensor::new(vec![0.2, 0.3, 0.5, 0.9, 0.05, 0.05], &[2, 3]));
        let s = gumbel_softmax(&mut g, &mut rng, p, 1.0, GumbelMode::Soft);
        for row in g.value(s).data().chunks(3) {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn hard_is_one_hot_in_forward() {
        let mut g = Graph::new();
        let mut rng = Rng::seed(1);
        let p = g.constant(Tensor::new(vec![0.1, 0.1, 0.8], &[1, 3]));
        let s = gumbel_softmax(&mut g, &mut rng, p, 0.5, GumbelMode::Hard);
        let row = g.value(s).data();
        let ones = row.iter().filter(|&&v| (v - 1.0).abs() < 1e-6).count();
        let zeros = row.iter().filter(|&&v| v.abs() < 1e-6).count();
        assert_eq!((ones, zeros), (1, 2), "row {row:?}");
    }

    #[test]
    fn hard_passes_gradients_straight_through() {
        let mut g = Graph::new();
        let mut rng = Rng::seed(2);
        let x = g.param(Tensor::new(vec![0.4, 0.6], &[1, 2]));
        let s = gumbel_softmax(&mut g, &mut rng, x, 1.0, GumbelMode::Hard);
        let w = g.constant(Tensor::new(vec![1.0, 2.0], &[1, 2]));
        let sw = g.mul(s, w);
        let loss = g.sum_all(sw);
        let grads = g.backward(loss);
        assert!(grads.get(x).is_some(), "straight-through gradient missing");
    }

    #[test]
    fn low_temperature_concentrates_on_argmax() {
        // With a strongly peaked distribution and tiny τ, the hard sample
        // should pick the dominant category nearly always.
        let mut hits = 0;
        for seed in 0..200 {
            let mut g = Graph::new();
            let mut rng = Rng::seed(seed);
            let p = g.constant(Tensor::new(vec![0.01, 0.01, 0.98], &[1, 3]));
            let s = gumbel_softmax(&mut g, &mut rng, p, 0.1, GumbelMode::Hard);
            if g.value(s).data()[2] > 0.5 {
                hits += 1;
            }
        }
        assert!(hits > 150, "argmax hit only {hits}/200");
    }

    #[test]
    fn samples_follow_categorical_distribution() {
        // Empirical frequencies of the hard sample approximate the underlying
        // categorical distribution (the defining property of the Gumbel trick).
        let probs = [0.2f32, 0.3, 0.5];
        let mut counts = [0usize; 3];
        for seed in 0..3000 {
            let mut g = Graph::new();
            let mut rng = Rng::seed(seed);
            let p = g.constant(Tensor::new(probs.to_vec(), &[1, 3]));
            let s = gumbel_softmax(&mut g, &mut rng, p, 1.0, GumbelMode::Hard);
            let row = g.value(s).data();
            counts[row.iter().position(|&v| v > 0.5).unwrap()] += 1;
        }
        for (i, &p) in probs.iter().enumerate() {
            let f = counts[i] as f32 / 3000.0;
            assert!((f - p).abs() < 0.05, "cat {i}: freq {f} vs p {p}");
        }
    }
}
