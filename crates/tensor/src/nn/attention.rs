//! Multi-head self-attention and transformer blocks (SASRec, BERT4Rec,
//! STEAM's bidirectional encoder, DCRec's transformer layer).

use crate::backend::Activation;
use crate::graph::{Graph, Var};
use crate::optim::{Binding, ParamStore};
use crate::rng::Rng;
use crate::tensor::Tensor;

use super::linear::{LayerNorm, Linear};

/// Multi-head scaled dot-product self-attention over `B×T×d`.
///
/// Heads are realised by slicing the feature dimension, which avoids general
/// permutation ops: each head attends within its own `d/heads` feature band.
pub struct MultiHeadAttention {
    q: Linear,
    k: Linear,
    v: Linear,
    out: Linear,
    heads: usize,
    dim: usize,
}

/// Build an additive causal mask (`T×T`, `0` below/on diagonal, `−1e9` above).
pub fn causal_mask(t: usize) -> Tensor {
    let mut m = Tensor::zeros(&[t, t]);
    for i in 0..t {
        for j in (i + 1)..t {
            m.data_mut()[i * t + j] = -1e9;
        }
    }
    m
}

/// Build an additive key-padding mask (`B×T×T`): column `j` of batch `b` is
/// `−1e9` whenever `pad[b][j]` is true.
pub fn padding_mask(pad: &[Vec<bool>]) -> Tensor {
    let b = pad.len();
    let t = pad[0].len();
    let mut m = Tensor::zeros(&[b, t, t]);
    for (bi, row) in pad.iter().enumerate() {
        for i in 0..t {
            for (j, &p) in row.iter().enumerate() {
                if p {
                    m.data_mut()[(bi * t + i) * t + j] = -1e9;
                }
            }
        }
    }
    m
}

impl MultiHeadAttention {
    /// New attention with `heads` heads over feature width `dim`
    /// (`dim % heads == 0`).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut Rng,
    ) -> Self {
        assert_eq!(dim % heads, 0, "dim {dim} not divisible by heads {heads}");
        MultiHeadAttention {
            q: Linear::new(store, &format!("{name}.q"), dim, dim, rng),
            k: Linear::new(store, &format!("{name}.k"), dim, dim, rng),
            v: Linear::new(store, &format!("{name}.v"), dim, dim, rng),
            out: Linear::new(store, &format!("{name}.out"), dim, dim, rng),
            heads,
            dim,
        }
    }

    /// Apply self-attention. `mask` is an additive score mask of shape
    /// `T×T` (broadcast over batch) or `B×T×T`.
    pub fn forward(&self, g: &mut Graph, bind: &Binding, x: Var, mask: Option<Var>) -> Var {
        let dk = self.dim / self.heads;
        let scale = 1.0 / (dk as f32).sqrt();
        let q = self.q.forward(g, bind, x);
        let k = self.k.forward(g, bind, x);
        let v = self.v.forward(g, bind, x);

        let mut head_outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qs = g.slice_last(q, h * dk, dk);
            let ks = g.slice_last(k, h * dk, dk);
            let vs = g.slice_last(v, h * dk, dk);
            let kt = g.transpose_last(ks);
            let scores = g.matmul(qs, kt);
            // Fused scale + additive mask (T×T broadcast over batch, or
            // B×T×T) + softmax: one tape node per head instead of three.
            let attn = g.scaled_masked_softmax(scores, scale, mask);
            head_outs.push(g.matmul(attn, vs));
        }
        let merged = if head_outs.len() == 1 {
            head_outs[0]
        } else {
            g.concat_last(&head_outs)
        };
        self.out.forward(g, bind, merged)
    }
}

/// Position-wise feed-forward network (`d → inner → d`, ReLU).
pub struct FeedForward {
    l1: Linear,
    l2: Linear,
}

impl FeedForward {
    /// A new FFN with the given inner width.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        inner: usize,
        rng: &mut Rng,
    ) -> Self {
        FeedForward {
            l1: Linear::new(store, &format!("{name}.l1"), dim, inner, rng),
            l2: Linear::new(store, &format!("{name}.l2"), inner, dim, rng),
        }
    }

    /// Apply the FFN (fused bias+ReLU on the inner layer).
    pub fn forward(&self, g: &mut Graph, bind: &Binding, x: Var) -> Var {
        let h = self.l1.forward_act(g, bind, x, Activation::Relu);
        self.l2.forward(g, bind, h)
    }
}

/// A pre-activation transformer block: attention + residual + LayerNorm,
/// FFN + residual + LayerNorm.
pub struct TransformerBlock {
    attn: MultiHeadAttention,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
}

impl TransformerBlock {
    /// A new block with `heads` heads and FFN inner width `4*dim`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut Rng,
    ) -> Self {
        TransformerBlock {
            attn: MultiHeadAttention::new(store, &format!("{name}.attn"), dim, heads, rng),
            ffn: FeedForward::new(store, &format!("{name}.ffn"), dim, dim * 4, rng),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dim),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dim),
        }
    }

    /// Apply the block.
    pub fn forward(&self, g: &mut Graph, bind: &Binding, x: Var, mask: Option<Var>) -> Var {
        let a = self.attn.forward(g, bind, x, mask);
        let r1 = g.add(x, a);
        let n1 = self.ln1.forward(g, bind, r1);
        let f = self.ffn.forward(g, bind, n1);
        let r2 = g.add(n1, f);
        self.ln2.forward(g, bind, r2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(b: usize, t: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed(seed);
        Tensor::new(
            (0..b * t * d).map(|_| rng.uniform(-1.0, 1.0)).collect(),
            &[b, t, d],
        )
    }

    #[test]
    fn attention_output_shape() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(0);
        let att = MultiHeadAttention::new(&mut store, "a", 8, 2, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let x = g.constant(seq(3, 5, 8, 1));
        let y = att.forward(&mut g, &bind, x, None);
        assert_eq!(g.value(y).shape(), &[3, 5, 8]);
    }

    /// With a causal mask, position 0's output must be independent of later
    /// positions — the defining property of SASRec's attention.
    #[test]
    fn causal_mask_blocks_future() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(2);
        let att = MultiHeadAttention::new(&mut store, "a", 4, 1, &mut rng);

        let x1 = seq(1, 3, 4, 3);
        let mut x2 = x1.clone();
        // Perturb the last time step only.
        for d in 8..12 {
            x2.data_mut()[d] += 1.0;
        }

        let run = |store: &ParamStore, att: &MultiHeadAttention, x: Tensor| {
            let mut g = Graph::new();
            let bind = store.bind_all(&mut g);
            let xv = g.constant(x);
            let m = g.constant(causal_mask(3));
            let y = att.forward(&mut g, &bind, xv, Some(m));
            g.value(y).data().to_vec()
        };
        let y1 = run(&store, &att, x1);
        let y2 = run(&store, &att, x2);
        // First two positions unchanged, last position changed.
        assert_eq!(&y1[..8], &y2[..8]);
        assert_ne!(&y1[8..], &y2[8..]);
    }

    #[test]
    fn padding_mask_zeroes_padded_keys() {
        let pad = vec![vec![false, true]];
        let m = padding_mask(&pad);
        assert_eq!(m.shape(), &[1, 2, 2]);
        assert_eq!(m.data()[1], -1e9); // row 0, col 1
        assert_eq!(m.data()[3], -1e9); // row 1, col 1
        assert_eq!(m.data()[0], 0.0);
    }

    #[test]
    fn transformer_block_preserves_shape_and_grads() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(4);
        let blk = TransformerBlock::new(&mut store, "b", 8, 2, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let x = g.param(seq(2, 4, 8, 5));
        let y = blk.forward(&mut g, &bind, x, None);
        assert_eq!(g.value(y).shape(), &[2, 4, 8]);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert!(grads.get(x).is_some());
    }

    #[test]
    fn attention_rows_mix_value_information() {
        // Without a mask every output position depends on every input position.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(6);
        let att = MultiHeadAttention::new(&mut store, "a", 4, 2, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let x = g.param(seq(1, 3, 4, 7));
        let y = att.forward(&mut g, &bind, x, None);
        let y0 = g.select_time(y, 0);
        let loss = g.sum_all(y0);
        let grads = g.backward(loss);
        let gx = grads.get(x).unwrap();
        for t in 0..3 {
            assert!(gx.data()[t * 4..(t + 1) * 4].iter().any(|&v| v != 0.0));
        }
    }
}
