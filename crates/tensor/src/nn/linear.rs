//! Affine layers and layer normalisation.

use crate::backend::Activation;
use crate::graph::{Graph, Var};
use crate::optim::{Binding, ParamRef, ParamStore};
use crate::rng::Rng;

/// A fully-connected layer `y = x·W (+ b)`.
///
/// Accepts 2-D (`B×in`) or 3-D (`B×T×in`) inputs; the weight is broadcast
/// over the batch for 3-D inputs.
pub struct Linear {
    w: ParamRef,
    b: Option<ParamRef>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// A new Xavier-initialised layer with bias.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        let w = store.add_xavier(format!("{name}.w"), &[in_dim, out_dim], rng);
        let b = Some(store.add_zeros(format!("{name}.b"), &[out_dim]));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// A new Xavier-initialised layer without bias.
    pub fn new_no_bias(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        let w = store.add_xavier(format!("{name}.w"), &[in_dim, out_dim], rng);
        Linear {
            w,
            b: None,
            in_dim,
            out_dim,
        }
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight parameter (for tying or inspection).
    pub fn weight(&self) -> ParamRef {
        self.w
    }

    /// Apply the layer.
    pub fn forward(&self, g: &mut Graph, bind: &Binding, x: Var) -> Var {
        let w = bind.var(self.w);
        let y = g.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = bind.var(b);
                g.add_bcast(y, bv)
            }
            None => y,
        }
    }

    /// Apply the layer followed by an activation, fusing bias-add and
    /// activation into one [`Graph::bias_act`] node when a bias exists.
    /// Bit-identical to `forward` followed by the unfused activation node.
    pub fn forward_act(&self, g: &mut Graph, bind: &Binding, x: Var, act: Activation) -> Var {
        let w = bind.var(self.w);
        let y = g.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = bind.var(b);
                g.bias_act(y, bv, act)
            }
            None => g.activation(y, act),
        }
    }
}

/// Layer normalisation over the last dimension with learnable gain/shift.
pub struct LayerNorm {
    gamma: ParamRef,
    beta: ParamRef,
}

impl LayerNorm {
    /// A new layer-norm for feature width `dim` (gain 1, shift 0).
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.add_ones(format!("{name}.gamma"), &[dim]);
        let beta = store.add_zeros(format!("{name}.beta"), &[dim]);
        LayerNorm { gamma, beta }
    }

    /// Apply the normalisation.
    pub fn forward(&self, g: &mut Graph, bind: &Binding, x: Var) -> Var {
        let gamma = bind.var(self.gamma);
        let beta = bind.var(self.beta);
        g.layer_norm(x, gamma, beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::tensor::Tensor;

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(0);
        let lin = Linear::new(&mut store, "l", 4, 3, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let x2 = g.constant(Tensor::ones(&[2, 4]));
        let y2 = lin.forward(&mut g, &bind, x2);
        assert_eq!(g.value(y2).shape(), &[2, 3]);
        let x3 = g.constant(Tensor::ones(&[2, 5, 4]));
        let y3 = lin.forward(&mut g, &bind, x3);
        assert_eq!(g.value(y3).shape(), &[2, 5, 3]);
    }

    /// A linear layer must be able to fit the identity function.
    #[test]
    fn linear_learns_identity() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(1);
        let lin = Linear::new(&mut store, "l", 2, 2, &mut rng);
        let mut opt = Adam::new(0.05);
        let x0 = Tensor::new(vec![1.0, 0.0, 0.0, 1.0, 0.5, -0.5, -1.0, 2.0], &[4, 2]);
        let mut final_loss = f32::INFINITY;
        for _ in 0..400 {
            let mut g = Graph::new();
            let bind = store.bind_all(&mut g);
            let x = g.constant(x0.clone());
            let y = lin.forward(&mut g, &bind, x);
            let d = g.sub(y, x);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            final_loss = g.value(loss).item();
            let mut grads = g.backward(loss);
            opt.step(&mut store, &bind, &mut grads);
        }
        assert!(final_loss < 1e-3, "loss {final_loss}");
    }

    #[test]
    fn layer_norm_normalises_rows() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let x = g.constant(Tensor::new(vec![10.0, 20.0, 30.0, 40.0], &[1, 4]));
        let y = ln.forward(&mut g, &bind, x);
        let mean: f32 = g.value(y).data().iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }
}
