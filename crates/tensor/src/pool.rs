//! Step-scoped tensor buffer pool: size-class free-lists recycling the
//! `Vec<f32>` storage behind [`Tensor`](crate::tensor::Tensor).
//!
//! Training rebuilds the whole autograd tape every step, so the same buffer
//! shapes are allocated and dropped over and over. The pool breaks that
//! malloc churn: [`take`] hands out a recycled buffer of at least the
//! requested length, and [`recycle`] returns a consumed buffer to its size
//! class. [`Graph::reset`](crate::graph::Graph::reset) (and `Graph`'s drop)
//! recycle every node value, the reusable
//! [`Gradients`](crate::graph::Gradients) workspace recycles gradient
//! buffers, and the optimizers recycle the gradients they consume — so from
//! the second training step onward nearly every allocation is served from
//! the free-lists.
//!
//! ## Determinism
//!
//! The pool manages only *storage*, never values: every pooled buffer is
//! fully overwritten (or explicitly zeroed via [`take_zeroed`]) before it is
//! read, so pooled and fresh-allocation runs are **bit-identical**. The
//! fresh path stays reachable for verification: set the `SSDREC_POOL=0`
//! environment variable (or call [`set_enabled`]) and every `take` becomes a
//! plain allocation.
//!
//! ## Threading
//!
//! Free-lists are thread-local (no locks on the hot path; serve workers
//! never contend), while the hit/miss/bytes counters aggregate globally so
//! `/metrics` and the bench harness can report one pool view across threads.
//! Buffers recycled on a different thread than they were taken from simply
//! join that thread's free-list.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Smallest pooled buffer: `8` floats (32 bytes). Anything smaller is
/// allocated directly.
const MIN_CLASS_ELEMS: usize = 8;
const MIN_CLASS_LOG2: u32 = MIN_CLASS_ELEMS.trailing_zeros();

/// Free-list length cap per size class; overflow buffers are dropped.
const MAX_BUFFERS_PER_CLASS: usize = 4096;

/// Total bytes one thread's free-lists may hold before recycles are dropped.
const MAX_POOL_BYTES_PER_THREAD: usize = 256 << 20;

/// Snapshot of the pool telemetry counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls served from a free-list (no allocation).
    pub hits: u64,
    /// `take` calls that fell through to the allocator.
    pub misses: u64,
    /// Total bytes handed out from recycled buffers (4 × elements per hit).
    pub bytes_recycled: u64,
}

impl PoolStats {
    /// Hit fraction of all pooled takes (0 when nothing was taken).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter deltas accumulated since an `earlier` snapshot.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            bytes_recycled: self.bytes_recycled.saturating_sub(earlier.bytes_recycled),
        }
    }
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_recycled: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_recycled: self.bytes_recycled.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.bytes_recycled.store(0, Ordering::Relaxed);
    }
}

/// Every thread's counters, so [`global_stats`] can sum across live (and
/// finished) threads. Entries are never removed: a dead thread's totals keep
/// contributing to the global view.
fn registry() -> &'static Mutex<Vec<Arc<Counters>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Counters>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

struct ThreadPool {
    /// `classes[c]` holds buffers with `len == capacity-class == 8 << c`.
    classes: Vec<Vec<Vec<f32>>>,
    total_bytes: usize,
    enabled: bool,
    counters: Arc<Counters>,
}

impl ThreadPool {
    fn new() -> Self {
        let enabled = std::env::var("SSDREC_POOL")
            .map(|v| v != "0")
            .unwrap_or(true);
        let counters = Arc::new(Counters::default());
        registry()
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Arc::clone(&counters));
        ThreadPool {
            classes: Vec::new(),
            total_bytes: 0,
            enabled,
            counters,
        }
    }
}

thread_local! {
    static POOL: RefCell<ThreadPool> = RefCell::new(ThreadPool::new());
}

/// Run `f` against this thread's pool; `fallback` covers thread teardown
/// (the thread-local may already be destroyed while tensors are dropping).
fn with_pool<R>(f: impl FnOnce(&mut ThreadPool) -> R, fallback: impl FnOnce() -> R) -> R {
    POOL.try_with(|p| f(&mut p.borrow_mut()))
        .unwrap_or_else(|_| fallback())
}

/// Smallest class index whose buffer size is ≥ `n` (for takes).
fn class_for_take(n: usize) -> usize {
    let size = n.max(MIN_CLASS_ELEMS).next_power_of_two();
    (size.trailing_zeros() - MIN_CLASS_LOG2) as usize
}

/// Largest class index whose buffer size is ≤ `cap` (for recycles);
/// `None` when the buffer is too small to pool.
fn class_for_recycle(cap: usize) -> Option<usize> {
    if cap < MIN_CLASS_ELEMS {
        return None;
    }
    let size = 1usize << (usize::BITS - 1 - cap.leading_zeros());
    Some((size.trailing_zeros() - MIN_CLASS_LOG2) as usize)
}

fn class_size(c: usize) -> usize {
    MIN_CLASS_ELEMS << c
}

fn take_impl(n: usize, zero: bool) -> Vec<f32> {
    if n == 0 {
        return Vec::new();
    }
    with_pool(
        |p| {
            if !p.enabled {
                return vec![0.0; n];
            }
            let c = class_for_take(n);
            if let Some(mut buf) = p.classes.get_mut(c).and_then(|list| list.pop()) {
                p.total_bytes -= buf.len() * 4;
                buf.truncate(n);
                if zero {
                    buf.fill(0.0);
                }
                p.counters.hits.fetch_add(1, Ordering::Relaxed);
                p.counters
                    .bytes_recycled
                    .fetch_add((n * 4) as u64, Ordering::Relaxed);
                buf
            } else {
                p.counters.misses.fetch_add(1, Ordering::Relaxed);
                // Allocate at the class size so the buffer re-enters this
                // exact class when recycled.
                let mut v = Vec::with_capacity(class_size(c));
                v.resize(n, 0.0);
                v
            }
        },
        || vec![0.0; n],
    )
}

/// A buffer of exactly `n` elements with **unspecified contents** (zeros or
/// stale values from a recycled tensor). Callers must overwrite every
/// element; use [`take_zeroed`] when zero-initialisation is load-bearing.
pub fn take(n: usize) -> Vec<f32> {
    take_impl(n, false)
}

/// A buffer of exactly `n` zeros (the pooled replacement for `vec![0.0; n]`).
pub fn take_zeroed(n: usize) -> Vec<f32> {
    take_impl(n, true)
}

/// Return a consumed buffer to its size class. Buffers smaller than the
/// minimum class, overflowing a class cap, or exceeding the per-thread byte
/// budget are simply dropped; with the pool disabled this is a plain drop.
pub fn recycle(v: Vec<f32>) {
    let Some(c) = class_for_recycle(v.capacity()) else {
        return;
    };
    with_pool(
        |p| {
            if !p.enabled {
                return;
            }
            let csize = class_size(c);
            if p.classes.len() <= c {
                p.classes.resize_with(c + 1, Vec::new);
            }
            let list = &mut p.classes[c];
            if list.len() >= MAX_BUFFERS_PER_CLASS
                || p.total_bytes + csize * 4 > MAX_POOL_BYTES_PER_THREAD
            {
                return; // drop the buffer: the pool is full
            }
            let mut v = v;
            // Store at len == class size (≤ capacity, so no reallocation);
            // `resize` zeroes any grown tail, `take` truncates back down.
            v.resize(csize, 0.0);
            p.total_bytes += csize * 4;
            list.push(v);
        },
        || (),
    )
}

/// Enable or disable pooling **for the current thread**. Disabled means
/// every [`take`] allocates fresh, every [`recycle`] drops, and no counters
/// move — the pre-pool allocation behaviour, kept reachable so tests and CI
/// can prove pooled and fresh runs are bit-identical. The initial state
/// comes from the `SSDREC_POOL` environment variable (`0` disables).
pub fn set_enabled(on: bool) {
    with_pool(|p| p.enabled = on, || ())
}

/// Whether pooling is enabled on the current thread.
pub fn is_enabled() -> bool {
    with_pool(|p| p.enabled, || false)
}

/// Telemetry counters of the **current thread** only (safe to delta around
/// a region even while other threads allocate).
pub fn local_stats() -> PoolStats {
    with_pool(|p| p.counters.snapshot(), PoolStats::default)
}

/// Telemetry counters summed over **every** thread that ever used the pool
/// (the `/metrics` and bench-report view).
pub fn global_stats() -> PoolStats {
    let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    let mut total = PoolStats::default();
    for c in reg.iter() {
        let s = c.snapshot();
        total.hits += s.hits;
        total.misses += s.misses;
        total.bytes_recycled += s.bytes_recycled;
    }
    total
}

/// Zero the current thread's counters.
pub fn reset_local_stats() {
    with_pool(|p| p.counters.reset(), || ())
}

/// Zero every thread's counters (bench runs isolate their measurements).
pub fn reset_global_stats() {
    let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    for c in reg.iter() {
        c.reset();
    }
}

/// Drop every buffer held by the current thread's free-lists (memory
/// pressure relief; the counters are unaffected).
pub fn clear_local() {
    with_pool(
        |p| {
            p.classes.clear();
            p.total_bytes = 0;
        },
        || (),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that toggle the (thread-local) enable flag or
    /// depend on exact free-list contents against each other; each test
    /// starts from an empty pool and zeroed local counters.
    fn fresh(f: impl FnOnce()) {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let was = is_enabled();
        set_enabled(true);
        clear_local();
        reset_local_stats();
        f();
        clear_local();
        set_enabled(was);
    }

    #[test]
    fn class_rounding() {
        assert_eq!(class_for_take(1), 0);
        assert_eq!(class_for_take(8), 0);
        assert_eq!(class_for_take(9), 1);
        assert_eq!(class_for_take(16), 1);
        assert_eq!(class_for_take(100), class_for_take(128));
        assert_eq!(class_for_recycle(7), None);
        assert_eq!(class_for_recycle(8), Some(0));
        assert_eq!(class_for_recycle(100), Some(class_for_take(64)));
        assert_eq!(class_size(class_for_take(100)), 128);
    }

    #[test]
    fn take_recycle_take_hits() {
        fresh(|| {
            let v = take(100);
            assert_eq!(v.len(), 100);
            assert_eq!(local_stats().misses, 1);
            recycle(v);
            let w = take(70); // same 128-class as 100
            assert_eq!(w.len(), 70);
            let s = local_stats();
            assert_eq!((s.hits, s.misses), (1, 1));
            assert_eq!(s.bytes_recycled, 70 * 4);
            recycle(w);
        });
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        fresh(|| {
            let mut v = take(32);
            v.fill(7.5);
            recycle(v);
            let z = take_zeroed(20); // same 32-class as the dirty buffer
            assert_eq!(local_stats().hits, 1, "must reuse the dirty buffer");
            assert!(z.iter().all(|&x| x == 0.0));
        });
    }

    #[test]
    fn disabled_pool_neither_stores_nor_counts() {
        fresh(|| {
            set_enabled(false);
            let v = take(64);
            assert!(v.iter().all(|&x| x == 0.0));
            recycle(v);
            let w = take(64);
            recycle(w);
            set_enabled(true);
            let s = local_stats();
            assert_eq!((s.hits, s.misses, s.bytes_recycled), (0, 0, 0));
            // Nothing was stored while disabled: the next take must miss.
            let x = take(64);
            assert_eq!(local_stats().misses, 1);
            recycle(x);
        });
    }

    #[test]
    fn zero_length_take_is_free() {
        fresh(|| {
            assert!(take(0).is_empty());
            assert!(take_zeroed(0).is_empty());
            let s = local_stats();
            assert_eq!(s.hits + s.misses, 0);
        });
    }

    #[test]
    fn stats_since_computes_deltas() {
        let a = PoolStats {
            hits: 10,
            misses: 4,
            bytes_recycled: 100,
        };
        let b = PoolStats {
            hits: 25,
            misses: 5,
            bytes_recycled: 300,
        };
        let d = b.since(&a);
        assert_eq!((d.hits, d.misses, d.bytes_recycled), (15, 1, 200));
        assert!((d.hit_rate() - 15.0 / 16.0).abs() < 1e-12);
        assert_eq!(PoolStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn global_stats_cover_other_threads() {
        // Other tests allocate concurrently, so only the *delta* around the
        // spawned thread is asserted — it must include that thread's one
        // miss and one hit, which local_stats (ours) never sees.
        fresh(|| {
            let local_before = local_stats();
            let global_before = global_stats();
            std::thread::spawn(|| {
                set_enabled(true);
                let v = take(1 << 20);
                recycle(v);
                let v = take(1 << 20);
                recycle(v);
            })
            .join()
            .unwrap();
            let d = global_stats().since(&global_before);
            assert!(d.hits >= 1 && d.misses >= 1, "delta {d:?}");
            assert_eq!(local_stats(), local_before, "stayed off this thread");
        });
    }
}
