//! # ssdrec-tensor
//!
//! A compact, pure-Rust deep-learning substrate: dense `f32` tensors, a
//! tape-based reverse-mode autograd engine, standard neural layers (Linear,
//! Embedding, GRU/LSTM/Bi-LSTM, multi-head attention, transformer blocks,
//! Gumbel-Softmax, frequency-domain filtering) and optimizers (Adam, SGD).
//!
//! This crate exists because the SSDRec reproduction (ICDE 2024) needs a DL
//! framework and the Rust ecosystem does not ship one suited to this
//! workload; see `DESIGN.md` at the workspace root for the substitution
//! rationale. Gradients are verified against central finite differences in
//! the `graph` test module.
//!
//! ## Quick example
//!
//! ```
//! use ssdrec_tensor::{Graph, Tensor};
//!
//! let mut g = Graph::new();
//! let x = g.param(Tensor::new(vec![1.0, 2.0], &[2]));
//! let y = g.mul(x, x);           // y = x²
//! let loss = g.sum_all(y);
//! let grads = g.backward(loss);
//! assert_eq!(grads.get(x).unwrap().data(), &[2.0, 4.0]); // dy/dx = 2x
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod gradtest;
pub mod graph;
pub mod init;
pub mod kernels;
pub mod nn;
pub mod optim;
pub mod persist;
pub mod pool;
pub mod rng;
pub mod tensor;

pub use backend::{
    backend_kind, set_backend, with_backend, with_each_backend, Activation, Backend, BackendKind,
};
pub use gradtest::fd_check_all_params;
pub use graph::{Gradients, Graph, Var};
pub use optim::{Adam, Binding, ParamRef, ParamStore, Sgd};
pub use persist::{load_params, save_params};
pub use rng::Rng;
pub use tensor::Tensor;
