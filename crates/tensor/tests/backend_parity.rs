//! Backend parity: the property-tested kernel bits-contract.
//!
//! `Blocked` must agree with the `Reference` oracle within
//! [`KERNEL_BITS_MAX_ULPS`] (0 under contract v1 — exact bits) on
//! randomized shapes, including ragged/odd sizes that stress the 8×8 panel
//! edges; each backend must be insensitive to row partitioning and to stale
//! pool-buffer contents; and the fused graph ops (bias+activation,
//! scale+mask+softmax) must reproduce their unfused node chains bit-for-bit
//! — values *and* gradients — under both backends.

use ssdrec_tensor::backend::{
    assert_within_ulps, Backend, BackendKind, Blocked, Reference, KERNEL_BITS_MAX_ULPS,
};
use ssdrec_tensor::{kernels, with_each_backend, Activation, Graph, Rng, Tensor};
use ssdrec_testkit::{gens, property, Gen};

/// Deterministic pseudo-random data in `[-1, 1)`.
fn fill(n: usize, salt: u64) -> Vec<f32> {
    let mut r = Rng::seed(salt ^ 0x5eed_babe);
    (0..n).map(|_| r.next_f32() * 2.0 - 1.0).collect()
}

/// Dimension generator biased toward the 8×8 panel-edge cases
/// {0,1,7,8,9,63,64,65}, shrinking toward 0.
fn dims() -> Gen<usize> {
    const EDGES: [usize; 8] = [0, 1, 7, 8, 9, 63, 64, 65];
    Gen::new(
        |rng| {
            if rng.between(0, 1) == 1 {
                EDGES[rng.between(0, EDGES.len() - 1)]
            } else {
                rng.between(0, 65)
            }
        },
        |&v| {
            let mut out = Vec::new();
            for c in [0, 1, v / 2, v.saturating_sub(1)] {
                if c < v && !out.contains(&c) {
                    out.push(c);
                }
            }
            out
        },
    )
}

/// Like [`dims`] but never 0 (for row kernels whose `n = 0` case is handled
/// above the backend).
fn dims1() -> Gen<usize> {
    const EDGES: [usize; 7] = [1, 7, 8, 9, 63, 64, 65];
    Gen::new(
        |rng| {
            if rng.between(0, 1) == 1 {
                EDGES[rng.between(0, EDGES.len() - 1)]
            } else {
                rng.between(1, 65)
            }
        },
        |&v| {
            let mut out = Vec::new();
            for c in [1, v / 2, v - 1] {
                if (1..v).contains(&c) && !out.contains(&c) {
                    out.push(c);
                }
            }
            out
        },
    )
}

fn gemm_once(
    be: &dyn Backend,
    variant: usize,
    m: usize,
    k: usize,
    n: usize,
    seed: usize,
) -> Vec<f32> {
    let (ta, tb) = [(false, false), (true, false), (false, true), (true, true)][variant];
    let a = fill(m * k, seed as u64 * 4 + 1);
    let b = fill(k * n, seed as u64 * 4 + 2);
    let mut out = vec![0.0f32; m * n];
    be.gemm_rows(&a, ta, &b, tb, m, k, n, &mut out, 0, m);
    out
}

property! {
    cases = 96;

    /// Blocked gemm matches the oracle within the pinned ULP bound on all
    /// four transpose variants, including degenerate and partial-panel
    /// shapes.
    fn gemm_parity_all_variants(
        m in dims(),
        k in dims(),
        n in dims(),
        variant in gens::usizes(0, 4),
        seed in gens::usizes(0, 1 << 16),
    ) {
        let want = gemm_once(&Reference, variant, m, k, n, seed);
        let got = gemm_once(&Blocked, variant, m, k, n, seed);
        assert_within_ulps(
            &want,
            &got,
            KERNEL_BITS_MAX_ULPS,
            &format!("gemm variant={variant} m={m} k={k} n={n}"),
        );
    }

    /// Each backend is insensitive to output-row partitioning: computing
    /// rows `[0, r)` and `[r, m)` separately is bit-identical to one call.
    /// This is the property that makes the thread pool's row chunking (and
    /// hence any thread count) bit-stable.
    fn gemm_row_partition_bit_identical(
        m in dims1(),
        k in dims(),
        n in dims1(),
        variant in gens::usizes(0, 4),
        r in gens::usizes(0, 66),
    ) {
        let r = r.min(m);
        let (ta, tb) = [(false, false), (true, false), (false, true), (true, true)][variant];
        let a = fill(m * k, 11);
        let b = fill(k * n, 12);
        for (be, name) in [(&Reference as &dyn Backend, "reference"), (&Blocked, "blocked")] {
            let mut whole = vec![0.0f32; m * n];
            be.gemm_rows(&a, ta, &b, tb, m, k, n, &mut whole, 0, m);
            let mut split = vec![0.0f32; m * n];
            let (lo, hi) = split.split_at_mut(r * n);
            be.gemm_rows(&a, ta, &b, tb, m, k, n, lo, 0, r);
            be.gemm_rows(&a, ta, &b, tb, m, k, n, hi, r, m);
            assert_within_ulps(
                &whole,
                &split,
                0,
                &format!("{name} split at {r} (variant={variant} m={m} k={k} n={n})"),
            );
        }
    }

    /// Row softmax / log-softmax / LayerNorm parity on ragged shapes.
    fn row_kernel_parity(
        rows in dims(),
        n in dims1(),
        seed in gens::usizes(0, 1 << 16),
    ) {
        let src = fill(rows * n, seed as u64);
        let gamma = fill(n, seed as u64 + 7);
        let beta = fill(n, seed as u64 + 8);
        let mut want = vec![0.0f32; rows * n];
        let mut got = vec![0.0f32; rows * n];
        for (label, run) in [
            ("softmax", 0usize),
            ("log_softmax", 1),
            ("layer_norm", 2),
        ] {
            for (be, dst) in [
                (&Reference as &dyn Backend, &mut want),
                (&Blocked, &mut got),
            ] {
                dst.fill(0.0);
                match run {
                    0 => be.softmax_rows(&src, dst, n),
                    1 => be.log_softmax_rows(&src, dst, n),
                    _ => be.layer_norm_rows(&src, &gamma, &beta, dst, n),
                }
            }
            assert_within_ulps(
                &want,
                &got,
                KERNEL_BITS_MAX_ULPS,
                &format!("{label} rows={rows} n={n}"),
            );
        }
    }

    /// Fused bias+activation parity across backends, and bit-equality of
    /// the fused graph node against the unfused add_bcast → activation
    /// chain (values and gradients) under each backend.
    fn bias_act_matches_unfused_chain(
        rows in dims(),
        n in dims1(),
        act_ix in gens::usizes(0, 4),
        seed in gens::usizes(0, 1 << 16),
    ) {
        let act = [
            Activation::Identity,
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
        ][act_ix];
        let xs = fill(rows * n, seed as u64 + 1);
        let bs = fill(n, seed as u64 + 2);

        // Backend-direct parity.
        let mut want = vec![0.0f32; rows * n];
        let mut got = vec![0.0f32; rows * n];
        Reference.bias_act(&xs, &bs, act, &mut want);
        Blocked.bias_act(&xs, &bs, act, &mut got);
        assert_within_ulps(
            &want,
            &got,
            KERNEL_BITS_MAX_ULPS,
            &format!("bias_act {act:?} rows={rows} n={n}"),
        );

        // Fused node vs unfused chain, per backend, values + grads.
        with_each_backend(|kind| {
            let run = |fused: bool| {
                let mut g = Graph::new();
                let x = g.param(Tensor::new(xs.clone(), &[rows, n]));
                let b = g.param(Tensor::new(bs.clone(), &[n]));
                let y = if fused {
                    g.bias_act(x, b, act)
                } else {
                    let s = g.add_bcast(x, b);
                    g.activation(s, act)
                };
                let loss = g.sum_all(y);
                let grads = g.backward(loss);
                (
                    g.value(y).data().to_vec(),
                    grads.get(x).unwrap().data().to_vec(),
                    grads.get(b).unwrap().data().to_vec(),
                )
            };
            let (fy, fgx, fgb) = run(true);
            let (uy, ugx, ugb) = run(false);
            let ctx = format!("bias_act fused-vs-unfused {act:?} on {kind:?}");
            assert_within_ulps(&uy, &fy, 0, &ctx);
            assert_within_ulps(&ugx, &fgx, 0, &ctx);
            assert_within_ulps(&ugb, &fgb, 0, &ctx);
        });
    }

    /// Fused scale+mask+softmax vs the unfused scale → mask-add → softmax
    /// chain: bit-equal values and gradients (through both the scores and
    /// the mask), per backend, for no mask, a broadcast T×T mask and a full
    /// B×T×T mask.
    fn scaled_masked_softmax_matches_unfused_chain(
        b in dims1(),
        t in dims1(),
        mask_kind in gens::usizes(0, 3),
        seed in gens::usizes(0, 1 << 16),
    ) {
        let b = b.min(9);
        let t = t.min(17);
        let scale = 0.37;
        let scores = fill(b * t * t, seed as u64 + 3);
        // An attention-style additive mask: mostly 0, some -1e9.
        let mask_len = if mask_kind == 1 { t * t } else { b * t * t };
        let mask_vals: Vec<f32> = fill(mask_len, seed as u64 + 4)
            .into_iter()
            .map(|v| if v > 0.4 { -1e9 } else { 0.0 })
            .collect();
        with_each_backend(|kind| {
            let run = |fused: bool| {
                let mut g = Graph::new();
                let x = g.param(Tensor::new(scores.clone(), &[b, t, t]));
                let mask = match mask_kind {
                    0 => None,
                    1 => Some(g.param(Tensor::new(mask_vals.clone(), &[t, t]))),
                    _ => Some(g.param(Tensor::new(mask_vals.clone(), &[b, t, t]))),
                };
                let y = if fused {
                    g.scaled_masked_softmax(x, scale, mask)
                } else {
                    let s = g.scale(x, scale);
                    let s = match mask {
                        Some(m) if mask_kind == 1 => g.add_bcast(s, m),
                        Some(m) => g.add(s, m),
                        None => s,
                    };
                    g.softmax_last(s)
                };
                let loss = g.sum_all(y);
                let grads = g.backward(loss);
                (
                    g.value(y).data().to_vec(),
                    grads.get(x).unwrap().data().to_vec(),
                    mask.map(|m| grads.get(m).unwrap().data().to_vec()),
                )
            };
            let (fy, fgx, fgm) = run(true);
            let (uy, ugx, ugm) = run(false);
            let ctx = format!("smsm fused-vs-unfused mask_kind={mask_kind} on {kind:?}");
            assert_within_ulps(&uy, &fy, 0, &ctx);
            assert_within_ulps(&ugx, &fgx, 0, &ctx);
            match (ugm, fgm) {
                (Some(u), Some(f)) => assert_within_ulps(&u, &f, 0, &ctx),
                (None, None) => {}
                _ => panic!("{ctx}: mask gradient presence mismatch"),
            }
        });
    }
}

/// The blocked gemm packs operands into pool buffers with unspecified
/// contents; poisoning the pool with NaNs between two identical calls must
/// not change a single output bit (i.e. no stale lane is ever read).
#[test]
fn blocked_gemm_ignores_stale_pool_contents() {
    for &(m, k, n) in &[(13, 9, 21), (8, 64, 8), (1, 7, 65), (9, 1, 9)] {
        for variant in 0..4 {
            let want = gemm_once(&Blocked, variant, m, k, n, 99);
            // Poison pool buffers of the sizes the blocked gemm takes.
            ssdrec_tensor::pool::recycle(vec![f32::NAN; k * 8]);
            ssdrec_tensor::pool::recycle(vec![f32::NAN; k * n]);
            let got = gemm_once(&Blocked, variant, m, k, n, 99);
            assert_within_ulps(
                &want,
                &got,
                0,
                &format!("stale-pool gemm variant={variant} m={m} k={k} n={n}"),
            );
        }
    }
}

/// Degenerate (zero-sized) dims through the public matmul/matmul_backward
/// paths: every rank case must produce the right-shaped all-zero result
/// without panicking (regression: `chunks_mut(0)` used to panic in the
/// batched paths, and gemm's row-grain heuristic silently assumed `k ≥ 1`).
#[test]
fn matmul_zero_dims_all_rank_cases() {
    with_each_backend(|kind| {
        for &(m, k, n) in &[(0, 3, 4), (2, 0, 4), (2, 3, 0), (0, 0, 0)] {
            for &bs in &[0usize, 1, 3] {
                // (shape of a, shape of b) for the four rank cases.
                let cases: [(Vec<usize>, Vec<usize>); 4] = [
                    (vec![m, k], vec![k, n]),
                    (vec![bs, m, k], vec![bs, k, n]),
                    (vec![bs, m, k], vec![k, n]),
                    (vec![m, k], vec![bs, k, n]),
                ];
                for (ash, bsh) in cases {
                    let a = Tensor::new(fill(ash.iter().product(), 5), &ash);
                    let b = Tensor::new(fill(bsh.iter().product(), 6), &bsh);
                    let out = kernels::matmul(&a, &b);
                    let batched = ash.len() == 3 || bsh.len() == 3;
                    let want_shape: Vec<usize> = if batched { vec![bs, m, n] } else { vec![m, n] };
                    assert_eq!(
                        out.shape(),
                        &want_shape[..],
                        "matmul {ash:?}×{bsh:?} on {kind:?}"
                    );
                    assert!(
                        out.data().iter().all(|&v| v == 0.0),
                        "zero-dim matmul must be all zeros"
                    );
                    let gout = Tensor::new(fill(out.len(), 7), out.shape());
                    let (ga, gb) = kernels::matmul_backward(&a, &b, &gout);
                    assert_eq!(ga.shape(), &ash[..], "ga shape {ash:?}×{bsh:?}");
                    assert_eq!(gb.shape(), &bsh[..], "gb shape {ash:?}×{bsh:?}");
                }
            }
        }
    });
}

/// Zero-sized last dimension through softmax/log-softmax/LayerNorm and the
/// fused ops (regression: `chunks(0)` used to panic).
#[test]
fn row_ops_zero_last_dim() {
    with_each_backend(|_| {
        let x = Tensor::zeros(&[3, 0]);
        assert_eq!(kernels::softmax_last(&x).shape(), &[3, 0]);
        assert_eq!(kernels::log_softmax_last(&x).shape(), &[3, 0]);
        let y = kernels::layer_norm(&x, &Tensor::zeros(&[0]), &Tensor::zeros(&[0]));
        assert_eq!(y.shape(), &[3, 0]);
        let f = kernels::bias_act(&x, &Tensor::zeros(&[0]), Activation::Relu);
        assert_eq!(f.shape(), &[3, 0]);
        let s = kernels::scaled_masked_softmax(&x, 0.5, None);
        assert_eq!(s.shape(), &[3, 0]);
    });
}

/// End-to-end graph equality across backends: a small attention-style
/// forward/backward produces bit-identical outputs and gradients under
/// `Reference` and `Blocked` (contract v1: 0 ULPs).
#[test]
fn graph_forward_backward_bits_equal_across_backends() {
    let mut per_backend: Vec<(BackendKind, Vec<f32>, Vec<f32>)> = Vec::new();
    with_each_backend(|kind| {
        let mut g = Graph::new();
        let x = g.param(Tensor::new(fill(2 * 5 * 8, 21), &[2, 5, 8]));
        let w = g.param(Tensor::new(fill(8 * 8, 22), &[8, 8]));
        let h = g.matmul(x, w);
        let attn = g.scaled_masked_softmax(h, 0.35, None);
        let out = g.matmul(attn, w);
        let ln_g = g.param(Tensor::new(fill(8, 23), &[8]));
        let ln_b = g.param(Tensor::new(fill(8, 24), &[8]));
        let normed = g.layer_norm(out, ln_g, ln_b);
        let loss = g.sum_all(normed);
        let grads = g.backward(loss);
        per_backend.push((
            kind,
            g.value(normed).data().to_vec(),
            grads.get(w).unwrap().data().to_vec(),
        ));
    });
    let [(_, ref y0, ref gw0), (_, ref y1, ref gw1)] = per_backend[..] else {
        panic!("expected two backends");
    };
    assert_within_ulps(y0, y1, KERNEL_BITS_MAX_ULPS, "cross-backend forward");
    assert_within_ulps(gw0, gw1, KERNEL_BITS_MAX_ULPS, "cross-backend gradient");
}
