//! Finite-difference gradient verification for every NN layer in the
//! substrate, via `ssdrec_testkit::check_grads` (bridged through
//! `fd_check_all_params`).
//!
//! Each test registers the layer's input as an extra store parameter, so the
//! check covers gradients with respect to both weights and inputs. Losses
//! are weighted sums through a `tanh` so that no gradient is trivially
//! constant. All builds are deterministic (fixed seeds), so these tests
//! cannot flake.

use ssdrec_tensor::nn::{
    causal_mask, gumbel_softmax, BiLstm, DftFilter, Embedding, FeedForward, Gru, GumbelMode,
    LayerNorm, Linear, Lstm, MultiHeadAttention, TransformerBlock,
};
use ssdrec_tensor::{fd_check_all_params, Binding, Graph, ParamRef, ParamStore, Rng, Tensor, Var};

const EPS: f32 = 1e-2;
const TOL: f32 = 1e-3;

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::seed(seed);
    let n: usize = shape.iter().product();
    Tensor::new((0..n).map(|_| rng.uniform(-1.0, 1.0)).collect(), shape)
}

/// Weighted `tanh` readout: a scalar loss that keeps every output coordinate
/// relevant and every gradient non-constant.
fn readout(g: &mut Graph, out: Var, seed: u64) -> Var {
    let shape = g.value(out).shape().to_vec();
    let w = g.constant(rand_tensor(&shape, seed));
    let t = g.tanh(out);
    let p = g.mul(t, w);
    g.sum_all(p)
}

/// Register an input tensor as a checkable parameter.
fn input_param(store: &mut ParamStore, shape: &[usize], seed: u64) -> ParamRef {
    store.add("input", rand_tensor(shape, seed))
}

/// Run the FD check under both kernel backends, so the fused backward paths
/// are verified against finite differences on each backend — not just
/// against each other. Returns the worst relative error across backends.
fn fd_check_both(
    store: &mut ParamStore,
    eps: f32,
    tol: f32,
    build: impl Fn(&mut Graph, &Binding) -> Var,
) -> f32 {
    let mut worst = 0.0f32;
    ssdrec_tensor::with_each_backend(|_| {
        worst = worst.max(fd_check_all_params(store, eps, tol, &build));
    });
    worst
}

#[test]
fn linear_gradients() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed(1);
    let lin = Linear::new(&mut store, "lin", 5, 3, &mut rng);
    let x = input_param(&mut store, &[4, 5], 2);
    let worst = fd_check_both(&mut store, EPS, TOL, |g, bind: &Binding| {
        let xv = bind.var(x);
        let y = lin.forward(g, bind, xv);
        readout(g, y, 3)
    });
    assert!(worst <= TOL);
}

#[test]
fn embedding_gradients() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed(4);
    let emb = Embedding::new(&mut store, "emb", 7, 4, &mut rng);
    let ids = [1usize, 3, 6, 3, 0, 2];
    fd_check_both(&mut store, EPS, TOL, |g, bind: &Binding| {
        let y = emb.lookup_seq(g, bind, &ids, 2, 3);
        readout(g, y, 5)
    });
}

#[test]
fn lstm_gradients() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed(6);
    let lstm = Lstm::new(&mut store, "lstm", 3, 4, &mut rng);
    let x = input_param(&mut store, &[2, 3, 3], 7);
    fd_check_both(&mut store, EPS, TOL, |g, bind: &Binding| {
        let xv = bind.var(x);
        let h = lstm.forward(g, bind, xv);
        readout(g, h, 8)
    });
}

#[test]
fn bilstm_gradients() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed(9);
    let lstm = BiLstm::new(&mut store, "bi", 3, 3, &mut rng);
    let x = input_param(&mut store, &[2, 3, 3], 10);
    fd_check_both(&mut store, EPS, TOL, |g, bind: &Binding| {
        let xv = bind.var(x);
        let (hl, hr) = lstm.forward(g, bind, xv);
        let p = g.mul(hl, hr);
        readout(g, p, 11)
    });
}

#[test]
fn gru_gradients() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed(12);
    let gru = Gru::new(&mut store, "gru", 3, 4, &mut rng);
    let x = input_param(&mut store, &[2, 3, 3], 13);
    fd_check_both(&mut store, EPS, TOL, |g, bind: &Binding| {
        let xv = bind.var(x);
        let (all, last) = gru.forward(g, bind, xv);
        let a = readout(g, all, 14);
        let b = readout(g, last, 15);
        g.add(a, b)
    });
}

#[test]
fn multi_head_attention_gradients() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed(16);
    let mha = MultiHeadAttention::new(&mut store, "mha", 4, 2, &mut rng);
    let x = input_param(&mut store, &[2, 3, 4], 17);
    fd_check_both(&mut store, EPS, TOL, |g, bind: &Binding| {
        let xv = bind.var(x);
        let m = g.constant(causal_mask(3));
        let y = mha.forward(g, bind, xv, Some(m));
        readout(g, y, 18)
    });
}

#[test]
fn feed_forward_gradients() {
    // ReLU inside the FF block: a smaller step keeps the central difference
    // from straddling the kink at zero pre-activation.
    let mut store = ParamStore::new();
    let mut rng = Rng::seed(19);
    let ff = FeedForward::new(&mut store, "ff", 4, 8, &mut rng);
    let x = input_param(&mut store, &[2, 3, 4], 20);
    fd_check_both(&mut store, 2e-3, TOL, |g, bind: &Binding| {
        let xv = bind.var(x);
        let y = ff.forward(g, bind, xv);
        readout(g, y, 21)
    });
}

#[test]
fn transformer_block_gradients() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed(22);
    let blk = TransformerBlock::new(&mut store, "blk", 4, 2, &mut rng);
    let x = input_param(&mut store, &[2, 3, 4], 23);
    // Smaller step for the ReLU kink inside the block's feed-forward half.
    fd_check_both(&mut store, 2e-3, TOL, |g, bind: &Binding| {
        let xv = bind.var(x);
        let m = g.constant(causal_mask(3));
        let y = blk.forward(g, bind, xv, Some(m));
        readout(g, y, 24)
    });
}

#[test]
fn layer_norm_gradients() {
    let mut store = ParamStore::new();
    let ln = LayerNorm::new(&mut store, "ln", 6);
    let x = input_param(&mut store, &[3, 6], 25);
    fd_check_both(&mut store, EPS, TOL, |g, bind: &Binding| {
        let xv = bind.var(x);
        let y = ln.forward(g, bind, xv);
        readout(g, y, 26)
    });
}

#[test]
fn gumbel_softmax_soft_gradients() {
    // The soft relaxation is differentiable end-to-end; freezing the Gumbel
    // noise (fresh seeded RNG per rebuild) makes the loss deterministic so
    // finite differences are valid. The hard mode's forward is piecewise
    // constant, so only its soft surrogate gradient path is checked here.
    let mut store = ParamStore::new();
    let x = input_param(&mut store, &[3, 5], 27);
    fd_check_both(&mut store, EPS, TOL, |g, bind: &Binding| {
        let xv = bind.var(x);
        let probs = g.exp(xv);
        let mut rng = Rng::seed(123);
        let y = gumbel_softmax(g, &mut rng, probs, 0.7, GumbelMode::Soft);
        readout(g, y, 28)
    });
}

#[test]
fn dft_filter_gradients() {
    let mut store = ParamStore::new();
    let f = DftFilter::new(&mut store, "dft", 4, 3);
    let x = input_param(&mut store, &[2, 4, 3], 29);
    fd_check_both(&mut store, EPS, TOL, |g, bind: &Binding| {
        let xv = bind.var(x);
        let y = f.forward(g, bind, xv);
        readout(g, y, 30)
    });
}
