//! Property tests of the graph/pool interaction: `reset` and `truncate`
//! recycle node storage into the step-scoped buffer pool, and that must
//! never change a single bit of any surviving value, any rebuilt value, or
//! any gradient — pooled buffers carry stale contents by design, so these
//! properties catch any kernel that reads storage before overwriting it.

use ssdrec_testkit::{gens, property};

use ssdrec_tensor::{pool, Gradients, Graph, Tensor};

fn finite_vec(len: usize) -> ssdrec_testkit::Gen<Vec<f32>> {
    gens::vec_exact(gens::f32s(-4.0, 4.0), len)
}

/// A small but representative tape over `data`: params, matmul, softmax,
/// layer-norm-free nonlinearities and a scalar loss. Returns the loss bits
/// and every parameter-gradient's bits.
fn loss_and_grad_bits(g: &mut Graph, data: &[f32]) -> (u32, Vec<Vec<u32>>) {
    let w = g.param(Tensor::new(data.to_vec(), &[3, 4]));
    let x = g.constant(Tensor::new(data.iter().map(|v| v * 0.5).collect(), &[4, 3]));
    let b = g.param(Tensor::new(data[..3].to_vec(), &[3]));
    let h = g.matmul(w, x);
    let h = g.add_bcast(h, b);
    let a = g.tanh(h);
    let s = g.softmax_last(a);
    let loss = g.mean_all(s);
    let loss_bits = g.value(loss).item().to_bits();
    let grads = g.backward(loss);
    let gbits = [w, b]
        .iter()
        .map(|&p| {
            grads
                .get(p)
                .expect("param grad")
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    (loss_bits, gbits)
}

property! {
    cases = 64;

    /// `truncate(mark)` recycles the suffix but must leave every value at
    /// or below the mark bitwise untouched, and appending a fresh suffix
    /// after the truncate computes the same bits as a suffix on a graph
    /// that never held the discarded nodes.
    fn truncate_keeps_below_mark_bits(base in finite_vec(12), junk in finite_vec(12)) {
        let mut g = Graph::new();
        let w = g.param(Tensor::new(base.clone(), &[3, 4]));
        let t = g.tanh(w);
        let before: Vec<u32> = g.value(t).data().iter().map(|v| v.to_bits()).collect();
        let mark = g.mark();

        // A discarded suffix whose buffers go back to the pool…
        let j = g.constant(Tensor::new(junk.clone(), &[3, 4]));
        let _ = g.mul(t, j);
        let _ = g.softmax_last(j);
        g.truncate(mark);
        assert_eq!(g.len(), mark);
        let after: Vec<u32> = g.value(t).data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(before, after, "truncate corrupted a surviving value");

        // …and a rebuilt suffix must match a never-truncated reference.
        let s = g.softmax_last(t);
        let got: Vec<u32> = g.value(s).data().iter().map(|v| v.to_bits()).collect();
        let mut fresh = Graph::new();
        let w2 = fresh.param(Tensor::new(base, &[3, 4]));
        let t2 = fresh.tanh(w2);
        let s2 = fresh.softmax_last(t2);
        let want: Vec<u32> = fresh.value(s2).data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "post-truncate rebuild diverged");
    }

    /// `reset` + rebuild reproduces the exact bits (values, ids restart at
    /// 0, gradients) of the first build — the trainer's step-loop contract.
    fn reset_rebuild_is_bit_identical(data in finite_vec(12)) {
        let mut g = Graph::new();
        let first = loss_and_grad_bits(&mut g, &data);
        let len_first = g.len();
        g.reset();
        assert!(g.is_empty());
        let second = loss_and_grad_bits(&mut g, &data);
        assert_eq!(g.len(), len_first, "node ids must restart at 0");
        assert_eq!(first, second, "reset+rebuild changed bits");
    }

    /// Pooled and fresh-allocation execution are bit-identical: the pool
    /// manages storage, never values.
    fn pooled_vs_fresh_bits_equal(data in finite_vec(12)) {
        // Thread-local flag: property cases run on one thread, so this
        // cannot race other tests. Warm the pool first so pooled takes
        // actually reuse dirty buffers.
        let was = pool::is_enabled();
        pool::set_enabled(true);
        let mut warm = Graph::new();
        let _ = loss_and_grad_bits(&mut warm, &data);
        drop(warm);
        let mut g = Graph::new();
        let pooled = loss_and_grad_bits(&mut g, &data);
        drop(g);

        pool::set_enabled(false);
        let mut g = Graph::new();
        let fresh = loss_and_grad_bits(&mut g, &data);
        drop(g);
        pool::set_enabled(was);
        assert_eq!(pooled, fresh, "pooled execution changed bits");
    }

    /// A reused `Gradients` workspace never leaks a stale entry: after a
    /// graph reset, `backward_into` must produce exactly the grads of the
    /// new tape, even when the previous tape was larger.
    fn gradients_workspace_has_no_stale_entries(a in finite_vec(12), b in finite_vec(12)) {
        let mut g = Graph::new();
        let mut ws = Gradients::new();

        // Big first tape fills the workspace with entries.
        let w = g.param(Tensor::new(a.clone(), &[3, 4]));
        let t = g.tanh(w);
        let s = g.softmax_last(t);
        let big_loss = g.mean_all(s);
        g.backward_into(big_loss, &mut ws);
        let big_len = ws.len();
        assert!(big_len > 2);

        // Rebuild a tiny second tape after reset; node ids overlap the old
        // tape's, so any stale workspace entry would surface here.
        g.reset();
        let w = g.param(Tensor::new(b[..4].to_vec(), &[4]));
        let loss = g.sum_all(w);
        g.backward_into(loss, &mut ws);
        assert_eq!(ws.len(), g.len(), "workspace must shrink to the new tape");
        assert!(ws.len() < big_len);
        let got = ws.get(w).expect("grad of the only param");
        assert_eq!(got.data(), &[1.0; 4], "sum_all grad is all-ones");
    }
}
