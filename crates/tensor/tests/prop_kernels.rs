//! Property-based tests of the tensor kernels and autograd invariants,
//! running on the in-workspace `ssdrec-testkit` property framework.

use ssdrec_testkit::{gens, property};

use ssdrec_tensor::{kernels, Graph, Tensor};

fn finite_vec(len: usize) -> ssdrec_testkit::Gen<Vec<f32>> {
    gens::vec_exact(gens::f32s(-10.0, 10.0), len)
}

property! {
    cases = 64;

    /// softmax rows always form a probability distribution.
    fn softmax_rows_are_distributions(data in finite_vec(24)) {
        let t = Tensor::new(data, &[4, 6]);
        let s = kernels::softmax_last(&t);
        for row in s.data().chunks(6) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// softmax is invariant to adding a constant per row.
    fn softmax_shift_invariance(data in finite_vec(12), c in gens::f32s(-5.0, 5.0)) {
        let a = Tensor::new(data.clone(), &[2, 6]);
        let b = Tensor::new(data.iter().map(|x| x + c).collect(), &[2, 6]);
        let (sa, sb) = (kernels::softmax_last(&a), kernels::softmax_last(&b));
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    /// transpose is an involution.
    fn transpose_involution(data in finite_vec(24)) {
        let t = Tensor::new(data, &[2, 3, 4]);
        assert_eq!(kernels::transpose_last(&kernels::transpose_last(&t)), t);
    }

    /// A·I = A for the identity matrix.
    fn matmul_identity(data in finite_vec(12)) {
        let a = Tensor::new(data, &[3, 4]);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.data_mut()[i * 4 + i] = 1.0;
        }
        let prod = kernels::matmul(&a, &eye);
        for (x, y) in prod.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    /// Matmul distributes over addition: (A+B)·C = A·C + B·C.
    fn matmul_distributes(a in finite_vec(6), b in finite_vec(6), c in finite_vec(6)) {
        let ta = Tensor::new(a, &[2, 3]);
        let tb = Tensor::new(b, &[2, 3]);
        let tc = Tensor::new(c, &[3, 2]);
        let mut sum = ta.clone();
        sum.add_assign(&tb);
        let lhs = kernels::matmul(&sum, &tc);
        let mut rhs = kernels::matmul(&ta, &tc);
        rhs.add_assign(&kernels::matmul(&tb, &tc));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// concat then slice recovers both parts exactly.
    fn concat_slice_roundtrip(a in finite_vec(8), b in finite_vec(12)) {
        let ta = Tensor::new(a, &[4, 2]);
        let tb = Tensor::new(b, &[4, 3]);
        let cat = kernels::concat_last(&[&ta, &tb]);
        assert_eq!(kernels::slice_last(&cat, 0, 2), ta);
        assert_eq!(kernels::slice_last(&cat, 2, 3), tb);
    }

    /// gather/scatter are adjoint: ⟨gather(W), G⟩ = ⟨W, scatter(G)⟩.
    fn gather_scatter_adjoint(
        w in finite_vec(10),
        gsel in finite_vec(6),
        idx in gens::vec_exact(gens::usizes(0, 5), 3),
    ) {
        let tw = Tensor::new(w, &[5, 2]);
        let tg = Tensor::new(gsel, &[3, 2]);
        let fwd = kernels::gather_rows(&tw, &idx);
        let lhs: f32 = fwd.data().iter().zip(tg.data()).map(|(x, y)| x * y).sum();
        let bwd = kernels::scatter_rows(&[5, 2], &idx, &tg);
        let rhs: f32 = tw.data().iter().zip(bwd.data()).map(|(x, y)| x * y).sum();
        assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// Autograd linearity: d(sum(c·x))/dx = c everywhere.
    fn gradient_of_linear_is_exact(data in finite_vec(6), c in gens::f32s(-3.0, 3.0)) {
        let mut g = Graph::new();
        let x = g.param(Tensor::new(data, &[6]));
        let y = g.scale(x, c);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        for &gv in grads.get(x).unwrap().data() {
            assert!((gv - c).abs() < 1e-5);
        }
    }

    /// The chain rule through exp/ln composes to identity gradient where
    /// defined: d(sum(ln(exp(x))))/dx = 1.
    fn ln_exp_inverse_gradient(data in gens::vec_exact(gens::f32s(-3.0, 3.0), 5)) {
        let mut g = Graph::new();
        let x = g.param(Tensor::new(data, &[5]));
        let e = g.exp(x);
        let l = g.ln(e);
        let loss = g.sum_all(l);
        let grads = g.backward(loss);
        for &gv in grads.get(x).unwrap().data() {
            assert!((gv - 1.0).abs() < 1e-3, "grad {gv}");
        }
    }

    /// sum_time equals explicit per-step accumulation.
    fn sum_time_matches_manual(data in finite_vec(24)) {
        let t = Tensor::new(data, &[2, 3, 4]);
        let s = kernels::sum_time(&t);
        for b in 0..2 {
            for d in 0..4 {
                let manual: f32 = (0..3).map(|ti| t.data()[(b * 3 + ti) * 4 + d]).sum();
                assert!((s.data()[b * 4 + d] - manual).abs() < 1e-4);
            }
        }
    }

    /// LayerNorm output is exactly standardised when gamma=1, beta=0.
    fn layer_norm_standardises(data in finite_vec(16)) {
        let t = Tensor::new(data, &[2, 8]);
        let y = kernels::layer_norm(&t, &Tensor::ones(&[8]), &Tensor::zeros(&[8]));
        for row in y.data().chunks(8) {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-3);
        }
    }
}
