//! # ssdrec-faults
//!
//! A deterministic fault-injection runtime for chaos testing the serve and
//! training paths. Production code marks **named injection sites**:
//!
//! ```
//! fn read_request_guarded() -> Result<(), std::io::Error> {
//!     ssdrec_faults::point("serve.read")?;
//!     // ... the real read ...
//!     Ok(())
//! }
//! ```
//!
//! With nothing armed, [`point`] is a single relaxed atomic load — no lock,
//! no allocation, no branch history beyond one predictable compare — so the
//! sites can stay in release builds permanently (the `bench_serve` /
//! `bench_alloc` contracts are asserted with the crate linked but idle).
//!
//! A **plan** arms faults at specific sites. Each spec names a site, a kind
//! and the 1-based armed hit on which it fires, and fires **exactly once**:
//!
//! * `error` — the site returns an [`Injected`] error (convertible to
//!   `std::io::Error`), exercising the caller's recovery path;
//! * `delay<MS>` — the site blocks for `MS` milliseconds (e.g. `delay50`),
//!   simulating a slow client, disk or worker;
//! * `panic` — the site panics, simulating a crashed worker or killed
//!   process. Callers that claim crash-resilience must catch it.
//!
//! Plans come from the environment (`SSDREC_FAULTS=site:kind:nth,...` via
//! [`arm_from_env`], read once by the CLI at startup) or programmatically
//! via [`arm`]. Per-site hit and fire counters ([`hits`], [`fired`],
//! [`snapshot`]) let tests and `/metrics` assert exactly which faults
//! triggered. Everything is deterministic: the Nth hit of a site fires the
//! same way on every run — there is no probabilistic injection, so chaos
//! tests are replayable bit-for-bit. (Test-side helpers — the `FaultPlan`
//! builder and fire-count assertions — live in `ssdrec_testkit::fault`,
//! which layers on this crate.)

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What an armed fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Return an [`Injected`] error from the site.
    Error,
    /// Sleep this many milliseconds, then proceed normally.
    DelayMs(u64),
    /// Panic at the site.
    Panic,
}

/// One armed fault: fires at `site` on its `nth` armed hit (1-based),
/// exactly once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The injection-site name (e.g. `serve.read`).
    pub site: String,
    /// What happens when it fires.
    pub kind: FaultKind,
    /// The 1-based hit count at which it fires.
    pub nth: u64,
}

impl FaultSpec {
    /// Parse one `site:kind:nth` spec. `kind` is `error`, `panic` or
    /// `delay<MS>`; `nth` must be ≥ 1.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut parts = s.split(':');
        let (site, kind, nth) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(site), Some(kind), Some(nth), None) => (site, kind, nth),
            _ => return Err(format!("fault spec {s:?} is not site:kind:nth")),
        };
        if site.is_empty() {
            return Err(format!("fault spec {s:?} has an empty site"));
        }
        let kind = if kind == "error" {
            FaultKind::Error
        } else if kind == "panic" {
            FaultKind::Panic
        } else if let Some(ms) = kind.strip_prefix("delay") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("fault spec {s:?}: bad delay milliseconds {ms:?}"))?;
            FaultKind::DelayMs(ms)
        } else {
            return Err(format!(
                "fault spec {s:?}: unknown kind {kind:?} (error | panic | delay<MS>)"
            ));
        };
        let nth: u64 = nth
            .parse()
            .map_err(|_| format!("fault spec {s:?}: bad hit count {nth:?}"))?;
        if nth == 0 {
            return Err(format!("fault spec {s:?}: hit counts are 1-based"));
        }
        Ok(FaultSpec {
            site: site.to_string(),
            kind,
            nth,
        })
    }

    /// Parse a comma-separated list of specs (the `SSDREC_FAULTS` format).
    /// Empty input yields an empty plan.
    pub fn parse_list(s: &str) -> Result<Vec<FaultSpec>, String> {
        s.split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(FaultSpec::parse)
            .collect()
    }
}

/// The error returned from a site when an `error`-kind fault fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Injected {
    /// The site that fired.
    pub site: String,
}

impl std::fmt::Display for Injected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at {}", self.site)
    }
}

impl std::error::Error for Injected {}

impl From<Injected> for std::io::Error {
    fn from(e: Injected) -> Self {
        std::io::Error::other(e.to_string())
    }
}

#[derive(Default)]
struct SiteStats {
    hits: u64,
    fired: u64,
}

#[derive(Default)]
struct Registry {
    specs: Vec<(FaultSpec, bool)>, // (spec, consumed)
    sites: BTreeMap<String, SiteStats>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    specs: Vec::new(),
    sites: BTreeMap::new(),
});

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    // A panic-kind fault unwinds through this lock by design; recover the
    // poisoned state rather than wedging every later site.
    REGISTRY.lock().unwrap_or_else(|p| p.into_inner())
}

/// Arm a plan, replacing any previous one and resetting all counters.
/// An empty plan leaves the runtime disarmed.
pub fn arm(specs: Vec<FaultSpec>) {
    let mut reg = registry();
    reg.sites.clear();
    reg.specs = specs.into_iter().map(|s| (s, false)).collect();
    ARMED.store(!reg.specs.is_empty(), Ordering::SeqCst);
}

/// Arm from the `SSDREC_FAULTS` environment variable (if set). Returns how
/// many specs were armed; an unset or empty variable arms nothing.
pub fn arm_from_env() -> Result<usize, String> {
    match std::env::var("SSDREC_FAULTS") {
        Ok(v) if !v.trim().is_empty() => {
            let specs = FaultSpec::parse_list(&v).map_err(|e| format!("SSDREC_FAULTS: {e}"))?;
            let n = specs.len();
            arm(specs);
            Ok(n)
        }
        _ => Ok(0),
    }
}

/// Disarm everything and clear all counters. [`point`] returns to its
/// single-atomic-load fast path.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    let mut reg = registry();
    reg.specs.clear();
    reg.sites.clear();
}

/// A named injection site. Zero-cost when disarmed; with a plan armed,
/// counts the hit and fires any spec scheduled for it (see crate docs for
/// the three kinds).
#[inline]
pub fn point(site: &str) -> Result<(), Injected> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    hit_slow(site)
}

#[cold]
fn hit_slow(site: &str) -> Result<(), Injected> {
    let kind = {
        let mut reg = registry();
        let hits = {
            let stats = reg.sites.entry(site.to_string()).or_default();
            stats.hits += 1;
            stats.hits
        };
        let kind = reg
            .specs
            .iter_mut()
            .find(|(s, consumed)| !consumed && s.site == site && s.nth == hits)
            .map(|(s, consumed)| {
                *consumed = true;
                s.kind
            });
        if kind.is_some() {
            reg.sites.get_mut(site).expect("just inserted").fired += 1;
        }
        kind
    }; // lock released before any sleep/panic
    match kind {
        None => Ok(()),
        Some(FaultKind::Error) => Err(Injected {
            site: site.to_string(),
        }),
        Some(FaultKind::DelayMs(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(FaultKind::Panic) => panic!("ssdrec-faults: injected panic at {site}"),
    }
}

/// How many times `site` was traversed while armed.
pub fn hits(site: &str) -> u64 {
    registry().sites.get(site).map_or(0, |s| s.hits)
}

/// How many faults fired at `site`.
pub fn fired(site: &str) -> u64 {
    registry().sites.get(site).map_or(0, |s| s.fired)
}

/// Total faults fired across all sites since the plan was armed.
pub fn total_fired() -> u64 {
    registry().sites.values().map(|s| s.fired).sum()
}

/// Per-site `(site, hits, fired)` counters, sorted by site name.
pub fn snapshot() -> Vec<(String, u64, u64)> {
    registry()
        .sites
        .iter()
        .map(|(k, v)| (k.clone(), v.hits, v.fired))
        .collect()
}

/// Whether any plan is currently armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is global; tests arming plans must not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn parses_all_three_kinds() {
        assert_eq!(
            FaultSpec::parse("serve.read:error:1").unwrap(),
            FaultSpec {
                site: "serve.read".into(),
                kind: FaultKind::Error,
                nth: 1
            }
        );
        assert_eq!(
            FaultSpec::parse("a.b:delay250:3").unwrap().kind,
            FaultKind::DelayMs(250)
        );
        assert_eq!(
            FaultSpec::parse("x:panic:2").unwrap().kind,
            FaultKind::Panic
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "site",
            "site:error",
            "site:error:0",
            "site:error:x",
            ":error:1",
            "site:nonsense:1",
            "site:delayxx:1",
            "a:error:1:extra",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert!(FaultSpec::parse_list("a:error:1,bad").is_err());
    }

    #[test]
    fn parse_list_handles_whitespace_and_empties() {
        let specs = FaultSpec::parse_list(" a:error:1 , b:panic:2 ,").unwrap();
        assert_eq!(specs.len(), 2);
        assert!(FaultSpec::parse_list("").unwrap().is_empty());
    }

    #[test]
    fn disarmed_points_are_silent_and_uncounted() {
        let _g = locked();
        disarm();
        for _ in 0..100 {
            point("nowhere").unwrap();
        }
        assert_eq!(hits("nowhere"), 0);
        assert_eq!(total_fired(), 0);
    }

    #[test]
    fn error_fires_on_exactly_the_nth_hit() {
        let _g = locked();
        arm(vec![FaultSpec {
            site: "t.err".into(),
            kind: FaultKind::Error,
            nth: 3,
        }]);
        assert!(point("t.err").is_ok());
        assert!(point("t.err").is_ok());
        let e = point("t.err").unwrap_err();
        assert_eq!(e.site, "t.err");
        // Consumed: later hits pass again.
        assert!(point("t.err").is_ok());
        assert_eq!(hits("t.err"), 4);
        assert_eq!(fired("t.err"), 1);
        disarm();
    }

    #[test]
    fn sites_count_independently() {
        let _g = locked();
        arm(vec![
            FaultSpec::parse("a:error:1").unwrap(),
            FaultSpec::parse("b:error:2").unwrap(),
        ]);
        assert!(point("b").is_ok()); // b hit 1: passes
        assert!(point("a").is_err()); // a hit 1: fires
        assert!(point("b").is_err()); // b hit 2: fires
        assert_eq!(total_fired(), 2);
        assert_eq!(snapshot(), vec![("a".into(), 1, 1), ("b".into(), 2, 1)]);
        disarm();
    }

    #[test]
    fn panic_kind_panics_and_registry_recovers() {
        let _g = locked();
        arm(vec![FaultSpec::parse("t.panic:panic:1").unwrap()]);
        let r = std::panic::catch_unwind(|| point("t.panic"));
        assert!(r.is_err(), "panic kind must panic");
        // The runtime stays usable after the unwind.
        assert!(point("t.panic").is_ok());
        assert_eq!(fired("t.panic"), 1);
        disarm();
    }

    #[test]
    fn delay_kind_blocks_then_proceeds() {
        let _g = locked();
        arm(vec![FaultSpec::parse("t.slow:delay30:1").unwrap()]);
        let t0 = std::time::Instant::now();
        assert!(point("t.slow").is_ok());
        assert!(t0.elapsed() >= std::time::Duration::from_millis(30));
        // Second hit is undelayed (spec consumed).
        let t1 = std::time::Instant::now();
        assert!(point("t.slow").is_ok());
        assert!(t1.elapsed() < std::time::Duration::from_millis(30));
        disarm();
    }

    #[test]
    fn arm_from_env_roundtrip() {
        let _g = locked();
        // Not set → disarmed, Ok(0).
        std::env::remove_var("SSDREC_FAULTS");
        assert_eq!(arm_from_env().unwrap(), 0);
        assert!(!is_armed());
        std::env::set_var("SSDREC_FAULTS", "e.x:error:1,e.y:delay10:2");
        assert_eq!(arm_from_env().unwrap(), 2);
        assert!(is_armed());
        assert!(point("e.x").is_err());
        std::env::set_var("SSDREC_FAULTS", "broken-spec");
        assert!(arm_from_env().is_err());
        std::env::remove_var("SSDREC_FAULTS");
        disarm();
    }

    #[test]
    fn injected_converts_to_io_error() {
        let e: std::io::Error = Injected { site: "s".into() }.into();
        assert!(e.to_string().contains("injected fault at s"));
    }
}
