//! Small graph-composition helpers shared across SSDRec's stages.

use ssdrec_graph::Csr;
use ssdrec_tensor::{Graph, Tensor, Var};

/// Convert a CSR adjacency into a dense `rows×cols` weight matrix
/// (`out[i][j] = w(i→j)`), used as a constant message-passing operator.
pub fn csr_to_dense(csr: &Csr, rows: usize, cols: usize) -> Tensor {
    let mut t = Tensor::zeros(&[rows, cols]);
    for i in 0..csr.num_nodes().min(rows) {
        for &(j, w) in csr.neighbors(i) {
            if j < cols {
                t.data_mut()[i * cols + j] = w;
            }
        }
    }
    t
}

/// Multiply every element of `a` by a *learnable scalar* `s` (shape `[1]`),
/// keeping the gradient path to `s` (realised as a rank-1 matmul).
pub fn scale_by_scalar(g: &mut Graph, a: Var, s: Var) -> Var {
    let shape = g.value(a).shape().to_vec();
    let n = g.value(a).len();
    let flat = g.reshape(a, &[n, 1]);
    let s2 = g.reshape(s, &[1, 1]);
    let y = g.matmul(flat, s2);
    g.reshape(y, &shape)
}

/// Add a *learnable scalar* `b` (shape `[1]`) to every element of `a`.
pub fn add_scalar_var(g: &mut Graph, a: Var, b: Var) -> Var {
    let shape = g.value(a).shape().to_vec();
    let n = g.value(a).len();
    let ones = g.constant(Tensor::ones(&[n, 1]));
    let b2 = g.reshape(b, &[1, 1]);
    let tiled = g.matmul(ones, b2);
    let tiled = g.reshape(tiled, &shape);
    g.add(a, tiled)
}

/// Expand a `B×T×1` gate to `B×T×d` and multiply it into `h`.
pub fn gate_rows(g: &mut Graph, h: Var, gate: Var, d: usize) -> Var {
    let ones = g.constant(Tensor::ones(&[1, d]));
    let expanded = g.matmul(gate, ones);
    g.mul(h, expanded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_to_dense_places_weights() {
        let csr = Csr::from_lists(vec![vec![(1, 0.5)], vec![(0, 2.0), (2, 1.0)], vec![]]);
        let d = csr_to_dense(&csr, 3, 3);
        assert_eq!(d.data(), &[0.0, 0.5, 0.0, 2.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn scale_by_scalar_grads_flow_to_scalar() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::new(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let s = g.param(Tensor::scalar(3.0));
        let y = scale_by_scalar(&mut g, a, s);
        assert_eq!(g.value(y).data(), &[3.0, 6.0, 9.0, 12.0]);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(s).unwrap().item(), 10.0);
    }

    #[test]
    fn add_scalar_var_tiles() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::zeros(&[2, 3]));
        let b = g.param(Tensor::scalar(0.5));
        let y = add_scalar_var(&mut g, a, b);
        assert_eq!(g.value(y).data(), &[0.5; 6]);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(b).unwrap().item(), 6.0);
    }

    #[test]
    fn gate_rows_zeroes_gated() {
        let mut g = Graph::new();
        let h = g.constant(Tensor::ones(&[1, 2, 3]));
        let gate = g.constant(Tensor::new(vec![1.0, 0.0], &[1, 2, 1]));
        let y = gate_rows(&mut g, h, gate, 3);
        assert_eq!(g.value(y).data(), &[1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }
}
