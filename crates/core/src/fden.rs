//! Pluggable `f_den` for stage 3 (paper Eq. 14: "we can use any denoising
//! model").
//!
//! Two gates are provided:
//!
//! * [`FdenKind::Hsd`] — HSD's hierarchical inconsistency signals (the
//!   paper's own experimental choice), and
//! * [`FdenKind::AttentionGate`] — a DSAN-style gate: a learnable virtual
//!   target attends over the sequence and each position's keep score is its
//!   (sigmoid-squashed) attention affinity. Cheaper than the Bi-LSTM core
//!   (no recurrence) and a useful ablation of how much the bidirectional
//!   sequentiality signal matters.
//!
//! Both emit raw keep scores `B×T`; calibration, priors, sampling and
//! masking are shared machinery in [`crate::denoise_stage`].

use ssdrec_tensor::nn::Linear;
use ssdrec_tensor::{Binding, Graph, ParamRef, ParamStore, Rng, Var};

/// Which denoising gate stage 3 uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum FdenKind {
    /// HSD's Bi-LSTM sequentiality × user-interest product (paper default).
    #[default]
    Hsd,
    /// DSAN-style virtual-target attention gate.
    AttentionGate,
}

/// The attention-gate `f_den`: keep score of position `t` is
/// `σ(q·k_t/√d) · σ(h_t·e_u/√d)` — target-affinity × user-interest, with a
/// learnable query (virtual target) and key projection.
pub struct AttentionGate {
    query: ParamRef,
    wk: Linear,
    dim: usize,
}

impl AttentionGate {
    /// Build for representation width `d`.
    pub fn new(store: &mut ParamStore, name: &str, d: usize, rng: &mut Rng) -> Self {
        AttentionGate {
            query: store.add_xavier(format!("{name}.query"), &[1, d], rng),
            wk: Linear::new_no_bias(store, &format!("{name}.wk"), d, d, rng),
            dim: d,
        }
    }

    /// Raw keep scores `B×T` in `(0,1)`, same contract as
    /// [`ssdrec_denoise::HsdCore::keep_probs`].
    pub fn keep_probs(&self, g: &mut Graph, bind: &Binding, h_seq: Var, user: Var) -> Var {
        const KEEP_PRIOR: f32 = 1.0;
        let (b, t, d) = g.value(h_seq).dims3();
        debug_assert_eq!(d, self.dim);
        let scale = 1.0 / (d as f32).sqrt();

        // Virtual-target affinity: σ(q·k_t/√d + prior).
        let k = self.wk.forward(g, bind, h_seq); // B×T×d
        let q = bind.var(self.query); // 1×d
        let kt = g.transpose_last(k); // B×d×T
        let aff = g.matmul(q, kt); // B×1×T
        let aff = g.reshape(aff, &[b, t]);
        let aff = g.scale(aff, scale);
        let aff = g.add_scalar(aff, KEEP_PRIOR);
        let s1 = g.sigmoid(aff);

        // User interest, as in the HSD core.
        let u3 = g.reshape(user, &[b, d, 1]);
        let dots = g.matmul(h_seq, u3);
        let dots = g.reshape(dots, &[b, t]);
        let dots = g.scale(dots, scale);
        let dots = g.add_scalar(dots, KEEP_PRIOR);
        let s2 = g.sigmoid(dots);

        g.mul(s1, s2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdrec_tensor::Tensor;

    fn rand_seq(b: usize, t: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed(seed);
        Tensor::new(
            (0..b * t * d).map(|_| rng.uniform(-1.0, 1.0)).collect(),
            &[b, t, d],
        )
    }

    #[test]
    fn scores_shape_and_range() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(0);
        let gate = AttentionGate::new(&mut store, "g", 8, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let h = g.constant(rand_seq(2, 5, 8, 1));
        let u = g.constant(rand_seq(1, 2, 8, 2).reshaped(&[2, 8]));
        let p = gate.keep_probs(&mut g, &bind, h, u);
        assert_eq!(g.value(p).shape(), &[2, 5]);
        assert!(g.value(p).data().iter().all(|&x| x > 0.0 && x < 1.0));
    }

    #[test]
    fn gradients_reach_query_and_keys() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(3);
        let gate = AttentionGate::new(&mut store, "g", 8, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let h = g.constant(rand_seq(1, 4, 8, 4));
        let u = g.constant(rand_seq(1, 1, 8, 5).reshaped(&[1, 8]));
        let p = gate.keep_probs(&mut g, &bind, h, u);
        let loss = g.sum_all(p);
        let grads = g.backward(loss);
        assert!(grads.get(bind.var(gate.query)).is_some());
        assert!(grads.get(bind.var(gate.wk.weight())).is_some());
    }

    #[test]
    fn different_positions_get_different_scores() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(6);
        let gate = AttentionGate::new(&mut store, "g", 8, &mut rng);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let h = g.constant(rand_seq(1, 6, 8, 7));
        let u = g.constant(rand_seq(1, 1, 8, 8).reshaped(&[1, 8]));
        let p = gate.keep_probs(&mut g, &bind, h, u);
        let v = g.value(p).data();
        assert!(v.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6));
    }
}
