//! # ssdrec-core
//!
//! SSDRec: Self-Augmented Sequence Denoising for Sequential Recommendation
//! (ICDE 2024) — the paper's primary contribution, implemented as a
//! three-stage learning paradigm:
//!
//! 1. [`relation_encoder`] — a global relation encoder over the
//!    multi-relation graph (inter-sequence prior knowledge),
//! 2. [`augment`] — a self-augmentation module that selects a position and
//!    two items to enrich short sequences before denoising,
//! 3. [`denoise_stage`] — a hierarchical denoising module that removes false
//!    augmentations and pinpoints all noise in the raw sequence.
//!
//! The assembled [`SsdRec`] model plugs any backbone from `ssdrec-models`
//! into Eq. 15 and trains with the shared workspace trainer.

#![warn(missing_docs)]

pub mod augment;
pub mod denoise_stage;
pub mod fden;
pub mod model;
pub mod relation_encoder;
pub mod util;

pub use augment::{Augmented, SelfAugmenter};
pub use denoise_stage::HierarchicalDenoiser;
pub use fden::{AttentionGate, FdenKind};
pub use model::{CaseStudy, FrozenTables, SsdRec, SsdRecConfig};
pub use relation_encoder::{GlobalRelationEncoder, RelationAdjacency, RelationOutput};
