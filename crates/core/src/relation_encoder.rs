//! Stage 1: the global relation encoder (paper §III-C, Eq. 2–8).
//!
//! Encodes the five relation types of the multi-relation graph into
//! multi-relation representations `h_v` / `h_u` for every item and user:
//!
//! * **transitional** (Eq. 2–3): attention over incoming vs outgoing
//!   directed neighbourhoods, fused with the ego embedding by a 2×1
//!   convolution (two scalar filter taps + bias),
//! * **incompatible** (Eq. 4): undirected aggregation + the same conv form,
//! * **interactional** (Eq. 5): LightGCN-style one-hop propagation,
//! * **similar / dissimilar users** (Eq. 6–7): conv aggregation,
//! * **fusion** (Eq. 8): two feed-forward layers per node type.
//!
//! Message passing is realised as dense constant adjacency matmuls — the
//! graphs in this workspace have a few hundred nodes, so dense operators are
//! both simple and fast.

use ssdrec_graph::MultiRelationGraph;
use ssdrec_tensor::nn::Linear;
use ssdrec_tensor::{Activation, Binding, Graph, ParamRef, ParamStore, Rng, Tensor, Var};

use crate::util::{add_scalar_var, csr_to_dense, scale_by_scalar};

/// The paper's `f(x‖e | Θ)` aggregator: a convolution with a 2×1 filter over
/// the stacked `[aggregate; ego]` pair — two scalar taps and a scalar bias.
pub struct PairConv {
    w: ParamRef,
    b: ParamRef,
}

impl PairConv {
    /// New conv with taps initialised to average the two inputs.
    pub fn new(store: &mut ParamStore, name: &str) -> Self {
        let w = store.add(format!("{name}.w"), Tensor::new(vec![0.5, 0.5], &[2]));
        let b = store.add_zeros(format!("{name}.b"), &[1]);
        PairConv { w, b }
    }

    /// `out = w₀·agg + w₁·ego + b` (element-wise over `N×d`).
    pub fn forward(&self, g: &mut Graph, bind: &Binding, agg: Var, ego: Var) -> Var {
        let w = bind.var(self.w);
        let w0 = g.slice_last(w, 0, 1);
        let w1 = g.slice_last(w, 1, 1);
        let a = scale_by_scalar(g, agg, w0);
        let e = scale_by_scalar(g, ego, w1);
        let s = g.add(a, e);
        add_scalar_var(g, s, bind.var(self.b))
    }
}

/// Constant dense adjacency operators derived from the multi-relation graph.
pub struct RelationAdjacency {
    /// `(V+1)×(V+1)` incoming transitional weights (`row v ← its sources`).
    pub trans_in: Tensor,
    /// `(V+1)×(V+1)` outgoing transitional weights.
    pub trans_out: Tensor,
    /// `(V+1)×(V+1)` incompatible weights.
    pub incompatible: Tensor,
    /// `(V+1)×U` item←user interaction weights.
    pub item_user: Tensor,
    /// `U×(V+1)` user←item interaction weights.
    pub user_item: Tensor,
    /// `U×U` similar-user weights.
    pub similar: Tensor,
    /// `U×U` dissimilar-user weights.
    pub dissimilar: Tensor,
}

impl RelationAdjacency {
    /// Densify the CSR relations once at model-build time.
    pub fn from_graph(mg: &MultiRelationGraph) -> Self {
        let v = mg.num_items + 1;
        let u = mg.num_users;
        RelationAdjacency {
            trans_in: csr_to_dense(&mg.trans_in, v, v),
            trans_out: csr_to_dense(&mg.trans_out, v, v),
            incompatible: csr_to_dense(&mg.incompatible, v, v),
            item_user: csr_to_dense(&mg.item_user, v, u),
            user_item: csr_to_dense(&mg.user_item, u, v),
            similar: csr_to_dense(&mg.similar, u, u),
            dissimilar: csr_to_dense(&mg.dissimilar, u, u),
        }
    }
}

/// Stage 1: the global relation encoder.
pub struct GlobalRelationEncoder {
    /// Attention projections for incoming/outgoing transitional messages
    /// (Eq. 2's `W⁺_{v_i v}` and `W⁺_{v v_j}`).
    w_att_in: Linear,
    w_att_out: Linear,
    conv_trans: PairConv,
    conv_incomp: PairConv,
    conv_sim: PairConv,
    conv_dissim: PairConv,
    /// Fusion FFNs (Eq. 8): two feed-forward layers per node type.
    fuse_v1: Linear,
    fuse_v2: Linear,
    fuse_u1: Linear,
    fuse_u2: Linear,
    adj: RelationAdjacency,
    /// Whether Eq. 2's directed attention is used; `false` replaces it with
    /// an untyped mean of incoming/outgoing messages (the DESIGN §6.2
    /// ablation).
    use_attention: bool,
}

/// The encoder's outputs: multi-relation representations for every node.
pub struct RelationOutput {
    /// `(V+1)×d` item representations `h_v`.
    pub items: Var,
    /// `U×d` user representations `h_u`.
    pub users: Var,
}

impl GlobalRelationEncoder {
    /// Build the encoder for representation width `d`.
    pub fn new(store: &mut ParamStore, d: usize, adj: RelationAdjacency, rng: &mut Rng) -> Self {
        Self::with_attention(store, d, adj, true, rng)
    }

    /// Build with the directed-attention toggle explicit.
    pub fn with_attention(
        store: &mut ParamStore,
        d: usize,
        adj: RelationAdjacency,
        use_attention: bool,
        rng: &mut Rng,
    ) -> Self {
        GlobalRelationEncoder {
            w_att_in: Linear::new_no_bias(store, "gre.att_in", d, d, rng),
            w_att_out: Linear::new_no_bias(store, "gre.att_out", d, d, rng),
            conv_trans: PairConv::new(store, "gre.conv_trans"),
            conv_incomp: PairConv::new(store, "gre.conv_incomp"),
            conv_sim: PairConv::new(store, "gre.conv_sim"),
            conv_dissim: PairConv::new(store, "gre.conv_dissim"),
            fuse_v1: Linear::new(store, "gre.fuse_v1", 3 * d, d, rng),
            fuse_v2: Linear::new(store, "gre.fuse_v2", d, d, rng),
            fuse_u1: Linear::new(store, "gre.fuse_u1", 3 * d, d, rng),
            fuse_u2: Linear::new(store, "gre.fuse_u2", d, d, rng),
            adj,
            use_attention,
        }
    }

    /// Encode all nodes. `item_table` is the `(V+1)×d` embedding table,
    /// `user_table` the `U×d` one.
    pub fn forward(
        &self,
        g: &mut Graph,
        bind: &Binding,
        item_table: Var,
        user_table: Var,
    ) -> RelationOutput {
        let (v, _d) = g.value(item_table).dims2();

        // --- item transitional (Eq. 2–3) ---------------------------------
        let a_in = g.constant(self.adj.trans_in.clone());
        let a_out = g.constant(self.adj.trans_out.clone());
        let msg_in = g.matmul(a_in, item_table); // Σ w⁺ e_{v_i}
        let msg_out = g.matmul(a_out, item_table); // Σ w⁺ e_{v_j}
        let agg_t = if self.use_attention {
            // α = ρ( σ(e_v W_in · msg_in) ‖ σ(e_v W_out · msg_out) ) per node.
            let q_in = self.w_att_in.forward(g, bind, item_table);
            let q_out = self.w_att_out.forward(g, bind, item_table);
            let qi = g.mul(q_in, msg_in);
            let s_in = g.sum_last(qi); // V
            let s_in = g.sigmoid(s_in);
            let qo = g.mul(q_out, msg_out);
            let s_out = g.sum_last(qo);
            let s_out = g.sigmoid(s_out);
            let si = g.reshape(s_in, &[v, 1]);
            let so = g.reshape(s_out, &[v, 1]);
            let scores = g.concat_last(&[si, so]); // V×2
            let alpha = g.softmax_last(scores);
            let a_i = g.slice_last(alpha, 0, 1); // V×1
            let a_j = g.slice_last(alpha, 1, 1);
            // Weighted directed aggregate: α_i·msg_in + α_j·msg_out.
            let d = g.value(item_table).dims2().1;
            let ones = g.constant(Tensor::ones(&[1, d]));
            let ai_e = g.matmul(a_i, ones);
            let aj_e = g.matmul(a_j, ones);
            let win = g.mul(ai_e, msg_in);
            let wout = g.mul(aj_e, msg_out);
            g.add(win, wout)
        } else {
            // Ablation: untyped mean, direction ignored.
            let s = g.add(msg_in, msg_out);
            g.scale(s, 0.5)
        };
        let h_v_plus = self.conv_trans.forward(g, bind, agg_t, item_table);

        // --- item incompatible (Eq. 4) ------------------------------------
        let a_inc = g.constant(self.adj.incompatible.clone());
        let msg_inc = g.matmul(a_inc, item_table);
        let h_v_minus = self.conv_incomp.forward(g, bind, msg_inc, item_table);

        // --- interactional (Eq. 5, LightGCN-style) ------------------------
        let a_iu = g.constant(self.adj.item_user.clone());
        let h_v_int = g.matmul(a_iu, user_table);
        let a_ui = g.constant(self.adj.user_item.clone());
        let h_u_int = g.matmul(a_ui, item_table);

        // --- user similar / dissimilar (Eq. 6–7) --------------------------
        let a_sim = g.constant(self.adj.similar.clone());
        let msg_sim = g.matmul(a_sim, user_table);
        let h_u_plus = self.conv_sim.forward(g, bind, msg_sim, user_table);
        let a_dis = g.constant(self.adj.dissimilar.clone());
        let msg_dis = g.matmul(a_dis, user_table);
        let h_u_minus = self.conv_dissim.forward(g, bind, msg_dis, user_table);

        // --- fusion (Eq. 8) -------------------------------------------------
        let vcat = g.concat_last(&[h_v_plus, h_v_minus, h_v_int]);
        let v1 = self.fuse_v1.forward_act(g, bind, vcat, Activation::Relu);
        let hv = self.fuse_v2.forward(g, bind, v1);
        // Residual keeps raw ID semantics available downstream.
        let items = g.add(hv, item_table);

        let ucat = g.concat_last(&[h_u_plus, h_u_minus, h_u_int]);
        let u1 = self.fuse_u1.forward_act(g, bind, ucat, Activation::Relu);
        let hu = self.fuse_u2.forward(g, bind, u1);
        let users = g.add(hu, user_table);

        RelationOutput { items, users }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdrec_data::SyntheticConfig;
    use ssdrec_graph::{build_graph, GraphConfig};
    use ssdrec_tensor::nn::Embedding;

    fn setup() -> (
        ParamStore,
        Embedding,
        Embedding,
        GlobalRelationEncoder,
        usize,
        usize,
    ) {
        let ds = SyntheticConfig::beauty().scaled(0.1).generate();
        let mg = build_graph(&ds, &GraphConfig::default());
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(0);
        let d = 8;
        let item_emb = Embedding::new(&mut store, "item", mg.num_items + 1, d, &mut rng);
        let user_emb = Embedding::new(&mut store, "user", mg.num_users, d, &mut rng);
        let adj = RelationAdjacency::from_graph(&mg);
        let enc = GlobalRelationEncoder::new(&mut store, d, adj, &mut rng);
        (store, item_emb, user_emb, enc, mg.num_items, mg.num_users)
    }

    #[test]
    fn output_shapes_cover_all_nodes() {
        let (store, item_emb, user_emb, enc, num_items, num_users) = setup();
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let it = item_emb.table(&bind);
        let ut = user_emb.table(&bind);
        let out = enc.forward(&mut g, &bind, it, ut);
        assert_eq!(g.value(out.items).shape(), &[num_items + 1, 8]);
        assert_eq!(g.value(out.users).shape(), &[num_users, 8]);
        assert!(!g.value(out.items).has_non_finite());
    }

    #[test]
    fn gradients_reach_embeddings_and_convs() {
        let (store, item_emb, user_emb, enc, _, _) = setup();
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let it = item_emb.table(&bind);
        let ut = user_emb.table(&bind);
        let out = enc.forward(&mut g, &bind, it, ut);
        let si = g.sum_all(out.items);
        let su = g.sum_all(out.users);
        let loss = g.add(si, su);
        let grads = g.backward(loss);
        assert!(grads.get(bind.var(item_emb.weight())).is_some());
        assert!(grads.get(bind.var(user_emb.weight())).is_some());
        assert!(grads.get(bind.var(enc.conv_trans.w)).is_some());
    }

    #[test]
    fn relations_change_representations() {
        // The encoder must produce something different from raw embeddings
        // for nodes that actually have edges.
        let (store, item_emb, user_emb, enc, num_items, _) = setup();
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let it = item_emb.table(&bind);
        let ut = user_emb.table(&bind);
        let out = enc.forward(&mut g, &bind, it, ut);
        let raw = g.value(it).clone();
        let enc_v = g.value(out.items);
        let mut changed = 0;
        for i in 1..=num_items {
            if raw.row(i) != enc_v.row(i) {
                changed += 1;
            }
        }
        assert!(changed > num_items / 2, "only {changed} items changed");
    }

    #[test]
    fn mean_aggregation_variant_runs_and_differs() {
        let ds = SyntheticConfig::beauty().scaled(0.1).generate();
        let mg = build_graph(&ds, &GraphConfig::default());
        let d = 8;
        let run = |use_att: bool| {
            let mut store = ParamStore::new();
            let mut rng = Rng::seed(0);
            let item_emb = Embedding::new(&mut store, "item", mg.num_items + 1, d, &mut rng);
            let user_emb = Embedding::new(&mut store, "user", mg.num_users, d, &mut rng);
            let adj = RelationAdjacency::from_graph(&mg);
            let enc = GlobalRelationEncoder::with_attention(&mut store, d, adj, use_att, &mut rng);
            let mut g = Graph::new();
            let bind = store.bind_all(&mut g);
            let it = item_emb.table(&bind);
            let ut = user_emb.table(&bind);
            let out = enc.forward(&mut g, &bind, it, ut);
            g.value(out.items).data().to_vec()
        };
        let with_att = run(true);
        let without = run(false);
        assert_ne!(with_att, without, "attention toggle has no effect");
        assert!(without.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn pair_conv_identity_when_weights_are_1_0() {
        let mut store = ParamStore::new();
        let pc = PairConv::new(&mut store, "pc");
        store.get_mut(pc.w).data_mut().copy_from_slice(&[0.0, 1.0]);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let agg = g.constant(Tensor::full(&[2, 3], 9.0));
        let ego = g.constant(Tensor::new((0..6).map(|x| x as f32).collect(), &[2, 3]));
        let out = pc.forward(&mut g, &bind, agg, ego);
        assert_eq!(g.value(out).data(), g.value(ego).data());
    }
}
