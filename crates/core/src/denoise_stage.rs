//! Stage 3: the hierarchical denoising module (paper §III-E, Eq. 13–14).
//!
//! First, the *same position-selector machinery* (with its own parameters
//! `Θ_hdm`) re-scores the augmented sequence and attenuates inserted items
//! whose inconsistency exceeds the uniform level — removing false
//! augmentations (Eq. 13). Then any denoising model `f_den` — here HSD's
//! core, as in the paper's experiments — consumes the refined sequence and
//! pinpoints all noise in the *raw* positions (Eq. 14).

use ssdrec_denoise::HsdCore;
use ssdrec_tensor::{Binding, Graph, ParamStore, Rng, Tensor, Var};

use crate::augment::{Augmented, SelfAugmenter};
use crate::fden::{AttentionGate, FdenKind};

/// The hierarchical denoiser: HDM scorer + pluggable `f_den` (HSD core).
pub struct HierarchicalDenoiser {
    /// `Θ_hdm`: an independent instance of the position-selector scorer.
    pub hdm: SelfAugmenter,
    /// `f_den`: HSD's inconsistency-signal denoiser (always constructed; its
    /// calibration/masking machinery is shared by every gate).
    pub hsd: HsdCore,
    /// Alternative gate, present when `fden == FdenKind::AttentionGate`.
    attention_gate: Option<AttentionGate>,
    /// Relative keep threshold β (see `ssdrec_denoise::relative_keep`).
    pub keep_beta: f32,
    /// Calibration sharpness κ (see `HsdCore::calibrate`).
    pub keep_kappa: f32,
    dim: usize,
}

impl HierarchicalDenoiser {
    /// Build for representation width `d` with the workspace-default keep
    /// rule (β = `ssdrec_denoise::RELATIVE_KEEP_BETA`, κ = 8).
    pub fn new(store: &mut ParamStore, name: &str, d: usize, rng: &mut Rng) -> Self {
        Self::with_keep_rule(store, name, d, ssdrec_denoise::RELATIVE_KEEP_BETA, 8.0, rng)
    }

    /// Build with an explicit keep rule (for the β/κ ablation).
    pub fn with_keep_rule(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        keep_beta: f32,
        keep_kappa: f32,
        rng: &mut Rng,
    ) -> Self {
        Self::with_options(store, name, d, keep_beta, keep_kappa, FdenKind::Hsd, rng)
    }

    /// Build with every option explicit, including the `f_den` gate kind.
    pub fn with_options(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        keep_beta: f32,
        keep_kappa: f32,
        fden: FdenKind,
        rng: &mut Rng,
    ) -> Self {
        let attention_gate = (fden == FdenKind::AttentionGate)
            .then(|| AttentionGate::new(store, &format!("{name}.attn_gate"), d, rng));
        HierarchicalDenoiser {
            hdm: SelfAugmenter::new(store, &format!("{name}.hdm"), d, rng),
            hsd: HsdCore::new(store, &format!("{name}.hsd"), d, rng),
            attention_gate,
            keep_beta,
            keep_kappa,
            dim: d,
        }
    }

    /// Raw per-position keep scores from whichever `f_den` gate is active.
    fn gate_probs(&self, g: &mut Graph, bind: &Binding, h_seq: Var, user: Var) -> Var {
        match &self.attention_gate {
            Some(gate) => gate.keep_probs(g, bind, h_seq, user),
            None => self.hsd.keep_probs(g, bind, h_seq, user),
        }
    }

    /// Eq. 13: rebuild `H''_S` from the augmentation, gating each inserted
    /// row by `σ(κ·(1/(T+2) − r̂_row))` — rows more inconsistent than uniform
    /// are squashed toward zero. Returns `(H''_S, left gate, right gate)`.
    pub fn refine(
        &self,
        g: &mut Graph,
        bind: &Binding,
        h_seq: Var,
        aug: &Augmented,
    ) -> (Var, Var, Var) {
        let (b, t2, d) = g.value(aug.h_aug).dims3();
        let r = self.hdm.inconsistency_scores(g, bind, aug.h_aug); // B×T2 (>0)
                                                                   // Normalise to a distribution.
        let sums = g.sum_last(r); // B
        let sums = g.add_scalar(sums, 1e-9);
        let s2 = g.reshape(sums, &[b, 1]);
        let ones_row = g.constant(Tensor::ones(&[1, t2]));
        let denom = g.matmul(s2, ones_row); // B×T2
        let rn = g.div(r, denom);

        let uniform = 1.0 / t2 as f32;
        let kappa = 4.0 * t2 as f32;
        let gate_at = |g: &mut Graph, place: Var| -> Var {
            let rn3 = g.reshape(rn, &[b, 1, t2]);
            let v = g.matmul(rn3, place); // B×1×1
            let v = g.reshape(v, &[b, 1]);
            let v = g.scale(v, -kappa);
            let v = g.add_scalar(v, kappa * uniform);
            g.sigmoid(v) // B×1, in (0,1)
        };
        let gate_l = gate_at(g, aug.place_left);
        let gate_r = gate_at(g, aug.place_right);

        // Rebuild: base copy + gated insertions.
        let base = g.matmul(aug.copy_matrix, h_seq);
        let ones_d = g.constant(Tensor::ones(&[1, d]));
        let gl = g.matmul(gate_l, ones_d); // B×d
        let gr = g.matmul(gate_r, ones_d);
        let hl = g.mul(aug.h_left, gl);
        let hr = g.mul(aug.h_right, gr);
        let hl3 = g.reshape(hl, &[b, 1, d]);
        let hr3 = g.reshape(hr, &[b, 1, d]);
        let addl = g.matmul(aug.place_left, hl3);
        let addr = g.matmul(aug.place_right, hr3);
        let part = g.add(base, addl);
        let refined = g.add(part, addr);
        (refined, gate_l, gate_r)
    }

    /// Eq. 14 (training): compute keep probabilities on the *context*
    /// sequence (augmented-refined when available), project them back to raw
    /// positions via the copy matrix, Gumbel-sample a binary mask and apply
    /// it to the raw sequence. Returns `(H⁻_S, keep probs B×T)`.
    /// `prior`, when given, is a `B×T` constant in `(0,1)` derived from the
    /// multi-relation graph (stage-1 prior knowledge); it multiplies the
    /// learned keep probabilities before sampling.
    #[allow(clippy::too_many_arguments)]
    pub fn denoise_train(
        &self,
        g: &mut Graph,
        bind: &Binding,
        rng: &mut Rng,
        h_raw: Var,
        h_ctx: Var,
        copy_matrix: Option<Var>,
        user: Var,
        tau: f32,
        prior: Option<Var>,
    ) -> (Var, Var) {
        let mut probs_raw = self.raw_keep_probs(g, bind, h_ctx, copy_matrix, user);
        if let Some(p) = prior {
            probs_raw = g.mul(probs_raw, p);
        }
        let cal = self
            .hsd
            .calibrate(g, probs_raw, self.keep_beta, self.keep_kappa);
        let mask = self.hsd.sample_mask(g, rng, cal, tau);
        let denoised = self.hsd.apply_mask(g, h_raw, mask);
        (denoised, probs_raw)
    }

    /// Eq. 14 (inference): deterministic thresholded denoising on the raw
    /// sequence (no augmentation at test time, §III-F).
    pub fn denoise_eval(
        &self,
        g: &mut Graph,
        bind: &Binding,
        h_raw: Var,
        user: Var,
        prior: Option<Var>,
    ) -> (Var, Var) {
        let mut probs = self.gate_probs(g, bind, h_raw, user);
        if let Some(p) = prior {
            probs = g.mul(probs, p);
        }
        let mask = self.hsd.hard_mask_with(g, probs, self.keep_beta);
        let denoised = self.hsd.apply_mask(g, h_raw, mask);
        (denoised, probs)
    }

    /// Keep probabilities over raw positions, optionally computed from an
    /// augmented context and projected back through the copy matrix.
    pub fn raw_keep_probs(
        &self,
        g: &mut Graph,
        bind: &Binding,
        h_ctx: Var,
        copy_matrix: Option<Var>,
        user: Var,
    ) -> Var {
        let probs_ctx = self.gate_probs(g, bind, h_ctx, user); // B×T'
        match copy_matrix {
            None => probs_ctx,
            Some(cm) => {
                let (b, t2, t) = g.value(cm).dims3();
                let p3 = g.reshape(probs_ctx, &[b, 1, t2]);
                let praw = g.matmul(p3, cm); // B×1×T
                g.reshape(praw, &[b, t])
            }
        }
    }

    /// Representation width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::SelfAugmenter;

    fn rand_seq(b: usize, t: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed(seed);
        Tensor::new(
            (0..b * t * d).map(|_| rng.uniform(-1.0, 1.0)).collect(),
            &[b, t, d],
        )
    }

    fn setup(d: usize) -> (ParamStore, SelfAugmenter, HierarchicalDenoiser) {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(0);
        let aug = SelfAugmenter::new(&mut store, "aug", d, &mut rng);
        let hd = HierarchicalDenoiser::new(&mut store, "hd", d, &mut rng);
        (store, aug, hd)
    }

    #[test]
    fn refine_keeps_shape_and_gates_in_unit_interval() {
        let (store, aug, hd) = setup(8);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let mut rng = Rng::seed(1);
        let h = g.constant(rand_seq(2, 4, 8, 2));
        let table = g.constant(rand_seq(1, 10, 8, 3).reshaped(&[10, 8]));
        let a = aug.augment(&mut g, &bind, &mut rng, h, table, 1.0);
        let (refined, gl, gr) = hd.refine(&mut g, &bind, h, &a);
        assert_eq!(g.value(refined).shape(), &[2, 6, 8]);
        for &v in g.value(gl).data().iter().chain(g.value(gr).data()) {
            assert!(v > 0.0 && v < 1.0, "gate {v}");
        }
    }

    #[test]
    fn projected_probs_align_with_raw_positions() {
        let (store, aug, hd) = setup(8);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let mut rng = Rng::seed(4);
        let h = g.constant(rand_seq(1, 5, 8, 5));
        let table = g.constant(rand_seq(1, 10, 8, 6).reshaped(&[10, 8]));
        let a = aug.augment(&mut g, &bind, &mut rng, h, table, 1.0);
        let u = g.constant(rand_seq(1, 1, 8, 7).reshaped(&[1, 8]));
        // Probs over the augmented sequence:
        let probs_ctx = hd.hsd.keep_probs(&mut g, &bind, a.h_aug, u);
        let praw = hd.raw_keep_probs(&mut g, &bind, a.h_aug, Some(a.copy_matrix), u);
        assert_eq!(g.value(praw).shape(), &[1, 5]);
        // Raw position i maps to augmented position j; values must match.
        let p = a.positions[0];
        let ctx = g.value(probs_ctx).data().to_vec();
        let raw = g.value(praw).data().to_vec();
        for (i, &rv) in raw.iter().enumerate().take(5) {
            let j = if i < p {
                i
            } else if i == p {
                i + 1
            } else {
                i + 2
            };
            assert!((rv - ctx[j]).abs() < 1e-6, "i={i} j={j}");
        }
    }

    #[test]
    fn denoise_train_masks_raw_sequence() {
        let (store, _aug, hd) = setup(8);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let mut rng = Rng::seed(8);
        let h = g.constant(rand_seq(2, 4, 8, 9));
        let u = g.constant(rand_seq(1, 2, 8, 10).reshaped(&[2, 8]));
        let (den, probs) = hd.denoise_train(&mut g, &bind, &mut rng, h, h, None, u, 1.0, None);
        assert_eq!(g.value(den).shape(), &[2, 4, 8]);
        assert_eq!(g.value(probs).shape(), &[2, 4]);
    }

    #[test]
    fn denoise_eval_is_deterministic() {
        let (store, _aug, hd) = setup(8);
        let run = || {
            let mut g = Graph::new();
            let bind = store.bind_all(&mut g);
            let h = g.constant(rand_seq(1, 6, 8, 11));
            let u = g.constant(rand_seq(1, 1, 8, 12).reshaped(&[1, 8]));
            let (den, _) = hd.denoise_eval(&mut g, &bind, h, u, None);
            g.value(den).data().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn gradients_flow_through_refinement() {
        let (store, aug, hd) = setup(8);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let mut rng = Rng::seed(13);
        let h = g.param(rand_seq(1, 4, 8, 14));
        let table = g.constant(rand_seq(1, 10, 8, 15).reshaped(&[10, 8]));
        let a = aug.augment(&mut g, &bind, &mut rng, h, table, 1.0);
        let (refined, _, _) = hd.refine(&mut g, &bind, h, &a);
        let sq = g.mul(refined, refined);
        let loss = g.sum_all(sq);
        let grads = g.backward(loss);
        assert!(grads.get(h).is_some());
    }
}
