//! The full SSDRec model: three-stage self-augmented sequence denoising
//! wrapped around any backbone (paper §III, Fig. 2).
//!
//! Training path: embeddings → **stage 1** global relation encoding →
//! per-sequence representations `h_t = h_v + h_u/n_i` → **stage 2**
//! self-augmentation (short sequences only, training only, §III-F) →
//! **stage 3** hierarchical denoising (refine augmentations, mask noise in
//! the raw sequence) → backbone `f_seq` → full-catalogue scoring against the
//! relation-encoded item table.
//!
//! Each stage can be ablated independently (Table V's variants).

use ssdrec_data::Batch;
use ssdrec_graph::MultiRelationGraph;
use ssdrec_models::{build_encoder, BackboneKind, RecModel, SeqEncoder};
use ssdrec_tensor::nn::Embedding;
use ssdrec_tensor::{Binding, Graph, ParamStore, Rng, Tensor, Var};

use crate::augment::SelfAugmenter;
use crate::denoise_stage::HierarchicalDenoiser;
use crate::relation_encoder::{GlobalRelationEncoder, RelationAdjacency};

/// SSDRec hyper-parameters.
#[derive(Clone, Debug)]
pub struct SsdRecConfig {
    /// Embedding width `d`.
    pub dim: usize,
    /// Maximum sequence length the backbone must support.
    pub max_len: usize,
    /// The backbone `f_seq` (paper plugs in all six of Table III).
    pub backbone: BackboneKind,
    /// Initial Gumbel temperature τ (paper searches 1e-2 … 1e3, Fig. 5).
    pub tau: f32,
    /// Multiplicative τ decay, applied every `anneal_every` steps.
    pub tau_decay: f32,
    /// Steps between anneals (paper: every 40 batches).
    pub anneal_every: u64,
    /// τ floor.
    pub tau_min: f32,
    /// Only sequences shorter than this are augmented (the paper inserts
    /// "if the sequence is short").
    pub aug_short_len: usize,
    /// Stage-1 toggle (global relation encoder).
    pub stage1: bool,
    /// Use Eq. 2's directed attention in the relation encoder (`false` =
    /// untyped mean aggregation, the DESIGN §6.2 ablation).
    pub relation_attention: bool,
    /// Stage-2 toggle (self-augmentation).
    pub stage2: bool,
    /// Stage-3 toggle (hierarchical denoising).
    pub stage3: bool,
    /// Dropout on embedded sequences during training.
    pub dropout: f32,
    /// Fraction of training epochs before stage-2 augmentation activates.
    pub aug_warmup_frac: f64,
    /// Context window for the graph-coherence prior (stage-1 knowledge
    /// injected into the stage-3 gate).
    pub coherence_window: usize,
    /// Sharpness of the coherence prior `σ(κ·(c/mean − 1))`.
    pub coherence_kappa: f32,
    /// Relative keep threshold β for the stage-3 gate (drop positions with
    /// score below `β · sequence mean`).
    pub keep_beta: f32,
    /// Calibration sharpness κ for the stage-3 gate.
    pub keep_kappa: f32,
    /// Which `f_den` gate stage 3 uses (paper: HSD; attention gate is the
    /// cheap DSAN-style alternative).
    pub fden: crate::fden::FdenKind,
    /// Parameter-init / sampling seed.
    pub seed: u64,
}

impl Default for SsdRecConfig {
    fn default() -> Self {
        SsdRecConfig {
            dim: 32,
            max_len: 50,
            backbone: BackboneKind::SasRec,
            tau: 1.0,
            tau_decay: 0.98,
            anneal_every: 40,
            tau_min: 0.1,
            aug_short_len: 25,
            stage1: true,
            relation_attention: true,
            stage2: true,
            stage3: true,
            dropout: 0.1,
            aug_warmup_frac: 0.34,
            coherence_window: 3,
            coherence_kappa: 2.0,
            keep_beta: ssdrec_denoise::RELATIVE_KEEP_BETA,
            keep_kappa: 8.0,
            fden: crate::fden::FdenKind::Hsd,
            seed: 20_24,
        }
    }
}

/// The assembled SSDRec model.
pub struct SsdRec {
    /// All trainable parameters.
    pub store: ParamStore,
    item_emb: Embedding,
    user_emb: Embedding,
    relation: Option<GlobalRelationEncoder>,
    augmenter: SelfAugmenter,
    denoiser: HierarchicalDenoiser,
    backbone: Box<dyn SeqEncoder>,
    /// The multi-relation graph, retained for the stage-1 coherence prior
    /// (present iff `cfg.stage1`).
    coherence_graph: Option<MultiRelationGraph>,
    /// Configuration used to build the model.
    pub cfg: SsdRecConfig,
    /// Current Gumbel temperature.
    pub tau: f32,
    steps: u64,
    num_items: usize,
    num_users: usize,
    /// Whether stage-2 augmentation is currently active (it warms up after
    /// `cfg.aug_warmup_frac` of training so the selectors operate on
    /// meaningful representations).
    aug_active: bool,
}

/// Pieces of the training forward pass the gate-supervision loss consumes.
struct GateInfo {
    /// Keep probabilities over raw positions (`B×T`).
    probs: Var,
    /// The raw sequence representations (`B×T×d`).
    h_seq: Var,
    /// The graph-coherence prior, if stage 1 is active.
    prior: Option<Var>,
}

/// Request-independent graph nodes for frozen serving: the relation-encoded
/// item/user tables (running the stage-1 global relation encoder is the
/// expensive, input-independent part of SSDRec's eval pass), the transposed
/// scorer, and the pad mask. Produced once per worker by
/// [`SsdRec::precompute_frozen`] below a [`Graph::mark`]; consumed per
/// request by [`SsdRec::eval_scores_frozen`].
pub struct FrozenTables {
    /// Relation-encoded (or raw, when stage 1 is ablated) item table
    /// `(V+1)×d`.
    pub items: Var,
    /// Relation-encoded (or raw) user table.
    pub users: Var,
    /// `items` transposed to `d×(V+1)` for the tied-weight scorer.
    pub items_t: Var,
    /// The `[V+1]` additive mask row with `−1e9` at the pad index.
    pub pad_mask: Var,
}

/// A per-example trace for the paper's Fig. 4 case study.
#[derive(Clone, Debug)]
pub struct CaseStudy {
    /// The raw sequence.
    pub seq: Vec<usize>,
    /// Chosen augmentation position (None if the sequence was not short).
    pub position: Option<usize>,
    /// Inserted (left, right) item IDs.
    pub inserted: Option<(usize, usize)>,
    /// Final keep decision per raw position.
    pub kept: Vec<bool>,
    /// Score of the target item on the raw (un-denoised) sequence.
    pub raw_score: f32,
    /// Score of the target item on the augmented sequence (pre-denoising).
    pub augmented_score: f32,
    /// Score of the target item after denoising.
    pub denoised_score: f32,
}

impl SsdRec {
    /// Build SSDRec over a multi-relation graph built from the training data.
    pub fn new(mg: &MultiRelationGraph, cfg: SsdRecConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(cfg.seed);
        let d = cfg.dim;
        let item_emb = Embedding::new(&mut store, "item", mg.num_items + 1, d, &mut rng);
        let user_emb = Embedding::new(&mut store, "user", mg.num_users.max(1), d, &mut rng);
        let relation = cfg.stage1.then(|| {
            GlobalRelationEncoder::with_attention(
                &mut store,
                d,
                RelationAdjacency::from_graph(mg),
                cfg.relation_attention,
                &mut rng,
            )
        });
        let augmenter = SelfAugmenter::new(&mut store, "ssdrec.aug", d, &mut rng);
        let denoiser = HierarchicalDenoiser::with_options(
            &mut store,
            "ssdrec.den",
            d,
            cfg.keep_beta,
            cfg.keep_kappa,
            cfg.fden,
            &mut rng,
        );
        let backbone = build_encoder(cfg.backbone, &mut store, d, cfg.max_len + 2, &mut rng);
        let tau = cfg.tau;
        let coherence_graph = cfg.stage1.then(|| mg.clone());
        SsdRec {
            store,
            item_emb,
            user_emb,
            relation,
            augmenter,
            denoiser,
            backbone,
            coherence_graph,
            cfg,
            tau,
            steps: 0,
            num_items: mg.num_items,
            num_users: mg.num_users.max(1),
            aug_active: false,
        }
    }

    /// Number of real items.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of rows in the user-embedding table (valid user IDs are
    /// `0..num_users`); serving validates requests against this.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// The graph-coherence keep prior for a batch (`B×T` constant in
    /// `(0,1)`), or `None` when stage 1 is ablated. Per sequence, each
    /// position's transitional coherence `c_t` (see
    /// [`MultiRelationGraph::sequence_coherence`]) is normalised by the
    /// sequence mean and squashed: `σ(κ·(c_t/mean − 1))` — items much less
    /// coherent with their context than the sequence average get a low
    /// prior. Sequences with zero coherence everywhere get a neutral 0.5.
    fn coherence_prior(&self, g: &mut Graph, batch: &Batch) -> Option<Var> {
        let graph = self.coherence_graph.as_ref()?;
        let b = batch.len();
        let t = batch.seq_len;
        let kappa = self.cfg.coherence_kappa;
        let mut data = Vec::with_capacity(b * t);
        for i in 0..b {
            let c = graph.sequence_coherence(batch.seq(i), self.cfg.coherence_window);
            let mean: f32 = c.iter().sum::<f32>() / t.max(1) as f32;
            if mean <= 1e-9 {
                data.extend(std::iter::repeat_n(0.5, t));
            } else {
                data.extend(c.iter().map(|&ct| {
                    let z = kappa * (ct / mean - 1.0);
                    1.0 / (1.0 + (-z).exp())
                }));
            }
        }
        Some(g.constant(Tensor::new(data, &[b, t])))
    }

    /// Stage 1: relation-encoded (or raw) node tables.
    fn tables(&self, g: &mut Graph, bind: &Binding) -> (Var, Var) {
        let it = self.item_emb.table(bind);
        let ut = self.user_emb.table(bind);
        match &self.relation {
            Some(enc) => {
                let out = enc.forward(g, bind, it, ut);
                (out.items, out.users)
            }
            None => (it, ut),
        }
    }

    /// Build the informative item-representation sequence `H_S` with
    /// `h_t = h_v + h_u / n_i` (paper §III-D).
    fn sequence_reprs(&self, g: &mut Graph, items: Var, users: Var, batch: &Batch) -> (Var, Var) {
        let b = batch.len();
        let t = batch.seq_len;
        let hv = g.embedding(items, &batch.items); // (B·T)×d
        let hv = g.reshape(hv, &[b, t, self.cfg.dim]);
        let hu = g.embedding(users, &batch.users); // B×d
        let hu_scaled = g.scale(hu, 1.0 / t as f32);
        let hu3 = g.stack_time(&vec![hu_scaled; t]);
        let h_seq = g.add(hv, hu3);
        (h_seq, hu)
    }

    /// Score a sequence representation against the relation-encoded item
    /// table (pad masked).
    fn score_repr(&self, g: &mut Graph, items_table: Var, h_s: Var) -> Var {
        let tt = g.transpose_last(items_table);
        let logits = g.matmul(h_s, tt);
        let mut mask = Tensor::zeros(&[self.num_items + 1]);
        mask.data_mut()[0] = -1e9;
        let mv = g.constant(mask);
        g.add_bcast(logits, mv)
    }

    /// Training forward: full three-stage pipeline; returns logits plus the
    /// pieces the gate-supervision loss needs (keep probs, the raw sequence
    /// representations, and the item table for target look-ups).
    fn forward_train(
        &self,
        g: &mut Graph,
        bind: &Binding,
        batch: &Batch,
        rng: &mut Rng,
    ) -> (Var, Option<GateInfo>, Var) {
        let (items, users) = self.tables(g, bind);
        let (mut h_seq, hu) = self.sequence_reprs(g, items, users, batch);
        if self.cfg.dropout > 0.0 {
            let mask = rng.dropout_mask(g.value(h_seq).len(), self.cfg.dropout);
            h_seq = g.dropout_with_mask(h_seq, mask);
        }

        let prior = self.coherence_prior(g, batch);
        let do_aug = self.cfg.stage2
            && self.aug_active
            && batch.seq_len < self.cfg.aug_short_len
            && batch.seq_len >= 2;
        let mut gate = None;
        let h_in = if do_aug {
            let aug = self.augmenter.augment(g, bind, rng, h_seq, items, self.tau);
            if self.cfg.stage3 {
                let (refined, _gl, _gr) = self.denoiser.refine(g, bind, h_seq, &aug);
                let (denoised, probs) = self.denoiser.denoise_train(
                    g,
                    bind,
                    rng,
                    h_seq,
                    refined,
                    Some(aug.copy_matrix),
                    hu,
                    self.tau,
                    prior,
                );
                gate = Some(GateInfo {
                    probs,
                    h_seq,
                    prior,
                });
                denoised
            } else {
                // w/o stage 3: the refined/augmented sequence feeds the
                // backbone directly (no noise removal).
                let (refined, _, _) = self.denoiser.refine(g, bind, h_seq, &aug);
                refined
            }
        } else if self.cfg.stage3 {
            let (denoised, probs) = self
                .denoiser
                .denoise_train(g, bind, rng, h_seq, h_seq, None, hu, self.tau, prior);
            gate = Some(GateInfo {
                probs,
                h_seq,
                prior,
            });
            denoised
        } else {
            h_seq
        };

        let h_s = self.backbone.encode(g, bind, h_in);
        (self.score_repr(g, items, h_s), gate, items)
    }

    /// Evaluation forward: no augmentation (paper §III-F), deterministic
    /// denoising.
    fn forward_eval(&self, g: &mut Graph, bind: &Binding, batch: &Batch) -> Var {
        let (items, users) = self.tables(g, bind);
        let (h_seq, hu) = self.sequence_reprs(g, items, users, batch);
        let prior = self.coherence_prior(g, batch);
        let h_in = if self.cfg.stage3 {
            let (denoised, _) = self.denoiser.denoise_eval(g, bind, h_seq, hu, prior);
            denoised
        } else {
            h_seq
        };
        let h_s = self.backbone.encode(g, bind, h_in);
        self.score_repr(g, items, h_s)
    }

    /// Precompute the request-independent pieces of the frozen serving
    /// forward pass. Must be called on the same graph (below the
    /// [`Graph::mark`]) as later [`SsdRec::eval_scores_frozen`] calls.
    pub fn precompute_frozen(&self, g: &mut Graph, bind: &Binding) -> FrozenTables {
        let (items, users) = self.tables(g, bind);
        let items_t = g.transpose_last(items);
        let mut mask = Tensor::zeros(&[self.num_items + 1]);
        mask.data_mut()[0] = -1e9;
        let pad_mask = g.constant(mask);
        FrozenTables {
            items,
            users,
            items_t,
            pad_mask,
        }
    }

    /// Frozen-serving forward: the same kernels in the same order as
    /// [`RecModel::eval_scores`] (scores are bit-identical), except that the
    /// stage-1 relation encoding and the scorer transpose come precomputed
    /// from [`SsdRec::precompute_frozen`] instead of being re-derived per
    /// request.
    pub fn eval_scores_frozen(
        &self,
        g: &mut Graph,
        bind: &Binding,
        batch: &Batch,
        frozen: &FrozenTables,
    ) -> Var {
        let h_s = self.eval_repr_frozen(g, bind, batch, frozen);
        let logits = g.matmul(h_s, frozen.items_t);
        g.add_bcast(logits, frozen.pad_mask)
    }

    /// The request-dependent half of the frozen forward, stopped at the
    /// sequence representation `h_S` (`B×d`) — the same nodes, in the same
    /// order, as the front of [`SsdRec::eval_scores_frozen`]. ANN retrieval
    /// uses this as the query vector and defers catalogue scoring to the
    /// candidate re-rank.
    pub fn eval_repr_frozen(
        &self,
        g: &mut Graph,
        bind: &Binding,
        batch: &Batch,
        frozen: &FrozenTables,
    ) -> Var {
        let (h_seq, hu) = self.sequence_reprs(g, frozen.items, frozen.users, batch);
        let prior = self.coherence_prior(g, batch);
        let h_in = if self.cfg.stage3 {
            let (denoised, _) = self.denoiser.denoise_eval(g, bind, h_seq, hu, prior);
            denoised
        } else {
            h_seq
        };
        self.backbone.encode(g, bind, h_in)
    }

    /// Continuous keep probabilities over a raw sequence.
    pub fn keep_scores_for(&self, seq: &[usize], user: usize) -> Vec<f32> {
        let batch = Batch {
            users: vec![user],
            items: seq.to_vec(),
            seq_len: seq.len(),
            targets: vec![seq[seq.len() - 1]],
            noise: None,
        };
        let mut g = Graph::new();
        let bind = self.store.bind_all(&mut g);
        let (items, users) = self.tables(&mut g, &bind);
        let (h_seq, hu) = self.sequence_reprs(&mut g, items, users, &batch);
        let mut probs = self.denoiser.raw_keep_probs(&mut g, &bind, h_seq, None, hu);
        if let Some(p) = self.coherence_prior(&mut g, &batch) {
            probs = g.mul(probs, p);
        }
        g.value(probs).data().to_vec()
    }

    /// Deterministic keep decisions over a raw sequence (for OUP / Fig. 1),
    /// using the workspace's relative keep rule.
    pub fn keep_decisions_for(&self, seq: &[usize], user: usize) -> Vec<bool> {
        ssdrec_denoise::relative_keep(&self.keep_scores_for(seq, user), self.cfg.keep_beta)
    }

    /// Produce the Fig. 4 case-study trace for one example.
    pub fn explain(&self, seq: &[usize], user: usize, target: usize, rng: &mut Rng) -> CaseStudy {
        let batch = Batch {
            users: vec![user],
            items: seq.to_vec(),
            seq_len: seq.len(),
            targets: vec![target],
            noise: None,
        };
        let mut g = Graph::new();
        let bind = self.store.bind_all(&mut g);
        let (items, users) = self.tables(&mut g, &bind);
        let (h_seq, hu) = self.sequence_reprs(&mut g, items, users, &batch);

        // Raw score.
        let h_raw = self.backbone.encode(&mut g, &bind, h_seq);
        let raw_logits = self.score_repr(&mut g, items, h_raw);
        let raw_score = g.value(raw_logits).data()[target];

        // Augmented score (stage 2, pre-denoising).
        let (position, inserted, augmented_score) = if self.cfg.stage2 && seq.len() >= 2 {
            let aug = self
                .augmenter
                .augment(&mut g, &bind, rng, h_seq, items, self.tau);
            let h_a = self.backbone.encode(&mut g, &bind, aug.h_aug);
            let a_logits = self.score_repr(&mut g, items, h_a);
            let s = g.value(a_logits).data()[target];
            (
                Some(aug.positions[0]),
                Some((aug.left_items[0], aug.right_items[0])),
                s,
            )
        } else {
            (None, None, raw_score)
        };

        // Denoised score (stage 3).
        let prior = self.coherence_prior(&mut g, &batch);
        let (den, probs) = self.denoiser.denoise_eval(&mut g, &bind, h_seq, hu, prior);
        let h_d = self.backbone.encode(&mut g, &bind, den);
        let d_logits = self.score_repr(&mut g, items, h_d);
        let denoised_score = g.value(d_logits).data()[target];
        let kept = ssdrec_denoise::relative_keep(g.value(probs).data(), self.cfg.keep_beta);

        CaseStudy {
            seq: seq.to_vec(),
            position,
            inserted,
            kept,
            raw_score,
            augmented_score,
            denoised_score,
        }
    }
}

impl RecModel for SsdRec {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn loss(&self, g: &mut Graph, bind: &Binding, batch: &Batch, rng: &mut Rng) -> Var {
        let (logits, gate, items) = self.forward_train(g, bind, batch, rng);
        let logp = g.log_softmax_last(logits);
        let picked = g.pick_per_row(logp, &batch.targets);
        let mean = g.mean_all(picked);
        let ce = g.neg(mean);
        match gate {
            Some(GateInfo {
                probs,
                h_seq,
                prior,
            }) => {
                // Gate supervision: regress the keep probability onto the
                // graph-coherence prior (stage-1 knowledge) when available,
                // else onto HSD's intra-sequence correlation signal.
                let y = match prior {
                    Some(p) => p,
                    None => {
                        let tgt = g.embedding(items, &batch.targets);
                        self.denoiser.hsd.correlation_targets(g, h_seq, tgt)
                    }
                };
                let gl = self.denoiser.hsd.gate_loss(g, probs, y);
                g.add(ce, gl)
            }
            None => ce,
        }
    }

    fn eval_scores(&self, g: &mut Graph, bind: &Binding, batch: &Batch) -> Var {
        self.forward_eval(g, bind, batch)
    }

    fn on_epoch_start(&mut self, epoch: usize, total: usize) {
        // Warm-up curriculum: the position/item selectors only act once the
        // embeddings and relation encoder have had a fraction of training
        // to become meaningful; inserting items selected from random
        // representations corrupts early learning.
        self.aug_active = (epoch as f64) >= self.cfg.aug_warmup_frac * total as f64;
    }

    fn after_step(&mut self) {
        self.steps += 1;
        if self.steps.is_multiple_of(self.cfg.anneal_every) {
            self.tau = (self.tau * self.cfg.tau_decay).max(self.cfg.tau_min);
        }
    }

    // Resume support: the step counter and annealed τ are the only hidden
    // training state (`aug_active` is recomputed by `on_epoch_start`).
    fn train_state(&self) -> Vec<u64> {
        vec![self.steps, self.tau.to_bits() as u64]
    }

    fn restore_train_state(&mut self, state: &[u64]) {
        assert_eq!(
            state.len(),
            2,
            "SSDRec training state must be [steps, tau_bits], got {} words",
            state.len()
        );
        self.steps = state[0];
        self.tau = f32::from_bits(state[1] as u32);
    }

    fn model_name(&self) -> String {
        let mut name = format!("SSDRec[{}]", self.cfg.backbone.name());
        if !self.cfg.stage1 {
            name.push_str("-w/o1");
        }
        if !self.cfg.stage2 {
            name.push_str("-w/o2");
        }
        if !self.cfg.stage3 {
            name.push_str("-w/o3");
        }
        name
    }
}

impl ssdrec_denoise::Denoiser for SsdRec {
    fn keep_decisions(&self, seq: &[usize], user: usize) -> Vec<bool> {
        self.keep_decisions_for(seq, user)
    }

    fn keep_scores(&self, seq: &[usize], user: usize) -> Vec<f32> {
        self.keep_scores_for(seq, user)
    }

    fn denoiser_dim(&self) -> usize {
        self.cfg.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdrec_data::SyntheticConfig;
    use ssdrec_graph::{build_graph, GraphConfig};

    fn toy_model(cfg_mod: impl Fn(&mut SsdRecConfig)) -> SsdRec {
        let ds = SyntheticConfig::beauty().scaled(0.1).generate();
        let mg = build_graph(&ds, &GraphConfig::default());
        let mut cfg = SsdRecConfig {
            dim: 8,
            max_len: 50,
            ..SsdRecConfig::default()
        };
        cfg_mod(&mut cfg);
        SsdRec::new(&mg, cfg)
    }

    fn toy_batch(num_items: usize) -> Batch {
        let pick = |i: usize| (i % num_items) + 1;
        Batch {
            users: vec![0, 1],
            items: (0..10).map(pick).collect(),
            seq_len: 5,
            targets: vec![pick(11), pick(12)],
            noise: None,
        }
    }

    #[test]
    fn train_loss_finite_with_all_stages() {
        let m = toy_model(|_| {});
        let batch = toy_batch(m.num_items());
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let mut rng = Rng::seed(0);
        let loss = m.loss(&mut g, &bind, &batch, &mut rng);
        assert!(g.value(loss).item().is_finite());
    }

    #[test]
    fn eval_scores_shape_and_determinism() {
        let m = toy_model(|_| {});
        let batch = toy_batch(m.num_items());
        let run = || {
            let mut g = Graph::new();
            let bind = m.store.bind_all(&mut g);
            let s = m.eval_scores(&mut g, &bind, &batch);
            g.value(s).data().to_vec()
        };
        let a = run();
        assert_eq!(a.len(), 2 * (m.num_items() + 1));
        assert_eq!(a, run());
    }

    #[test]
    fn every_ablation_variant_trains() {
        for (s1, s2, s3) in [
            (false, true, true),
            (true, false, true),
            (true, true, false),
        ] {
            let m = toy_model(|c| {
                c.stage1 = s1;
                c.stage2 = s2;
                c.stage3 = s3;
            });
            let batch = toy_batch(m.num_items());
            let mut g = Graph::new();
            let bind = m.store.bind_all(&mut g);
            let mut rng = Rng::seed(1);
            let loss = m.loss(&mut g, &bind, &batch, &mut rng);
            assert!(g.value(loss).item().is_finite(), "variant ({s1},{s2},{s3})");
            let grads = g.backward(loss);
            assert!(grads.get(bind.var(m.item_emb.weight())).is_some());
        }
    }

    #[test]
    fn long_sequences_skip_augmentation() {
        let m = toy_model(|c| c.aug_short_len = 3);
        // seq_len 5 ≥ aug_short_len 3 → no augmentation path; still works.
        let batch = toy_batch(m.num_items());
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let mut rng = Rng::seed(2);
        let loss = m.loss(&mut g, &bind, &batch, &mut rng);
        assert!(g.value(loss).item().is_finite());
    }

    #[test]
    fn keep_decisions_cover_sequence() {
        let m = toy_model(|_| {});
        let seq: Vec<usize> = (1..=7).map(|i| (i % m.num_items()) + 1).collect();
        let d = m.keep_decisions_for(&seq, 0);
        assert_eq!(d.len(), 7);
    }

    #[test]
    fn explain_produces_trace() {
        let m = toy_model(|_| {});
        let mut rng = Rng::seed(3);
        let seq: Vec<usize> = (1..=6).map(|i| (i % m.num_items()) + 1).collect();
        let cs = m.explain(&seq, 0, 1, &mut rng);
        assert_eq!(cs.kept.len(), 6);
        assert!(cs.position.is_some());
        assert!(cs.inserted.is_some());
        assert!(cs.raw_score.is_finite());
        assert!(cs.denoised_score.is_finite());
    }

    #[test]
    fn tau_anneals() {
        let mut m = toy_model(|c| c.anneal_every = 1);
        let t0 = m.tau;
        m.after_step();
        assert!(m.tau < t0);
    }

    #[test]
    fn model_name_encodes_ablation() {
        let m = toy_model(|c| c.stage2 = false);
        assert!(m.model_name().contains("w/o2"));
    }
}

#[cfg(test)]
mod curriculum_tests {
    use super::*;
    use ssdrec_data::SyntheticConfig;
    use ssdrec_graph::{build_graph, GraphConfig};
    use ssdrec_models::RecModel;

    fn model_with(cfg_mod: impl Fn(&mut SsdRecConfig)) -> SsdRec {
        let ds = SyntheticConfig::beauty().scaled(0.1).generate();
        let mg = build_graph(&ds, &GraphConfig::default());
        let mut cfg = SsdRecConfig {
            dim: 8,
            max_len: 50,
            ..SsdRecConfig::default()
        };
        cfg_mod(&mut cfg);
        SsdRec::new(&mg, cfg)
    }

    #[test]
    fn augmentation_respects_warmup_schedule() {
        let mut m = model_with(|c| c.aug_warmup_frac = 0.5);
        assert!(!m.aug_active, "augmentation must start inactive");
        m.on_epoch_start(0, 10);
        assert!(!m.aug_active);
        m.on_epoch_start(4, 10);
        assert!(!m.aug_active);
        m.on_epoch_start(5, 10);
        assert!(
            m.aug_active,
            "augmentation must activate after the warm-up fraction"
        );
    }

    #[test]
    fn zero_warmup_activates_immediately() {
        let mut m = model_with(|c| c.aug_warmup_frac = 0.0);
        m.on_epoch_start(0, 10);
        assert!(m.aug_active);
    }

    #[test]
    fn coherence_prior_present_iff_stage1() {
        let with = model_with(|_| {});
        let without = model_with(|c| c.stage1 = false);
        let batch = Batch {
            users: vec![0],
            items: (1..=5).map(|i| (i % with.num_items()) + 1).collect(),
            seq_len: 5,
            targets: vec![1],
            noise: None,
        };
        let mut g = Graph::new();
        assert!(with.coherence_prior(&mut g, &batch).is_some());
        let batch2 = Batch {
            users: vec![0],
            items: (1..=5).map(|i| (i % without.num_items()) + 1).collect(),
            seq_len: 5,
            targets: vec![1],
            noise: None,
        };
        assert!(without.coherence_prior(&mut g, &batch2).is_none());
    }

    #[test]
    fn coherence_prior_values_in_unit_interval() {
        let m = model_with(|_| {});
        let batch = Batch {
            users: vec![0, 1],
            items: (0..12).map(|i| (i % m.num_items()) + 1).collect(),
            seq_len: 6,
            targets: vec![1, 2],
            noise: None,
        };
        let mut g = Graph::new();
        let prior = m.coherence_prior(&mut g, &batch).unwrap();
        assert_eq!(g.value(prior).shape(), &[2, 6]);
        assert!(g.value(prior).data().iter().all(|&p| p > 0.0 && p < 1.0));
    }
}

#[cfg(test)]
mod fden_tests {
    use super::*;
    use crate::fden::FdenKind;
    use ssdrec_data::SyntheticConfig;
    use ssdrec_graph::{build_graph, GraphConfig};
    use ssdrec_models::RecModel;

    #[test]
    fn attention_gate_fden_trains_end_to_end() {
        let ds = SyntheticConfig::beauty().scaled(0.1).generate();
        let mg = build_graph(&ds, &GraphConfig::default());
        let cfg = SsdRecConfig {
            dim: 8,
            max_len: 50,
            fden: FdenKind::AttentionGate,
            ..SsdRecConfig::default()
        };
        let m = SsdRec::new(&mg, cfg);
        let batch = Batch {
            users: vec![0, 1],
            items: (0..10).map(|i| (i % m.num_items()) + 1).collect(),
            seq_len: 5,
            targets: vec![1, 2],
            noise: None,
        };
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let mut rng = Rng::seed(0);
        let loss = m.loss(&mut g, &bind, &batch, &mut rng);
        assert!(g.value(loss).item().is_finite());
        let grads = g.backward(loss);
        assert!(grads.get(bind.var(m.item_emb.weight())).is_some());
        // Keep decisions still work through the alternative gate.
        let seq: Vec<usize> = (1..=6).map(|i| (i % m.num_items()) + 1).collect();
        assert_eq!(m.keep_decisions_for(&seq, 0).len(), 6);
    }

    #[test]
    fn hsd_and_attention_gates_differ() {
        let ds = SyntheticConfig::beauty().scaled(0.1).generate();
        let mg = build_graph(&ds, &GraphConfig::default());
        let run = |fden: FdenKind| {
            let cfg = SsdRecConfig {
                dim: 8,
                max_len: 50,
                fden,
                ..SsdRecConfig::default()
            };
            let m = SsdRec::new(&mg, cfg);
            let seq: Vec<usize> = (1..=6).map(|i| (i % m.num_items()) + 1).collect();
            m.keep_scores_for(&seq, 0)
        };
        assert_ne!(run(FdenKind::Hsd), run(FdenKind::AttentionGate));
    }
}
