//! Stage 2: the self-augmentation module (paper §III-D, Eq. 9–12).
//!
//! A **position selector** detects the most inconsistent position in each
//! sequence from two signals — sequentiality (Bi-LSTM strict agreement,
//! Eq. 9) and similarity (mean pairwise affinity, Eq. 10) — combined and
//! hardened through a Gumbel-Softmax (Eq. 11). An **item selector** then
//! ranks the entire item universe against the chosen position's
//! bidirectional context and hard-selects two items (Eq. 12), which are
//! inserted before and after the position.
//!
//! Batched insertion at per-sequence positions is realised with constant
//! scatter matrices: `H'_S = G·H_S + P_L·h^L + P_R·h^R`, where `G`
//! (`B×(T+2)×T`) copies original rows to their shifted slots and `P_L`/`P_R`
//! (`B×(T+2)×1`) place the inserted representations. Gradients flow to the
//! inserted item representations via the straight-through Gumbel samples.

use ssdrec_tensor::nn::{gumbel_softmax, BiLstm, GumbelMode};
use ssdrec_tensor::{Binding, Graph, ParamStore, Rng, Tensor, Var};

/// The position + item selector pair. Per the paper's parameter analysis
/// (`|Θ₂| = |Θ_L| = |Θ_R|`), both selectors share one Bi-LSTM.
pub struct SelfAugmenter {
    bilstm: BiLstm,
    dim: usize,
}

/// What the augmenter produced for one batch.
pub struct Augmented {
    /// The augmented representation sequence `B×(T+2)×d` (`H'_S`).
    pub h_aug: Var,
    /// Row-copy matrix `G` (`B×(T+2)×T`) mapping original → new positions.
    pub copy_matrix: Var,
    /// Chosen inconsistent position per sequence (original indexing).
    pub positions: Vec<usize>,
    /// Hard-selected left-insert item IDs per sequence.
    pub left_items: Vec<usize>,
    /// Hard-selected right-insert item IDs per sequence.
    pub right_items: Vec<usize>,
    /// Placement one-hots `P_L`, `P_R` (`B×(T+2)×1`).
    pub place_left: Var,
    /// See `place_left`.
    pub place_right: Var,
    /// The inserted representations (`B×d` each), straight-through.
    pub h_left: Var,
    /// See `h_left`.
    pub h_right: Var,
}

impl SelfAugmenter {
    /// Build for representation width `d`.
    pub fn new(store: &mut ParamStore, name: &str, d: usize, rng: &mut Rng) -> Self {
        SelfAugmenter {
            bilstm: BiLstm::new(store, &format!("{name}.bilstm"), d, d, rng),
            dim: d,
        }
    }

    /// Eq. 9 + Eq. 10: the combined inconsistency distribution `r_S`
    /// (`B×T`, positive, unnormalised product of the two softmaxes).
    pub fn inconsistency_scores(&self, g: &mut Graph, bind: &Binding, h_seq: Var) -> Var {
        let (_b, t, _d) = g.value(h_seq).dims3();
        // Sequentiality (Eq. 9): softmax_t( Σ_d h^L ⊙ h^R ⊙ h ).
        let (hl, hr) = self.bilstm.forward(g, bind, h_seq);
        let p = g.mul(hl, hr);
        let p = g.mul(p, h_seq);
        let s = g.sum_last(p); // B×T
        let r1 = g.softmax_last(s);
        // Similarity (Eq. 10): softmax_t( Σ_i h_t·h_i / (n−1) ).
        let ht = g.transpose_last(h_seq); // B×d×T
        let sim = g.matmul(h_seq, ht); // B×T×T
        let sims = g.sum_last(sim); // B×T
        let denom = (t.max(2) - 1) as f32;
        let sims = g.scale(sims, 1.0 / denom);
        let r2 = g.softmax_last(sims);
        // Joint distribution r_S = r' ⊙ r''.
        g.mul(r1, r2)
    }

    /// Eq. 11: hard position choice via Gumbel-Softmax. Returns the
    /// straight-through one-hot (`B×T`) and the chosen indices.
    pub fn select_positions(
        &self,
        g: &mut Graph,
        rng: &mut Rng,
        r_s: Var,
        tau: f32,
    ) -> (Var, Vec<usize>) {
        let onehot = gumbel_softmax(g, rng, r_s, tau, GumbelMode::Hard);
        let (b, t) = {
            let s = g.value(onehot).shape();
            (s[0], s[1])
        };
        let v = g.value(onehot);
        let positions = (0..b)
            .map(|i| {
                v.data()[i * t..(i + 1) * t]
                    .iter()
                    .position(|&x| x > 0.5)
                    .expect("hard gumbel emits a one-hot")
            })
            .collect();
        (onehot, positions)
    }

    /// Eq. 12: select the two insert items against the full item table
    /// `H_v` (`(V+1)×d`). Returns `(h_L, h_R, left IDs, right IDs)`.
    ///
    /// The pad row (item 0) is excluded from the ranking.
    #[allow(clippy::too_many_arguments)]
    pub fn select_items(
        &self,
        g: &mut Graph,
        bind: &Binding,
        rng: &mut Rng,
        h_seq: Var,
        pos_onehot: Var,
        item_table: Var,
        tau: f32,
    ) -> (Var, Var, Vec<usize>, Vec<usize>) {
        let (b, t, d) = g.value(h_seq).dims3();
        let vocab = g.value(item_table).dims2().0;
        // Bidirectional queries at the chosen position: qᴸ/qᴿ = one-hot · H.
        let (hl, hr) = self.bilstm.forward(g, bind, h_seq);
        let sel = g.reshape(pos_onehot, &[b, 1, t]);
        let ql = g.matmul(sel, hl); // B×1×d
        let ql = g.reshape(ql, &[b, d]);
        let qr = g.matmul(sel, hr);
        let qr = g.reshape(qr, &[b, d]);

        // Rank the item universe: k = q·H_vᵀ, pad masked out.
        let tt = g.transpose_last(item_table); // d×V
        let mut pad = Tensor::zeros(&[vocab]);
        pad.data_mut()[0] = -1e9;
        let padv = g.constant(pad);

        let pick = |g: &mut Graph, rng: &mut Rng, q: Var| -> (Var, Vec<usize>) {
            let k = g.matmul(q, tt); // B×V
            let k = g.scale(k, 1.0 / (d as f32).sqrt());
            let k = g.add_bcast(k, padv);
            let probs = g.softmax_last(k);
            let khat = gumbel_softmax(g, rng, probs, tau, GumbelMode::Hard); // B×V one-hot
            let ids = {
                let v = g.value(khat);
                (0..b)
                    .map(|i| {
                        v.data()[i * vocab..(i + 1) * vocab]
                            .iter()
                            .position(|&x| x > 0.5)
                            .expect("hard gumbel emits a one-hot")
                    })
                    .collect()
            };
            let h = g.matmul(khat, item_table); // B×d, straight-through
            (h, ids)
        };
        let (h_left, left_items) = pick(g, rng, ql);
        let (h_right, right_items) = pick(g, rng, qr);
        (h_left, h_right, left_items, right_items)
    }

    /// Build the constant insertion operators for per-sequence positions.
    /// Returns `(G, P_L, P_R)` with shapes `B×(T+2)×T`, `B×(T+2)×1` ×2.
    ///
    /// New layout per sequence with position `p`:
    /// `[s_1 … s_{p-1}, h^L, s_p, h^R, s_{p+1} … s_T]`.
    pub fn insertion_operators(
        b: usize,
        t: usize,
        positions: &[usize],
    ) -> (Tensor, Tensor, Tensor) {
        let t2 = t + 2;
        let mut gmat = Tensor::zeros(&[b, t2, t]);
        let mut pl = Tensor::zeros(&[b, t2, 1]);
        let mut pr = Tensor::zeros(&[b, t2, 1]);
        for (bi, &p) in positions.iter().enumerate() {
            assert!(p < t, "position {p} out of sequence length {t}");
            for i in 0..t {
                // Original row i lands at: i (if i < p), i+1 (if i == p),
                // i+2 (if i > p).
                let j = if i < p {
                    i
                } else if i == p {
                    i + 1
                } else {
                    i + 2
                };
                gmat.data_mut()[(bi * t2 + j) * t + i] = 1.0;
            }
            pl.data_mut()[bi * t2 + p] = 1.0;
            pr.data_mut()[bi * t2 + p + 2] = 1.0;
        }
        (gmat, pl, pr)
    }

    /// Full stage-2 pass: select a position, select two items, insert them.
    pub fn augment(
        &self,
        g: &mut Graph,
        bind: &Binding,
        rng: &mut Rng,
        h_seq: Var,
        item_table: Var,
        tau: f32,
    ) -> Augmented {
        let (b, t, d) = g.value(h_seq).dims3();
        let r_s = self.inconsistency_scores(g, bind, h_seq);
        let (onehot, positions) = self.select_positions(g, rng, r_s, tau);
        let (h_left, h_right, left_items, right_items) =
            self.select_items(g, bind, rng, h_seq, onehot, item_table, tau);

        let (gm, pl, pr) = Self::insertion_operators(b, t, &positions);
        let gmv = g.constant(gm);
        let plv = g.constant(pl);
        let prv = g.constant(pr);
        let base = g.matmul(gmv, h_seq); // B×(T+2)×d
        let hl3 = g.reshape(h_left, &[b, 1, d]);
        let hr3 = g.reshape(h_right, &[b, 1, d]);
        let addl = g.matmul(plv, hl3);
        let addr = g.matmul(prv, hr3);
        let part = g.add(base, addl);
        let h_aug = g.add(part, addr);

        Augmented {
            h_aug,
            copy_matrix: gmv,
            positions,
            left_items,
            right_items,
            place_left: plv,
            place_right: prv,
            h_left,
            h_right,
        }
    }

    /// Representation width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(d: usize) -> (ParamStore, SelfAugmenter) {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(0);
        let aug = SelfAugmenter::new(&mut store, "aug", d, &mut rng);
        (store, aug)
    }

    fn rand_seq(b: usize, t: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed(seed);
        Tensor::new(
            (0..b * t * d).map(|_| rng.uniform(-1.0, 1.0)).collect(),
            &[b, t, d],
        )
    }

    #[test]
    fn inconsistency_scores_positive() {
        let (store, aug) = setup(8);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let h = g.constant(rand_seq(2, 5, 8, 1));
        let r = aug.inconsistency_scores(&mut g, &bind, h);
        assert_eq!(g.value(r).shape(), &[2, 5]);
        assert!(g.value(r).data().iter().all(|&x| x > 0.0));
    }

    #[test]
    fn insertion_operators_reorder_correctly() {
        // T=3, p=1: new layout [s1, hL, s2, hR, s3].
        let (gm, pl, pr) = SelfAugmenter::insertion_operators(1, 3, &[1]);
        let h = Tensor::new(vec![1.0, 2.0, 3.0], &[1, 3, 1]);
        let base = ssdrec_tensor::kernels::matmul(&gm, &h);
        assert_eq!(base.data(), &[1.0, 0.0, 2.0, 0.0, 3.0]);
        assert_eq!(pl.data(), &[0.0, 1.0, 0.0, 0.0, 0.0]);
        assert_eq!(pr.data(), &[0.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn insertion_at_boundaries() {
        for p in [0usize, 3] {
            let (gm, pl, pr) = SelfAugmenter::insertion_operators(1, 4, &[p]);
            // Each original row appears exactly once.
            let col_sums: Vec<f32> = (0..4)
                .map(|i| (0..6).map(|j| gm.data()[j * 4 + i]).sum())
                .collect();
            assert_eq!(col_sums, vec![1.0; 4], "p={p}");
            assert_eq!(pl.data().iter().sum::<f32>(), 1.0);
            assert_eq!(pr.data().iter().sum::<f32>(), 1.0);
        }
    }

    #[test]
    fn augment_lengthens_by_two_and_preserves_originals() {
        let (store, aug) = setup(8);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let mut rng = Rng::seed(2);
        let h0 = rand_seq(2, 4, 8, 3);
        let h = g.constant(h0.clone());
        let table = g.constant(rand_seq(1, 12, 8, 4).reshaped(&[12, 8]));
        let out = aug.augment(&mut g, &bind, &mut rng, h, table, 1.0);
        let hv = g.value(out.h_aug);
        assert_eq!(hv.shape(), &[2, 6, 8]);
        // Original rows must appear (shifted) in the augmented sequence.
        for bi in 0..2 {
            let p = out.positions[bi];
            for i in 0..4 {
                let j = if i < p {
                    i
                } else if i == p {
                    i + 1
                } else {
                    i + 2
                };
                let orig = &h0.data()[(bi * 4 + i) * 8..(bi * 4 + i + 1) * 8];
                let moved = &hv.data()[(bi * 6 + j) * 8..(bi * 6 + j + 1) * 8];
                assert_eq!(orig, moved, "b={bi} i={i}");
            }
        }
        // Inserted IDs never the pad item.
        assert!(out.left_items.iter().all(|&i| i > 0));
        assert!(out.right_items.iter().all(|&i| i > 0));
    }

    #[test]
    fn gradients_flow_to_item_table_through_selection() {
        let (store, aug) = setup(8);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let mut rng = Rng::seed(5);
        let h = g.constant(rand_seq(1, 3, 8, 6));
        let table = g.param(rand_seq(1, 10, 8, 7).reshaped(&[10, 8]));
        let out = aug.augment(&mut g, &bind, &mut rng, h, table, 1.0);
        let sq = g.mul(out.h_aug, out.h_aug);
        let loss = g.sum_all(sq);
        let grads = g.backward(loss);
        assert!(grads.get(table).is_some(), "no grad to item table");
    }

    #[test]
    fn positions_match_onehots() {
        let (store, aug) = setup(4);
        let mut g = Graph::new();
        let bind = store.bind_all(&mut g);
        let mut rng = Rng::seed(8);
        let h = g.constant(rand_seq(3, 6, 4, 9));
        let r = aug.inconsistency_scores(&mut g, &bind, h);
        let (onehot, pos) = aug.select_positions(&mut g, &mut rng, r, 0.5);
        let v = g.value(onehot);
        for (bi, &p) in pos.iter().enumerate() {
            assert!((v.data()[bi * 6 + p] - 1.0).abs() < 1e-6);
        }
    }
}
