//! Finite-difference gradient verification of the relation encoder's
//! `PairConv` aggregator (the paper's 2×1 conv over `[aggregate; ego]`),
//! via the testkit checker bridged through `fd_check_all_params`.

use ssdrec_core::relation_encoder::PairConv;
use ssdrec_tensor::{fd_check_all_params, with_each_backend, Binding, ParamStore, Rng, Tensor};

#[test]
fn pair_conv_gradients() {
    let mut store = ParamStore::new();
    let conv = PairConv::new(&mut store, "pc");
    let mut rng = Rng::seed(40);
    let n = 4 * 3;
    let agg = store.add(
        "agg",
        Tensor::new((0..n).map(|_| rng.uniform(-1.0, 1.0)).collect(), &[4, 3]),
    );
    let ego = store.add(
        "ego",
        Tensor::new((0..n).map(|_| rng.uniform(-1.0, 1.0)).collect(), &[4, 3]),
    );
    let w0 = Tensor::new((0..n).map(|_| rng.uniform(-1.0, 1.0)).collect(), &[4, 3]);
    // Run under both kernel backends so the fused forward/backward paths are
    // verified against finite differences on each backend.
    with_each_backend(|_| {
        let worst = fd_check_all_params(&mut store, 1e-2, 1e-3, |g, bind: &Binding| {
            let a = bind.var(agg);
            let e = bind.var(ego);
            let y = conv.forward(g, bind, a, e);
            let w = g.constant(w0.clone());
            let t = g.tanh(y);
            let p = g.mul(t, w);
            g.sum_all(p)
        });
        assert!(worst <= 1e-3);
    });
}
