//! Property-based tests of SSDRec's core machinery, running on the
//! in-workspace `ssdrec-testkit` property framework.

use ssdrec_testkit::{gens, property};

use ssdrec_core::SelfAugmenter;
use ssdrec_tensor::{kernels, Tensor};

property! {
    cases = 64;

    /// The insertion operators form a valid scatter: every original row
    /// appears exactly once in the copy matrix, rows of the new layout are
    /// one-hot or zero, and the two placement vectors hit the inserted slots
    /// (which the copy matrix leaves empty).
    fn insertion_operators_are_valid_scatter(
        t in gens::usizes(1, 12),
        pos_seed in gens::u64s(),
        b in gens::usizes(1, 5),
    ) {
        let positions: Vec<usize> = (0..b).map(|i| ((pos_seed >> (i * 8)) as usize) % t).collect();
        let (gm, pl, pr) = SelfAugmenter::insertion_operators(b, t, &positions);
        let t2 = t + 2;
        for bi in 0..b {
            // Column sums: each original row copied exactly once.
            for col in 0..t {
                let s: f32 = (0..t2).map(|row| gm.data()[(bi * t2 + row) * t + col]).sum();
                assert!((s - 1.0).abs() < 1e-6, "b={bi} col={col} sum={s}");
            }
            // Row sums: 0 (inserted slots) or 1 (copied slots).
            let mut empty_rows = Vec::new();
            for row in 0..t2 {
                let s: f32 = (0..t).map(|col| gm.data()[(bi * t2 + row) * t + col]).sum();
                assert!(s == 0.0 || (s - 1.0).abs() < 1e-6);
                if s == 0.0 {
                    empty_rows.push(row);
                }
            }
            assert_eq!(empty_rows.len(), 2, "exactly two inserted slots");
            // Placements land exactly on the empty rows.
            let pl_row = (0..t2).find(|&r| pl.data()[bi * t2 + r] > 0.5).unwrap();
            let pr_row = (0..t2).find(|&r| pr.data()[bi * t2 + r] > 0.5).unwrap();
            assert!(empty_rows.contains(&pl_row));
            assert!(empty_rows.contains(&pr_row));
            assert!(pl_row < pr_row, "left insert must precede right insert");
        }
    }

    /// Applying the copy matrix then reading back through it is lossless for
    /// the original rows (Gᵀ·(G·x) = x since G has orthonormal rows/cols in
    /// the scatter sense).
    fn copy_matrix_roundtrip(
        t in gens::usizes(2, 8),
        p_raw in gens::u64s(),
        vals in gens::vec_exact(gens::f32s(-5.0, 5.0), 8),
    ) {
        let p = (p_raw as usize) % t;
        let (gm, _, _) = SelfAugmenter::insertion_operators(1, t, &[p]);
        let d = 1usize;
        let x = Tensor::new(vals[..t].to_vec(), &[1, t, d]);
        let up = kernels::matmul(&gm, &x); // 1×(t+2)×1
        // Project back: xᵀ = upᵀ · G  (as in raw_keep_probs' projection).
        let up2 = up.clone().reshaped(&[1, 1, t + 2]);
        let back = kernels::matmul(&up2, &gm); // 1×1×t
        for (a, b) in back.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
