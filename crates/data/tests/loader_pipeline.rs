//! Integration test: the loader's output must be a first-class citizen of
//! the preprocessing pipeline and the graph builder's expectations.

use ssdrec_data::{k_core_filter, leave_one_out, parse_interactions, LoadOptions};

fn synthetic_log(users: usize, per_user: usize, items: usize) -> String {
    let mut log = String::new();
    let mut ts = 0;
    for u in 0..users {
        for i in 0..per_user {
            let item = (u * 3 + i) % items + 1;
            ts += 1;
            log.push_str(&format!("{u}\t{item}\t5\t{ts}\n"));
        }
    }
    log
}

#[test]
fn loaded_dataset_flows_through_k_core_and_split() {
    let log = synthetic_log(15, 9, 12);
    let ds = parse_interactions(&log, &LoadOptions::movielens()).unwrap();
    let (filtered, remap) = k_core_filter(&ds, 5, 3);
    assert!(filtered.validate().is_ok());
    assert!(!remap.is_empty());
    let split = leave_one_out(&filtered, 5, 4);
    assert_eq!(split.valid.len(), split.test.len());
    for ex in &split.test {
        assert!(ex.target >= 1 && ex.target <= filtered.num_items);
    }
}

#[test]
fn timestamps_shuffle_does_not_change_membership() {
    // Same events, shuffled line order: per-user item multisets must match.
    let log = synthetic_log(6, 7, 9);
    let mut lines: Vec<&str> = log.lines().collect();
    lines.reverse();
    let shuffled = lines.join("\n");

    let a = parse_interactions(&log, &LoadOptions::movielens()).unwrap();
    let b = parse_interactions(&shuffled, &LoadOptions::movielens()).unwrap();
    assert_eq!(a.num_users, b.num_users);
    assert_eq!(a.num_actions(), b.num_actions());
    for u in 0..a.num_users {
        // Item IDs are assigned by first appearance, which differs between
        // orders — compare via sorted sequence *lengths* and per-user
        // timestamp-sorted multiset sizes instead of raw IDs.
        assert_eq!(a.sequences[u].len(), b.sequences[u].len(), "user {u}");
    }
}
