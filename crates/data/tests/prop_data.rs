//! Property-based tests of the data pipeline invariants.

use proptest::prelude::*;

use ssdrec_data::{
    inject_unobserved, k_core_filter, leave_one_out, make_batches, Dataset, Example,
};

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..8, 4usize..20).prop_flat_map(|(users, items)| {
        prop::collection::vec(prop::collection::vec(1usize..=items, 0..15), users).prop_map(
            move |sequences| Dataset {
                name: "prop".into(),
                num_users: users,
                num_items: items,
                sequences,
                noise_labels: None,
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// k-core filtering is idempotent and never invents interactions.
    #[test]
    fn k_core_idempotent(ds in arb_dataset()) {
        let (once, _) = k_core_filter(&ds, 3, 2);
        let (twice, _) = k_core_filter(&once, 3, 2);
        prop_assert_eq!(&once.sequences, &twice.sequences);
        prop_assert!(once.num_actions() <= ds.num_actions());
        prop_assert!(once.validate().is_ok());
    }

    /// After filtering, every surviving item meets the frequency floor and
    /// every nonempty sequence meets the length floor.
    #[test]
    fn k_core_postconditions(ds in arb_dataset()) {
        let (out, _) = k_core_filter(&ds, 3, 2);
        let freq = out.item_frequencies();
        for (i, &f) in freq.iter().enumerate().skip(1) {
            prop_assert!(f == 0 || f >= 2, "item {i} freq {f}");
        }
        for seq in &out.sequences {
            prop_assert!(seq.is_empty() || seq.len() >= 3);
        }
    }

    /// Leave-one-out: targets and prefixes are consistent with the source
    /// sequence, and valid/test counts match eligible users.
    #[test]
    fn leave_one_out_consistency(ds in arb_dataset()) {
        let split = leave_one_out(&ds, 3, 10);
        prop_assert_eq!(split.valid.len(), split.test.len());
        for ex in &split.test {
            let seq = &ds.sequences[ex.user];
            prop_assert_eq!(ex.target, *seq.last().unwrap());
            prop_assert_eq!(&ex.seq[..], &seq[..seq.len() - 1]);
        }
        for ex in &split.train {
            let seq = &ds.sequences[ex.user];
            let t = ex.seq.len();
            prop_assert_eq!(ex.target, seq[t]);
            // Training targets never leak the valid/test items.
            prop_assert!(t + 2 < seq.len());
        }
    }

    /// Batching partitions the examples: every example appears exactly once
    /// and batches are length-homogeneous.
    #[test]
    fn batching_is_a_partition(
        lens in prop::collection::vec(1usize..6, 1..30),
        bs in 1usize..8,
        seed in 0u64..100,
    ) {
        let examples: Vec<Example> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| Example { user: i, seq: vec![1; l], target: 2, noise: None })
            .collect();
        let batches = make_batches(&examples, bs, seed);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        prop_assert_eq!(total, examples.len());
        let mut seen = vec![false; examples.len()];
        for b in &batches {
            prop_assert!(b.len() <= bs);
            for i in 0..b.len() {
                prop_assert_eq!(b.seq(i).len(), b.seq_len);
                prop_assert!(!seen[b.users[i]], "user {} duplicated", b.users[i]);
                seen[b.users[i]] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Noise injection only ever adds labelled positions, preserving the
    /// original subsequence in order.
    #[test]
    fn injection_preserves_original_subsequence(ds in arb_dataset(), per in 1usize..4) {
        let out = inject_unobserved(&ds, 20, per, 3);
        let labels = out.noise_labels.as_ref().unwrap();
        for (u, seq) in out.sequences.iter().enumerate() {
            let originals: Vec<usize> = seq
                .iter()
                .zip(&labels[u])
                .filter(|(_, &l)| !l)
                .map(|(&i, _)| i)
                .collect();
            prop_assert_eq!(&originals, &ds.sequences[u]);
        }
    }
}
