//! Property-based tests of the data pipeline invariants, running on the
//! in-workspace `ssdrec-testkit` property framework.

use ssdrec_testkit::{gens, property, Gen};

use ssdrec_data::{
    inject_unobserved, k_core_filter, leave_one_out, make_batches, Dataset, Example,
};

/// Random small dataset: 2–7 users, 4–19 items, sequences of length 0–14.
/// Built directly from the case RNG (closure generators do not shrink; the
/// reported counter-example is the drawn dataset).
fn arb_dataset() -> Gen<Dataset> {
    Gen::from_fn(|rng| {
        let users = rng.between(2, 7);
        let items = rng.between(4, 19);
        let sequences = (0..users)
            .map(|_| {
                let len = rng.between(0, 14);
                (0..len).map(|_| rng.between(1, items)).collect()
            })
            .collect();
        Dataset {
            name: "prop".into(),
            num_users: users,
            num_items: items,
            sequences,
            noise_labels: None,
        }
    })
}

property! {
    cases = 64;

    /// k-core filtering is idempotent and never invents interactions.
    fn k_core_idempotent(ds in arb_dataset()) {
        let (once, _) = k_core_filter(&ds, 3, 2);
        let (twice, _) = k_core_filter(&once, 3, 2);
        assert_eq!(&once.sequences, &twice.sequences);
        assert!(once.num_actions() <= ds.num_actions());
        assert!(once.validate().is_ok());
    }

    /// After filtering, every surviving item meets the frequency floor and
    /// every nonempty sequence meets the length floor.
    fn k_core_postconditions(ds in arb_dataset()) {
        let (out, _) = k_core_filter(&ds, 3, 2);
        let freq = out.item_frequencies();
        for (i, &f) in freq.iter().enumerate().skip(1) {
            assert!(f == 0 || f >= 2, "item {i} freq {f}");
        }
        for seq in &out.sequences {
            assert!(seq.is_empty() || seq.len() >= 3);
        }
    }

    /// Leave-one-out: targets and prefixes are consistent with the source
    /// sequence, and valid/test counts match eligible users.
    fn leave_one_out_consistency(ds in arb_dataset()) {
        let split = leave_one_out(&ds, 3, 10);
        assert_eq!(split.valid.len(), split.test.len());
        for ex in &split.test {
            let seq = &ds.sequences[ex.user];
            assert_eq!(ex.target, *seq.last().unwrap());
            assert_eq!(&ex.seq[..], &seq[..seq.len() - 1]);
        }
        for ex in &split.train {
            let seq = &ds.sequences[ex.user];
            let t = ex.seq.len();
            assert_eq!(ex.target, seq[t]);
            // Training targets never leak the valid/test items.
            assert!(t + 2 < seq.len());
        }
    }

    /// Batching partitions the examples: every example appears exactly once
    /// and batches are length-homogeneous.
    fn batching_is_a_partition(
        lens in gens::vecs(gens::usizes(1, 6), 1, 29),
        bs in gens::usizes(1, 8),
        seed in gens::usizes(0, 100),
    ) {
        let examples: Vec<Example> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| Example { user: i, seq: vec![1; l], target: 2, noise: None })
            .collect();
        let batches = make_batches(&examples, bs, seed as u64);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, examples.len());
        let mut seen = vec![false; examples.len()];
        for b in &batches {
            assert!(b.len() <= bs);
            for i in 0..b.len() {
                assert_eq!(b.seq(i).len(), b.seq_len);
                assert!(!seen[b.users[i]], "user {} duplicated", b.users[i]);
                seen[b.users[i]] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    /// Noise injection only ever adds labelled positions, preserving the
    /// original subsequence in order.
    fn injection_preserves_original_subsequence(ds in arb_dataset(), per in gens::usizes(1, 4)) {
        let out = inject_unobserved(&ds, 20, per, 3);
        let labels = out.noise_labels.as_ref().unwrap();
        for (u, seq) in out.sequences.iter().enumerate() {
            let originals: Vec<usize> = seq
                .iter()
                .zip(&labels[u])
                .filter(|(_, &l)| !l)
                .map(|(&i, _)| i)
                .collect();
            assert_eq!(&originals, &ds.sequences[u]);
        }
    }
}
