//! Property suite for the columnar `.ssdc` pipeline: byte-exact round
//! trips, windowed-vs-in-RAM batch bit-identity (across compute thread
//! counts), and typed rejection of truncated, corrupted, and
//! fault-interrupted files — with no torn output ever left on disk.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ssdrec_testkit::fault::{assert_fired_exactly, FaultPlan};
use ssdrec_testkit::{property, Gen};

use ssdrec_data::{
    decode_dataset, encode_dataset, make_batches, plan_leave_one_out, BatchIter, ColumnarReader,
    Dataset, FormatError, SequenceStore, SyntheticConfig, TruncatedStore,
};

/// A unique scratch path per call (property cases run many files through
/// the same test thread; reused names would race the atomic rename).
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("prop-columnar");
    fs::create_dir_all(&dir).expect("create scratch dir");
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("{tag}-{n}.ssdc"))
}

/// Random dataset: 2–8 users, 5–24 items, sequences of length 0–16, noise
/// labels on half the draws. Built directly from the case RNG (closure
/// generators do not shrink; the counter-example is the drawn dataset).
fn arb_dataset() -> Gen<Dataset> {
    Gen::from_fn(|rng| {
        let users = rng.between(2, 8);
        let items = rng.between(5, 24);
        let with_noise = rng.between(0, 1) == 1;
        let sequences: Vec<Vec<usize>> = (0..users)
            .map(|_| {
                let len = rng.between(0, 16);
                (0..len).map(|_| rng.between(1, items)).collect()
            })
            .collect();
        let noise_labels = with_noise.then(|| {
            sequences
                .iter()
                .map(|s| s.iter().map(|_| rng.between(0, 4) == 0).collect())
                .collect()
        });
        Dataset {
            name: "prop".into(),
            num_users: users,
            num_items: items,
            sequences,
            noise_labels,
        }
    })
}

property! {
    cases = 48;

    /// Encode → decode recovers the dataset exactly, and re-encoding the
    /// decoded dataset reproduces the file byte for byte (the format has
    /// one canonical encoding per dataset).
    fn round_trip_is_byte_exact(ds in arb_dataset()) {
        let p1 = scratch("rt1");
        let p2 = scratch("rt2");
        encode_dataset(&ds, &p1).expect("encode");
        let back = decode_dataset(&p1).expect("decode");
        assert_eq!(back.name, ds.name);
        assert_eq!(back.num_users, ds.num_users);
        assert_eq!(back.num_items, ds.num_items);
        assert_eq!(back.sequences, ds.sequences);
        assert_eq!(back.noise_labels, ds.noise_labels);
        encode_dataset(&back, &p2).expect("re-encode");
        assert_eq!(fs::read(&p1).unwrap(), fs::read(&p2).unwrap(), "re-encode must be byte-identical");
        let _ = fs::remove_file(p1);
        let _ = fs::remove_file(p2);
    }

    /// Batches drawn through the windowed reader are bit-identical to
    /// batches built from the fully materialized dataset, for the same
    /// `(batch_size, seed)` — and stay so at 1, 2 and 7 compute threads
    /// (batching is deterministic planning; threads only trade wall-clock).
    fn windowed_batches_match_ram_batches(ds in arb_dataset()) {
        let path = scratch("batch");
        encode_dataset(&ds, &path).expect("encode");
        let reader = ColumnarReader::open(&path).expect("open");

        let ram = TruncatedStore::new(&ds, 10);
        let win = TruncatedStore::new(&reader, 10);
        let plan_ram = plan_leave_one_out(&ram, 3, 3);
        let plan_win = plan_leave_one_out(&win, 3, 3);
        assert_eq!(plan_ram.train, plan_win.train);
        assert_eq!(plan_ram.valid, plan_win.valid);
        assert_eq!(plan_ram.test, plan_win.test);

        let split = plan_ram.materialize(&ram);
        let before = ssdrec_runtime::threads();
        for threads in [1usize, 2, 7] {
            ssdrec_runtime::set_threads(threads);
            for seed in [0u64, 9] {
                let eager = make_batches(&split.train, 3, seed);
                let lazy: Vec<_> = BatchIter::new(&win, &plan_win.train, 3, seed).collect();
                assert_eq!(eager.len(), lazy.len());
                for (a, b) in eager.iter().zip(&lazy) {
                    assert_eq!(a.users, b.users);
                    assert_eq!(a.items, b.items);
                    assert_eq!(a.seq_len, b.seq_len);
                    assert_eq!(a.targets, b.targets);
                    assert_eq!(a.noise, b.noise);
                }
            }
        }
        ssdrec_runtime::set_threads(before);
        let _ = fs::remove_file(path);
    }

    /// Every strict prefix of a valid file is rejected with a typed
    /// [`FormatError`] — never a panic, never a silently short dataset.
    fn truncated_files_are_rejected(ds in arb_dataset()) {
        let path = scratch("trunc");
        encode_dataset(&ds, &path).expect("encode");
        let bytes = fs::read(&path).unwrap();
        // Every boundary region plus a spread of interior cut points.
        let cuts: Vec<usize> = (0..bytes.len()).step_by(7.max(bytes.len() / 24)).chain([
            0, 1, 15, 16, bytes.len().saturating_sub(1),
        ]).filter(|&c| c < bytes.len()).collect();
        for cut in cuts {
            let p = scratch("trunc-cut");
            fs::write(&p, &bytes[..cut]).unwrap();
            match ColumnarReader::open(&p) {
                Err(_) => {}
                Ok(_) => panic!("truncation at {cut}/{} bytes must be rejected", bytes.len()),
            }
            let _ = fs::remove_file(p);
        }
        let _ = fs::remove_file(path);
    }

    /// Flipping any single byte of a valid file is rejected with a typed
    /// [`FormatError`] (every section and the footer are CRC-guarded).
    fn corrupt_files_are_rejected(ds in arb_dataset()) {
        let path = scratch("corrupt");
        encode_dataset(&ds, &path).expect("encode");
        let bytes = fs::read(&path).unwrap();
        let step = 5.max(bytes.len() / 16);
        for pos in (0..bytes.len()).step_by(step) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0xA5;
            let p = scratch("corrupt-flip");
            fs::write(&p, &bad).unwrap();
            match ColumnarReader::open(&p) {
                Err(_) => {}
                Ok(_) => panic!("byte flip at {pos}/{} must be rejected", bytes.len()),
            }
            let _ = fs::remove_file(p);
        }
        let _ = fs::remove_file(path);
    }
}

/// The streaming generator writes the byte-identical file to encoding the
/// same profile generated in RAM — `gen-data` at scale is exactly the
/// in-RAM pipeline, minus the RAM.
#[test]
fn generate_to_matches_encode_of_generate() {
    for cfg in [
        SyntheticConfig::beauty().scaled(0.2),
        SyntheticConfig::ml100k().scaled(0.3).with_seed(11),
    ] {
        let p_stream = scratch("gen-stream");
        let p_ram = scratch("gen-ram");
        cfg.generate_to(&p_stream).expect("generate_to");
        encode_dataset(&cfg.generate(), &p_ram).expect("encode");
        assert_eq!(
            fs::read(&p_stream).unwrap(),
            fs::read(&p_ram).unwrap(),
            "streamed and in-RAM encodings must be byte-identical"
        );
        let _ = fs::remove_file(p_stream);
        let _ = fs::remove_file(p_ram);
    }
}

/// An injected `write.data` fault aborts the write with a typed I/O error
/// and leaves *nothing* behind: no destination file, no `.tmp` — a crashed
/// writer can never be mistaken for a finished dataset.
#[test]
fn faulted_write_leaves_no_torn_output() {
    let ds = SyntheticConfig::beauty().scaled(0.1).generate();
    let path = scratch("fault");
    let tmp = path.with_extension("ssdc.tmp");
    let armed = FaultPlan::new().error("write.data", 1).arm();
    match encode_dataset(&ds, &path) {
        Err(FormatError::Io(_)) => {}
        other => panic!("expected Io error from the armed fault, got {other:?}"),
    }
    assert_fired_exactly("write.data", 1);
    drop(armed);
    assert!(!path.exists(), "no destination file may appear");
    assert!(!tmp.exists(), "the temp file must be cleaned up");
    // The same write succeeds once the fault is disarmed.
    encode_dataset(&ds, &path).expect("clean write");
    assert!(path.exists());
    let _ = fs::remove_file(path);
}

/// Windowed reads are position-independent: random-access `read_seq` calls
/// return the same sequences as a fresh sequential pass, even when the
/// access pattern hops across window boundaries.
#[test]
fn windowed_random_access_matches_sequential() {
    let cfg = SyntheticConfig::yelp().scaled(0.5);
    let path = scratch("window");
    cfg.generate_to(&path).expect("generate_to");
    let reader = ColumnarReader::open(&path).expect("open");
    let ds = decode_dataset(&path).expect("decode");
    let mut buf = Vec::new();
    let n = SequenceStore::num_users(&reader);
    assert_eq!(n, ds.num_users);
    // Stride pattern deliberately jumps back and forth.
    for step in [1usize, 7, n.saturating_sub(1).max(1)] {
        let mut u = 0usize;
        for _ in 0..n {
            reader.read_seq(u, &mut buf);
            assert_eq!(buf, ds.sequences[u], "user {u}");
            u = (u + step) % n;
        }
    }
    let _ = fs::remove_file(path);
}
