//! Loading real interaction data from disk.
//!
//! The reproduction itself runs on synthetic profiles (see `DESIGN.md`), but
//! downstream users will have real logs. This module parses the two common
//! text formats into a [`Dataset`] or directly into a columnar `.ssdc` file:
//!
//! * **MovieLens `u.data` style**: `user \t item \t rating \t timestamp`
//!   (any single-character delimiter), with optional rating filtering — the
//!   paper filters items rated below 3 in its Fig. 1 setup.
//! * **CSV triples**: `user,item,timestamp` with an optional header row.
//!
//! User and item IDs are re-indexed densely; interactions are sorted by
//! timestamp per user (stable for ties, preserving file order). Every
//! rejection is a typed [`LoadError`] carrying the 1-based line number of
//! the offending record.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::colfile::{ColumnarSummary, ColumnarWriter};
use crate::format::FormatError;
use crate::interaction::Dataset;

/// Parsed options for [`load_interactions`].
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Field delimiter (tab for `u.data`, comma for CSV).
    pub delimiter: char,
    /// Whether the first line is a header to skip.
    pub has_header: bool,
    /// Column index of the user field.
    pub user_col: usize,
    /// Column index of the item field.
    pub item_col: usize,
    /// Column index of the timestamp field.
    pub time_col: usize,
    /// Optional column index of a rating field plus the minimum rating to
    /// keep (the paper keeps ratings ≥ 3 when constructing Fig. 1).
    pub min_rating: Option<(usize, f64)>,
    /// Dataset name to record.
    pub name: String,
}

impl LoadOptions {
    /// MovieLens `u.data`: `user \t item \t rating \t timestamp`.
    pub fn movielens() -> Self {
        LoadOptions {
            delimiter: '\t',
            has_header: false,
            user_col: 0,
            item_col: 1,
            time_col: 3,
            min_rating: Some((2, 3.0)),
            name: "movielens".into(),
        }
    }

    /// Headerless CSV triples `user,item,timestamp`.
    pub fn csv_triples() -> Self {
        LoadOptions {
            delimiter: ',',
            has_header: false,
            user_col: 0,
            item_col: 1,
            time_col: 2,
            min_rating: None,
            name: "csv".into(),
        }
    }
}

/// Typed parse/load errors. Record-level variants carry the 1-based line
/// number of the offending input line.
#[derive(Debug)]
pub enum LoadError {
    /// Reading the input file failed.
    Io(io::Error),
    /// A line has fewer fields than the configured column indices require.
    MissingFields {
        /// 1-based line number.
        line: usize,
        /// Minimum field count the options demand.
        expected: usize,
        /// Fields actually present.
        found: usize,
    },
    /// A field failed to parse as its expected type (includes negative
    /// user/item ids, which are not representable).
    BadField {
        /// 1-based line number.
        line: usize,
        /// Which field (`"user"`, `"item"`, `"rating"`, `"timestamp"`).
        field: &'static str,
        /// The raw text that failed to parse.
        value: String,
    },
    /// The assembled dataset failed structural validation.
    Invalid {
        /// Validation failure description.
        detail: String,
    },
    /// Writing the columnar output failed
    /// ([`parse_interactions_to_columnar`]).
    Format(FormatError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "load I/O error: {e}"),
            LoadError::MissingFields {
                line,
                expected,
                found,
            } => write!(f, "line {line}: expected > {expected} fields, got {found}"),
            LoadError::BadField { line, field, value } => {
                write!(f, "line {line}: bad {field} {value:?}")
            }
            LoadError::Invalid { detail } => write!(f, "invalid dataset: {detail}"),
            LoadError::Format(e) => write!(f, "columnar write failed: {e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<FormatError> for LoadError {
    fn from(e: FormatError) -> Self {
        LoadError::Format(e)
    }
}

/// Parsed rows re-indexed into per-user, time-sorted sequences.
struct Indexed {
    num_items: usize,
    /// Per user: `(timestamp, dense item id)`, time-sorted (stable).
    per_user: Vec<Vec<(i64, usize)>>,
}

fn parse_rows(content: &str, opts: &LoadOptions) -> Result<Vec<(u64, u64, i64)>, LoadError> {
    let mut rows: Vec<(u64, u64, i64)> = Vec::new(); // (user, item, ts)
    let max_col = opts
        .user_col
        .max(opts.item_col)
        .max(opts.time_col)
        .max(opts.min_rating.map(|(c, _)| c).unwrap_or(0));

    for (i, line) in content.lines().enumerate() {
        if i == 0 && opts.has_header {
            continue;
        }
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(opts.delimiter).collect();
        if fields.len() <= max_col {
            return Err(LoadError::MissingFields {
                line: line_no,
                expected: max_col,
                found: fields.len(),
            });
        }
        let bad = |field: &'static str, value: &str| LoadError::BadField {
            line: line_no,
            field,
            value: value.to_string(),
        };
        if let Some((rc, min)) = opts.min_rating {
            let rating: f64 = fields[rc]
                .trim()
                .parse()
                .map_err(|_| bad("rating", fields[rc]))?;
            if rating < min {
                continue;
            }
        }
        let user: u64 = fields[opts.user_col]
            .trim()
            .parse()
            .map_err(|_| bad("user", fields[opts.user_col]))?;
        let item: u64 = fields[opts.item_col]
            .trim()
            .parse()
            .map_err(|_| bad("item", fields[opts.item_col]))?;
        let ts: i64 = fields[opts.time_col]
            .trim()
            .parse()
            .map_err(|_| bad("timestamp", fields[opts.time_col]))?;
        rows.push((user, item, ts));
    }
    Ok(rows)
}

fn index_rows(rows: &[(u64, u64, i64)]) -> Indexed {
    // Dense re-indexing in first-appearance order.
    let mut user_ids: HashMap<u64, usize> = HashMap::new();
    let mut item_ids: HashMap<u64, usize> = HashMap::new();
    for &(u, v, _) in rows {
        let nu = user_ids.len();
        user_ids.entry(u).or_insert(nu);
        let ni = item_ids.len() + 1; // 0 is the pad item
        item_ids.entry(v).or_insert(ni);
    }

    // Per-user, timestamp-sorted sequences (stable sort keeps file order on
    // ties).
    let mut per_user: Vec<Vec<(i64, usize)>> = vec![Vec::new(); user_ids.len()];
    for &(u, v, ts) in rows {
        per_user[user_ids[&u]].push((ts, item_ids[&v]));
    }
    for evs in per_user.iter_mut() {
        evs.sort_by_key(|&(ts, _)| ts);
    }
    Indexed {
        num_items: item_ids.len(),
        per_user,
    }
}

/// Parse interaction text into a [`Dataset`].
pub fn parse_interactions(content: &str, opts: &LoadOptions) -> Result<Dataset, LoadError> {
    let rows = parse_rows(content, opts)?;
    let idx = index_rows(&rows);
    let sequences = idx
        .per_user
        .into_iter()
        .map(|evs| evs.into_iter().map(|(_, it)| it).collect())
        .collect::<Vec<Vec<usize>>>();

    let ds = Dataset {
        name: opts.name.clone(),
        num_users: sequences.len(),
        num_items: idx.num_items,
        sequences,
        noise_labels: None,
    };
    ds.validate()
        .map_err(|e| LoadError::Invalid { detail: e })?;
    Ok(ds)
}

/// Parse interaction text straight into a columnar `.ssdc` file at `out`,
/// preserving timestamps in the TIME column. The write is atomic
/// (temp + rename through the `write.data` fault site) and the produced
/// sequences are identical to `encode_dataset(&parse_interactions(…)?, …)`.
pub fn parse_interactions_to_columnar(
    content: &str,
    opts: &LoadOptions,
    out: impl AsRef<Path>,
) -> Result<ColumnarSummary, LoadError> {
    let rows = parse_rows(content, opts)?;
    let idx = index_rows(&rows);
    let mut w = ColumnarWriter::create(out, &opts.name, idx.num_items, false, true)?;
    let mut seq = Vec::new();
    let mut times = Vec::new();
    for evs in &idx.per_user {
        seq.clear();
        times.clear();
        for &(ts, it) in evs {
            times.push(ts);
            seq.push(it);
        }
        w.push_user(&seq, None, Some(&times))?;
    }
    Ok(w.finish()?)
}

/// Load a [`Dataset`] from a file on disk.
pub fn load_interactions(path: impl AsRef<Path>, opts: &LoadOptions) -> Result<Dataset, LoadError> {
    let content = fs::read_to_string(path)?;
    parse_interactions(&content, opts)
}

/// Convert a text interaction file to columnar, returning the summary.
pub fn load_to_columnar(
    src: impl AsRef<Path>,
    opts: &LoadOptions,
    out: impl AsRef<Path>,
) -> Result<ColumnarSummary, LoadError> {
    let content = fs::read_to_string(src)?;
    parse_interactions_to_columnar(&content, opts, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colfile::ColumnarReader;

    const ML_SAMPLE: &str = "\
1\t10\t5\t100
1\t20\t4\t200
2\t10\t2\t150
2\t30\t5\t50
1\t40\t3\t150
";

    #[test]
    fn parses_movielens_format() {
        let ds = parse_interactions(ML_SAMPLE, &LoadOptions::movielens()).unwrap();
        // User 2's rating-2 interaction on item 10 is filtered; items
        // 10, 20, 40 (user 1) and 30 (user 2) survive.
        assert_eq!(ds.num_users, 2);
        assert_eq!(ds.num_items, 4);
        assert_eq!(ds.num_actions(), 4);
    }

    #[test]
    fn rating_filter_and_time_order() {
        let ds = parse_interactions(ML_SAMPLE, &LoadOptions::movielens()).unwrap();
        // user 1 events by ts: (100, item10), (150, item40), (200, item20).
        let u1 = &ds.sequences[0];
        assert_eq!(u1.len(), 3);
        // user 2 keeps only (50, item30).
        let u2 = &ds.sequences[1];
        assert_eq!(u2.len(), 1);
        // Time ordering within user 1: item10 before item40 before item20.
        let (i10, i40, i20) = (u1[0], u1[1], u1[2]);
        assert!(i10 != i40 && i40 != i20);
    }

    #[test]
    fn csv_triples_parse() {
        let csv = "7,100,3\n7,200,1\n8,100,9\n";
        let ds = parse_interactions(csv, &LoadOptions::csv_triples()).unwrap();
        assert_eq!(ds.num_users, 2);
        assert_eq!(ds.num_items, 2);
        // user 7: ts 1 (item 200) comes before ts 3 (item 100), and
        // user 8's single item equals user 7's *second* (item 100).
        assert_eq!(ds.sequences[0].len(), 2);
        assert_eq!(ds.sequences[0][1], ds.sequences[1][0]);
        assert_ne!(ds.sequences[0][0], ds.sequences[1][0]);
    }

    #[test]
    fn header_skipping() {
        let csv = "user,item,ts\n1,5,1\n1,6,2\n";
        let mut opts = LoadOptions::csv_triples();
        opts.has_header = true;
        let ds = parse_interactions(csv, &opts).unwrap();
        assert_eq!(ds.num_users, 1);
        assert_eq!(ds.sequences[0].len(), 2);
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let bad = "1,2,3\nnot,a,number\n";
        match parse_interactions(bad, &LoadOptions::csv_triples()).unwrap_err() {
            LoadError::BadField { line, field, value } => {
                assert_eq!(line, 2);
                assert_eq!(field, "user");
                assert_eq!(value, "not");
            }
            e => panic!("wrong variant: {e:?}"),
        }
        // Display still names the line for human consumers.
        let e = parse_interactions(bad, &LoadOptions::csv_triples()).unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
    }

    #[test]
    fn negative_ids_are_bad_fields() {
        let bad = "1,5,10\n-3,6,20\n";
        match parse_interactions(bad, &LoadOptions::csv_triples()).unwrap_err() {
            LoadError::BadField { line, field, .. } => {
                assert_eq!(line, 2);
                assert_eq!(field, "user");
            }
            e => panic!("wrong variant: {e:?}"),
        }
        let bad_item = "1,5,10\n3,-6,20\n";
        match parse_interactions(bad_item, &LoadOptions::csv_triples()).unwrap_err() {
            LoadError::BadField { line, field, .. } => {
                assert_eq!(line, 2);
                assert_eq!(field, "item");
            }
            e => panic!("wrong variant: {e:?}"),
        }
    }

    #[test]
    fn missing_fields_error() {
        let bad = "1,2\n";
        match parse_interactions(bad, &LoadOptions::csv_triples()).unwrap_err() {
            LoadError::MissingFields { line, found, .. } => {
                assert_eq!(line, 1);
                assert_eq!(found, 2);
            }
            e => panic!("wrong variant: {e:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ssdrec_loader");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("u.data");
        std::fs::write(&path, ML_SAMPLE).unwrap();
        let ds = load_interactions(&path, &LoadOptions::movielens()).unwrap();
        assert_eq!(ds.num_users, 2);
        assert!(ds.validate().is_ok());
    }

    #[test]
    fn parse_to_columnar_matches_parse_then_encode() {
        let dir = std::env::temp_dir().join("ssdrec_loader_col");
        std::fs::create_dir_all(&dir).unwrap();
        let direct = dir.join("direct.ssdc");
        let summary =
            parse_interactions_to_columnar(ML_SAMPLE, &LoadOptions::movielens(), &direct).unwrap();
        assert_eq!(summary.num_users, 2);
        assert_eq!(summary.num_interactions, 4);

        let ds = parse_interactions(ML_SAMPLE, &LoadOptions::movielens()).unwrap();
        let r = ColumnarReader::open(&direct).unwrap();
        let got = r.to_dataset();
        assert_eq!(got.sequences, ds.sequences);
        assert_eq!(got.num_items, ds.num_items);
        // The direct path preserves timestamps; user 1's are sorted.
        let times = r.read_all_times().unwrap();
        assert_eq!(times[0], vec![100, 150, 200]);
        assert_eq!(times[1], vec![50]);
    }
}
