//! Mini-batching with length bucketing.
//!
//! Batches group examples of *identical* sequence length, which removes any
//! need for padding or masking inside the models — every tensor in a batch
//! is dense `B×T`. The paper's batch size (256) applies per bucket.

use ssdrec_testkit::Rng;
use std::collections::BTreeMap;

use crate::interaction::Example;
use crate::store::{ExampleRef, SequenceStore};

/// One dense mini-batch of equal-length sequences.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Users, length `B`.
    pub users: Vec<usize>,
    /// Row-major `B×T` item IDs.
    pub items: Vec<usize>,
    /// Sequence length `T` shared by the whole batch.
    pub seq_len: usize,
    /// Next-item targets, length `B`.
    pub targets: Vec<usize>,
    /// Ground-truth noise flags (`B×T`, synthetic data only).
    pub noise: Option<Vec<bool>>,
}

impl Batch {
    /// Batch size `B`.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The item row for batch element `i`.
    pub fn seq(&self, i: usize) -> &[usize] {
        &self.items[i * self.seq_len..(i + 1) * self.seq_len]
    }
}

/// One planned batch: a shared sequence length and the example indices that
/// fill it, in emission order. Materializing the items is the caller's job —
/// the plan itself is a few `usize`s per example.
#[derive(Clone, Debug)]
pub struct BatchPlan {
    /// Sequence length `T` shared by the whole batch.
    pub seq_len: usize,
    /// Indices into the caller's example list, in batch row order.
    pub idxs: Vec<usize>,
}

/// The batching decision of [`make_batches`], computed from example
/// *lengths* alone: shuffle example order with `seed`, bucket by exact
/// length (preserving shuffled order inside buckets), chunk each bucket by
/// `batch_size`, then shuffle the batch order.
///
/// This consumes the exact RNG draw sequence `make_batches` historically
/// consumed (one shuffle over examples, one over batches), so planning over
/// a store and batching owned examples are bit-identical.
pub fn plan_batches(lengths: &[usize], batch_size: usize, seed: u64) -> Vec<BatchPlan> {
    assert!(batch_size > 0, "batch_size must be positive");
    let mut order: Vec<usize> = (0..lengths.len()).collect();
    let mut rng = Rng::seed(seed);
    rng.shuffle(&mut order);

    // Bucket by exact length, preserving shuffled order inside buckets.
    let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &i in &order {
        buckets.entry(lengths[i]).or_default().push(i);
    }

    let mut plans = Vec::new();
    for (len, idxs) in buckets {
        if len == 0 {
            continue;
        }
        for chunk in idxs.chunks(batch_size) {
            plans.push(BatchPlan {
                seq_len: len,
                idxs: chunk.to_vec(),
            });
        }
    }

    // Shuffle batch order so the model does not see lengths in sorted order.
    rng.shuffle(&mut plans);
    plans
}

/// Deterministically batch `examples` into equal-length groups of at most
/// `batch_size`, shuffling example order with `seed` (shuffle happens within
/// the global list before bucketing, so bucket composition varies per epoch).
pub fn make_batches(examples: &[Example], batch_size: usize, seed: u64) -> Vec<Batch> {
    let lengths: Vec<usize> = examples.iter().map(|e| e.seq.len()).collect();
    plan_batches(&lengths, batch_size, seed)
        .into_iter()
        .map(|plan| {
            let len = plan.seq_len;
            let chunk = &plan.idxs;
            let mut users = Vec::with_capacity(chunk.len());
            let mut items = Vec::with_capacity(chunk.len() * len);
            let mut targets = Vec::with_capacity(chunk.len());
            let has_noise = examples[chunk[0]].noise.is_some();
            let mut noise = if has_noise {
                Some(Vec::with_capacity(chunk.len() * len))
            } else {
                None
            };
            for &i in chunk {
                let ex = &examples[i];
                users.push(ex.user);
                items.extend_from_slice(&ex.seq);
                targets.push(ex.target);
                if let (Some(nv), Some(exn)) = (noise.as_mut(), ex.noise.as_ref()) {
                    nv.extend_from_slice(exn);
                }
            }
            Batch {
                users,
                items,
                seq_len: len,
                targets,
                noise,
            }
        })
        .collect()
}

/// Lazily materialized batches over a [`SequenceStore`] and a slice of
/// [`ExampleRef`]s: the batching decision comes from [`plan_batches`] (so it
/// is bit-identical to [`make_batches`] over the materialized examples), but
/// item data is read from the store one batch at a time — peak RAM is one
/// batch plus the plan, independent of corpus size.
pub struct BatchIter<'a> {
    store: &'a dyn SequenceStore,
    refs: &'a [ExampleRef],
    plans: std::vec::IntoIter<BatchPlan>,
    num_batches: usize,
    seq: Vec<usize>,
    nz: Vec<bool>,
}

impl<'a> BatchIter<'a> {
    /// Plan batches for `refs` over `store` with the same `(batch_size,
    /// seed)` contract as [`make_batches`].
    pub fn new(
        store: &'a dyn SequenceStore,
        refs: &'a [ExampleRef],
        batch_size: usize,
        seed: u64,
    ) -> Self {
        let lengths: Vec<usize> = refs.iter().map(|r| r.prefix_len as usize).collect();
        let plans = plan_batches(&lengths, batch_size, seed);
        BatchIter {
            store,
            refs,
            num_batches: plans.len(),
            plans: plans.into_iter(),
            seq: Vec::new(),
            nz: Vec::new(),
        }
    }

    /// Total number of batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        self.num_batches
    }
}

impl Iterator for BatchIter<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        let plan = self.plans.next()?;
        let len = plan.seq_len;
        let mut users = Vec::with_capacity(plan.idxs.len());
        let mut items = Vec::with_capacity(plan.idxs.len() * len);
        let mut targets = Vec::with_capacity(plan.idxs.len());
        let mut noise = self
            .store
            .has_noise()
            .then(|| Vec::with_capacity(plan.idxs.len() * len));
        for &i in &plan.idxs {
            let r = self.refs[i];
            let p = r.prefix_len as usize;
            self.store.read_seq(r.user as usize, &mut self.seq);
            users.push(r.user as usize);
            items.extend_from_slice(&self.seq[..p]);
            targets.push(self.seq[p]);
            if let Some(nv) = noise.as_mut() {
                self.store.read_noise(r.user as usize, &mut self.nz);
                nv.extend_from_slice(&self.nz[..p]);
            }
        }
        Some(Batch {
            users,
            items,
            seq_len: len,
            targets,
            noise,
        })
    }
}

/// Anything the trainer can draw deterministic batch streams from: an owned
/// example list (the classical [`Split`](crate::interaction::Split) path) or
/// a store + plan pair (the out-of-core path). Both produce bit-identical
/// batches for the same `(batch_size, seed)`.
pub trait BatchSource {
    /// Number of examples behind this source.
    fn num_examples(&self) -> usize;
    /// Visit every batch of one epoch in order.
    fn for_each_batch(&self, batch_size: usize, seed: u64, f: &mut dyn FnMut(&Batch));
}

impl BatchSource for &[Example] {
    fn num_examples(&self) -> usize {
        self.len()
    }

    fn for_each_batch(&self, batch_size: usize, seed: u64, f: &mut dyn FnMut(&Batch)) {
        for b in make_batches(self, batch_size, seed) {
            f(&b);
        }
    }
}

/// The out-of-core [`BatchSource`]: examples live in a [`SequenceStore`],
/// described by [`ExampleRef`]s.
pub struct StoreExamples<'a> {
    /// Backing store.
    pub store: &'a dyn SequenceStore,
    /// Example metadata.
    pub refs: &'a [ExampleRef],
}

impl BatchSource for StoreExamples<'_> {
    fn num_examples(&self) -> usize {
        self.refs.len()
    }

    fn for_each_batch(&self, batch_size: usize, seed: u64, f: &mut dyn FnMut(&Batch)) {
        for b in BatchIter::new(self.store, self.refs, batch_size, seed) {
            f(&b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(user: usize, seq: &[usize], target: usize) -> Example {
        Example {
            user,
            seq: seq.to_vec(),
            target,
            noise: None,
        }
    }

    fn toy_examples() -> Vec<Example> {
        vec![
            ex(0, &[1, 2, 3], 4),
            ex(1, &[2, 3, 4], 5),
            ex(2, &[1, 2], 3),
            ex(3, &[5, 4, 3], 2),
            ex(4, &[2, 1], 5),
            ex(5, &[1, 2, 3, 4], 5),
        ]
    }

    #[test]
    fn batches_are_length_homogeneous() {
        let batches = make_batches(&toy_examples(), 2, 0);
        for b in &batches {
            assert_eq!(b.items.len(), b.len() * b.seq_len);
        }
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn batch_size_respected() {
        let batches = make_batches(&toy_examples(), 2, 0);
        assert!(batches.iter().all(|b| b.len() <= 2));
    }

    #[test]
    fn every_example_appears_exactly_once() {
        let examples = toy_examples();
        let batches = make_batches(&examples, 4, 7);
        let mut seen = vec![false; examples.len()];
        for b in &batches {
            for i in 0..b.len() {
                let pos = examples
                    .iter()
                    .position(|e| {
                        e.user == b.users[i] && e.seq == b.seq(i) && e.target == b.targets[i]
                    })
                    .expect("batched example not found");
                assert!(!seen[pos], "duplicate example");
                seen[pos] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_varies_with_seed() {
        let a = make_batches(&toy_examples(), 2, 0);
        let b = make_batches(&toy_examples(), 2, 1);
        let order_a: Vec<Vec<usize>> = a.iter().map(|x| x.users.clone()).collect();
        let order_b: Vec<Vec<usize>> = b.iter().map(|x| x.users.clone()).collect();
        assert_ne!(order_a, order_b);
    }

    #[test]
    fn noise_flags_are_carried() {
        let examples = vec![Example {
            user: 0,
            seq: vec![1, 2, 3],
            target: 4,
            noise: Some(vec![false, true, false]),
        }];
        let batches = make_batches(&examples, 4, 0);
        assert_eq!(
            batches[0].noise.as_ref().unwrap(),
            &vec![false, true, false]
        );
    }
}
