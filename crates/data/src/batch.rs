//! Mini-batching with length bucketing.
//!
//! Batches group examples of *identical* sequence length, which removes any
//! need for padding or masking inside the models — every tensor in a batch
//! is dense `B×T`. The paper's batch size (256) applies per bucket.

use ssdrec_testkit::Rng;
use std::collections::BTreeMap;

use crate::interaction::Example;

/// One dense mini-batch of equal-length sequences.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Users, length `B`.
    pub users: Vec<usize>,
    /// Row-major `B×T` item IDs.
    pub items: Vec<usize>,
    /// Sequence length `T` shared by the whole batch.
    pub seq_len: usize,
    /// Next-item targets, length `B`.
    pub targets: Vec<usize>,
    /// Ground-truth noise flags (`B×T`, synthetic data only).
    pub noise: Option<Vec<bool>>,
}

impl Batch {
    /// Batch size `B`.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The item row for batch element `i`.
    pub fn seq(&self, i: usize) -> &[usize] {
        &self.items[i * self.seq_len..(i + 1) * self.seq_len]
    }
}

/// Deterministically batch `examples` into equal-length groups of at most
/// `batch_size`, shuffling example order with `seed` (shuffle happens within
/// the global list before bucketing, so bucket composition varies per epoch).
pub fn make_batches(examples: &[Example], batch_size: usize, seed: u64) -> Vec<Batch> {
    assert!(batch_size > 0, "batch_size must be positive");
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut rng = Rng::seed(seed);
    rng.shuffle(&mut order);

    // Bucket by exact length, preserving shuffled order inside buckets.
    let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &i in &order {
        buckets.entry(examples[i].seq.len()).or_default().push(i);
    }

    let mut batches = Vec::new();
    for (len, idxs) in buckets {
        if len == 0 {
            continue;
        }
        for chunk in idxs.chunks(batch_size) {
            let mut users = Vec::with_capacity(chunk.len());
            let mut items = Vec::with_capacity(chunk.len() * len);
            let mut targets = Vec::with_capacity(chunk.len());
            let has_noise = examples[chunk[0]].noise.is_some();
            let mut noise = if has_noise {
                Some(Vec::with_capacity(chunk.len() * len))
            } else {
                None
            };
            for &i in chunk {
                let ex = &examples[i];
                users.push(ex.user);
                items.extend_from_slice(&ex.seq);
                targets.push(ex.target);
                if let (Some(nv), Some(exn)) = (noise.as_mut(), ex.noise.as_ref()) {
                    nv.extend_from_slice(exn);
                }
            }
            batches.push(Batch {
                users,
                items,
                seq_len: len,
                targets,
                noise,
            });
        }
    }

    // Shuffle batch order so the model does not see lengths in sorted order.
    rng.shuffle(&mut batches);
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(user: usize, seq: &[usize], target: usize) -> Example {
        Example {
            user,
            seq: seq.to_vec(),
            target,
            noise: None,
        }
    }

    fn toy_examples() -> Vec<Example> {
        vec![
            ex(0, &[1, 2, 3], 4),
            ex(1, &[2, 3, 4], 5),
            ex(2, &[1, 2], 3),
            ex(3, &[5, 4, 3], 2),
            ex(4, &[2, 1], 5),
            ex(5, &[1, 2, 3, 4], 5),
        ]
    }

    #[test]
    fn batches_are_length_homogeneous() {
        let batches = make_batches(&toy_examples(), 2, 0);
        for b in &batches {
            assert_eq!(b.items.len(), b.len() * b.seq_len);
        }
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn batch_size_respected() {
        let batches = make_batches(&toy_examples(), 2, 0);
        assert!(batches.iter().all(|b| b.len() <= 2));
    }

    #[test]
    fn every_example_appears_exactly_once() {
        let examples = toy_examples();
        let batches = make_batches(&examples, 4, 7);
        let mut seen = vec![false; examples.len()];
        for b in &batches {
            for i in 0..b.len() {
                let pos = examples
                    .iter()
                    .position(|e| {
                        e.user == b.users[i] && e.seq == b.seq(i) && e.target == b.targets[i]
                    })
                    .expect("batched example not found");
                assert!(!seen[pos], "duplicate example");
                seen[pos] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_varies_with_seed() {
        let a = make_batches(&toy_examples(), 2, 0);
        let b = make_batches(&toy_examples(), 2, 1);
        let order_a: Vec<Vec<usize>> = a.iter().map(|x| x.users.clone()).collect();
        let order_b: Vec<Vec<usize>> = b.iter().map(|x| x.users.clone()).collect();
        assert_ne!(order_a, order_b);
    }

    #[test]
    fn noise_flags_are_carried() {
        let examples = vec![Example {
            user: 0,
            seq: vec![1, 2, 3],
            target: 4,
            noise: Some(vec![false, true, false]),
        }];
        let batches = make_batches(&examples, 4, 0);
        assert_eq!(
            batches[0].noise.as_ref().unwrap(),
            &vec![false, true, false]
        );
    }
}
