//! Binary encoding primitives shared by the columnar dataset file
//! ([`crate::colfile`]) and the streaming log in `ssdrec-stream`.
//!
//! * **varint** — LEB128: 7 payload bits per byte, high bit = continuation.
//! * **zigzag** — maps signed deltas onto unsigned varints so that small
//!   negative jumps (common in delta-coded item ids) stay short:
//!   `0, -1, 1, -2, … → 0, 1, 2, 3, …`.
//! * **CRC-32** — the IEEE polynomial (0xEDB88320), table-driven, with a
//!   streaming [`Crc32`] for sections too large to hold in RAM.
//!
//! Every encoder here is a pure function of its input: encoded bytes are
//! byte-identical across runs, hosts, and thread counts — the same canonical
//! discipline the rest of the workspace applies to checkpoints and logs.

use std::fmt;
use std::io;

/// Maximum encoded size of a `u64` varint (⌈64/7⌉ bytes).
pub const MAX_VARINT_LEN: usize = 10;

/// Append `v` to `out` as a LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a LEB128 varint from `buf[pos..]`, advancing `pos`.
///
/// Returns `None` on truncation or on a varint longer than
/// [`MAX_VARINT_LEN`] bytes (an overlong/corrupt encoding).
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for _ in 0..MAX_VARINT_LEN {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
    None
}

/// Zigzag-encode a signed value for varint storage.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// The IEEE CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3) of `bytes` in one shot.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// Streaming CRC-32 for data processed in chunks.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// Typed errors for the columnar dataset format.
///
/// Every rejection path names what was wrong and where; no reader error is a
/// bare string. I/O failures wrap the underlying [`io::Error`].
#[derive(Debug)]
pub enum FormatError {
    /// Underlying filesystem error (including injected `write.data` faults).
    Io(io::Error),
    /// The file does not start with the `SSDC` magic.
    BadMagic,
    /// The file carries a format version this reader does not understand.
    BadVersion {
        /// Version number found in the header.
        found: u32,
    },
    /// The file ends before a complete structure could be read.
    Truncated {
        /// Which structure was cut short.
        what: &'static str,
    },
    /// The footer (section table) is missing or malformed.
    BadFooter,
    /// A section's stored CRC-32 does not match its payload.
    SectionCrc {
        /// Four-character section tag, e.g. `"ITEM"`.
        section: String,
    },
    /// A required section is absent from the footer table.
    MissingSection {
        /// Four-character section tag.
        section: &'static str,
    },
    /// A decoded value is structurally impossible (overlong varint,
    /// out-of-range id, inconsistent counts…).
    Corrupt {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// An item id pushed to the writer falls outside `1..=num_items`.
    ItemOutOfRange {
        /// User whose sequence contained the offending id.
        user: usize,
        /// The offending item id.
        item: usize,
        /// The writer's pinned catalogue size.
        num_items: usize,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "columnar I/O error: {e}"),
            FormatError::BadMagic => write!(f, "not a columnar dataset (bad magic)"),
            FormatError::BadVersion { found } => {
                write!(f, "unsupported columnar format version {found}")
            }
            FormatError::Truncated { what } => write!(f, "truncated columnar file ({what})"),
            FormatError::BadFooter => write!(f, "missing or malformed columnar footer"),
            FormatError::SectionCrc { section } => {
                write!(f, "CRC mismatch in section {section}")
            }
            FormatError::MissingSection { section } => {
                write!(f, "required section {section} missing")
            }
            FormatError::Corrupt { detail } => write!(f, "corrupt columnar data: {detail}"),
            FormatError::ItemOutOfRange {
                user,
                item,
                num_items,
            } => write!(
                f,
                "item {item} of user {user} outside catalogue 1..={num_items}"
            ),
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FormatError {
    fn from(e: io::Error) -> Self {
        FormatError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT_LEN);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overlong() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(read_varint(&buf[..buf.len() - 1], &mut pos), None);
        // 11 continuation bytes can never be a valid u64.
        let overlong = vec![0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_varint(&overlong, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -123_456, 123_456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes (the point of zigzag).
        assert!(zigzag(-1) < 8 && zigzag(1) < 8);
    }

    #[test]
    fn crc_matches_known_vector() {
        // CRC-32("123456789") is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn streaming_crc_equals_one_shot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(97) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }
}
