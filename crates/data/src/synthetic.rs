//! Synthetic dataset generator reproducing the structure of the paper's five
//! evaluation datasets (Table II).
//!
//! ## Why synthetic
//!
//! The original datasets are large public downloads; on the single-CPU
//! reproduction box, full-size training is infeasible and network-gated. The
//! generator instead plants exactly the signals sequence-denoising methods
//! exploit, at a configurable scale:
//!
//! * **Sequential structure** — items belong to latent clusters; a sequence
//!   follows a Markov chain over clusters (high self-transition plus a ring
//!   topology), so "smooth sequentiality" is a real, learnable property.
//! * **Correlation structure** — users have a home cluster; most of their
//!   items are drawn from nearby clusters, so intra-sequence similarity is
//!   informative.
//! * **Popularity skew** — items are Zipf-distributed inside clusters,
//!   reproducing the long-tail that motivates the paper's user-relation
//!   sub-graphs.
//! * **Ground-truth noise** — a `noise_ratio` fraction of interactions is
//!   drawn uniformly at random and *labelled*, which real data cannot
//!   provide. This gives Fig. 1's over/under-denoising ratios an exact
//!   footing.

use std::path::Path;

use ssdrec_testkit::Rng;

use crate::colfile::{ColumnarSummary, ColumnarWriter};
use crate::format::FormatError;
use crate::interaction::Dataset;

/// Configuration for the cluster-Markov generator.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Profile name recorded on the generated [`Dataset`].
    pub name: String,
    /// Number of users.
    pub num_users: usize,
    /// Number of items (IDs `1..=num_items`).
    pub num_items: usize,
    /// Number of latent item clusters.
    pub num_clusters: usize,
    /// Mean sequence length (geometric-ish spread around this).
    pub avg_len: usize,
    /// Minimum sequence length generated.
    pub min_len: usize,
    /// Probability that a step stays in the current cluster.
    pub stay_prob: f64,
    /// Fraction of interactions replaced by uniform-random noise.
    pub noise_ratio: f64,
    /// Zipf exponent for within-cluster item popularity.
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    fn profile(name: &str, users: usize, items: usize, clusters: usize, avg: usize) -> Self {
        SyntheticConfig {
            name: name.into(),
            num_users: users,
            num_items: items,
            num_clusters: clusters,
            avg_len: avg,
            min_len: 5,
            stay_prob: 0.7,
            noise_ratio: 0.1,
            zipf_s: 1.1,
            seed: 20_24,
        }
    }

    /// ML-100K analogue: few users, dense, long sequences (Table II row 4).
    /// Rating-driven MovieLens histories are the noisiest of the five
    /// sources (bulk rating sessions), so the profile carries a higher
    /// noise ratio.
    pub fn ml100k() -> Self {
        let mut p = Self::profile("ml-100k-sim", 160, 150, 8, 42);
        p.noise_ratio = 0.18;
        p
    }

    /// ML-1M analogue: larger and denser still, the longest sequences.
    /// Carries the same elevated noise ratio as ML-100K (same source).
    pub fn ml1m() -> Self {
        let mut p = Self::profile("ml-1m-sim", 240, 250, 10, 60);
        p.noise_ratio = 0.18;
        p
    }

    /// Amazon-Beauty analogue: sparse, short sequences (avg ≈ 9).
    pub fn beauty() -> Self {
        Self::profile("beauty-sim", 320, 260, 10, 9)
    }

    /// Amazon-Sports analogue: the sparsest, shortest sequences.
    pub fn sports() -> Self {
        Self::profile("sports-sim", 380, 300, 10, 8)
    }

    /// Yelp analogue: sparse with slightly longer sequences (avg ≈ 10).
    pub fn yelp() -> Self {
        Self::profile("yelp-sim", 340, 320, 12, 10)
    }

    /// All five paper profiles, in the paper's order.
    pub fn all_profiles() -> Vec<Self> {
        vec![
            Self::beauty(),
            Self::sports(),
            Self::yelp(),
            Self::ml100k(),
            Self::ml1m(),
        ]
    }

    /// Scale user/item counts by `f` (for quick tests or larger runs).
    pub fn scaled(mut self, f: f64) -> Self {
        self.num_users = ((self.num_users as f64 * f) as usize).max(8);
        self.num_items = ((self.num_items as f64 * f) as usize).max(16);
        self
    }

    /// Override the user count exactly (the retrieval bench pins catalogue
    /// sizes, where `scaled`'s rounding would drift).
    pub fn with_users(mut self, n: usize) -> Self {
        self.num_users = n.max(1);
        self
    }

    /// Override the item count exactly.
    pub fn with_items(mut self, n: usize) -> Self {
        self.num_items = n.max(self.num_clusters);
        self
    }

    /// Override the injected-noise fraction.
    pub fn with_noise_ratio(mut self, r: f64) -> Self {
        self.noise_ratio = r;
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Item-to-cluster assignment tables shared by [`SyntheticConfig::generate`]
    /// and [`SyntheticConfig::generate_to`]: round-robin cluster membership
    /// plus Zipf popularity weights within each cluster.
    fn cluster_tables(&self) -> (Vec<Vec<usize>>, Vec<Vec<f64>>) {
        assert!(self.num_clusters >= 2, "need at least 2 clusters");
        assert!(
            self.num_items >= self.num_clusters,
            "more clusters than items"
        );
        let mut cluster_items: Vec<Vec<usize>> = vec![Vec::new(); self.num_clusters];
        for item in 1..=self.num_items {
            cluster_items[(item - 1) % self.num_clusters].push(item);
        }
        let cluster_weights: Vec<Vec<f64>> = cluster_items
            .iter()
            .map(|items| {
                (1..=items.len())
                    .map(|r| 1.0 / (r as f64).powf(self.zipf_s))
                    .collect()
            })
            .collect();
        (cluster_items, cluster_weights)
    }

    /// Sample user `u`'s sequence and noise labels into `seq`/`lab`
    /// (cleared first). Both generation paths call this with the same RNG in
    /// the same per-user order, so their outputs are identical.
    fn sample_user(
        &self,
        u: usize,
        rng: &mut Rng,
        cluster_items: &[Vec<usize>],
        cluster_weights: &[Vec<f64>],
        seq: &mut Vec<usize>,
        lab: &mut Vec<bool>,
    ) {
        // Spread of lengths: uniform in [min_len, 2*avg_len - min_len],
        // so the mean is ~avg_len.
        let hi = (2 * self.avg_len)
            .saturating_sub(self.min_len)
            .max(self.min_len + 1);
        let len = rng.between(self.min_len, hi);

        let mut cluster = u % self.num_clusters; // user's home cluster
        seq.clear();
        lab.clear();
        seq.reserve(len);
        lab.reserve(len);
        for _ in 0..len {
            if rng.bernoulli(self.noise_ratio) {
                // Uniform-random accidental interaction.
                seq.push(rng.between(1, self.num_items));
                lab.push(true);
                continue;
            }
            if !rng.bernoulli(self.stay_prob) {
                // Ring topology: mostly advance to the next cluster,
                // occasionally jump back.
                cluster = if rng.bernoulli(0.8) {
                    (cluster + 1) % self.num_clusters
                } else {
                    (cluster + self.num_clusters - 1) % self.num_clusters
                };
            }
            let idx = rng.weighted_index_f64(&cluster_weights[cluster]);
            seq.push(cluster_items[cluster][idx]);
            lab.push(false);
        }
    }

    /// Generate the dataset.
    pub fn generate(&self) -> Dataset {
        let (cluster_items, cluster_weights) = self.cluster_tables();
        let mut rng = Rng::seed(self.seed);

        let mut sequences = Vec::with_capacity(self.num_users);
        let mut labels = Vec::with_capacity(self.num_users);
        let mut seq = Vec::new();
        let mut lab = Vec::new();
        for u in 0..self.num_users {
            self.sample_user(
                u,
                &mut rng,
                &cluster_items,
                &cluster_weights,
                &mut seq,
                &mut lab,
            );
            sequences.push(seq.clone());
            labels.push(lab.clone());
        }

        let ds = Dataset {
            name: self.name.clone(),
            num_users: self.num_users,
            num_items: self.num_items,
            sequences,
            noise_labels: Some(labels),
        };
        debug_assert!(ds.validate().is_ok());
        ds
    }

    /// Stream the dataset straight into a columnar file at `path` without
    /// ever holding more than one user's sequence in RAM.
    ///
    /// The RNG draw sequence is identical to [`SyntheticConfig::generate`],
    /// so the produced file is byte-identical to
    /// `encode_dataset(&cfg.generate(), path)` — pinned by the property
    /// suite — while peak memory stays flat in the user count.
    pub fn generate_to(&self, path: impl AsRef<Path>) -> Result<ColumnarSummary, FormatError> {
        let (cluster_items, cluster_weights) = self.cluster_tables();
        let mut rng = Rng::seed(self.seed);

        let mut w = ColumnarWriter::create(path, &self.name, self.num_items, true, false)?;
        let mut seq = Vec::new();
        let mut lab = Vec::new();
        for u in 0..self.num_users {
            self.sample_user(
                u,
                &mut rng,
                &cluster_items,
                &cluster_weights,
                &mut seq,
                &mut lab,
            );
            w.push_user(&seq, Some(&lab), None)?;
        }
        w.finish()
    }
}

/// The latent cluster of an item under the generator's round-robin scheme
/// (exposed for tests and the case-study binary).
pub fn item_cluster(item: usize, num_clusters: usize) -> usize {
    assert!(item >= 1, "pad item has no cluster");
    (item - 1) % num_clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_dataset() {
        let ds = SyntheticConfig::beauty().generate();
        ds.validate().unwrap();
        assert_eq!(ds.num_users, 320);
        assert!(ds.sequences.iter().all(|s| s.len() >= 5));
    }

    #[test]
    fn avg_len_close_to_profile() {
        let cfg = SyntheticConfig::ml100k();
        let ds = cfg.generate();
        let avg = ds.avg_len();
        assert!(
            (avg - cfg.avg_len as f64).abs() < cfg.avg_len as f64 * 0.25,
            "avg {avg} vs target {}",
            cfg.avg_len
        );
    }

    #[test]
    fn noise_fraction_close_to_config() {
        let ds = SyntheticConfig::ml1m().with_noise_ratio(0.2).generate();
        let labels = ds.noise_labels.as_ref().unwrap();
        let total: usize = labels.iter().map(|l| l.len()).sum();
        let noisy: usize = labels
            .iter()
            .map(|l| l.iter().filter(|&&b| b).count())
            .sum();
        let frac = noisy as f64 / total as f64;
        assert!((frac - 0.2).abs() < 0.03, "noise fraction {frac}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = SyntheticConfig::yelp().generate();
        let b = SyntheticConfig::yelp().generate();
        assert_eq!(a.sequences, b.sequences);
        let c = SyntheticConfig::yelp().with_seed(1).generate();
        assert_ne!(a.sequences, c.sequences);
    }

    #[test]
    fn clean_steps_are_cluster_coherent() {
        // Consecutive non-noise items should mostly be in the same or an
        // adjacent cluster — the planted sequential signal.
        let cfg = SyntheticConfig::ml100k().with_noise_ratio(0.0);
        let ds = cfg.generate();
        let k = cfg.num_clusters;
        let mut coherent = 0usize;
        let mut total = 0usize;
        for seq in &ds.sequences {
            for w in seq.windows(2) {
                let (a, b) = (item_cluster(w[0], k), item_cluster(w[1], k));
                let diff = (b + k - a) % k;
                if diff == 0 || diff == 1 || diff == k - 1 {
                    coherent += 1;
                }
                total += 1;
            }
        }
        let frac = coherent as f64 / total as f64;
        assert!(frac > 0.95, "cluster coherence only {frac}");
    }

    #[test]
    fn popularity_is_skewed() {
        let ds = SyntheticConfig::sports().generate();
        let mut freq = ds.item_frequencies();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = freq.iter().take(ds.num_items / 10).sum();
        let total: usize = freq.iter().sum();
        assert!(
            top10 as f64 > total as f64 * 0.3,
            "top-10% items hold {top10}/{total}"
        );
    }

    #[test]
    fn scaled_changes_counts() {
        let cfg = SyntheticConfig::beauty().scaled(0.5);
        assert_eq!(cfg.num_users, 160);
        assert_eq!(cfg.num_items, 130);
    }

    #[test]
    fn sparsity_ordering_matches_paper() {
        // Amazon/Yelp profiles must be much sparser than MovieLens profiles,
        // mirroring Table II.
        let dense = SyntheticConfig::ml100k().generate().sparsity();
        let sparse = SyntheticConfig::sports().generate().sparsity();
        assert!(
            sparse > dense,
            "sports {sparse} should exceed ml100k {dense}"
        );
    }
}
