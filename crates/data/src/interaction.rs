//! Core data model: users, items and temporal interaction sequences.
//!
//! Item ID `0` is reserved as padding throughout the workspace; real items
//! are numbered `1..=num_items`.

/// Reserved padding item ID.
pub const PAD_ITEM: usize = 0;

/// A single user–item interaction with a timestamp-ordered position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interaction {
    /// User ID (`0..num_users`).
    pub user: usize,
    /// Item ID (`1..=num_items`).
    pub item: usize,
}

/// A full interaction dataset: one temporal sequence per user.
///
/// Mirrors the paper's "raw sequence data" `S^i = [s^i_1, …, s^i_{n_i}]`
/// (§II). When produced by the synthetic generator, `noise_labels` carries
/// the ground-truth "this interaction was noise" flag per position — the
/// label that real datasets lack and the paper has to inject for Fig. 1.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable profile name (e.g. `"ml-100k-sim"`).
    pub name: String,
    /// Number of users; user IDs are `0..num_users`.
    pub num_users: usize,
    /// Number of real items; item IDs are `1..=num_items` (`0` is padding).
    pub num_items: usize,
    /// Per-user, time-ordered item sequences.
    pub sequences: Vec<Vec<usize>>,
    /// Optional ground-truth noise flags, aligned with `sequences`.
    pub noise_labels: Option<Vec<Vec<bool>>>,
}

impl Dataset {
    /// Total number of interactions.
    pub fn num_actions(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    /// Mean sequence length over users with at least one interaction.
    pub fn avg_len(&self) -> f64 {
        let nonempty = self.sequences.iter().filter(|s| !s.is_empty()).count();
        if nonempty == 0 {
            return 0.0;
        }
        self.num_actions() as f64 / nonempty as f64
    }

    /// Interaction-matrix sparsity `1 − actions / (users · items)`, as a
    /// percentage (Table II's "# Sparsity" column).
    pub fn sparsity(&self) -> f64 {
        let cells = (self.num_users * self.num_items) as f64;
        if cells == 0.0 {
            return 0.0;
        }
        // Count distinct (user, item) pairs, as in an interaction matrix.
        let mut distinct = 0usize;
        let mut seen = vec![false; self.num_items + 1];
        for seq in &self.sequences {
            for &it in seq {
                if !seen[it] {
                    seen[it] = true;
                    distinct += 1;
                }
            }
            for &it in seq {
                seen[it] = false;
            }
        }
        (1.0 - distinct as f64 / cells) * 100.0
    }

    /// Per-item interaction counts (index 0 is the pad item, always 0).
    pub fn item_frequencies(&self) -> Vec<usize> {
        let mut freq = vec![0usize; self.num_items + 1];
        for seq in &self.sequences {
            for &it in seq {
                freq[it] += 1;
            }
        }
        freq
    }

    /// Validity check: every item ID within range, labels aligned.
    pub fn validate(&self) -> Result<(), String> {
        if self.sequences.len() != self.num_users {
            return Err(format!(
                "{} sequences for {} users",
                self.sequences.len(),
                self.num_users
            ));
        }
        for (u, seq) in self.sequences.iter().enumerate() {
            for &it in seq {
                if it == PAD_ITEM || it > self.num_items {
                    return Err(format!(
                        "user {u}: item {it} out of range 1..={}",
                        self.num_items
                    ));
                }
            }
        }
        if let Some(labels) = &self.noise_labels {
            if labels.len() != self.sequences.len() {
                return Err("noise label rows mismatch".into());
            }
            for (u, (seq, lab)) in self.sequences.iter().zip(labels).enumerate() {
                if seq.len() != lab.len() {
                    return Err(format!("user {u}: label length mismatch"));
                }
            }
        }
        Ok(())
    }
}

/// One supervised example: a user's history prefix and the next interaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Example {
    /// The user the sequence belongs to.
    pub user: usize,
    /// Input prefix `[s_1, …, s_t]`.
    pub seq: Vec<usize>,
    /// Ground-truth next item `s_{t+1}`.
    pub target: usize,
    /// Ground-truth noise flags for `seq` (synthetic data only).
    pub noise: Option<Vec<bool>>,
}

/// Train / validation / test examples produced by the leave-one-out split.
#[derive(Clone, Debug, Default)]
pub struct Split {
    /// Training examples (possibly several prefixes per user).
    pub train: Vec<Example>,
    /// One validation example per user (second-to-last item as target).
    pub valid: Vec<Example>,
    /// One test example per user (last item as target).
    pub test: Vec<Example>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset {
            name: "toy".into(),
            num_users: 2,
            num_items: 5,
            sequences: vec![vec![1, 2, 3], vec![2, 2, 4, 5]],
            noise_labels: None,
        }
    }

    #[test]
    fn stats() {
        let d = toy();
        assert_eq!(d.num_actions(), 7);
        assert!((d.avg_len() - 3.5).abs() < 1e-9);
        // distinct pairs: u0 {1,2,3}, u1 {2,4,5} = 6 of 10 cells
        assert!((d.sparsity() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn frequencies() {
        let f = toy().item_frequencies();
        assert_eq!(f, vec![0, 1, 3, 1, 1, 1]);
    }

    #[test]
    fn validate_catches_out_of_range() {
        let mut d = toy();
        d.sequences[0].push(9);
        assert!(d.validate().is_err());
        assert!(toy().validate().is_ok());
    }

    #[test]
    fn validate_catches_label_misalignment() {
        let mut d = toy();
        d.noise_labels = Some(vec![vec![false; 3], vec![false; 3]]);
        assert!(d.validate().is_err());
    }
}
