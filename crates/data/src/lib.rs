//! # ssdrec-data
//!
//! Datasets and preprocessing for the SSDRec reproduction: a cluster-Markov
//! synthetic generator matching the paper's five dataset profiles (Table II),
//! k-core filtering, leave-one-out splitting, length-bucketed batching and
//! noise injection for the Fig. 1 OUP experiment.
//!
//! Real datasets (MovieLens, Amazon, Yelp) are substituted by scaled
//! synthetic analogues; see the workspace `DESIGN.md` for the rationale.

#![warn(missing_docs)]

pub mod batch;
pub mod colfile;
pub mod format;
pub mod interaction;
pub mod loader;
pub mod noise;
pub mod preprocess;
pub mod store;
pub mod synthetic;

pub use batch::{
    make_batches, plan_batches, Batch, BatchIter, BatchPlan, BatchSource, StoreExamples,
};
pub use colfile::{
    decode_dataset, encode_dataset, ColumnarReader, ColumnarSummary, ColumnarWriter,
};
pub use format::{crc32, Crc32, FormatError};
pub use interaction::{Dataset, Example, Interaction, Split, PAD_ITEM};
pub use loader::{
    load_interactions, load_to_columnar, parse_interactions, parse_interactions_to_columnar,
    LoadError, LoadOptions,
};
pub use noise::inject_unobserved;
pub use preprocess::{k_core_filter, leave_one_out, plan_leave_one_out, truncate_to_max_len};
pub use store::{ExampleRef, SequenceStore, SplitPlan, TruncatedStore};
pub use synthetic::{item_cluster, SyntheticConfig};

/// Run the paper's full preprocessing pipeline on a dataset: 5-core filter,
/// truncate to `max_len`, leave-one-out split with a per-user prefix cap.
pub fn prepare(ds: &Dataset, max_len: usize, max_train_prefixes: usize) -> (Dataset, Split) {
    let (mut filtered, _) = k_core_filter(ds, 5, 5);
    truncate_to_max_len(&mut filtered, max_len);
    let split = leave_one_out(&filtered, 5, max_train_prefixes);
    (filtered, split)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_runs_end_to_end() {
        let ds = SyntheticConfig::beauty().generate();
        let (filtered, split) = prepare(&ds, 50, 3);
        assert!(filtered.num_items > 0);
        assert!(!split.test.is_empty());
        assert!(split.train.len() >= split.test.len());
    }
}
