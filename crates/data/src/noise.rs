//! Noise injection for the Fig. 1 OUP experiment.
//!
//! The paper randomly inserts *unobserved* interactions into raw short
//! sequences and measures (a) how many inserted items a denoiser keeps
//! (under-denoising) and (b) how many raw items it drops (over-denoising).

use ssdrec_testkit::Rng;
use std::collections::HashSet;

use crate::interaction::Dataset;

/// Insert `per_seq` random unobserved items into each sequence no longer
/// than `short_len`, labelling every inserted position as noise. Existing
/// labels (if any) are preserved for original positions.
pub fn inject_unobserved(ds: &Dataset, short_len: usize, per_seq: usize, seed: u64) -> Dataset {
    let mut rng = Rng::seed(seed);
    let mut sequences = Vec::with_capacity(ds.sequences.len());
    let mut labels = Vec::with_capacity(ds.sequences.len());

    for (u, seq) in ds.sequences.iter().enumerate() {
        let base_labels: Vec<bool> = match &ds.noise_labels {
            Some(l) => l[u].clone(),
            None => vec![false; seq.len()],
        };
        if seq.is_empty() || seq.len() > short_len {
            sequences.push(seq.clone());
            labels.push(base_labels);
            continue;
        }
        let observed: HashSet<usize> = seq.iter().copied().collect();
        let mut new_seq: Vec<usize> = seq.clone();
        let mut new_lab = base_labels;
        for _ in 0..per_seq {
            // Find an unobserved item; give up gracefully if the user has
            // seen (almost) everything.
            let mut item = None;
            for _ in 0..50 {
                let cand = rng.between(1, ds.num_items);
                if !observed.contains(&cand) {
                    item = Some(cand);
                    break;
                }
            }
            let Some(item) = item else { break };
            let pos = rng.between(0, new_seq.len());
            new_seq.insert(pos, item);
            new_lab.insert(pos, true);
        }
        sequences.push(new_seq);
        labels.push(new_lab);
    }

    let out = Dataset {
        name: format!("{}+noise", ds.name),
        num_users: ds.num_users,
        num_items: ds.num_items,
        sequences,
        noise_labels: Some(labels),
    };
    debug_assert!(out.validate().is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    fn toy() -> Dataset {
        Dataset {
            name: "toy".into(),
            num_users: 2,
            num_items: 20,
            sequences: vec![vec![1, 2, 3], vec![4; 10]],
            noise_labels: None,
        }
    }

    #[test]
    fn inserts_into_short_sequences_only() {
        let out = inject_unobserved(&toy(), 5, 2, 0);
        assert_eq!(out.sequences[0].len(), 5);
        assert_eq!(out.sequences[1].len(), 10); // longer than short_len, untouched
    }

    #[test]
    fn inserted_items_are_unobserved_and_labelled() {
        let base = toy();
        let out = inject_unobserved(&base, 5, 2, 1);
        let labels = out.noise_labels.as_ref().unwrap();
        for (i, (&it, &lab)) in out.sequences[0].iter().zip(&labels[0]).enumerate() {
            if lab {
                assert!(
                    !base.sequences[0].contains(&it),
                    "pos {i}: inserted item was observed"
                );
            }
        }
        assert_eq!(labels[0].iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn original_order_preserved() {
        let out = inject_unobserved(&toy(), 5, 3, 2);
        let originals: Vec<usize> = out.sequences[0]
            .iter()
            .zip(out.noise_labels.as_ref().unwrap()[0].iter())
            .filter(|(_, &lab)| !lab)
            .map(|(&it, _)| it)
            .collect();
        assert_eq!(originals, vec![1, 2, 3]);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = inject_unobserved(&toy(), 5, 2, 9);
        let b = inject_unobserved(&toy(), 5, 2, 9);
        assert_eq!(a.sequences, b.sequences);
    }

    #[test]
    fn composes_with_synthetic_labels() {
        let ds = SyntheticConfig::beauty().with_noise_ratio(0.1).generate();
        let out = inject_unobserved(&ds, 12, 2, 3);
        out.validate().unwrap();
        // Inserted noise adds to (not replaces) generator noise labels.
        let before: usize = ds
            .noise_labels
            .as_ref()
            .unwrap()
            .iter()
            .map(|l| l.iter().filter(|&&b| b).count())
            .sum();
        let after: usize = out
            .noise_labels
            .as_ref()
            .unwrap()
            .iter()
            .map(|l| l.iter().filter(|&&b| b).count())
            .sum();
        assert!(after > before);
    }
}
