//! The `.ssdc` columnar dataset file: an out-of-core, CRC-checked binary
//! layout for interaction sequences.
//!
//! ## Layout (version 1)
//!
//! ```text
//! header   16 B   "SSDC" · version u32 LE · flags u32 LE · reserved u32
//! ITEM     …      item-id column: per user, zigzag-varint deltas (prev = 0
//!                 at each sequence start) — streamed, never buffered whole
//! META     …      name len u32 LE · name bytes · num_users u64 ·
//!                 num_items u64 · num_interactions u64
//! LENS     …      per-user interaction count, varint ×num_users
//! OFFS     …      per-user byte offset into ITEM, delta-varint
//!                 ×(num_users+1); first entry 0, last = ITEM length
//! NOIS     …      (flag bit 0) noise-label bitmap, user-major, LSB first
//! TIME     …      (flag bit 1) per-user zigzag-varint timestamp deltas
//! footer   …      per section: tag 4 B · offset u64 · len u64 · crc u32;
//!                 then count u32 · footer crc u32 · "CDSS"
//! ```
//!
//! Section payload CRCs and the footer CRC are IEEE CRC-32
//! ([`crate::format::crc32`]). The encoder is a pure function of its input:
//! bytes are identical across runs, hosts, and thread counts.
//!
//! Writes are atomic: everything goes to `<path>.tmp`, is flushed and
//! fsynced, passes the `write.data` fault site, and only then is renamed
//! over `path` — a crash or injected fault can never leave a torn `.ssdc`.
//!
//! [`ColumnarReader::open`] verifies the header, the footer table, and every
//! section CRC (large sections are scanned in bounded chunks), and
//! structurally validates the whole item column once — after a successful
//! open, per-user reads are infallible and served through a small reusable
//! window buffer (`pread`, no full materialization).

use std::cell::RefCell;
use std::fs::{self, File};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crate::format::{crc32, read_varint, unzigzag, write_varint, zigzag, Crc32, FormatError};
use crate::interaction::Dataset;

const MAGIC: &[u8; 4] = b"SSDC";
const FOOTER_MAGIC: &[u8; 4] = b"CDSS";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 16;
const FLAG_NOISE: u32 = 1;
const FLAG_TIME: u32 = 1 << 1;
/// Bytes per footer-table entry: tag + offset + len + crc.
const SECTION_ENTRY_LEN: usize = 4 + 8 + 8 + 4;
/// Default reusable read-window size (bytes).
const WINDOW_LEN: usize = 1 << 20;
/// Chunk size for streaming CRC verification of large sections.
const SCAN_CHUNK: usize = 1 << 20;

/// What a completed write produced (for logs and benches).
#[derive(Clone, Debug)]
pub struct ColumnarSummary {
    /// Users written.
    pub num_users: usize,
    /// Total interactions written.
    pub num_interactions: u64,
    /// Final file size in bytes.
    pub bytes: u64,
}

/// Streaming writer for `.ssdc` files.
///
/// Sequences are pushed one user at a time in user order; only the small
/// index columns (lengths, offsets, noise bits, timestamps) are buffered in
/// RAM — the item column streams straight to disk, so peak memory is
/// independent of the dataset's interaction count.
pub struct ColumnarWriter {
    tmp: PathBuf,
    path: PathBuf,
    file: Option<BufWriter<File>>,
    name: String,
    num_items: usize,
    has_noise: bool,
    has_times: bool,
    num_users: usize,
    num_interactions: u64,
    item_bytes: u64,
    item_crc: Crc32,
    scratch: Vec<u8>,
    lens: Vec<u8>,
    offs: Vec<u8>,
    noise_bits: Vec<u8>,
    noise_fill: u64,
    times: Vec<u8>,
}

impl ColumnarWriter {
    /// Start writing `path` (via `path.tmp`). `has_noise` / `has_times`
    /// decide whether every pushed user must carry those columns.
    pub fn create(
        path: impl AsRef<Path>,
        name: &str,
        num_items: usize,
        has_noise: bool,
        has_times: bool,
    ) -> Result<Self, FormatError> {
        let path = path.as_ref().to_path_buf();
        let tmp = tmp_path(&path);
        let mut file = BufWriter::new(File::create(&tmp)?);
        let mut flags = 0u32;
        if has_noise {
            flags |= FLAG_NOISE;
        }
        if has_times {
            flags |= FLAG_TIME;
        }
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.write_all(&flags.to_le_bytes())?;
        file.write_all(&0u32.to_le_bytes())?;
        let mut offs = Vec::new();
        write_varint(&mut offs, 0); // first offset is always 0
        Ok(ColumnarWriter {
            tmp,
            path,
            file: Some(file),
            name: name.to_string(),
            num_items,
            has_noise,
            has_times,
            num_users: 0,
            num_interactions: 0,
            item_bytes: 0,
            item_crc: Crc32::new(),
            scratch: Vec::new(),
            lens: Vec::new(),
            offs,
            noise_bits: Vec::new(),
            noise_fill: 0,
            times: Vec::new(),
        })
    }

    /// Append the next user's sequence (user ids are implicit: the `n`-th
    /// push is user `n`). `noise` / `times` must be present iff the writer
    /// was created with the corresponding column, and match `seq` in length.
    pub fn push_user(
        &mut self,
        seq: &[usize],
        noise: Option<&[bool]>,
        times: Option<&[i64]>,
    ) -> Result<(), FormatError> {
        assert_eq!(
            self.has_noise,
            noise.is_some(),
            "noise column presence must match ColumnarWriter::create"
        );
        assert_eq!(
            self.has_times,
            times.is_some(),
            "time column presence must match ColumnarWriter::create"
        );
        self.scratch.clear();
        let mut prev = 0i64;
        for &it in seq {
            if it < 1 || it > self.num_items {
                return Err(FormatError::ItemOutOfRange {
                    user: self.num_users,
                    item: it,
                    num_items: self.num_items,
                });
            }
            write_varint(&mut self.scratch, zigzag(it as i64 - prev));
            prev = it as i64;
        }
        self.item_crc.update(&self.scratch);
        self.item_bytes += self.scratch.len() as u64;
        self.file
            .as_mut()
            .expect("writer already finished")
            .write_all(&self.scratch)?;

        write_varint(&mut self.lens, seq.len() as u64);
        write_varint(&mut self.offs, self.scratch.len() as u64);
        if let Some(nz) = noise {
            assert_eq!(nz.len(), seq.len(), "noise labels must align with seq");
            for &b in nz {
                let bit = self.noise_fill;
                if bit % 8 == 0 {
                    self.noise_bits.push(0);
                }
                if b {
                    *self.noise_bits.last_mut().unwrap() |= 1 << (bit % 8);
                }
                self.noise_fill += 1;
            }
        }
        if let Some(ts) = times {
            assert_eq!(ts.len(), seq.len(), "timestamps must align with seq");
            let mut prev = 0i64;
            for &t in ts {
                write_varint(&mut self.times, zigzag(t.wrapping_sub(prev)));
                prev = t;
            }
        }
        self.num_users += 1;
        self.num_interactions += seq.len() as u64;
        Ok(())
    }

    /// Write the index sections and footer, fsync, pass the `write.data`
    /// fault site, and atomically rename into place.
    pub fn finish(mut self) -> Result<ColumnarSummary, FormatError> {
        let mut file = self.file.take().expect("writer already finished");

        let mut meta = Vec::new();
        meta.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        meta.extend_from_slice(self.name.as_bytes());
        meta.extend_from_slice(&(self.num_users as u64).to_le_bytes());
        meta.extend_from_slice(&(self.num_items as u64).to_le_bytes());
        meta.extend_from_slice(&self.num_interactions.to_le_bytes());

        // Section table: ITEM first (streamed behind the header), then the
        // buffered index columns in a fixed order.
        let mut table: Vec<(&[u8; 4], u64, u64, u32)> = Vec::new();
        table.push((b"ITEM", HEADER_LEN, self.item_bytes, self.item_crc.finish()));
        let mut cursor = HEADER_LEN + self.item_bytes;
        let mut small: Vec<(&[u8; 4], &[u8])> = vec![
            (b"META", &meta),
            (b"LENS", &self.lens),
            (b"OFFS", &self.offs),
        ];
        if self.has_noise {
            small.push((b"NOIS", &self.noise_bits));
        }
        if self.has_times {
            small.push((b"TIME", &self.times));
        }
        for (tag, payload) in small {
            file.write_all(payload)?;
            table.push((tag, cursor, payload.len() as u64, crc32(payload)));
            cursor += payload.len() as u64;
        }

        let mut footer = Vec::new();
        for &(tag, off, len, crc) in &table {
            footer.extend_from_slice(tag);
            footer.extend_from_slice(&off.to_le_bytes());
            footer.extend_from_slice(&len.to_le_bytes());
            footer.extend_from_slice(&crc.to_le_bytes());
        }
        footer.extend_from_slice(&(table.len() as u32).to_le_bytes());
        let fcrc = crc32(&footer);
        footer.extend_from_slice(&fcrc.to_le_bytes());
        footer.extend_from_slice(FOOTER_MAGIC);
        file.write_all(&footer)?;
        let bytes = cursor + footer.len() as u64;

        let cleanup = |tmp: &Path, e: FormatError| -> FormatError {
            let _ = fs::remove_file(tmp);
            e
        };
        if let Err(e) = file.flush() {
            return Err(cleanup(&self.tmp, e.into()));
        }
        let inner = file.into_inner().map_err(|e| {
            cleanup(
                &self.tmp,
                FormatError::Io(std::io::Error::other(e.to_string())),
            )
        })?;
        if let Err(e) = inner.sync_all() {
            return Err(cleanup(&self.tmp, e.into()));
        }
        drop(inner);
        if let Err(e) = ssdrec_faults::point("write.data") {
            return Err(cleanup(
                &self.tmp,
                FormatError::Io(std::io::Error::other(e.to_string())),
            ));
        }
        if let Err(e) = fs::rename(&self.tmp, &self.path) {
            return Err(cleanup(&self.tmp, e.into()));
        }
        Ok(ColumnarSummary {
            num_users: self.num_users,
            num_interactions: self.num_interactions,
            bytes,
        })
    }
}

impl Drop for ColumnarWriter {
    fn drop(&mut self) {
        // An abandoned writer (error path, panic) must not leave its temp
        // file behind; `finish` takes `self.file` so a completed writer
        // skips this.
        if self.file.take().is_some() {
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

struct Window {
    /// Byte offset of the window start within the ITEM payload.
    start: u64,
    buf: Vec<u8>,
}

/// Bounded-RAM reader for `.ssdc` files.
///
/// Holds the per-user offset/length indexes and the noise bitmap in RAM
/// (≈ 13 bytes/user + 1 bit/interaction); the item column stays on disk and
/// is read through one reusable window buffer. All validation — CRCs,
/// structure, id ranges — happens once in [`ColumnarReader::open`], so the
/// per-user accessors are infallible.
pub struct ColumnarReader {
    file: File,
    name: String,
    num_items: usize,
    num_interactions: u64,
    /// Per-user byte offsets into ITEM (`num_users + 1` entries).
    offs: Vec<u64>,
    /// Per-user interaction counts.
    lens: Vec<u32>,
    /// Per-user interaction prefix sums (`num_users + 1` entries) — bit
    /// offsets into the noise bitmap.
    prefix: Vec<u64>,
    noise: Option<Vec<u8>>,
    /// `(file offset, payload length)` of the TIME section, if present.
    time_span: Option<(u64, u64)>,
    item_file_off: u64,
    window: RefCell<Window>,
}

fn section_payload(file: &mut File, off: u64, len: u64) -> Result<Vec<u8>, FormatError> {
    let mut buf = vec![0u8; len as usize];
    file.seek(SeekFrom::Start(off))?;
    file.read_exact(&mut buf)
        .map_err(|_| FormatError::Truncated { what: "section" })?;
    Ok(buf)
}

fn verify_crc_streaming(
    file: &File,
    off: u64,
    len: u64,
    expect: u32,
    tag: &str,
) -> Result<(), FormatError> {
    let mut crc = Crc32::new();
    let mut chunk = vec![0u8; SCAN_CHUNK.min(len as usize).max(1)];
    let mut pos = 0u64;
    while pos < len {
        let n = chunk.len().min((len - pos) as usize);
        file.read_exact_at(&mut chunk[..n], off + pos)
            .map_err(|_| FormatError::Truncated { what: "section" })?;
        crc.update(&chunk[..n]);
        pos += n as u64;
    }
    if crc.finish() != expect {
        return Err(FormatError::SectionCrc {
            section: tag.to_string(),
        });
    }
    Ok(())
}

impl ColumnarReader {
    /// Open and fully validate a columnar file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, FormatError> {
        let mut file = File::open(path.as_ref())?;
        let file_len = file.metadata()?.len();

        // Header.
        if file_len < HEADER_LEN {
            return Err(FormatError::Truncated { what: "header" });
        }
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)?;
        if &header[0..4] != MAGIC {
            return Err(FormatError::BadMagic);
        }
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(FormatError::BadVersion { found: version });
        }
        let flags = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if flags & !(FLAG_NOISE | FLAG_TIME) != 0 {
            return Err(FormatError::Corrupt {
                detail: format!("unknown flag bits 0x{flags:08x} in a v{VERSION} file"),
            });
        }
        let reserved = u32::from_le_bytes(header[12..16].try_into().unwrap());
        if reserved != 0 {
            return Err(FormatError::Corrupt {
                detail: format!("reserved header field must be zero, found 0x{reserved:08x}"),
            });
        }

        // Footer: trailing magic, then count, then the section table.
        if file_len < HEADER_LEN + 12 {
            return Err(FormatError::Truncated { what: "footer" });
        }
        let mut tail = [0u8; 12];
        file.read_exact_at(&mut tail, file_len - 12)?;
        if &tail[8..12] != FOOTER_MAGIC {
            return Err(FormatError::BadFooter);
        }
        let count = u32::from_le_bytes(tail[0..4].try_into().unwrap()) as usize;
        let fcrc = u32::from_le_bytes(tail[4..8].try_into().unwrap());
        let table_len = count
            .checked_mul(SECTION_ENTRY_LEN)
            .ok_or(FormatError::BadFooter)? as u64;
        if count == 0 || table_len + 12 + HEADER_LEN > file_len {
            return Err(FormatError::BadFooter);
        }
        let table_off = file_len - 12 - table_len;
        let mut table = vec![0u8; table_len as usize + 4]; // + count field
        file.read_exact_at(&mut table, table_off)?;
        if crc32(&table) != fcrc {
            return Err(FormatError::BadFooter);
        }

        let mut sections: Vec<([u8; 4], u64, u64, u32)> = Vec::with_capacity(count);
        for i in 0..count {
            let e = &table[i * SECTION_ENTRY_LEN..(i + 1) * SECTION_ENTRY_LEN];
            let tag: [u8; 4] = e[0..4].try_into().unwrap();
            let off = u64::from_le_bytes(e[4..12].try_into().unwrap());
            let len = u64::from_le_bytes(e[12..20].try_into().unwrap());
            let crc = u32::from_le_bytes(e[20..24].try_into().unwrap());
            if off < HEADER_LEN || off.checked_add(len).is_none_or(|end| end > table_off) {
                return Err(FormatError::BadFooter);
            }
            sections.push((tag, off, len, crc));
        }
        let find = |tag: &'static str| -> Result<(u64, u64, u32), FormatError> {
            sections
                .iter()
                .find(|(t, _, _, _)| t == tag.as_bytes())
                .map(|&(_, o, l, c)| (o, l, c))
                .ok_or(FormatError::MissingSection { section: tag })
        };

        // META.
        let (moff, mlen, mcrc) = find("META")?;
        let meta = section_payload(&mut file, moff, mlen)?;
        if crc32(&meta) != mcrc {
            return Err(FormatError::SectionCrc {
                section: "META".into(),
            });
        }
        if meta.len() < 4 {
            return Err(FormatError::Truncated { what: "META" });
        }
        let name_len = u32::from_le_bytes(meta[0..4].try_into().unwrap()) as usize;
        if meta.len() != 4 + name_len + 24 {
            return Err(FormatError::Corrupt {
                detail: "META length inconsistent".into(),
            });
        }
        let name = std::str::from_utf8(&meta[4..4 + name_len])
            .map_err(|_| FormatError::Corrupt {
                detail: "dataset name is not UTF-8".into(),
            })?
            .to_string();
        let rest = &meta[4 + name_len..];
        let num_users = u64::from_le_bytes(rest[0..8].try_into().unwrap()) as usize;
        let num_items = u64::from_le_bytes(rest[8..16].try_into().unwrap()) as usize;
        let num_interactions = u64::from_le_bytes(rest[16..24].try_into().unwrap());

        // LENS.
        let (loff, llen, lcrc) = find("LENS")?;
        let lens_raw = section_payload(&mut file, loff, llen)?;
        if crc32(&lens_raw) != lcrc {
            return Err(FormatError::SectionCrc {
                section: "LENS".into(),
            });
        }
        let mut lens = Vec::with_capacity(num_users);
        let mut prefix = Vec::with_capacity(num_users + 1);
        let mut pos = 0usize;
        let mut total = 0u64;
        prefix.push(0);
        for u in 0..num_users {
            let n = read_varint(&lens_raw, &mut pos).ok_or(FormatError::Corrupt {
                detail: format!("LENS truncated at user {u}"),
            })?;
            if n > u32::MAX as u64 {
                return Err(FormatError::Corrupt {
                    detail: format!("user {u} length {n} impossible"),
                });
            }
            lens.push(n as u32);
            total += n;
            prefix.push(total);
        }
        if pos != lens_raw.len() || total != num_interactions {
            return Err(FormatError::Corrupt {
                detail: "LENS inconsistent with META interaction count".into(),
            });
        }

        // OFFS.
        let (ooff, olen, ocrc) = find("OFFS")?;
        let offs_raw = section_payload(&mut file, ooff, olen)?;
        if crc32(&offs_raw) != ocrc {
            return Err(FormatError::SectionCrc {
                section: "OFFS".into(),
            });
        }
        let (item_off, item_len, item_crc) = find("ITEM")?;
        let mut offs = Vec::with_capacity(num_users + 1);
        let mut pos = 0usize;
        let mut cur = 0u64;
        for u in 0..=num_users {
            let d = read_varint(&offs_raw, &mut pos).ok_or(FormatError::Corrupt {
                detail: format!("OFFS truncated at user {u}"),
            })?;
            cur = if u == 0 { d } else { cur + d };
            offs.push(cur);
        }
        if pos != offs_raw.len() || offs[0] != 0 || *offs.last().unwrap() != item_len {
            return Err(FormatError::Corrupt {
                detail: "OFFS inconsistent with ITEM section".into(),
            });
        }

        // NOIS / TIME presence must match the header flags.
        let noise = if flags & FLAG_NOISE != 0 {
            let (noff, nlen, ncrc) = find("NOIS")?;
            let bits = section_payload(&mut file, noff, nlen)?;
            if crc32(&bits) != ncrc {
                return Err(FormatError::SectionCrc {
                    section: "NOIS".into(),
                });
            }
            if bits.len() as u64 != num_interactions.div_ceil(8) {
                return Err(FormatError::Corrupt {
                    detail: "NOIS bitmap length mismatch".into(),
                });
            }
            Some(bits)
        } else {
            None
        };
        let time_span = if flags & FLAG_TIME != 0 {
            let (toff, tlen, tcrc) = find("TIME")?;
            verify_crc_streaming(&file, toff, tlen, tcrc, "TIME")?;
            Some((toff, tlen))
        } else {
            None
        };

        // ITEM: stream the CRC and structurally validate every sequence in
        // one bounded-RAM pass, so the per-user accessors below can be
        // infallible.
        verify_crc_streaming(&file, item_off, item_len, item_crc, "ITEM")?;
        let reader = ColumnarReader {
            file,
            name,
            num_items,
            num_interactions,
            offs,
            lens,
            prefix,
            noise,
            time_span,
            item_file_off: item_off,
            window: RefCell::new(Window {
                start: u64::MAX,
                buf: Vec::new(),
            }),
        };
        reader.validate_items()?;
        Ok(reader)
    }

    fn validate_items(&self) -> Result<(), FormatError> {
        for u in 0..self.num_users() {
            let mut win = self.window.borrow_mut();
            let raw = self.user_window(&mut win, u);
            let mut pos = 0usize;
            let mut prev = 0i64;
            for t in 0..self.lens[u] as usize {
                let z = read_varint(raw, &mut pos).ok_or(FormatError::Corrupt {
                    detail: format!("ITEM truncated at user {u} position {t}"),
                })?;
                let it = prev + unzigzag(z);
                if it < 1 || it > self.num_items as i64 {
                    return Err(FormatError::Corrupt {
                        detail: format!(
                            "user {u} position {t}: item {it} outside 1..={}",
                            self.num_items
                        ),
                    });
                }
                prev = it;
            }
            if pos != raw.len() {
                return Err(FormatError::Corrupt {
                    detail: format!("user {u}: trailing bytes in item run"),
                });
            }
        }
        Ok(())
    }

    /// The raw varint bytes of user `u`'s sequence, refilling the reusable
    /// window on a miss. Sequential scans refill once per `WINDOW_LEN`
    /// bytes; the window grows only for a single run longer than it.
    fn user_window<'w>(&self, win: &'w mut Window, u: usize) -> &'w [u8] {
        let (start, end) = (self.offs[u], self.offs[u + 1]);
        let len = (end - start) as usize;
        let hit =
            win.start != u64::MAX && start >= win.start && end <= win.start + win.buf.len() as u64;
        if !hit {
            let want = WINDOW_LEN.max(len);
            let avail = (*self.offs.last().unwrap() - start) as usize;
            win.buf.resize(want.min(avail), 0);
            win.start = start;
            self.file
                .read_exact_at(&mut win.buf, self.item_file_off + start)
                .expect("ITEM pread within bounds checked at open");
        }
        let lo = (start - win.start) as usize;
        &win.buf[lo..lo + len]
    }

    /// Users in the file.
    pub fn num_users(&self) -> usize {
        self.lens.len()
    }

    /// Catalogue size (item ids are `1..=num_items`).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Total interactions.
    pub fn num_interactions(&self) -> u64 {
        self.num_interactions
    }

    /// Dataset name recorded in META.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether a noise-label column is present.
    pub fn has_noise(&self) -> bool {
        self.noise.is_some()
    }

    /// Whether a timestamp column is present.
    pub fn has_times(&self) -> bool {
        self.time_span.is_some()
    }

    /// Interaction count of user `u` (no I/O).
    pub fn seq_len(&self, u: usize) -> usize {
        self.lens[u] as usize
    }

    /// Decode user `u`'s item sequence into `out` (cleared first).
    pub fn read_seq(&self, u: usize, out: &mut Vec<usize>) {
        out.clear();
        let mut win = self.window.borrow_mut();
        let raw = self.user_window(&mut win, u);
        let mut pos = 0usize;
        let mut prev = 0i64;
        out.reserve(self.lens[u] as usize);
        for _ in 0..self.lens[u] {
            let z = read_varint(raw, &mut pos).expect("validated at open");
            let it = prev + unzigzag(z);
            out.push(it as usize);
            prev = it;
        }
    }

    /// Decode user `u`'s noise labels into `out` (cleared; left empty when
    /// the file has no noise column).
    pub fn read_noise(&self, u: usize, out: &mut Vec<bool>) {
        out.clear();
        let Some(bits) = &self.noise else { return };
        let base = self.prefix[u];
        out.reserve(self.lens[u] as usize);
        for t in 0..self.lens[u] as u64 {
            let bit = base + t;
            out.push(bits[(bit / 8) as usize] >> (bit % 8) & 1 == 1);
        }
    }

    /// Decode the full timestamp column (present only when
    /// [`ColumnarReader::has_times`]); loads the column once, so this is the
    /// one accessor whose memory scales with interaction count.
    pub fn read_all_times(&self) -> Result<Vec<Vec<i64>>, FormatError> {
        let Some((off, len)) = self.time_span else {
            return Ok(Vec::new());
        };
        let mut raw = vec![0u8; len as usize];
        self.file
            .read_exact_at(&mut raw, off)
            .map_err(FormatError::Io)?;
        let mut pos = 0usize;
        let mut all = Vec::with_capacity(self.num_users());
        for u in 0..self.num_users() {
            let mut prev = 0i64;
            let mut ts = Vec::with_capacity(self.lens[u] as usize);
            for t in 0..self.lens[u] {
                let z = read_varint(&raw, &mut pos).ok_or(FormatError::Corrupt {
                    detail: format!("TIME truncated at user {u} position {t}"),
                })?;
                prev = prev.wrapping_add(unzigzag(z));
                ts.push(prev);
            }
            all.push(ts);
        }
        if pos != raw.len() {
            return Err(FormatError::Corrupt {
                detail: "trailing bytes in TIME section".into(),
            });
        }
        Ok(all)
    }

    /// Materialize the whole file as an in-RAM [`Dataset`].
    pub fn to_dataset(&self) -> Dataset {
        let mut sequences = Vec::with_capacity(self.num_users());
        let mut labels = self
            .has_noise()
            .then(|| Vec::with_capacity(self.num_users()));
        let mut seq = Vec::new();
        let mut nz = Vec::new();
        for u in 0..self.num_users() {
            self.read_seq(u, &mut seq);
            sequences.push(seq.clone());
            if let Some(l) = labels.as_mut() {
                self.read_noise(u, &mut nz);
                l.push(nz.clone());
            }
        }
        Dataset {
            name: self.name.clone(),
            num_users: self.num_users(),
            num_items: self.num_items,
            sequences,
            noise_labels: labels,
        }
    }
}

/// Encode an in-RAM [`Dataset`] to `path` atomically.
pub fn encode_dataset(
    ds: &Dataset,
    path: impl AsRef<Path>,
) -> Result<ColumnarSummary, FormatError> {
    let mut w = ColumnarWriter::create(
        path,
        &ds.name,
        ds.num_items,
        ds.noise_labels.is_some(),
        false,
    )?;
    for (u, seq) in ds.sequences.iter().enumerate() {
        let noise = ds.noise_labels.as_ref().map(|l| l[u].as_slice());
        w.push_user(seq, noise, None)?;
    }
    w.finish()
}

/// Read a columnar file fully into an in-RAM [`Dataset`].
pub fn decode_dataset(path: impl AsRef<Path>) -> Result<Dataset, FormatError> {
    Ok(ColumnarReader::open(path)?.to_dataset())
}
