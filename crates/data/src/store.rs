//! The [`SequenceStore`] abstraction: one interface over the in-RAM
//! [`Dataset`] and the out-of-core [`ColumnarReader`].
//!
//! Everything downstream of loading — the leave-one-out split plan, the
//! batch iterator, graph construction, training — runs against this trait,
//! and is **bit-identical** across backing stores: a windowed columnar file
//! and a fully materialized dataset produce the same batches, the same CSRs
//! and the same checkpoints, byte for byte. Property tests pin this
//! (`crates/data/tests/prop_columnar.rs`).
//!
//! Stores hand sequences out through caller-provided buffers
//! (`read_seq(u, &mut buf)`), so iterating a store allocates nothing per
//! user and peak RAM stays bounded by the store's own index structures.

use crate::colfile::ColumnarReader;
use crate::interaction::{Dataset, Example, Split};

/// Read access to a corpus of interaction sequences.
pub trait SequenceStore {
    /// Number of users (sequences).
    fn num_users(&self) -> usize;
    /// Catalogue size; item ids are `1..=num_items`.
    fn num_items(&self) -> usize;
    /// Dataset name.
    fn name(&self) -> &str;
    /// Whether ground-truth noise labels are available.
    fn has_noise(&self) -> bool;
    /// Length of user `u`'s sequence without reading it.
    fn seq_len(&self, u: usize) -> usize;
    /// Fill `out` (cleared first) with user `u`'s item sequence.
    fn read_seq(&self, u: usize, out: &mut Vec<usize>);
    /// Fill `out` (cleared first) with user `u`'s noise labels; `out` is
    /// left empty when [`SequenceStore::has_noise`] is false.
    fn read_noise(&self, u: usize, out: &mut Vec<bool>);

    /// Total interactions across all users.
    fn num_interactions(&self) -> u64 {
        (0..self.num_users()).map(|u| self.seq_len(u) as u64).sum()
    }
}

impl SequenceStore for Dataset {
    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn has_noise(&self) -> bool {
        self.noise_labels.is_some()
    }

    fn seq_len(&self, u: usize) -> usize {
        self.sequences[u].len()
    }

    fn read_seq(&self, u: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend_from_slice(&self.sequences[u]);
    }

    fn read_noise(&self, u: usize, out: &mut Vec<bool>) {
        out.clear();
        if let Some(l) = &self.noise_labels {
            out.extend_from_slice(&l[u]);
        }
    }
}

impl SequenceStore for ColumnarReader {
    fn num_users(&self) -> usize {
        ColumnarReader::num_users(self)
    }

    fn num_items(&self) -> usize {
        ColumnarReader::num_items(self)
    }

    fn name(&self) -> &str {
        ColumnarReader::name(self)
    }

    fn has_noise(&self) -> bool {
        ColumnarReader::has_noise(self)
    }

    fn seq_len(&self, u: usize) -> usize {
        ColumnarReader::seq_len(self, u)
    }

    fn read_seq(&self, u: usize, out: &mut Vec<usize>) {
        ColumnarReader::read_seq(self, u, out)
    }

    fn read_noise(&self, u: usize, out: &mut Vec<bool>) {
        ColumnarReader::read_noise(self, u, out)
    }

    fn num_interactions(&self) -> u64 {
        ColumnarReader::num_interactions(self)
    }
}

/// A zero-copy view of a store with every sequence truncated to its most
/// recent `max_len` interactions — the lazy analogue of
/// [`crate::preprocess::truncate_to_max_len`].
pub struct TruncatedStore<'a, S: SequenceStore + ?Sized> {
    inner: &'a S,
    max_len: usize,
}

impl<'a, S: SequenceStore + ?Sized> TruncatedStore<'a, S> {
    /// Wrap `inner`, keeping at most the last `max_len` items per user.
    pub fn new(inner: &'a S, max_len: usize) -> Self {
        assert!(max_len > 0, "max_len must be positive");
        TruncatedStore { inner, max_len }
    }
}

impl<S: SequenceStore + ?Sized> SequenceStore for TruncatedStore<'_, S> {
    fn num_users(&self) -> usize {
        self.inner.num_users()
    }

    fn num_items(&self) -> usize {
        self.inner.num_items()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn has_noise(&self) -> bool {
        self.inner.has_noise()
    }

    fn seq_len(&self, u: usize) -> usize {
        self.inner.seq_len(u).min(self.max_len)
    }

    fn read_seq(&self, u: usize, out: &mut Vec<usize>) {
        self.inner.read_seq(u, out);
        if out.len() > self.max_len {
            out.drain(..out.len() - self.max_len);
        }
    }

    fn read_noise(&self, u: usize, out: &mut Vec<bool>) {
        self.inner.read_noise(u, out);
        if out.len() > self.max_len {
            out.drain(..out.len() - self.max_len);
        }
    }
}

/// A training/eval example as *metadata only*: the items live in the store.
///
/// `prefix_len` items of `user`'s sequence form the input; the item at
/// position `prefix_len` is the target. 8 bytes per example, vs. an owned
/// [`Example`]'s full item vector — the difference between a 1M-user split
/// plan fitting in tens of MB and blowing past RAM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExampleRef {
    /// User id (row in the store).
    pub user: u32,
    /// Number of leading items forming the input; the target sits at this
    /// position.
    pub prefix_len: u32,
}

impl ExampleRef {
    /// Materialize the full [`Example`] from its store.
    pub fn materialize(&self, store: &dyn SequenceStore, seq: &mut Vec<usize>) -> Example {
        store.read_seq(self.user as usize, seq);
        let p = self.prefix_len as usize;
        let noise = if store.has_noise() {
            let mut nz = Vec::new();
            store.read_noise(self.user as usize, &mut nz);
            nz.truncate(p);
            Some(nz)
        } else {
            None
        };
        Example {
            user: self.user as usize,
            seq: seq[..p].to_vec(),
            target: seq[p],
            noise,
        }
    }
}

/// A leave-one-out split as example references
/// ([`crate::preprocess::plan_leave_one_out`]).
#[derive(Clone, Debug, Default)]
pub struct SplitPlan {
    /// Training prefixes.
    pub train: Vec<ExampleRef>,
    /// One validation example per eligible user.
    pub valid: Vec<ExampleRef>,
    /// One test example per eligible user.
    pub test: Vec<ExampleRef>,
}

impl SplitPlan {
    /// Materialize every example into an owned [`Split`] (tests and
    /// small-scale paths; defeats the purpose at scale).
    pub fn materialize(&self, store: &dyn SequenceStore) -> Split {
        let mut seq = Vec::new();
        let mut out = Split::default();
        for (refs, dst) in [
            (&self.train, &mut out.train),
            (&self.valid, &mut out.valid),
            (&self.test, &mut out.test),
        ] {
            dst.reserve(refs.len());
            for r in refs {
                dst.push(r.materialize(store, &mut seq));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{leave_one_out, plan_leave_one_out, truncate_to_max_len};
    use crate::synthetic::SyntheticConfig;

    #[test]
    fn dataset_store_round_trips() {
        let ds = SyntheticConfig::beauty().scaled(0.1).generate();
        let store: &dyn SequenceStore = &ds;
        assert_eq!(store.num_users(), ds.num_users);
        assert_eq!(store.num_interactions() as usize, ds.num_actions());
        let mut buf = Vec::new();
        let mut nz = Vec::new();
        for u in 0..ds.num_users {
            store.read_seq(u, &mut buf);
            assert_eq!(buf, ds.sequences[u]);
            store.read_noise(u, &mut nz);
            assert_eq!(&nz, &ds.noise_labels.as_ref().unwrap()[u]);
        }
    }

    #[test]
    fn truncated_store_matches_eager_truncation() {
        let ds = SyntheticConfig::ml100k().scaled(0.2).generate();
        let mut eager = ds.clone();
        truncate_to_max_len(&mut eager, 12);
        let lazy = TruncatedStore::new(&ds, 12);
        let (mut buf, mut nz) = (Vec::new(), Vec::new());
        for u in 0..ds.num_users {
            assert_eq!(lazy.seq_len(u), eager.sequences[u].len());
            lazy.read_seq(u, &mut buf);
            assert_eq!(buf, eager.sequences[u]);
            lazy.read_noise(u, &mut nz);
            assert_eq!(&nz, &eager.noise_labels.as_ref().unwrap()[u]);
        }
    }

    #[test]
    fn plan_materializes_to_the_eager_split() {
        let ds = SyntheticConfig::yelp().scaled(0.2).generate();
        let split = leave_one_out(&ds, 5, 3);
        let plan = plan_leave_one_out(&ds, 5, 3);
        let from_plan = plan.materialize(&ds);
        for (a, b) in [
            (&split.train, &from_plan.train),
            (&split.valid, &from_plan.valid),
            (&split.test, &from_plan.test),
        ] {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.user, y.user);
                assert_eq!(x.seq, y.seq);
                assert_eq!(x.target, y.target);
                assert_eq!(x.noise, y.noise);
            }
        }
    }
}
