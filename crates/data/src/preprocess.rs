//! Preprocessing pipeline matching the paper's §IV-A1:
//! 5-core filtering, maximum-length truncation, and the leave-one-out split.

use std::collections::HashMap;

use crate::interaction::{Dataset, Example, Split};
use crate::store::{ExampleRef, SequenceStore, SplitPlan};

/// Iteratively drop items with frequency `< min_item_freq` and sequences
/// shorter than `min_seq_len`, until a fixed point (k-core filtering).
///
/// Item IDs are then re-indexed densely (`1..=num_items'`); the returned map
/// gives `old ID → new ID`.
pub fn k_core_filter(
    ds: &Dataset,
    min_seq_len: usize,
    min_item_freq: usize,
) -> (Dataset, HashMap<usize, usize>) {
    let mut sequences = ds.sequences.clone();
    let mut labels = ds.noise_labels.clone();

    loop {
        // Item frequency over surviving interactions.
        let mut freq: HashMap<usize, usize> = HashMap::new();
        for seq in &sequences {
            for &it in seq {
                *freq.entry(it).or_insert(0) += 1;
            }
        }
        let mut changed = false;

        // Drop infrequent items from each sequence.
        for (u, seq) in sequences.iter_mut().enumerate() {
            let keep: Vec<bool> = seq
                .iter()
                .map(|it| freq.get(it).copied().unwrap_or(0) >= min_item_freq)
                .collect();
            if keep.iter().any(|&k| !k) {
                changed = true;
                let mut new_seq = Vec::with_capacity(seq.len());
                let mut new_lab = Vec::new();
                for (i, &it) in seq.iter().enumerate() {
                    if keep[i] {
                        new_seq.push(it);
                        if let Some(l) = &labels {
                            new_lab.push(l[u][i]);
                        }
                    }
                }
                *seq = new_seq;
                if let Some(l) = &mut labels {
                    l[u] = new_lab;
                }
            }
        }

        // Empty sequences shorter than the threshold.
        for (u, seq) in sequences.iter_mut().enumerate() {
            if !seq.is_empty() && seq.len() < min_seq_len {
                changed = true;
                seq.clear();
                if let Some(l) = &mut labels {
                    l[u].clear();
                }
            }
        }

        if !changed {
            break;
        }
    }

    // Dense re-index of surviving items.
    let mut remap: HashMap<usize, usize> = HashMap::new();
    for seq in &sequences {
        for &it in seq {
            let next = remap.len() + 1;
            remap.entry(it).or_insert(next);
        }
    }
    for seq in sequences.iter_mut() {
        for it in seq.iter_mut() {
            *it = remap[it];
        }
    }

    let out = Dataset {
        name: ds.name.clone(),
        num_users: ds.num_users,
        num_items: remap.len(),
        sequences,
        noise_labels: labels,
    };
    debug_assert!(out.validate().is_ok());
    (out, remap)
}

/// Truncate each sequence to its most recent `max_len` interactions
/// (the paper uses 200 for ML-1M, 50 elsewhere).
pub fn truncate_to_max_len(ds: &mut Dataset, max_len: usize) {
    for (u, seq) in ds.sequences.iter_mut().enumerate() {
        if seq.len() > max_len {
            let cut = seq.len() - max_len;
            seq.drain(..cut);
            if let Some(l) = &mut ds.noise_labels {
                l[u].drain(..cut);
            }
        }
    }
}

/// Leave-one-out split (paper §IV-A1): for each user with `n ≥ min_len`
/// interactions, the last item is the test target, the second-to-last the
/// validation target, and training examples are built from earlier prefixes.
///
/// `max_train_prefixes` caps the number of autoregressive training examples
/// generated per user (most recent prefixes are kept), bounding epoch cost
/// for long-sequence profiles.
pub fn leave_one_out(ds: &Dataset, min_len: usize, max_train_prefixes: usize) -> Split {
    assert!(min_len >= 3, "leave-one-out needs ≥ 3 interactions");
    let mut split = Split::default();
    for (u, seq) in ds.sequences.iter().enumerate() {
        let n = seq.len();
        if n < min_len {
            continue;
        }
        let noise_of = |upto: usize| -> Option<Vec<bool>> {
            ds.noise_labels.as_ref().map(|l| l[u][..upto].to_vec())
        };

        split.test.push(Example {
            user: u,
            seq: seq[..n - 1].to_vec(),
            target: seq[n - 1],
            noise: noise_of(n - 1),
        });
        split.valid.push(Example {
            user: u,
            seq: seq[..n - 2].to_vec(),
            target: seq[n - 2],
            noise: noise_of(n - 2),
        });

        // Training prefixes: (s_1..s_t) → s_{t+1} for t+1 ≤ n-2.
        let last_t = n - 2; // target index upper bound (exclusive of valid/test)
        let first_t = 2usize.max(last_t.saturating_sub(max_train_prefixes));
        for t in first_t..last_t {
            split.train.push(Example {
                user: u,
                seq: seq[..t].to_vec(),
                target: seq[t],
                noise: noise_of(t),
            });
        }
    }
    split
}

/// The leave-one-out split as metadata only: identical example structure to
/// [`leave_one_out`] (same users, same prefix boundaries, same order), but
/// over any [`SequenceStore`] and without materializing a single item
/// vector — ~8 bytes per example instead of the full prefix.
///
/// `plan_leave_one_out(&ds, …).materialize(&ds)` equals
/// `leave_one_out(&ds, …)` example for example (pinned by a test in
/// [`crate::store`]).
pub fn plan_leave_one_out(
    store: &dyn SequenceStore,
    min_len: usize,
    max_train_prefixes: usize,
) -> SplitPlan {
    assert!(min_len >= 3, "leave-one-out needs ≥ 3 interactions");
    let mut plan = SplitPlan::default();
    for u in 0..store.num_users() {
        let n = store.seq_len(u);
        if n < min_len {
            continue;
        }
        let user = u as u32;
        plan.test.push(ExampleRef {
            user,
            prefix_len: (n - 1) as u32,
        });
        plan.valid.push(ExampleRef {
            user,
            prefix_len: (n - 2) as u32,
        });
        let last_t = n - 2;
        let first_t = 2usize.max(last_t.saturating_sub(max_train_prefixes));
        for t in first_t..last_t {
            plan.train.push(ExampleRef {
                user,
                prefix_len: t as u32,
            });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    fn toy() -> Dataset {
        Dataset {
            name: "toy".into(),
            num_users: 3,
            num_items: 6,
            sequences: vec![
                vec![1, 2, 3, 1, 2, 3, 1, 2],
                vec![1, 2, 3, 2, 1, 3],
                vec![4, 5, 6, 4, 5], // items 4,5,6 appear ≤ 2 times
            ],
            noise_labels: None,
        }
    }

    #[test]
    fn k_core_removes_rare_items_and_reindexes() {
        let (out, remap) = k_core_filter(&toy(), 5, 3);
        // Items 4,5,6 (freq 2,2,1) die; user 2's sequence empties.
        assert!(out.sequences[2].is_empty());
        assert_eq!(out.num_items, 3);
        assert!(remap.len() == 3);
        // Surviving ids are dense 1..=3.
        for seq in &out.sequences {
            for &it in seq {
                assert!((1..=3).contains(&it));
            }
        }
    }

    #[test]
    fn k_core_reaches_fixed_point() {
        // Dropping items can shorten sequences below the threshold, which
        // must cascade.
        let ds = Dataset {
            name: "t".into(),
            num_users: 2,
            num_items: 4,
            sequences: vec![vec![1, 1, 1, 2, 3], vec![1, 1, 1, 1, 4]],
            noise_labels: None,
        };
        let (out, _) = k_core_filter(&ds, 5, 2);
        // 2,3,4 are singletons → dropped; both sequences fall under 5 → cleared.
        assert!(out.sequences.iter().all(|s| s.is_empty()));
    }

    #[test]
    fn truncate_keeps_most_recent() {
        let mut ds = toy();
        truncate_to_max_len(&mut ds, 3);
        assert_eq!(ds.sequences[0], vec![3, 1, 2]);
        assert_eq!(ds.sequences[1], vec![2, 1, 3]);
    }

    #[test]
    fn truncate_aligns_labels() {
        let mut ds = toy();
        ds.noise_labels = Some(vec![
            vec![false, true, false, false, true, false, false, true],
            vec![false; 6],
            vec![true; 5],
        ]);
        truncate_to_max_len(&mut ds, 4);
        let l = ds.noise_labels.as_ref().unwrap();
        assert_eq!(l[0], vec![true, false, false, true]);
        assert_eq!(ds.sequences[0].len(), l[0].len());
    }

    #[test]
    fn leave_one_out_targets() {
        let split = leave_one_out(&toy(), 5, 100);
        // user 0: seq len 8 → test target s_8=2, valid target s_7=1
        assert_eq!(split.test[0].target, 2);
        assert_eq!(split.test[0].seq.len(), 7);
        assert_eq!(split.valid[0].target, 1);
        assert_eq!(split.valid[0].seq.len(), 6);
        // Training prefixes end strictly before the valid target.
        for ex in &split.train {
            assert!(ex.seq.len() >= 2);
        }
    }

    #[test]
    fn leave_one_out_respects_prefix_cap() {
        let split_all = leave_one_out(&toy(), 5, 100);
        let split_one = leave_one_out(&toy(), 5, 1);
        assert!(split_one.train.len() < split_all.train.len());
        // With cap 1, exactly one train example per eligible user.
        assert_eq!(split_one.train.len(), 3);
    }

    #[test]
    fn full_pipeline_on_synthetic() {
        let ds = SyntheticConfig::beauty().generate();
        let (mut filtered, _) = k_core_filter(&ds, 5, 5);
        truncate_to_max_len(&mut filtered, 50);
        let split = leave_one_out(&filtered, 5, 4);
        assert!(!split.train.is_empty());
        assert_eq!(split.valid.len(), split.test.len());
        // Noise labels flow through the pipeline.
        assert!(split.test[0].noise.is_some());
        for ex in split.train.iter().chain(&split.valid).chain(&split.test) {
            assert_eq!(ex.seq.len(), ex.noise.as_ref().unwrap().len());
            assert!(ex.seq.len() <= 50);
            assert!(ex.target >= 1 && ex.target <= filtered.num_items);
        }
    }
}
