//! FMLP-Rec [28]: implicit sequence denoising with learnable frequency-domain
//! filters ("filter-enhanced MLP is all you need").
//!
//! Each layer applies `x → iFFT(FFT(x) ⊙ W)` along time, a residual + layer
//! norm, and a feed-forward block. Denoising is *implicit*: noisy items are
//! attenuated in the representation, never removed — which is exactly the
//! limitation the paper's Table IV exposes.
//!
//! The frequency filter needs a fixed sequence length, so batches are
//! left-padded to `max_len` with the padding item (as in RecBole's FMLP).

use ssdrec_data::Batch;
use ssdrec_tensor::nn::{DftFilter, Embedding, FeedForward, LayerNorm};
use ssdrec_tensor::{Binding, Graph, ParamStore, Rng, Tensor, Var};

use ssdrec_models::RecModel;

struct FmlpLayer {
    filter: DftFilter,
    ln1: LayerNorm,
    ffn: FeedForward,
    ln2: LayerNorm,
}

/// The FMLP-Rec model.
pub struct FmlpRec {
    /// Trainable parameters.
    pub store: ParamStore,
    item_emb: Embedding,
    layers: Vec<FmlpLayer>,
    max_len: usize,
    dim: usize,
    num_items: usize,
    /// Dropout on embeddings during training.
    pub dropout: f32,
}

impl FmlpRec {
    /// Build with `layers` filter layers over sequences padded to `max_len`.
    pub fn new(num_items: usize, dim: usize, max_len: usize, layers: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(seed);
        let item_emb = Embedding::new(&mut store, "item", num_items + 1, dim, &mut rng);
        let layers = (0..layers)
            .map(|i| FmlpLayer {
                filter: DftFilter::new(&mut store, &format!("fmlp.{i}.filter"), max_len, dim),
                ln1: LayerNorm::new(&mut store, &format!("fmlp.{i}.ln1"), dim),
                ffn: FeedForward::new(&mut store, &format!("fmlp.{i}.ffn"), dim, dim * 4, &mut rng),
                ln2: LayerNorm::new(&mut store, &format!("fmlp.{i}.ln2"), dim),
            })
            .collect();
        FmlpRec {
            store,
            item_emb,
            layers,
            max_len,
            dim,
            num_items,
            dropout: 0.1,
        }
    }

    /// Left-pad a batch's IDs to `max_len` (truncating from the front if
    /// longer).
    fn padded_ids(&self, batch: &Batch) -> Vec<usize> {
        let b = batch.len();
        let mut ids = vec![0usize; b * self.max_len];
        for i in 0..b {
            let seq = batch.seq(i);
            let keep = seq.len().min(self.max_len);
            let src = &seq[seq.len() - keep..];
            let dst_start = (i + 1) * self.max_len - keep;
            ids[dst_start..(i + 1) * self.max_len].copy_from_slice(src);
        }
        ids
    }

    fn forward(&self, g: &mut Graph, bind: &Binding, batch: &Batch, rng: Option<&mut Rng>) -> Var {
        let ids = self.padded_ids(batch);
        let b = batch.len();
        let mut h = self.item_emb.lookup_seq(g, bind, &ids, b, self.max_len);
        if let Some(rng) = rng {
            if self.dropout > 0.0 {
                let mask = rng.dropout_mask(g.value(h).len(), self.dropout);
                h = g.dropout_with_mask(h, mask);
            }
        }
        for layer in &self.layers {
            let f = layer.filter.forward(g, bind, h);
            let r1 = g.add(h, f);
            let n1 = layer.ln1.forward(g, bind, r1);
            let ff = layer.ffn.forward(g, bind, n1);
            let r2 = g.add(n1, ff);
            h = layer.ln2.forward(g, bind, r2);
        }
        let h_s = g.select_time(h, self.max_len - 1);
        // Tied-weight scorer with the pad item masked.
        let table = self.item_emb.table(bind);
        let tt = g.transpose_last(table);
        let logits = g.matmul(h_s, tt);
        let mut mask = Tensor::zeros(&[self.num_items + 1]);
        mask.data_mut()[0] = -1e9;
        let mv = g.constant(mask);
        g.add_bcast(logits, mv)
    }
}

impl RecModel for FmlpRec {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn loss(&self, g: &mut Graph, bind: &Binding, batch: &Batch, rng: &mut Rng) -> Var {
        let logits = self.forward(g, bind, batch, Some(rng));
        let logp = g.log_softmax_last(logits);
        let picked = g.pick_per_row(logp, &batch.targets);
        let mean = g.mean_all(picked);
        g.neg(mean)
    }

    fn eval_scores(&self, g: &mut Graph, bind: &Binding, batch: &Batch) -> Var {
        self.forward(g, bind, batch, None)
    }

    fn model_name(&self) -> String {
        "FMLP-Rec".into()
    }
}

impl crate::Denoiser for FmlpRec {
    /// FMLP denoises implicitly at the representation level: it never drops
    /// an item, so every position is kept (maximal under-denoising by
    /// construction — the paper's critique).
    fn keep_decisions(&self, seq: &[usize], _user: usize) -> Vec<bool> {
        vec![true; seq.len()]
    }

    fn denoiser_dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Denoiser;

    fn toy_batch() -> Batch {
        Batch {
            users: vec![0, 1],
            items: vec![1, 2, 3, 4, 5, 6],
            seq_len: 3,
            targets: vec![4, 1],
            noise: None,
        }
    }

    #[test]
    fn forward_shape_and_finite() {
        let m = FmlpRec::new(10, 8, 12, 2, 0);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let s = m.eval_scores(&mut g, &bind, &toy_batch());
        assert_eq!(g.value(s).shape(), &[2, 11]);
        assert!(!g.value(s).has_non_finite());
    }

    #[test]
    fn left_padding_puts_sequence_at_end() {
        let m = FmlpRec::new(10, 8, 6, 1, 0);
        let ids = m.padded_ids(&toy_batch());
        assert_eq!(&ids[..6], &[0, 0, 0, 1, 2, 3]);
        assert_eq!(&ids[6..], &[0, 0, 0, 4, 5, 6]);
    }

    #[test]
    fn long_sequences_truncate_from_front() {
        let m = FmlpRec::new(10, 8, 2, 1, 0);
        let ids = m.padded_ids(&toy_batch());
        assert_eq!(&ids[..2], &[2, 3]);
    }

    #[test]
    fn keeps_everything() {
        let m = FmlpRec::new(10, 8, 12, 1, 0);
        assert_eq!(m.keep_decisions(&[1, 2, 3], 0), vec![true; 3]);
    }

    #[test]
    fn loss_backprops() {
        let m = FmlpRec::new(10, 8, 12, 1, 1);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let mut rng = Rng::seed(0);
        let loss = m.loss(&mut g, &bind, &toy_batch(), &mut rng);
        assert!(g.value(loss).item().is_finite());
        let grads = g.backward(loss);
        assert!(grads.get(bind.var(m.item_emb.weight())).is_some());
    }
}
