//! MGSD-WSS: multi-granularity sequence denoising with a weakly supervised
//! noise signal (PAPERS.md, 2025) — the newest method in the workload zoo.
//!
//! Two noise signals at different granularities are learned per position:
//!
//! 1. **item level** — the position's own coherence, scored by the shared
//!    [`HsdCore`] signals (Bi-LSTM sequentiality × user interest);
//! 2. **segment level** — mean-pooled windows of `seg_width` consecutive
//!    positions are scored as a whole, so a *burst* of noise (which looks
//!    locally self-consistent and fools item-level scoring) is caught by
//!    its segment standing out from the sequence.
//!
//! The keep probability is the product of both granularities. During
//! training the sequence representation is attenuated by the calibrated
//! keep probability (a soft, fully differentiable mask — no sampling, so
//! the loss draws nothing from the RNG stream beyond dropout); at
//! evaluation the workspace's relative-keep rule hardens the decision.
//!
//! **Weak supervision:** when a batch carries ground-truth noise flags
//! (synthetic data, or an `.ssdc` file with a NOIS section), the combined
//! keep probability is regressed onto them directly — the "weakly
//! supervised signal". Without labels it falls back to HSD's correlation
//! targets (relevance to the next interaction), so the model also trains
//! on unlabelled data.

use ssdrec_data::Batch;
use ssdrec_tensor::nn::{Embedding, Linear};
use ssdrec_tensor::{Binding, Graph, ParamStore, Rng, Tensor, Var};

use ssdrec_models::{RecModel, SasRecEncoder, SeqEncoder};

use crate::hsd::HsdCore;

/// Default segment width for the segment-granularity signal.
pub const DEFAULT_SEG_WIDTH: usize = 4;

/// The MGSD-WSS model.
pub struct Mgsd {
    /// Trainable parameters.
    pub store: ParamStore,
    item_emb: Embedding,
    user_emb: Embedding,
    /// Item-granularity scorer (shared denoising core).
    pub core: HsdCore,
    w_seg: Linear,
    backbone: SasRecEncoder,
    dim: usize,
    num_items: usize,
    /// Segment width of the coarse granularity.
    pub seg_width: usize,
    /// Dropout on embeddings during training.
    pub dropout: f32,
    /// Weight of the (weak) noise-supervision loss.
    pub ws_weight: f32,
}

impl Mgsd {
    /// Build MGSD-WSS for a catalogue of `num_items` items and `num_users`
    /// users.
    pub fn new(num_users: usize, num_items: usize, dim: usize, max_len: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(seed);
        let item_emb = Embedding::new(&mut store, "item", num_items + 1, dim, &mut rng);
        let user_emb = Embedding::new(&mut store, "user", num_users, dim, &mut rng);
        let core = HsdCore::new(&mut store, "mgsd", dim, &mut rng);
        let w_seg = Linear::new(&mut store, "mgsd.w_seg", dim, 1, &mut rng);
        let backbone = SasRecEncoder::new(&mut store, dim, max_len, 2, 2, &mut rng);
        Mgsd {
            store,
            item_emb,
            user_emb,
            core,
            w_seg,
            backbone,
            dim,
            num_items,
            seg_width: DEFAULT_SEG_WIDTH,
            dropout: 0.1,
            ws_weight: 1.0,
        }
    }

    /// Segment boundaries for a sequence of length `t`: `⌈t/w⌉` contiguous
    /// windows, the last one possibly short.
    fn segments(&self, t: usize) -> Vec<(usize, usize)> {
        let w = self.seg_width.max(1);
        (0..t.div_ceil(w))
            .map(|s| (s * w, ((s + 1) * w).min(t) - s * w))
            .collect()
    }

    /// Segment-granularity keep probabilities broadcast back to `B×T`:
    /// mean-pool `h` (`B×T×d`) per segment, score each pooled vector with a
    /// linear head (+ the same conservative keep prior the item signal
    /// uses), and expand each segment's σ-score over its positions.
    pub fn segment_keep_probs(&self, g: &mut Graph, bind: &Binding, h: Var) -> Var {
        const KEEP_PRIOR: f32 = 1.0;
        let (b, t, d) = g.value(h).dims3();
        let segs = self.segments(t);
        let s = segs.len();
        // Pool matrix T×S: column j holds 1/len(j) over segment j's rows.
        let mut pool = Tensor::zeros(&[t, s]);
        for (j, &(start, len)) in segs.iter().enumerate() {
            for ti in start..start + len {
                pool.data_mut()[ti * s + j] = 1.0 / len as f32;
            }
        }
        let ht = g.transpose_last(h); // B×d×T
        let pv = g.constant(pool);
        let pooled_t = g.matmul(ht, pv); // B×d×S
        let pooled = g.transpose_last(pooled_t); // B×S×d
        let score = self.w_seg.forward(g, bind, pooled); // B×S×1
        let score = g.reshape(score, &[b, s]);
        let score = g.add_scalar(score, KEEP_PRIOR);
        let score = g.sigmoid(score); // B×S
                                      // Expand matrix S×T: row j is 1 over segment j's positions.
        let mut expand = Tensor::zeros(&[s, t]);
        for (j, &(start, len)) in segs.iter().enumerate() {
            for ti in start..start + len {
                expand.data_mut()[j * t + ti] = 1.0;
            }
        }
        let ev = g.constant(expand);
        let _ = d;
        g.matmul(score, ev) // B×T
    }

    /// Combined multi-granularity keep probability `B×T`: item-level ×
    /// segment-level.
    pub fn keep_probs_multi(&self, g: &mut Graph, bind: &Binding, h: Var, user: Var) -> Var {
        let item = self.core.keep_probs(g, bind, h, user);
        let seg = self.segment_keep_probs(g, bind, h);
        g.mul(item, seg)
    }

    /// The weak-supervision target for `probs` (`B×T`): ground-truth keep
    /// flags when the batch carries noise labels, HSD correlation targets
    /// otherwise. Always detached.
    fn supervision_targets(&self, g: &mut Graph, bind: &Binding, batch: &Batch, h: Var) -> Var {
        if let Some(noise) = &batch.noise {
            let y: Vec<f32> = noise.iter().map(|&n| if n { 0.0 } else { 1.0 }).collect();
            g.constant(Tensor::new(y, &[batch.len(), batch.seq_len]))
        } else {
            let tgt = self.item_emb.lookup(g, bind, &batch.targets);
            self.core.correlation_targets(g, h, tgt)
        }
    }

    fn score_repr(&self, g: &mut Graph, bind: &Binding, h_s: Var) -> Var {
        let table = self.item_emb.table(bind);
        let tt = g.transpose_last(table);
        let logits = g.matmul(h_s, tt);
        let mut mask = Tensor::zeros(&[self.num_items + 1]);
        mask.data_mut()[0] = -1e9;
        let mv = g.constant(mask);
        g.add_bcast(logits, mv)
    }
}

impl RecModel for Mgsd {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn loss(&self, g: &mut Graph, bind: &Binding, batch: &Batch, rng: &mut Rng) -> Var {
        let b = batch.len();
        let t = batch.seq_len;
        let mut h = self.item_emb.lookup_seq(g, bind, &batch.items, b, t);
        if self.dropout > 0.0 {
            let mask = rng.dropout_mask(g.value(h).len(), self.dropout);
            h = g.dropout_with_mask(h, mask);
        }
        let u = self.user_emb.lookup(g, bind, &batch.users);
        let probs = self.keep_probs_multi(g, bind, h, u);
        // Soft, differentiable denoising: attenuate each position by its
        // calibrated keep probability (no mask sampling — the relative
        // rule's calibration keeps average-coherence items near 1).
        let cal = self
            .core
            .calibrate(g, probs, crate::RELATIVE_KEEP_BETA, 8.0);
        let mask3 = g.reshape(cal, &[b, t, 1]);
        let h_masked = self.core.apply_mask(g, h, mask3);
        let h_s = self.backbone.encode(g, bind, h_masked);
        let logits = self.score_repr(g, bind, h_s);
        let logp = g.log_softmax_last(logits);
        let picked = g.pick_per_row(logp, &batch.targets);
        let mean = g.mean_all(picked);
        let ce = g.neg(mean);
        // Weak supervision of the multi-granularity gate.
        let y = self.supervision_targets(g, bind, batch, h);
        let ws = self.core.gate_loss(g, probs, y);
        let ws = g.scale(ws, self.ws_weight);
        g.add(ce, ws)
    }

    fn eval_scores(&self, g: &mut Graph, bind: &Binding, batch: &Batch) -> Var {
        let b = batch.len();
        let t = batch.seq_len;
        let h = self.item_emb.lookup_seq(g, bind, &batch.items, b, t);
        let u = self.user_emb.lookup(g, bind, &batch.users);
        let probs = self.keep_probs_multi(g, bind, h, u);
        let mask = self.core.hard_mask(g, probs);
        let h_masked = self.core.apply_mask(g, h, mask);
        let h_s = self.backbone.encode(g, bind, h_masked);
        self.score_repr(g, bind, h_s)
    }

    fn model_name(&self) -> String {
        "MGSD-WSS".into()
    }
}

impl crate::Denoiser for Mgsd {
    fn keep_decisions(&self, seq: &[usize], user: usize) -> Vec<bool> {
        crate::relative_keep(&self.keep_scores(seq, user), crate::RELATIVE_KEEP_BETA)
    }

    fn keep_scores(&self, seq: &[usize], user: usize) -> Vec<f32> {
        if seq.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let bind = self.store.bind_all(&mut g);
        let h = self.item_emb.lookup_seq(&mut g, &bind, seq, 1, seq.len());
        let u = self.user_emb.lookup(&mut g, &bind, &[user]);
        let probs = self.keep_probs_multi(&mut g, &bind, h, u);
        g.value(probs).data().to_vec()
    }

    fn denoiser_dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Denoiser;

    fn toy_batch(noise: Option<Vec<bool>>) -> Batch {
        Batch {
            users: vec![0, 1],
            items: vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 1, 2],
            seq_len: 6,
            targets: vec![4, 1],
            noise,
        }
    }

    #[test]
    fn segments_cover_the_sequence() {
        let m = Mgsd::new(4, 10, 8, 20, 0);
        let segs = m.segments(10);
        assert_eq!(segs, vec![(0, 4), (4, 4), (8, 2)]);
        assert_eq!(m.segments(3), vec![(0, 3)]);
        assert_eq!(m.segments(1), vec![(0, 1)]);
    }

    #[test]
    fn combined_keep_probs_in_unit_interval() {
        let m = Mgsd::new(4, 10, 8, 20, 1);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let h = m.item_emb.lookup_seq(&mut g, &bind, &[1, 2, 3, 4, 5], 1, 5);
        let u = m.user_emb.lookup(&mut g, &bind, &[0]);
        let p = m.keep_probs_multi(&mut g, &bind, h, u);
        assert_eq!(g.value(p).shape(), &[1, 5]);
        assert!(g.value(p).data().iter().all(|&x| x > 0.0 && x < 1.0));
    }

    #[test]
    fn segment_scores_are_constant_within_a_segment() {
        let m = Mgsd::new(4, 10, 8, 20, 2);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let h = m
            .item_emb
            .lookup_seq(&mut g, &bind, &[1, 2, 3, 4, 5, 6, 7, 8], 1, 8);
        let s = m.segment_keep_probs(&mut g, &bind, h);
        let v = g.value(s).data();
        assert_eq!(v.len(), 8);
        for seg in v.chunks(m.seg_width) {
            for &x in seg {
                assert_eq!(x.to_bits(), seg[0].to_bits(), "segment not constant: {v:?}");
            }
        }
    }

    #[test]
    fn labelled_loss_uses_ground_truth() {
        let m = Mgsd::new(4, 10, 8, 20, 3);
        let noise = vec![
            false, false, true, false, false, true, // user 0
            true, false, false, false, true, false, // user 1
        ];
        let mut rng = Rng::seed(0);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let with_var = m.loss(&mut g, &bind, &toy_batch(Some(noise)), &mut rng);
        let with = g.value(with_var).item();
        let mut rng2 = Rng::seed(0);
        let mut g2 = Graph::new();
        let bind2 = m.store.bind_all(&mut g2);
        let without_var = m.loss(&mut g2, &bind2, &toy_batch(None), &mut rng2);
        let without = g2.value(without_var).item();
        assert!(with.is_finite() && without.is_finite());
        assert_ne!(with, without, "noise labels must change the loss");
    }

    #[test]
    fn end_to_end_loss_and_grads() {
        let m = Mgsd::new(4, 10, 8, 20, 4);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let mut rng = Rng::seed(5);
        let loss = m.loss(&mut g, &bind, &toy_batch(None), &mut rng);
        assert!(g.value(loss).item().is_finite());
        let grads = g.backward(loss);
        assert!(grads.get(bind.var(m.item_emb.weight())).is_some());
        assert!(grads.get(bind.var(m.user_emb.weight())).is_some());
        assert!(grads.get(bind.var(m.w_seg.weight())).is_some());
    }

    #[test]
    fn keep_decisions_shape_and_scores() {
        let m = Mgsd::new(4, 10, 8, 20, 6);
        let d = m.keep_decisions(&[1, 2, 3, 4, 5, 6, 7], 2);
        assert_eq!(d.len(), 7);
        let s = m.keep_scores(&[1, 2, 3, 4, 5, 6, 7], 2);
        assert_eq!(s.len(), 7);
        assert!(s.iter().all(|x| x.is_finite()));
        assert!(m.keep_scores(&[], 0).is_empty());
    }

    #[test]
    fn eval_scores_deterministic_and_shaped() {
        let m = Mgsd::new(4, 10, 8, 20, 7);
        let run = || {
            let mut g = Graph::new();
            let bind = m.store.bind_all(&mut g);
            let s = m.eval_scores(&mut g, &bind, &toy_batch(None));
            g.value(s).data().to_vec()
        };
        assert_eq!(run(), run());
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let s = m.eval_scores(&mut g, &bind, &toy_batch(None));
        assert_eq!(g.value(s).shape(), &[2, 11]);
    }
}
