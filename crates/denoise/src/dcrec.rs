//! DCRec [41]: debiased contrastive learning for sequential recommendation.
//!
//! DCRec is the paper's strongest non-denoising baseline: a transformer
//! encoder trained with (a) the usual next-item loss and (b) a contrastive
//! loss between two stochastic views of each sequence, *down-weighted for
//! conformity* — interactions on popular items are treated as conformity
//! rather than genuine interest, debiasing the contrastive signal.

use ssdrec_data::Batch;
use ssdrec_tensor::nn::Embedding;
use ssdrec_tensor::{Binding, Graph, ParamStore, Rng, Tensor, Var};

use ssdrec_models::{RecModel, SasRecEncoder, SeqEncoder};

/// The DCRec model.
pub struct DcRec {
    /// Trainable parameters.
    pub store: ParamStore,
    item_emb: Embedding,
    encoder: SasRecEncoder,
    dim: usize,
    num_items: usize,
    /// Item conformity in `[0,1]` (popularity, normalised by the max).
    conformity: Vec<f32>,
    /// Weight of the contrastive term.
    pub beta: f32,
    /// Contrastive temperature.
    pub cl_tau: f32,
    /// Dropout used both for regularisation and for view generation.
    pub dropout: f32,
}

impl DcRec {
    /// Build the model. `item_freq[i]` is the training frequency of item `i`
    /// (index 0 = pad), from which conformity weights are derived.
    pub fn new(
        num_items: usize,
        dim: usize,
        max_len: usize,
        item_freq: &[usize],
        seed: u64,
    ) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed(seed);
        let item_emb = Embedding::new(&mut store, "item", num_items + 1, dim, &mut rng);
        let encoder = SasRecEncoder::new(&mut store, dim, max_len, 2, 2, &mut rng);
        let max_f = item_freq.iter().copied().max().unwrap_or(1).max(1) as f32;
        let mut conformity: Vec<f32> = item_freq.iter().map(|&f| f as f32 / max_f).collect();
        conformity.resize(num_items + 1, 0.0);
        DcRec {
            store,
            item_emb,
            encoder,
            dim,
            num_items,
            conformity,
            beta: 0.2,
            cl_tau: 0.5,
            dropout: 0.2,
        }
    }

    fn encode_view(
        &self,
        g: &mut Graph,
        bind: &Binding,
        batch: &Batch,
        rng: Option<&mut Rng>,
    ) -> Var {
        let b = batch.len();
        let t = batch.seq_len;
        let mut h = self.item_emb.lookup_seq(g, bind, &batch.items, b, t);
        if let Some(rng) = rng {
            if self.dropout > 0.0 {
                let mask = rng.dropout_mask(g.value(h).len(), self.dropout);
                h = g.dropout_with_mask(h, mask);
            }
        }
        self.encoder.encode(g, bind, h)
    }

    fn score_repr(&self, g: &mut Graph, bind: &Binding, h_s: Var) -> Var {
        let table = self.item_emb.table(bind);
        let tt = g.transpose_last(table);
        let logits = g.matmul(h_s, tt);
        let mut mask = Tensor::zeros(&[self.num_items + 1]);
        mask.data_mut()[0] = -1e9;
        let mv = g.constant(mask);
        g.add_bcast(logits, mv)
    }

    /// Conformity-weighted InfoNCE between two views `z1, z2` (`B×d`):
    /// positives are the diagonal of `z1 z2ᵀ / τ`, negatives in-batch.
    fn contrastive_loss(&self, g: &mut Graph, z1: Var, z2: Var, targets: &[usize]) -> Var {
        let b = g.value(z1).shape()[0];
        let z2t = g.transpose_last(z2);
        let sim = g.matmul(z1, z2t); // B×B
        let sim = g.scale(sim, 1.0 / self.cl_tau);
        let logp = g.log_softmax_last(sim);
        let diag: Vec<usize> = (0..b).collect();
        let pos = g.pick_per_row(logp, &diag); // B
                                               // Debias: weight each example by 1 − conformity(target).
        let w: Vec<f32> = targets.iter().map(|&t| 1.0 - self.conformity[t]).collect();
        let wv = g.constant(Tensor::new(w, &[b]));
        let weighted = g.mul(pos, wv);
        let mean = g.mean_all(weighted);
        g.neg(mean)
    }
}

impl RecModel for DcRec {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn loss(&self, g: &mut Graph, bind: &Binding, batch: &Batch, rng: &mut Rng) -> Var {
        let z1 = self.encode_view(g, bind, batch, Some(rng));
        let logits = self.score_repr(g, bind, z1);
        let logp = g.log_softmax_last(logits);
        let picked = g.pick_per_row(logp, &batch.targets);
        let ce_mean = g.mean_all(picked);
        let ce = g.neg(ce_mean);
        if batch.len() >= 2 && self.beta > 0.0 {
            let z2 = self.encode_view(g, bind, batch, Some(rng));
            let cl = self.contrastive_loss(g, z1, z2, &batch.targets);
            let wcl = g.scale(cl, self.beta);
            g.add(ce, wcl)
        } else {
            ce
        }
    }

    fn eval_scores(&self, g: &mut Graph, bind: &Binding, batch: &Batch) -> Var {
        let z = self.encode_view(g, bind, batch, None);
        self.score_repr(g, bind, z)
    }

    fn model_name(&self) -> String {
        "DCRec".into()
    }
}

impl crate::Denoiser for DcRec {
    /// DCRec debiases rather than denoises: it never removes items.
    fn keep_decisions(&self, seq: &[usize], _user: usize) -> Vec<bool> {
        vec![true; seq.len()]
    }

    fn denoiser_dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Denoiser;

    fn toy_batch() -> Batch {
        Batch {
            users: vec![0, 1],
            items: vec![1, 2, 3, 4, 5, 6],
            seq_len: 3,
            targets: vec![4, 1],
            noise: None,
        }
    }

    fn freq() -> Vec<usize> {
        vec![0, 10, 5, 3, 2, 1, 1, 1, 1, 1, 1]
    }

    #[test]
    fn conformity_normalised() {
        let m = DcRec::new(10, 8, 20, &freq(), 0);
        assert_eq!(m.conformity[1], 1.0);
        assert!((m.conformity[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn loss_with_and_without_contrast() {
        let mut m = DcRec::new(10, 8, 20, &freq(), 1);
        let mut rng = Rng::seed(0);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let with_var = m.loss(&mut g, &bind, &toy_batch(), &mut rng);
        let with = g.value(with_var).item();
        m.beta = 0.0;
        let mut g2 = Graph::new();
        let bind2 = m.store.bind_all(&mut g2);
        let without_var = m.loss(&mut g2, &bind2, &toy_batch(), &mut rng);
        let without = g2.value(without_var).item();
        assert!(with.is_finite() && without.is_finite());
        assert_ne!(with, without);
    }

    #[test]
    fn single_example_batch_skips_contrast() {
        let m = DcRec::new(10, 8, 20, &freq(), 2);
        let batch = Batch {
            users: vec![0],
            items: vec![1, 2, 3],
            seq_len: 3,
            targets: vec![4],
            noise: None,
        };
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let mut rng = Rng::seed(3);
        let loss = m.loss(&mut g, &bind, &batch, &mut rng);
        assert!(g.value(loss).item().is_finite());
    }

    #[test]
    fn popular_targets_get_lower_contrast_weight() {
        let m = DcRec::new(10, 8, 20, &freq(), 4);
        // Item 1 is the most popular → weight 0; item 10 rare → weight near 1.
        assert!(1.0 - m.conformity[1] < 1.0 - m.conformity[10]);
    }

    #[test]
    fn keeps_everything() {
        let m = DcRec::new(10, 8, 20, &freq(), 5);
        assert_eq!(m.keep_decisions(&[1, 2], 0), vec![true, true]);
    }

    #[test]
    fn eval_shape() {
        let m = DcRec::new(10, 8, 20, &freq(), 6);
        let mut g = Graph::new();
        let bind = m.store.bind_all(&mut g);
        let s = m.eval_scores(&mut g, &bind, &toy_batch());
        assert_eq!(g.value(s).shape(), &[2, 11]);
    }
}
